#!/usr/bin/env bash
# verify.sh — the repository's full verification gate.
#
# Order matters: cheap static gates run before the test suites so a
# violation fails fast, and the race pass runs last because it is by far
# the most expensive step.
#
#   1. go build      — everything compiles
#   2. go vet        — stock Go static analysis
#   3. blob-vet      — this repo's own analyzers (see internal/analysis):
#                      kernelargcheck, floatcompare, goroutinehygiene,
#                      determinism, pkgdoc
#   4. go test       — full test suite, shuffled (-shuffle=on with a
#                      fixed seed, so inter-test ordering dependencies
#                      surface deterministically; includes the blob-vet
#                      self-check in internal/analysis/suite_test.go and
#                      the doc gates: README/DESIGN/EXPERIMENTS go fences
#                      must parse, benchmark index must match the
#                      registry)
#   5. fuzz smoke    — 10s of native fuzzing per untrusted-input parser:
#                      the advisor trace CSV, the fault-plan JSON, and
#                      the config hash that keys the service cache
#   6. blob-bench    — smoke run of the standardized benchmark suite
#                      (tiny sizes, one interleaved repetition): proves
#                      every case still prepares, runs and serializes
#                      to a valid BENCH_*.json
#   7. blob-soak     — short overload soak of the admission-control
#                      layer (DESIGN.md §12): sustained 4x-capacity load
#                      plus the chaos profile, asserting the shed SLOs,
#                      goroutine hygiene after drain, and that verdicts
#                      under faults match the fault-free reference
#   8. go test -race — concurrency-sensitive packages under the race
#                      detector: the worker pool, the harness, the
#                      multi-threaded BLAS kernels, the advisor
#                      service (cache / singleflight / worker pool),
#                      the overload controller, and the resilience
#                      layer (retry / breaker / fault injection)
#   9. chaos         — the seeded fault-injection gate: the chaos tests
#                      re-run under the race detector with a fixed seed,
#                      proving a sweep under a 30%-transient fault plan
#                      still converges to fault-free verdicts and that
#                      kill-and-resume checkpointing is byte-identical
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> blob-vet ./..."
go run ./cmd/blob-vet ./...

echo "==> go test ./... (-shuffle=on)"
go test -shuffle=on ./...

echo "==> fuzz smoke (10s per target)"
go test -run='^$' -fuzz='^FuzzReadTrace$' -fuzztime=10s ./internal/advisor/
go test -run='^$' -fuzz='^FuzzPlanJSON$' -fuzztime=10s ./internal/faultinject/
go test -run='^$' -fuzz='^FuzzConfigHash$' -fuzztime=10s ./internal/core/

echo "==> blob-bench -smoke"
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
go run ./cmd/blob-bench -smoke -q -tag verify -o "$bench_tmp/BENCH_verify.json"

echo "==> blob-soak -short (sustain + chaos)"
go run ./cmd/blob-soak -short -q -seed 1 -profiles sustain,chaos -o "$bench_tmp/SOAK_verify.json"

echo "==> go test -race (parallel, core, blas, service, overload, resilience, faultinject)"
go test -race ./internal/parallel/... ./internal/core/... ./internal/blas/... ./internal/service/... \
	./internal/overload/... ./internal/resilience/... ./internal/faultinject/...

echo "==> chaos gate (seeded fault plans under -race)"
go test -race -count=1 -run 'TestChaos|TestCheckpoint|TestThresholdUnderChaosPlan' \
	./internal/core/ ./internal/service/
echo "verify: all gates passed"
