#!/usr/bin/env bash
# verify.sh — the repository's full verification gate.
#
# Order matters: cheap static gates run before the test suites so a
# violation fails fast, and the race pass runs last because it is by far
# the most expensive step. Every stage is wall-clock timed, and a failure
# names the stage that broke (so "verify is red" in CI is immediately
# attributable without scrolling).
#
#   1. go build      — everything compiles
#   2. go vet        — stock Go static analysis
#   3. blob-vet      — this repo's own analyzers (see internal/analysis):
#                      kernelargcheck, floatcompare, goroutinehygiene,
#                      determinism, pkgdoc, ctxflow, locksafety,
#                      hotalloc, errcontract. Error findings and
#                      unbaselined warns fail the gate; the run also
#                      writes blobvet.sarif (SARIF 2.1.0) as a CI
#                      artifact for code-scanning renderers
#   4. go test       — full test suite, shuffled (-shuffle=on with a
#                      fixed seed, so inter-test ordering dependencies
#                      surface deterministically; includes the blob-vet
#                      self-check in internal/analysis/suite_test.go and
#                      the doc gates: README/DESIGN/EXPERIMENTS and
#                      docs/ go fences must parse, docs/ pages must
#                      match the wire contract, benchmark index must
#                      match the registry)
#   5. fidelity      — the model-fidelity gate (DESIGN.md §15): purely
#                      deterministic checks over the committed
#                      bench_data/ efficiency tables — leave-one-out
#                      interpolation for the measured CPU table, a
#                      reference-model comparison for the synthetic GPU
#                      table — with no kernel re-runs; refreshes the
#                      FIDELITY.md report
#   6. fuzz smoke    — 10s of native fuzzing per untrusted-input parser:
#                      the advisor trace CSV, the fault-plan JSON, the
#                      config hash that keys the service cache, the
#                      strict blob-vet baseline/report JSON parser, the
#                      cluster membership wire messages + threshold
#                      route key (DESIGN.md §16), and the netfault plan
#                      JSON (DESIGN.md §17)
#   7. blob-bench    — smoke run of the standardized benchmark suite
#                      (tiny sizes, one interleaved repetition): proves
#                      every case still prepares, runs and serializes
#                      to a valid BENCH_*.json
#   8. blob-soak     — short overload soak of the admission-control
#                      layer (DESIGN.md §12): sustained 4x-capacity load
#                      plus the chaos profile, asserting the shed SLOs,
#                      goroutine hygiene after drain, and that verdicts
#                      under faults match the fault-free reference; plus
#                      the dispatch profile hammering /v1/dispatch
#                      batches and asserting the shape-cache hit-rate
#                      and fast-tier latency SLOs (DESIGN.md §14); plus
#                      the cluster profile's kill/rejoin chaos run over
#                      a 3-replica consistent-hash cluster, asserting
#                      linear cache-hit scaling, byte-identical verdicts
#                      vs the single-node reference, and bounded
#                      degradation (DESIGN.md §16); plus the partition
#                      profile's network-fault run (internal/netfault):
#                      a seeded partition/heal/flap schedule with a slow
#                      peer and corrupted bodies, asserting byte-identical
#                      verdict digests vs an unfaulted replay, at least
#                      one hedge win, and no hung requests (DESIGN.md §17)
#   9. go test -race — concurrency-sensitive packages under the race
#                      detector: the worker pool, the harness, the
#                      multi-threaded BLAS kernels, the advisor
#                      service (cache / singleflight / worker pool),
#                      the offload dispatcher, the overload controller,
#                      the resilience layer (retry / breaker / fault
#                      injection), the network-fault layer, and the
#                      cluster ring / pool / gateway (hedging included)
#  10. chaos         — the seeded fault-injection gate: the chaos tests
#                      re-run under the race detector with a fixed seed,
#                      proving a sweep under a 30%-transient fault plan
#                      still converges to fault-free verdicts and that
#                      kill-and-resume checkpointing is byte-identical
set -euo pipefail
cd "$(dirname "$0")/.."

bench_tmp="$(mktemp -d)"
stage=""
stage_t0=0

cleanup() { rm -rf "$bench_tmp"; }
trap cleanup EXIT
trap 'code=$?; echo "verify: FAILED at stage \"$stage\" after $((SECONDS - stage_t0))s (exit $code)" >&2' ERR

begin() {
	stage="$1"
	stage_t0=$SECONDS
	echo "==> $stage"
}
end() {
	echo "    ok: $stage ($((SECONDS - stage_t0))s)"
}

begin "go build"
go build ./...
end

begin "go vet"
go vet ./...
end

begin "blob-vet"
go run ./cmd/blob-vet -sarif-out blobvet.sarif ./...
end

begin "go test (-shuffle=on)"
go test -shuffle=on ./...
end

begin "blob-calibrate fidelity (model-fidelity gate, no kernel re-runs)"
go run ./cmd/blob-calibrate fidelity -report FIDELITY.md
end

begin "fuzz smoke (10s per target)"
go test -run='^$' -fuzz='^FuzzReadTrace$' -fuzztime=10s ./internal/advisor/
go test -run='^$' -fuzz='^FuzzPlanJSON$' -fuzztime=10s ./internal/faultinject/
go test -run='^$' -fuzz='^FuzzConfigHash$' -fuzztime=10s ./internal/core/
go test -run='^$' -fuzz='^FuzzBaselineJSON$' -fuzztime=10s ./internal/analysis/blobvet/
go test -run='^$' -fuzz='^FuzzClusterWire$' -fuzztime=10s ./internal/cluster/
go test -run='^$' -fuzz='^FuzzNetfaultPlan$' -fuzztime=10s ./internal/netfault/
end

begin "blob-bench -smoke"
go run ./cmd/blob-bench -smoke -q -tag verify -o "$bench_tmp/BENCH_verify.json"
end

begin "blob-soak -short (sustain + chaos + dispatch + cluster + partition)"
go run ./cmd/blob-soak -short -q -seed 1 -profiles sustain,chaos,dispatch,cluster,partition -o "$bench_tmp/SOAK_verify.json"
end

begin "go test -race (parallel, core, blas, service, offload, overload, resilience, faultinject, netfault, blobclient, cluster)"
go test -race ./internal/parallel/... ./internal/core/... ./internal/blas/... ./internal/service/... \
	./internal/offload/... ./internal/overload/... ./internal/resilience/... ./internal/faultinject/... \
	./internal/netfault/... ./pkg/blobclient/... ./internal/cluster/...
end

begin "chaos gate (seeded fault plans under -race)"
go test -race -count=1 -run 'TestChaos|TestCheckpoint|TestThresholdUnderChaosPlan' \
	./internal/core/ ./internal/service/
end

echo "verify: all gates passed in ${SECONDS}s (sarif artifact: blobvet.sarif)"
