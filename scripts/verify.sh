#!/usr/bin/env bash
# verify.sh — the repository's full verification gate.
#
# Order matters: cheap static gates run before the test suites so a
# violation fails fast, and the race pass runs last because it is by far
# the most expensive step.
#
#   1. go build      — everything compiles
#   2. go vet        — stock Go static analysis
#   3. blob-vet      — this repo's own analyzers (see internal/analysis):
#                      kernelargcheck, floatcompare, goroutinehygiene,
#                      determinism, pkgdoc
#   4. go test       — full test suite (includes the blob-vet self-check
#                      in internal/analysis/suite_test.go and the doc
#                      gates: README/DESIGN/EXPERIMENTS go fences must
#                      parse, benchmark index must match the registry)
#   5. blob-bench    — smoke run of the standardized benchmark suite
#                      (tiny sizes, one interleaved repetition): proves
#                      every case still prepares, runs and serializes
#                      to a valid BENCH_*.json
#   6. go test -race — concurrency-sensitive packages under the race
#                      detector: the worker pool, the harness, the
#                      multi-threaded BLAS kernels, the advisor
#                      service (cache / singleflight / worker pool),
#                      and the resilience layer (retry / breaker /
#                      fault injection)
#   7. chaos         — the seeded fault-injection gate: the chaos tests
#                      re-run under the race detector with a fixed seed,
#                      proving a sweep under a 30%-transient fault plan
#                      still converges to fault-free verdicts and that
#                      kill-and-resume checkpointing is byte-identical
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> blob-vet ./..."
go run ./cmd/blob-vet ./...

echo "==> go test ./..."
go test ./...

echo "==> blob-bench -smoke"
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
go run ./cmd/blob-bench -smoke -q -tag verify -o "$bench_tmp/BENCH_verify.json"

echo "==> go test -race (parallel, core, blas, service, resilience, faultinject)"
go test -race ./internal/parallel/... ./internal/core/... ./internal/blas/... ./internal/service/... \
	./internal/resilience/... ./internal/faultinject/...

echo "==> chaos gate (seeded fault plans under -race)"
go test -race -count=1 -run 'TestChaos|TestCheckpoint|TestThresholdUnderChaosPlan' \
	./internal/core/ ./internal/service/

echo "verify: all gates passed"
