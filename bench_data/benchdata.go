// Package benchdata embeds the committed calibration artifacts under
// bench_data/ — the measured CPU efficiency table and the synthetic GPU
// table blob-calibrate generates — so every binary built from this repo
// carries a working default table set and blackbox mode needs no files
// at runtime. Regenerate the artifacts with `blob-calibrate calibrate`;
// the fidelity gate (`blob-calibrate fidelity`, run by scripts/verify.sh)
// guards their quality.
package benchdata

import (
	_ "embed"
	"fmt"
	"sync"

	"repro/internal/sim/efftab"
)

//go:embed efftab_cpu.json
var cpuJSON []byte

//go:embed efftab_gpu.json
var gpuJSON []byte

var (
	once       sync.Once
	defaultSet *efftab.Set
	defaultErr error
)

// Default returns the embedded efficiency-table set, parsed and
// validated once per process. An error here means the committed
// artifacts are corrupt — a repo defect, not a runtime condition.
func Default() (*efftab.Set, error) {
	once.Do(func() {
		cpu, err := efftab.Parse(cpuJSON)
		if err != nil {
			defaultErr = fmt.Errorf("benchdata: embedded CPU table: %w", err)
			return
		}
		gpu, err := efftab.Parse(gpuJSON)
		if err != nil {
			defaultErr = fmt.Errorf("benchdata: embedded GPU table: %w", err)
			return
		}
		defaultSet = &efftab.Set{CPU: cpu, GPU: gpu}
	})
	return defaultSet, defaultErr
}
