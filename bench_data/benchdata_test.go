package benchdata

import (
	"testing"

	"repro/internal/sim/efftab"
)

func TestDefaultParsesAndValidates(t *testing.T) {
	set, err := Default()
	if err != nil {
		t.Fatalf("Default: %v", err)
	}
	if set.CPU == nil || set.GPU == nil {
		t.Fatal("Default returned an incomplete set")
	}
	if set.CPU.Source != "live-blas" {
		t.Errorf("CPU table source = %q, want live-blas", set.CPU.Source)
	}
	// The committed tables must cover every (kernel, precision, class) the
	// models can ask for — a miss here would silently fall back to the
	// roofline for part of the sweep.
	for _, tab := range []*efftab.Table{set.CPU, set.GPU} {
		for _, prec := range []string{"f32", "f64"} {
			for _, class := range efftab.GemmClasses {
				if _, ok := tab.Eff("gemm", prec, class, 128); !ok {
					t.Errorf("%s table: no gemm/%s/%s coverage", tab.Source, prec, class)
				}
			}
			for _, class := range efftab.GemvClasses {
				if _, ok := tab.Eff("gemv", prec, class, 512); !ok {
					t.Errorf("%s table: no gemv/%s/%s coverage", tab.Source, prec, class)
				}
			}
		}
	}
}

func TestCommittedTablesStayInsideFidelityBands(t *testing.T) {
	// The same checks blob-calibrate's fidelity subcommand gates on,
	// pinned here so `go test ./...` catches a drifted table even without
	// running verify.sh. (The GPU reference-model comparison needs the
	// gpumodel package and lives with the fidelity gate instead; this
	// covers the self-consistency half.)
	set, err := Default()
	if err != nil {
		t.Fatalf("Default: %v", err)
	}
	for _, e := range efftab.LeaveOneOut(set.CPU) {
		if !e.Within(efftab.MaxMeasuredRel, efftab.MaxMeasuredGeoMean) {
			t.Errorf("CPU series %s outside the measured band: max_rel=%.3f geomean=%.3f",
				e.Key(), e.MaxRel, e.GeoMean)
		}
	}
}
