// Package repro_test holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark regenerates the corresponding paper
// element through the experiments registry; run a single one with e.g.
//
//	go test -bench 'BenchmarkTableIII$' -benchtime 1x
//
// and inspect the regenerated rows with -v via the experiment CLI instead:
//
//	go run ./cmd/gpu-blob --experiment table3
//
// The step/width knobs trade sweep resolution for benchmark runtime; the
// shapes (who wins, where the crossovers sit) are stable under them.
//
// These benchmarks delegate to internal/benchmark, the same harness behind
// cmd/blob-bench; EXPERIMENTS.md's benchmark index maps each one to the
// paper element it regenerates and the blob-bench case that gates it.
package repro_test

import (
	"testing"

	"repro/internal/benchmark"
	"repro/internal/experiments"
)

// benchOpt is the resolution used for the benchmark harness: a strided
// sweep keeps a full table regeneration inside a benchtime budget while
// preserving every qualitative result.
func benchOpt() experiments.Options {
	return experiments.Options{Step: 8, MaxDim: 4096}
}

// fullOpt is the paper-fidelity configuration (every size, d = 4096).
func fullOpt() experiments.Options {
	return experiments.Options{Step: 1, MaxDim: 4096}
}

func runExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	c, err := benchmark.ExperimentCase(id, opt)
	if err != nil {
		b.Fatal(err)
	}
	benchmark.RunB(b, c)
}

// BenchmarkSuiteSmoke runs the blob-bench standardized suite at smoke
// sizes under `go test -bench`, so the suite definition itself cannot rot:
// a case whose Prepare or op errors fails here without needing the CLI.
func BenchmarkSuiteSmoke(b *testing.B) {
	for _, c := range benchmark.DefaultSuite(benchmark.Options{Smoke: true}) {
		b.Run(c.Name, func(b *testing.B) { benchmark.RunB(b, c) })
	}
}

// BenchmarkTableI regenerates Table I (SGEMM run-times vs alpha/beta on
// five device/library pairs).
func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1", benchOpt()) }

// BenchmarkTableIII regenerates Table III (square GEMM offload thresholds,
// 3 systems x 5 iteration counts x 3 strategies x 2 precisions).
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3", benchOpt()) }

// BenchmarkTableIIIFull regenerates Table III at the paper's full
// resolution (every size 1..4096); thresholds are exact, not snapped to a
// stride.
func BenchmarkTableIIIFull(b *testing.B) { runExperiment(b, "table3", fullOpt()) }

// BenchmarkTableIV regenerates Table IV (square GEMV offload thresholds).
func BenchmarkTableIV(b *testing.B) { runExperiment(b, "table4", benchOpt()) }

// BenchmarkTableV regenerates Table V (first iteration count yielding a
// threshold, 8 non-square GEMM problem types x 3 systems x 2 precisions).
func BenchmarkTableV(b *testing.B) { runExperiment(b, "table5", benchOpt()) }

// BenchmarkTableVI regenerates Table VI (4 non-square GEMV problem types).
func BenchmarkTableVI(b *testing.B) { runExperiment(b, "table6", benchOpt()) }

// BenchmarkFig2 regenerates Fig 2 (square SGEMM curves, 1 iteration, DAWN).
func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2", benchOpt()) }

// BenchmarkFig3 regenerates Fig 3 (Isambard-AI CPU library comparison over
// the first 192 sizes).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3", experiments.Options{Step: 1}) }

// BenchmarkFig4 regenerates Fig 4 (square DGEMV curves, 1 iteration, all
// three systems).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4", benchOpt()) }

// BenchmarkFig5 regenerates Fig 5 (square SGEMV curves, 128 iterations,
// Isambard-AI and DAWN).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5", benchOpt()) }

// BenchmarkFig6 regenerates Fig 6 (AOCL vs OpenBLAS DGEMV on LUMI).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6", benchOpt()) }

// BenchmarkFig7 regenerates Fig 7 (implicit vs explicit scaling on DAWN).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7", benchOpt()) }

// BenchmarkFlopsModel regenerates the §III-A FLOP-model ablation.
func BenchmarkFlopsModel(b *testing.B) { runExperiment(b, "flops-model", benchOpt()) }

// BenchmarkXnack regenerates the HSA_XNACK USM ablation (§IV).
func BenchmarkXnack(b *testing.B) { runExperiment(b, "xnack", benchOpt()) }

// BenchmarkBatched regenerates the batched-GEMM extension (§V).
func BenchmarkBatched(b *testing.B) { runExperiment(b, "batched", benchOpt()) }

// BenchmarkPerfStat regenerates the §IV-B effective-CPUs evidence.
func BenchmarkPerfStat(b *testing.B) { runExperiment(b, "perfstat", benchOpt()) }

// BenchmarkHalf regenerates the half-precision HGEMM extension (§V).
func BenchmarkHalf(b *testing.B) { runExperiment(b, "half", benchOpt()) }

// BenchmarkSparse regenerates the sparse SpMV extension (§V).
func BenchmarkSparse(b *testing.B) { runExperiment(b, "sparse", benchOpt()) }

// BenchmarkStability regenerates the threshold-detector stability ablation.
func BenchmarkStability(b *testing.B) { runExperiment(b, "stability", benchOpt()) }

// BenchmarkQuirks regenerates the clean-library counterfactual ablation.
func BenchmarkQuirks(b *testing.B) { runExperiment(b, "quirks", benchOpt()) }
