// Command blob-vet runs the repository's custom static-analysis suite:
// the nine analyzers under internal/analysis that machine-check the
// benchmark's numeric, concurrency, documentation and contract
// invariants (argument validation in BLAS kernels, no raw float
// equality, goroutine hygiene in the hot paths, bit-reproducible
// simulator output, GoDoc on every package, context plumbing, mutex
// discipline, allocation-free hot paths, and classifiable errors).
//
// Usage:
//
//	go run ./cmd/blob-vet ./...          # analyze the module, tests included
//	go run ./cmd/blob-vet -tests=false ./internal/blas
//	go run ./cmd/blob-vet -only floatcompare,determinism ./...
//	go run ./cmd/blob-vet -format=sarif -sarif-out blobvet.sarif ./...
//	go run ./cmd/blob-vet -write-baseline ./...
//	go run ./cmd/blob-vet -list
//
// Severity and the baseline. Diagnostics are either error or warn
// severity. Error findings always fail the run: they are fixed in source
// or carry a justified //blobvet:allow. Warn findings fail unless listed
// in the committed baseline file (blobvet.baseline.json by default):
// pre-existing debt is frozen there, so the warn bar only ratchets. The
// baseline parser is strict — a malformed baseline is an operational
// error (exit 2), never a silent no-op. Stale baseline entries (fixed
// findings still listed) are reported on stderr so the file shrinks over
// time; -write-baseline regenerates it from the current warn findings.
//
// Output formats. -format=text (default) prints one finding per line;
// -format=json emits the blobvet-baseline/v1 document (the same shape
// the baseline file uses, so output can seed a baseline directly);
// -format=sarif emits SARIF 2.1.0 for CI renderers. -sarif-out FILE
// additionally writes the SARIF document to FILE regardless of -format,
// which is how scripts/verify.sh captures an artifact without giving up
// the textual log.
//
// blob-vet complements — not replaces — the toolchain's `go vet`;
// scripts/verify.sh runs both, plus the race detector on the
// concurrency-bearing packages.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/load"
)

// defaultBaseline is the committed baseline path, relative to the
// working directory (the module root in normal use).
const defaultBaseline = "blobvet.baseline.json"

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tests    = flag.Bool("tests", true, "include _test.go files and test packages")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "print the analyzer suite and exit")
		format   = flag.String("format", "text", "output format: text, json, or sarif")
		baseline = flag.String("baseline", defaultBaseline, "baseline file suppressing pre-existing warn findings (\"\" disables)")
		writeBl  = flag.Bool("write-baseline", false, "regenerate the baseline from current warn findings and exit")
		sarifOut = flag.String("sarif-out", "", "also write SARIF 2.1.0 output to this file")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		suite = selectAnalyzers(suite, *only)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "blob-vet: no analyzer matches -only=%s\n", *only)
			return 2
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "blob-vet: unknown -format=%s (want text, json, or sarif)\n", *format)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
		return 2
	}

	// Load the baseline. Missing at the *default* path means "no baseline
	// yet" and is fine; an explicitly named file that does not exist, or
	// any malformed file, is an operational error — a broken baseline
	// must never silently resurrect or suppress findings.
	var bl *blobvet.Baseline
	if *baseline != "" && !*writeBl {
		data, err := os.ReadFile(*baseline)
		switch {
		case err == nil:
			bl, err = blobvet.ParseBaseline(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blob-vet: %s: %v\n", *baseline, err)
				return 2
			}
		case errors.Is(err, fs.ErrNotExist) && *baseline == defaultBaseline:
			// No committed baseline: every warn finding counts.
		default:
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
	}

	pkgs, err := load.Module(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not read as a vacuous pass in CI.
		fmt.Fprintf(os.Stderr, "blob-vet: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	var findings []blobvet.Finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "blob-vet: %s: type error: %v\n", pkg.ImportPath, terr)
		}
		// Directive hygiene runs once per package, independent of -only:
		// a malformed allow must not hide behind analyzer selection.
		for _, d := range blobvet.CheckDirectives(pkg.Fset, pkg.Files) {
			findings = append(findings, blobvet.NewFinding(pkg.Fset, wd, d))
		}
		for _, a := range suite {
			pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "blob-vet: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range pass.Diagnostics() {
				findings = append(findings, blobvet.NewFinding(pkg.Fset, wd, d))
			}
		}
	}

	if *writeBl {
		data, err := blobvet.MarshalReport(blobvet.WarnOnly(findings))
		if err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
		path := *baseline
		if path == "" {
			path = defaultBaseline
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "blob-vet: wrote %d warn finding(s) to %s\n", len(blobvet.WarnOnly(findings)), path)
		return 0
	}

	// Partition: error findings and unbaselined warn findings fail the
	// run; baselined warns are suppressed.
	var active []blobvet.Finding
	for _, f := range findings {
		if bl.Covers(f) {
			continue
		}
		active = append(active, f)
	}
	for _, stale := range bl.Unused() {
		fmt.Fprintf(os.Stderr, "blob-vet: stale baseline entry (finding no longer reported): %s:%d [%s] %s\n",
			stale.File, stale.Line, stale.Analyzer, stale.Message)
	}

	if *sarifOut != "" {
		data, err := blobvet.MarshalSarif(active, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
	}

	switch *format {
	case "json":
		data, err := blobvet.MarshalReport(active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
		os.Stdout.Write(data)
	case "sarif":
		data, err := blobvet.MarshalSarif(active, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
			return 2
		}
		os.Stdout.Write(data)
	default:
		for _, f := range active {
			fmt.Printf("%s:%d:%d: [%s/%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Severity, f.Message)
		}
	}

	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "blob-vet: %d issue(s)\n", len(active))
		return 1
	}
	return 0
}

func selectAnalyzers(suite []*blobvet.Analyzer, only string) []*blobvet.Analyzer {
	wanted := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		wanted[strings.TrimSpace(n)] = true
	}
	var out []*blobvet.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
