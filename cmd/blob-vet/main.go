// Command blob-vet runs the repository's custom static-analysis suite:
// the five analyzers under internal/analysis that machine-check the
// benchmark's numeric, concurrency and documentation invariants
// (argument validation in BLAS kernels, no raw float equality, goroutine
// hygiene in the hot paths, bit-reproducible simulator output, and a real
// GoDoc package comment on every package).
//
// Usage:
//
//	go run ./cmd/blob-vet ./...          # analyze the module, tests included
//	go run ./cmd/blob-vet -tests=false ./internal/blas
//	go run ./cmd/blob-vet -only floatcompare,determinism ./...
//	go run ./cmd/blob-vet -list
//
// blob-vet complements — not replaces — the toolchain's `go vet`;
// scripts/verify.sh runs both, plus the race detector on the
// concurrency-bearing packages.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tests = flag.Bool("tests", true, "include _test.go files and test packages")
		only  = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list  = flag.Bool("list", false, "print the analyzer suite and exit")
	)
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		suite = selectAnalyzers(suite, *only)
		if len(suite) == 0 {
			fmt.Fprintf(os.Stderr, "blob-vet: no analyzer matches -only=%s\n", *only)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
		return 2
	}
	pkgs, err := load.Module(wd, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-vet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not read as a vacuous pass in CI.
		fmt.Fprintf(os.Stderr, "blob-vet: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	bad := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "blob-vet: %s: type error: %v\n", pkg.ImportPath, terr)
		}
		for _, a := range suite {
			pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "blob-vet: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
			for _, d := range pass.Diagnostics() {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "blob-vet: %d issue(s)\n", bad)
		return 1
	}
	return 0
}

func selectAnalyzers(suite []*blobvet.Analyzer, only string) []*blobvet.Analyzer {
	wanted := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		wanted[strings.TrimSpace(n)] = true
	}
	var out []*blobvet.Analyzer
	for _, a := range suite {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
