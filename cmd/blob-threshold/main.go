// blob-threshold extracts GPU offload thresholds from GPU-BLOB CSV files —
// the Go equivalent of the artifact's calculateOffloadThreshold.py. It is
// used for LUMI-style split runs where the CPU and GPU sides were produced
// by separate builds: pass the CPU CSV and the GPU CSV for the same problem
// type (or a single combined/concatenated CSV) and it joins the rows on
// problem size and reruns the §III-D detector per transfer strategy.
//
// Usage:
//
//	blob-threshold cpu.csv gpu.csv
//	blob-threshold combined.csv
//
// It also reads the sweep checkpoints written by gpu-blob
// -checkpoint-dir: -checkpoint prints the provisional per-strategy
// thresholds of an interrupted sweep, computed from the completed
// samples only:
//
//	blob-threshold -checkpoint out/sweep-1a2b3c4d5e6f7a8b.json
//
// With -system it runs a model-driven sweep itself instead of reading
// CSVs: the named system's timing models are swept across the problem
// and the per-strategy thresholds printed directly. -model selects the
// timing model — "roofline" (default, the analytic occupancy ramps) or
// "blackbox" (the committed measured-efficiency tables under
// bench_data/):
//
//	blob-threshold -system isambard-ai -kernel gemm -prec f32
//	blob-threshold -system lumi -kernel gemv -model blackbox -d 8192
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-threshold:", err)
		os.Exit(1)
	}
}

func run() error {
	checkpoint := flag.String("checkpoint", "", "sweep checkpoint file (from gpu-blob -checkpoint-dir): print its partial thresholds instead of reading CSVs")
	system := flag.String("system", "", "run a model-driven sweep on this system instead of reading CSVs (dawn, lumi, isambard-ai, ...)")
	kernel := flag.String("kernel", "gemm", "sweep mode: kernel to sweep (gemm or gemv)")
	problem := flag.String("problem", "square", "sweep mode: problem shape")
	prec := flag.String("prec", "f32", "sweep mode: precision (f32 or f64)")
	model := flag.String("model", "roofline", "sweep mode: timing model (roofline or blackbox)")
	maxDim := flag.Int("d", 4096, "sweep mode: maximum size parameter")
	step := flag.Int("step", 1, "sweep mode: size parameter step")
	iters := flag.Int("i", 8, "sweep mode: iterations per timed call group")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: blob-threshold <cpu.csv> [gpu.csv ...]")
		fmt.Fprintln(os.Stderr, "       blob-threshold -checkpoint <sweep-*.json>")
		fmt.Fprintln(os.Stderr, "       blob-threshold -system <name> [-kernel gemm|gemv] [-problem square] [-prec f32|f64] [-model roofline|blackbox] [-d N] [-step N] [-i N]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *checkpoint != "" {
		return printCheckpoint(*checkpoint)
	}
	if *system != "" {
		return runModelSweep(*system, *kernel, *problem, *prec, *model, *maxDim, *step, *iters)
	}
	if flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("need at least one CSV file")
	}
	var rows []csvio.Row
	for _, path := range flag.Args() {
		r, err := csvio.ReadFile(path)
		if err != nil {
			return err
		}
		rows = append(rows, r...)
	}
	if len(rows) == 0 {
		return fmt.Errorf("no data rows found")
	}
	// Group by (kernel, problem) so concatenated multi-problem inputs work.
	type group struct{ kernel, problem, desc string }
	byGroup := map[group][]csvio.Row{}
	for _, r := range rows {
		g := group{r.Kernel, r.Problem, r.Desc}
		byGroup[g] = append(byGroup[g], r)
	}
	groups := make([]group, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].kernel != groups[b].kernel {
			return groups[a].kernel < groups[b].kernel
		}
		return groups[a].problem < groups[b].problem
	})
	for _, g := range groups {
		th, err := csvio.Thresholds(byGroup[g])
		if err != nil {
			return err
		}
		strategies := make([]string, 0, len(th))
		for s := range th {
			strategies = append(strategies, s)
		}
		sort.Strings(strategies)
		fmt.Printf("%s %s (%s):\n", g.kernel, g.problem, g.desc)
		if len(strategies) == 0 {
			fmt.Println("  no GPU rows found (is this a CPU-only CSV? pass the GPU CSV too)")
			continue
		}
		for _, s := range strategies {
			fmt.Printf("  %-7s %s\n", s, th[s])
		}
	}
	return nil
}

// runModelSweep sweeps the named system's timing models across one
// problem and prints the per-strategy thresholds — the same detector the
// CSV-join path runs, but fed by the models instead of recorded runs.
// Validation is off: the sweep answers from timing models, so there are
// no numerics to check.
func runModelSweep(system, kernel, problem, prec, model string, maxDim, step, iters int) error {
	sys, err := systems.ByName(system)
	if err != nil {
		return err
	}
	kk, err := core.ParseKernelKind(kernel)
	if err != nil {
		return err
	}
	pt, err := core.FindProblem(kk, problem)
	if err != nil {
		return err
	}
	pr, err := core.ParsePrecision(prec)
	if err != nil {
		return err
	}
	mk, err := core.ParseModelKind(model)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(iters)
	cfg.MaxDim = maxDim
	cfg.Step = step
	cfg.Model = mk
	cfg.Validate.Enabled = false
	ser, err := core.RunProblem(context.Background(), sys, pt, pr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s %s %s (%s), model=%s, %d samples:\n",
		sys.Name, strings.ToLower(kk.String()), pt.Name, pt.Desc, mk, len(ser.Samples))
	for _, st := range xfer.Strategies {
		fmt.Printf("  %-7s %s\n", st, ser.Thresholds[st])
	}
	return nil
}

// printCheckpoint reports the provisional thresholds of an interrupted
// sweep from its checkpoint file. They are marked provisional because a
// CPU win at a larger, not-yet-swept size would move them.
func printCheckpoint(path string) error {
	cp, err := core.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s: %s %s %s, %d samples completed, next size parameter %d\n",
		path, cp.System, cp.Problem, cp.Precision, len(cp.Samples), cp.NextP)
	th := cp.PartialThresholds()
	fmt.Println("provisional thresholds (completed samples only):")
	for _, st := range xfer.Strategies {
		fmt.Printf("  %-7s %s\n", st, th[st])
	}
	return nil
}
