// blob-threshold extracts GPU offload thresholds from GPU-BLOB CSV files —
// the Go equivalent of the artifact's calculateOffloadThreshold.py. It is
// used for LUMI-style split runs where the CPU and GPU sides were produced
// by separate builds: pass the CPU CSV and the GPU CSV for the same problem
// type (or a single combined/concatenated CSV) and it joins the rows on
// problem size and reruns the §III-D detector per transfer strategy.
//
// Usage:
//
//	blob-threshold cpu.csv gpu.csv
//	blob-threshold combined.csv
//
// It also reads the sweep checkpoints written by gpu-blob
// -checkpoint-dir: -checkpoint prints the provisional per-strategy
// thresholds of an interrupted sweep, computed from the completed
// samples only:
//
//	blob-threshold -checkpoint out/sweep-1a2b3c4d5e6f7a8b.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/sim/xfer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-threshold:", err)
		os.Exit(1)
	}
}

func run() error {
	checkpoint := flag.String("checkpoint", "", "sweep checkpoint file (from gpu-blob -checkpoint-dir): print its partial thresholds instead of reading CSVs")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: blob-threshold <cpu.csv> [gpu.csv ...]")
		fmt.Fprintln(os.Stderr, "       blob-threshold -checkpoint <sweep-*.json>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *checkpoint != "" {
		return printCheckpoint(*checkpoint)
	}
	if flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("need at least one CSV file")
	}
	var rows []csvio.Row
	for _, path := range flag.Args() {
		r, err := csvio.ReadFile(path)
		if err != nil {
			return err
		}
		rows = append(rows, r...)
	}
	if len(rows) == 0 {
		return fmt.Errorf("no data rows found")
	}
	// Group by (kernel, problem) so concatenated multi-problem inputs work.
	type group struct{ kernel, problem, desc string }
	byGroup := map[group][]csvio.Row{}
	for _, r := range rows {
		g := group{r.Kernel, r.Problem, r.Desc}
		byGroup[g] = append(byGroup[g], r)
	}
	groups := make([]group, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].kernel != groups[b].kernel {
			return groups[a].kernel < groups[b].kernel
		}
		return groups[a].problem < groups[b].problem
	})
	for _, g := range groups {
		th, err := csvio.Thresholds(byGroup[g])
		if err != nil {
			return err
		}
		strategies := make([]string, 0, len(th))
		for s := range th {
			strategies = append(strategies, s)
		}
		sort.Strings(strategies)
		fmt.Printf("%s %s (%s):\n", g.kernel, g.problem, g.desc)
		if len(strategies) == 0 {
			fmt.Println("  no GPU rows found (is this a CPU-only CSV? pass the GPU CSV too)")
			continue
		}
		for _, s := range strategies {
			fmt.Printf("  %-7s %s\n", s, th[s])
		}
	}
	return nil
}

// printCheckpoint reports the provisional thresholds of an interrupted
// sweep from its checkpoint file. They are marked provisional because a
// CPU win at a larger, not-yet-swept size would move them.
func printCheckpoint(path string) error {
	cp, err := core.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint %s: %s %s %s, %d samples completed, next size parameter %d\n",
		path, cp.System, cp.Problem, cp.Precision, len(cp.Samples), cp.NextP)
	th := cp.PartialThresholds()
	fmt.Println("provisional thresholds (completed samples only):")
	for _, st := range xfer.Strategies {
		fmt.Printf("  %-7s %s\n", st, th[st])
	}
	return nil
}
