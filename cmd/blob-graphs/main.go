// blob-graphs renders GFLOP/s performance graphs from GPU-BLOB CSV files —
// the Go equivalent of the artifact's createGflopsGraphs.py. Given a CSV
// directory (or individual files), it produces one chart per (kernel,
// problem type): an ASCII chart on stdout and, with -svg, an SVG file next
// to the input.
//
// Usage:
//
//	blob-graphs results/
//	blob-graphs -svg -out graphs/ results/sgemm_square.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/csvio"
	"repro/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-graphs:", err)
		os.Exit(1)
	}
}

func run() error {
	svg := flag.Bool("svg", false, "also write an SVG per chart")
	outDir := flag.String("out", "", "directory for SVG output (default: alongside input)")
	width := flag.Int("width", 100, "ASCII chart width")
	height := flag.Int("height", 24, "ASCII chart height")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: blob-graphs [flags] <csv-file-or-dir ...>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		return fmt.Errorf("need a CSV file or directory")
	}
	var files []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			return err
		}
		if info.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "*.csv"))
			if err != nil {
				return err
			}
			sort.Strings(matches)
			files = append(files, matches...)
		} else {
			files = append(files, arg)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no CSV files found")
	}
	for _, f := range files {
		if err := renderFile(f, *svg, *outDir, *width, *height); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
	}
	return nil
}

func renderFile(path string, svg bool, outDir string, width, height int) error {
	rows, err := csvio.ReadFile(path)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("empty CSV")
	}
	// One curve per (device, strategy, library).
	type curveKey struct{ device, strategy, library string }
	curves := map[curveKey]*plot.Curve{}
	var order []curveKey
	maxDim := func(r csvio.Row) float64 {
		m := r.M
		if r.N > m {
			m = r.N
		}
		if r.K > m {
			m = r.K
		}
		return float64(m)
	}
	for _, r := range rows {
		k := curveKey{r.Device, r.Strategy, r.Library}
		c, ok := curves[k]
		if !ok {
			label := r.Device
			if r.Strategy != "" {
				label += " " + r.Strategy
			}
			label += " (" + r.Library + ")"
			c = &plot.Curve{Label: label}
			curves[k] = c
			order = append(order, k)
		}
		c.X = append(c.X, maxDim(r))
		c.Y = append(c.Y, r.Gflops)
	}
	first := rows[0]
	ch := plot.Chart{
		Title:  fmt.Sprintf("%s %s (%s) on %s, %d iteration(s)", first.Kernel, first.Problem, first.Desc, first.System, first.Iterations),
		XLabel: "largest dimension",
		YLabel: "GFLOP/s",
		LogY:   true,
	}
	for _, k := range order {
		c := curves[k]
		plot.SortByX(c)
		ch.Curves = append(ch.Curves, plot.Downsample(*c, 160))
	}
	fmt.Print(ch.ASCII(width, height))
	fmt.Println()
	if svg {
		dir := outDir
		if dir == "" {
			dir = filepath.Dir(path)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		base := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)) + ".svg"
		if err := os.WriteFile(filepath.Join(dir, base), []byte(ch.SVG(800, 480)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, base))
	}
	return nil
}
