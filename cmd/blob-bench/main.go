// blob-bench runs the repository's standardized benchmark suite and
// manages the machine-readable BENCH_<tag>.json artifacts it produces —
// the measurement counterpart of the paper's §III-C methodology applied
// to this codebase itself (interleaved repetitions, discarded warm-up,
// exact FLOP bookkeeping).
//
// Usage:
//
//	blob-bench                               # full suite -> BENCH_dev.json
//	blob-bench -tag baseline                 # -> BENCH_baseline.json
//	blob-bench -o out.json -reps 20          # explicit output and repetitions
//	blob-bench -smoke                        # tiny sizes, 1 repetition (CI gate)
//	blob-bench -run 'blas/gemm'              # only matching cases
//	blob-bench -list                         # print the suite and exit
//	blob-bench -compare OLD.json NEW.json    # regression gate
//
// The compare mode matches cases by name, classifies each median delta
// against a noise band (-threshold, default 15%), and exits non-zero when
// any case regressed beyond the band or disappeared — scripts/verify.sh
// and PR reviews use it to hold the ROADMAP's "fast as the hardware
// allows" line between BENCH_baseline.json and a fresh run.
//
// Exit status: 0 clean, 1 regression (compare mode), 2 operational error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"

	"repro/internal/benchmark"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		tag       = flag.String("tag", "dev", "artifact tag; default output is BENCH_<tag>.json")
		out       = flag.String("o", "", "output path (overrides the tag-derived name)")
		reps      = flag.Int("reps", 0, "recorded repetitions per case (default 10, smoke 1)")
		warmup    = flag.Int("warmup", 0, "discarded warm-up repetitions (0 = default: 2 full / 0 smoke; negative forces none)")
		smoke     = flag.Bool("smoke", false, "tiny size ladder and one repetition: the CI smoke gate")
		runRe     = flag.String("run", "", "regexp selecting case names to run")
		list      = flag.Bool("list", false, "print the suite's case names and exit")
		compare   = flag.Bool("compare", false, "compare two artifacts: blob-bench -compare old.json new.json")
		threshold = flag.Float64("threshold", benchmark.DefaultNoiseThreshold,
			"relative noise band for -compare; deltas beyond it are regressions/improvements")
		quiet = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *compare {
		return runCompare(flag.Args(), *threshold)
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "blob-bench: positional arguments are only valid with -compare")
		return 2
	}

	opt := benchmark.Options{Repetitions: *reps, Warmup: *warmup, Smoke: *smoke}
	if *runRe != "" {
		re, err := regexp.Compile(*runRe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blob-bench: bad -run regexp: %v\n", err)
			return 2
		}
		opt.Filter = re
	}
	cases := benchmark.DefaultSuite(opt)
	if *list {
		for _, c := range cases {
			fmt.Printf("%-10s %s\n", c.Group, c.Name)
		}
		return 0
	}

	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := benchmark.Run(ctx, cases, opt, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-bench: %v\n", err)
		return 2
	}
	art := benchmark.NewArtifact(*tag, opt, results)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *tag)
	}
	if err := art.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "blob-bench: %v\n", err)
		return 2
	}
	for _, c := range results {
		if c.GFlops > 0 {
			fmt.Printf("%-44s %14.0f ns/op  %8.2f GFLOP/s\n", c.Name, c.NsPerOp, c.GFlops)
		} else {
			fmt.Printf("%-44s %14.0f ns/op  p99 %12.0f ns\n", c.Name, c.NsPerOp, c.P99Ns)
		}
	}
	fmt.Printf("wrote %s (%d cases)\n", path, len(results))
	return 0
}

func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "blob-bench: -compare needs exactly two artifacts: old.json new.json")
		return 2
	}
	oldArt, err := benchmark.ReadArtifact(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-bench: %v\n", err)
		return 2
	}
	newArt, err := benchmark.ReadArtifact(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-bench: %v\n", err)
		return 2
	}
	rep, err := benchmark.Compare(oldArt, newArt, threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blob-bench: %v\n", err)
		return 2
	}
	rep.WriteText(os.Stdout)
	if rep.Regressed() {
		return 1
	}
	return 0
}
