// blob-gateway routes advisor traffic across a blob-served cluster.
//
// The gateway holds no shard and computes no sweeps. It keeps the same
// consistent-hash ring the replicas keep (a pure function of the
// healthy member set — DESIGN.md §16), derives each request's route key
// with the identical canonical identity the replicas cache under, and
// proxies the request byte-transparently to the ring owner. When the
// owner is unreachable it fails over to the next member clockwise; a
// per-peer circuit breaker makes a dead replica cost one failed dial,
// not one per request. Replica-level answers — including 4xx rejections
// and Retry-After backpressure — are relayed verbatim and never count
// against a peer's health.
//
// Endpoints:
//
//	POST /v1/threshold  routed by the threshold's canonical route key
//	POST /v1/dispatch   routed by target system
//	POST /v1/advise     routed by request digest (stateless spread)
//	POST /v0/advise     deprecated alias, same routing as /v1/advise
//	POST /cluster/v1/hello  membership messages (hello/leave/heartbeat)
//	GET  /healthz       gateway liveness
//	GET  /readyz        ready iff at least one replica is in the ring
//	GET  /metrics       routing metrics (per-peer routed counts,
//	                    reroutes, breaker skips, no-peer rejections)
//
// Usage:
//
//	blob-gateway -addr :8090 \
//	    -peers rep-0=http://10.0.0.1:8080,rep-1=http://10.0.0.2:8080
//
// -heartbeat starts the background health loop probing each replica's
// /readyz; a replica that misses -down-after consecutive probes leaves
// the ring (its shards fall through to the next owner) and rejoins on
// its first success. A draining replica leaves faster: its leave
// message removes it from the ring before its listener closes.
//
// SIGINT/SIGTERM shuts the gateway down; it holds no state worth
// draining beyond in-flight proxied requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		peers      = flag.String("peers", "", "cluster roster: comma-separated name=url pairs (required)")
		vnodes     = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per member on the hash ring")
		replicas   = flag.Int("failover", 3, "ring owners to try per request (owner first, then clockwise)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "health probe period (0 disables the background loop)")
		downAfter  = flag.Int("down-after", 2, "consecutive failed probes before a replica leaves the ring")
		probeTO    = flag.Duration("probe-timeout", time.Second, "deadline for one /readyz health probe")
		maxDim     = flag.Int("max-dim", 4096, "largest sweep max_dim used to derive threshold route keys (match the replicas' -max-dim)")
		hedge      = flag.Bool("hedge", false, "race a delayed second attempt to the next ring owner on idempotent routes (threshold/advise; never dispatch)")
		hedgeAfter = flag.Duration("hedge-after", 0, "fixed hedge delay; 0 adapts to the p99 of recent proxy latencies, clamped to [-hedge-min, -hedge-max]")
		hedgeMin   = flag.Duration("hedge-min", 2*time.Millisecond, "floor for the adaptive hedge delay")
		hedgeMax   = flag.Duration("hedge-max", 500*time.Millisecond, "ceiling for the adaptive hedge delay (also used while the latency window is cold)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	members, err := cluster.ParseMemberList(*peers)
	if err != nil {
		return fmt.Errorf("bad -peers: %w", err)
	}
	if len(members) == 0 {
		return errors.New("-peers is required: a gateway with no replicas routes nothing")
	}

	pool, err := cluster.NewGatewayPool(cluster.Options{
		Members:      members,
		VNodes:       *vnodes,
		DownAfter:    *downAfter,
		Heartbeat:    *heartbeat,
		ProbeTimeout: *probeTO,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	gw := cluster.NewGateway(pool, cluster.GatewayOptions{
		MaxSweepDim: *maxDim,
		Replication: *replicas,
		Logger:      logger,
		Hedge:       *hedge,
		HedgeAfter:  *hedgeAfter,
		HedgeMin:    *hedgeMin,
		HedgeMax:    *hedgeMax,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	pool.Start(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("gateway listening", "addr", *addr, "replicas", len(members), "failover", *replicas)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()

	logger.Info("gateway draining", "timeout", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("gateway drained")
	return nil
}
