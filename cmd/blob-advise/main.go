// blob-advise reads a trace of an application's BLAS call groups and
// reports, per HPC system, which calls are worth offloading to the GPU and
// what the end-to-end gain would be — the §III-D workflow as a command.
//
// Trace format (CSV, '#' comments allowed):
//
//	kernel,m,n,k,precision,count,movement
//	gemm,2048,2048,64,f64,32,once
//	gemv,4096,4096,0,f32,128,always
//
// Usage:
//
//	blob-advise trace.csv
//	blob-advise -system lumi trace.csv
//	blob-advise -model blackbox trace.csv
//
// -model selects the timing model: "roofline" (default, the analytic
// occupancy ramps) or "blackbox" (the committed measured-efficiency
// tables under bench_data/, interpolated per kernel/precision/shape
// class).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	benchdata "repro/bench_data"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sim/systems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-advise:", err)
		os.Exit(1)
	}
}

func run() error {
	systemName := flag.String("system", "", "advise for one system only (default: all three)")
	modelName := flag.String("model", "roofline", "timing model: roofline or blackbox")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: blob-advise [flags] <trace.csv>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("need exactly one trace file")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	calls, err := advisor.ReadTrace(f)
	if err != nil {
		return err
	}
	if len(calls) == 0 {
		return fmt.Errorf("trace is empty")
	}

	model, err := core.ParseModelKind(*modelName)
	if err != nil {
		return err
	}

	var syss []systems.System
	if *systemName == "" {
		syss = systems.All()
	} else {
		sys, err := systems.ByName(*systemName)
		if err != nil {
			return err
		}
		syss = []systems.System{sys}
	}
	if model == core.ModelBlackbox {
		set, err := benchdata.Default()
		if err != nil {
			return err
		}
		for i := range syss {
			syss[i] = syss[i].WithEffTables(set)
		}
	}

	verdicts, err := advisor.AdviseAll(syss, calls)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Call\tCount\tMovement\tSystem\tCPU\tGPU\tAdvice\tSpeedup\n")
	for _, v := range verdicts {
		c := v.Call
		shape := fmt.Sprintf("%s{%d,%d,%d}", c.KernelName(), c.M, c.N, c.K)
		if c.Kernel == core.GEMV {
			shape = fmt.Sprintf("%s{%d,%d}", c.KernelName(), c.M, c.N)
		}
		advice := "CPU"
		if v.Offload {
			advice = "GPU"
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%s\t%s\t%s\t%s\t%.2fx\n",
			shape, c.Count, c.Strategy, v.System,
			fmtDur(v.CPUSeconds), fmtDur(v.GPUSeconds), advice, v.Speedup)
	}
	tw.Flush()

	fmt.Println("\ntrace totals (per-call best-device placement vs single-device):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tall-CPU\tall-GPU\tmixed\toffloaded groups\tmixed vs all-CPU\n")
	for _, s := range advisor.Summarize(verdicts) {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d/%d\t%.2fx\n",
			s.System, fmtDur(s.AllCPU), fmtDur(s.AllGPU), fmtDur(s.Mixed),
			s.OffloadedCalls, len(calls), s.AllCPU/s.Mixed)
	}
	tw.Flush()
	return nil
}

func fmtDur(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2f s", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2f ms", sec*1e3)
	default:
		return fmt.Sprintf("%.1f µs", sec*1e6)
	}
}
