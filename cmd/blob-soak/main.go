// blob-soak is the deterministic overload/soak harness for the blob-served
// service. It stands up the service in-process, drives scripted load
// profiles against it with seeded closed-loop clients, and asserts the
// overload SLOs that the admission-control layer (DESIGN.md §12) exists to
// uphold:
//
//   - the fast tiers answer fast: the p99 latency over shed responses and
//     cache hits stays under the SLO even at 4x sweep capacity — immediate
//     paths are never queued behind cold sweeps;
//   - the service sheds instead of melting: every rejection carries one of
//     the known machine-readable reasons, and some work still completes;
//   - nothing leaks: after each profile drains, the goroutine count is
//     back at its pre-profile baseline;
//   - chaos does not corrupt: with a seeded fault plan armed, every
//     threshold verdict the service does serve is byte-identical to the
//     fault-free reference.
//
// Profiles (select with -profiles, comma-separated):
//
//	ramp     client count doubles phase by phase up to 4x sweep capacity
//	spike    idle baseline, then a sudden 4x burst
//	sustain  4x capacity for the whole window, AIMD limiter engaged
//	chaos    sustain plus a seeded fault-injection plan on the backends
//
// The run writes a schema-versioned SOAK_<tag>.json artifact (see
// EXPERIMENTS.md) and exits non-zero when any profile violates its SLOs:
//
//	blob-soak -seed 1 -short -tag ci
//	blob-soak -profiles sustain,chaos -workers 2 -o /tmp/soak.json
//
// The request schedule is deterministic under -seed; wall-clock latencies
// are measured, so the artifact records them but the pass verdict depends
// only on the SLO ceilings.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/sim/systems"
)

// SchemaVersion tags the artifact format; readers refuse to interpret a
// version they do not know.
const SchemaVersion = "blob-soak/v1"

// The SLO ceilings. fastP99SLO bounds the immediate tiers (sheds and
// cache hits); goroutineTolerance absorbs runtime bookkeeping noise on
// top of the pre-profile baseline.
const (
	fastP99SLO         = 250 * time.Millisecond
	maxShedRate        = 0.99
	goroutineTolerance = 8
)

// knownReasons are the only rejection reasons a healthy overloaded
// service may emit; anything else is a bug, not load shedding.
var knownReasons = map[string]bool{
	"queue_full": true, "over_quota": true, "deadline_budget": true,
	"breaker_open": true, "shutting_down": true, "deadline_exceeded": true,
	"abandoned": true,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-soak:", err)
		os.Exit(1)
	}
}

// phase is one step of a profile's load schedule.
type phase struct {
	clients  int
	fraction float64 // of the profile window
}

// profile is one scripted overload scenario.
type profile struct {
	name   string
	phases []phase
	faults bool // arm the chaos fault plan
	fair   bool // enable per-client fair share
	aimd   bool // enable the AIMD target latency
}

// profiles returns the scripted scenarios for a given worker count; 4x
// capacity is the saturation point the acceptance criteria name.
func allProfiles(workers int) []profile {
	burst := 4 * workers
	return []profile{
		{name: "ramp", phases: []phase{
			{1, 0.25}, {workers, 0.25}, {2 * workers, 0.25}, {burst, 0.25}}},
		{name: "spike", fair: true, phases: []phase{{1, 0.5}, {burst, 0.5}}},
		{name: "sustain", aimd: true, phases: []phase{{burst, 1}}},
		{name: "chaos", faults: true, phases: []phase{{burst, 1}}},
	}
}

// shot is one recorded request outcome.
type shot struct {
	status  int
	reason  string
	cached  bool
	latency time.Duration
	dim     int
	// thresholds is the canonical verdict rendering for 200 responses —
	// the chaos profile compares these against the fault-free reference.
	thresholds string
}

// ProfileResult is the artifact's per-profile record.
type ProfileResult struct {
	Name       string         `json:"name"`
	DurationMs float64        `json:"duration_ms"`
	PeakLoad   int            `json:"peak_clients"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Cached     int            `json:"cached"`
	Sheds      map[string]int `json:"sheds,omitempty"`
	Statuses   map[string]int `json:"statuses"`
	// FastP99Ms is the p99 latency over the immediate tiers: admission
	// sheds and cache hits. The SLO applies to this number.
	FastP99Ms          float64  `json:"fast_p99_ms"`
	ShedRate           float64  `json:"shed_rate"`
	GoroutineBaseline  int      `json:"goroutine_baseline"`
	GoroutineAfter     int      `json:"goroutine_after"`
	VerdictDigest      string   `json:"verdict_digest,omitempty"`
	ReferenceDigest    string   `json:"reference_digest,omitempty"`
	Violations         []string `json:"violations,omitempty"`
	Pass               bool     `json:"pass"`
}

// Artifact is one SOAK_<tag>.json.
type Artifact struct {
	SchemaVersion string          `json:"schema_version"`
	GeneratedAt   time.Time       `json:"generated_at"`
	Host          benchmark.Host  `json:"host"`
	Seed          int64           `json:"seed"`
	Short         bool            `json:"short"`
	Workers       int             `json:"workers"`
	SweepCostMs   float64         `json:"sweep_cost_ms"`
	FastP99SLOMs  float64         `json:"fast_p99_slo_ms"`
	MaxShedRate   float64         `json:"max_shed_rate"`
	Profiles      []ProfileResult `json:"profiles"`
	Pass          bool            `json:"pass"`
}

func run() error {
	var (
		seed      = flag.Int64("seed", 1, "seed for the request schedule (deterministic per seed)")
		sel       = flag.String("profiles", "ramp,spike,sustain,chaos", "comma-separated profiles to run")
		short     = flag.Bool("short", false, "short windows (~2s per profile): the verify-gate mode")
		tag       = flag.String("tag", "dev", "artifact tag; default output is SOAK_<tag>.json")
		out       = flag.String("o", "", "output path (overrides the tag-derived name)")
		workers   = flag.Int("workers", 2, "sweep worker count of the service under test")
		sweepCost = flag.Duration("sweep-cost", 20*time.Millisecond, "artificial cost added to every sweep (creates saturation)")
		planPath  = flag.String("fault-plan", "", "fault plan for the chaos profile (default: built-in transient-fault plan)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	window := 8 * time.Second
	if *short {
		window = 2 * time.Second
	}
	plan, err := chaosPlan(*planPath)
	if err != nil {
		return err
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*sel, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	art := Artifact{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC(),
		Host:          benchmark.CurrentHost(),
		Seed:          *seed,
		Short:         *short,
		Workers:       *workers,
		SweepCostMs:   float64(*sweepCost) / float64(time.Millisecond),
		FastP99SLOMs:  float64(fastP99SLO) / float64(time.Millisecond),
		MaxShedRate:   maxShedRate,
		Pass:          true,
	}
	ran := map[string]bool{}
	for _, p := range allProfiles(*workers) {
		if !selected[p.name] {
			continue
		}
		ran[p.name] = true
		if !*quiet {
			fmt.Fprintf(os.Stderr, "soak: profile %-8s window %s peak %d clients\n",
				p.name, window, p.phases[len(p.phases)-1].clients)
		}
		res := runProfile(p, *workers, *seed, window, *sweepCost, plan)
		if !res.Pass {
			art.Pass = false
		}
		art.Profiles = append(art.Profiles, res)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "soak: profile %-8s %s  requests=%d ok=%d shed_rate=%.2f fast_p99=%.1fms\n",
				res.Name, passStr(res.Pass), res.Requests, res.OK, res.ShedRate, res.FastP99Ms)
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "soak:   violation: %s\n", v)
			}
		}
	}
	for name := range selected {
		if name != "" && !ran[name] {
			return fmt.Errorf("unknown profile %q (have ramp, spike, sustain, chaos)", name)
		}
	}
	if len(art.Profiles) == 0 {
		return fmt.Errorf("no profiles selected")
	}

	path := *out
	if path == "" {
		path = "SOAK_" + *tag + ".json"
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "soak: wrote %s (%s)\n", path, passStr(art.Pass))
	}
	if !art.Pass {
		return fmt.Errorf("SLO violations (see %s)", path)
	}
	return nil
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// chaosPlan loads the operator's plan or falls back to the built-in one:
// transient GPU faults only, which the sweep retry budget absorbs without
// changing any result — the point of the chaos profile is proving
// verdicts survive faults, not manufacturing failures.
func chaosPlan(path string) (*faultinject.Plan, error) {
	if path != "" {
		return faultinject.LoadPlan(path)
	}
	// A sweep makes thousands of backend calls, so the per-call fault
	// probability is kept small enough that a 5-attempt retry budget
	// absorbs every transient (0.02^5 per call is negligible even across
	// a full soak window).
	return faultinject.ParsePlan([]byte(
		`{"seed": 7, "rules": [{"backend": "gpu", "probability": 0.02, "kind": "transient"}]}`))
}

// The sweep-size working set: randomDim draws from ~500 distinct sweep
// sizes — wide enough that the result cache (256 entries) cannot absorb
// the load and cold sweeps keep arriving for the admission layer to
// arbitrate. hotDim sits outside the random range; it is warmed before
// the load starts and must keep answering from the cache throughout.
func randomDim(rng *rand.Rand) int { return 24 + 2*rng.Intn(500) }

const hotDim = 2048

func thresholdBody(dim int) string {
	return fmt.Sprintf(`{"system":"dawn","kernel":"gemv","precision":"f64","config":{"max_dim":%d}}`, dim)
}

// runProfile stands up a fresh server, drives the profile's phases, and
// scores the outcome against the SLOs.
func runProfile(p profile, workers int, seed int64, window time.Duration, sweepCost time.Duration, plan *faultinject.Plan) ProfileResult {
	res := ProfileResult{
		Name:     p.name,
		PeakLoad: p.phases[len(p.phases)-1].clients,
		Sheds:    map[string]int{},
		Statuses: map[string]int{},
		Pass:     true,
	}
	res.GoroutineBaseline = runtime.NumGoroutine()

	opts := service.Options{
		Workers:        workers,
		Queue:          2 * workers,
		RequestTimeout: 2 * time.Second,
		Resilience:     core.Resilience{MaxAttempts: 5},
		Sweep:          costedSweep(sweepCost, nil),
	}
	if p.aimd {
		opts.TargetLatency = sweepCost / 2 // every sweep overshoots: AIMD engages
	}
	if p.fair {
		opts.FairShareRate = 20
		opts.FairShareBurst = 2 * workers
	}
	if p.faults {
		inj := plan.Arm()
		opts.Inject = inj
		opts.Sweep = costedSweep(sweepCost, inj)
	}
	svc := service.New(opts)
	ts := httptest.NewServer(svc.Handler())
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	// Warm the hot cache entry while the service is idle.
	warm, _ := post(client, ts.URL, thresholdBody(hotDim), nil)
	hotWarmed := warm != nil && warm.status == http.StatusOK

	began := time.Now()
	var shots []shot
	for _, ph := range p.phases {
		shots = append(shots, runPhase(client, ts.URL, ph, seed, time.Duration(float64(window)*ph.fraction))...)
	}
	res.DurationMs = float64(time.Since(began)) / float64(time.Millisecond)

	// Drain and count goroutines once everything is torn down.
	ts.Close()
	svc.Close()
	transport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res.GoroutineAfter = runtime.NumGoroutine()
		if res.GoroutineAfter <= res.GoroutineBaseline+goroutineTolerance || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	score(&res, shots, hotWarmed)
	if p.faults {
		verifyVerdicts(&res, shots, workers)
	}
	return res
}

// costedSweep wraps core.Run with an artificial per-sweep cost (so a
// small worker pool saturates at scripted load) and, for the chaos
// profile, the armed fault injector on the sim backends.
func costedSweep(cost time.Duration, inj faultinject.Point) service.SweepFunc {
	return func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		if inj != nil {
			sys.CPU.Inject = inj
			sys.GPU.Inject = inj
		}
		select {
		case <-time.After(cost):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return core.Run(ctx, sys, pts, precs, cfg)
	}
}

// runPhase runs one phase's closed-loop clients and merges their shots.
// Each client derives its own PRNG from the run seed, so the request
// schedule is reproducible per (seed, profile, phase).
func runPhase(client *http.Client, url string, ph phase, seed int64, d time.Duration) []shot {
	stop := time.Now().Add(d)
	var mu sync.Mutex
	var all []shot
	var wg sync.WaitGroup
	for i := 0; i < ph.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
			hdr := map[string]string{"X-API-Key": fmt.Sprintf("client-%d", id)}
			var mine []shot
			for n := 0; time.Now().Before(stop); n++ {
				dim := randomDim(rng)
				if n%7 == 3 {
					dim = hotDim // every client revisits the hot cached entry
				}
				h := hdr
				if n%5 == 4 {
					// A slice of traffic carries a client deadline tighter
					// than the sweep cost: once the p50 estimator warms,
					// these shed deterministically on budget.
					h = map[string]string{"X-API-Key": hdr["X-API-Key"], "X-Deadline-Ms": "10"}
				}
				s, err := post(client, url, thresholdBody(dim), h)
				if err == nil {
					s.dim = dim
					mine = append(mine, *s)
				}
				time.Sleep(2 * time.Millisecond) // think time bounds the spin
			}
			mu.Lock()
			all = append(all, mine...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return all
}

// post issues one threshold request and decodes the outcome.
func post(client *http.Client, url, body string, hdr map[string]string) (*shot, error) {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/threshold", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	began := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	s := &shot{status: resp.StatusCode, latency: time.Since(began)}
	if resp.StatusCode == http.StatusOK {
		var tr struct {
			Cached     bool            `json:"cached"`
			Thresholds json.RawMessage `json:"thresholds"`
		}
		if err := json.Unmarshal(raw, &tr); err == nil {
			s.cached = tr.Cached
			s.thresholds = canonicalJSON(tr.Thresholds)
		}
	} else {
		var eb struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(raw, &eb)
		s.reason = eb.Reason
	}
	return s, nil
}

// canonicalJSON re-marshals a JSON fragment with sorted object keys so
// byte comparison means semantic comparison.
func canonicalJSON(raw json.RawMessage) string {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return string(raw)
	}
	out, err := json.Marshal(v) // maps marshal with sorted keys
	if err != nil {
		return string(raw)
	}
	return string(out)
}

// score aggregates the shots and applies the SLO ceilings.
func score(res *ProfileResult, shots []shot, hotWarmed bool) {
	var fast []time.Duration
	shed := 0
	for _, s := range shots {
		res.Requests++
		res.Statuses[fmt.Sprint(s.status)]++
		switch {
		case s.status == http.StatusOK:
			res.OK++
			if s.cached {
				res.Cached++
				fast = append(fast, s.latency)
			}
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			shed++
			res.Sheds[s.reason]++
			fast = append(fast, s.latency)
		default:
			shed++
			res.Sheds[s.reason]++
		}
	}
	if res.Requests == 0 {
		res.fail("profile produced no requests")
		return
	}
	res.ShedRate = float64(shed) / float64(res.Requests)
	res.FastP99Ms = float64(p99(fast)) / float64(time.Millisecond)

	if !hotWarmed {
		res.fail("hot cache entry failed to warm")
	}
	if res.OK == 0 {
		res.fail("no request completed: total collapse, not load shedding")
	}
	if res.ShedRate > maxShedRate {
		res.fail(fmt.Sprintf("shed rate %.3f above ceiling %.2f", res.ShedRate, maxShedRate))
	}
	if d := time.Duration(res.FastP99Ms * float64(time.Millisecond)); d > fastP99SLO {
		res.fail(fmt.Sprintf("fast-tier p99 %.1fms above SLO %s", res.FastP99Ms, fastP99SLO))
	}
	for reason, n := range res.Sheds {
		if !knownReasons[reason] {
			res.fail(fmt.Sprintf("%d sheds with unknown reason %q", n, reason))
		}
	}
	if res.GoroutineAfter > res.GoroutineBaseline+goroutineTolerance {
		res.fail(fmt.Sprintf("goroutine leak: %d after drain, baseline %d",
			res.GoroutineAfter, res.GoroutineBaseline))
	}
}

func (r *ProfileResult) fail(msg string) {
	r.Pass = false
	r.Violations = append(r.Violations, msg)
}

// p99 returns the 99th-percentile duration (0 for an empty set).
func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// verifyVerdicts proves chaos serves no corrupted result: every verdict
// the chaos profile returned must be byte-identical to a fault-free
// reference sweep of the same dimension. Both digests land in the
// artifact so two runs are comparable at a glance.
func verifyVerdicts(res *ProfileResult, shots []shot, workers int) {
	verdicts := map[int]string{}
	for _, s := range shots {
		if s.status != http.StatusOK || s.thresholds == "" {
			continue
		}
		if prev, ok := verdicts[s.dim]; ok && prev != s.thresholds {
			res.fail(fmt.Sprintf("dim %d served two different verdicts under chaos", s.dim))
		}
		verdicts[s.dim] = s.thresholds
	}
	if len(verdicts) == 0 {
		res.fail("chaos profile completed no verdicts to verify")
		return
	}

	// The fault-free reference: a quiet server, sequential requests.
	svc := service.New(service.Options{Workers: workers, Sweep: costedSweep(0, nil)})
	ts := httptest.NewServer(svc.Handler())
	transport := &http.Transport{}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	reference := map[int]string{}
	dims := make([]int, 0, len(verdicts))
	for dim := range verdicts {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		s, err := post(client, ts.URL, thresholdBody(dim), nil)
		if err != nil || s.status != http.StatusOK {
			res.fail(fmt.Sprintf("reference sweep for dim %d failed", dim))
			continue
		}
		reference[dim] = s.thresholds
		if verdicts[dim] != s.thresholds {
			res.fail(fmt.Sprintf("dim %d: chaos verdict differs from fault-free reference", dim))
		}
	}
	ts.Close()
	svc.Close()
	transport.CloseIdleConnections()

	res.VerdictDigest = digest(verdicts)
	res.ReferenceDigest = digest(reference)
}

// digest is a stable fingerprint of a dim -> verdict map.
func digest(m map[int]string) string {
	dims := make([]int, 0, len(m))
	for d := range m {
		dims = append(dims, d)
	}
	sort.Ints(dims)
	h := sha256.New()
	for _, d := range dims {
		fmt.Fprintf(h, "%d=%s\n", d, m[d])
	}
	return hex.EncodeToString(h.Sum(nil))
}
