// blob-soak is the deterministic overload/soak harness for the blob-served
// service. It stands up the service in-process, drives scripted load
// profiles against it with seeded closed-loop clients, and asserts the
// overload SLOs that the admission-control layer (DESIGN.md §12) exists to
// uphold:
//
//   - the fast tiers answer fast: the p99 latency over shed responses and
//     cache hits stays under the SLO even at 4x sweep capacity — immediate
//     paths are never queued behind cold sweeps;
//   - the service sheds instead of melting: every rejection carries one of
//     the known machine-readable reasons, and some work still completes;
//   - nothing leaks: after each profile drains, the goroutine count is
//     back at its pre-profile baseline;
//   - chaos does not corrupt: with a seeded fault plan armed, every
//     threshold verdict the service does serve is byte-identical to the
//     fault-free reference.
//
// Profiles (select with -profiles, comma-separated):
//
//	ramp     client count doubles phase by phase up to 4x sweep capacity
//	spike    idle baseline, then a sudden 4x burst
//	sustain  4x capacity for the whole window, AIMD limiter engaged
//	chaos    sustain plus a seeded fault-injection plan on the backends
//	dispatch 4x capacity of /v1/dispatch batches: the decision hot path
//	         must stay fast and the shape cache must absorb the repeats
//	cluster  3-replica consistent-hash cluster behind blob-gateway, with
//	         a replica killed and rejoined mid-run: cache hits must scale
//	         ~linearly vs a single node, every verdict must match the
//	         single-node reference byte for byte, and no request may hang
//	         past the deadline budget (DESIGN.md §16)
//	partition the same cluster under a seeded netfault plan instead of a
//	         clean kill: a gateway-side partition/heal/flap schedule, a
//	         permanently slow replica (hedged requests must win), and
//	         truncated/bit-flipped bodies on the direct edges (the client
//	         integrity checks must retry, never believe them); verdict
//	         digests must match an unfaulted replay byte for byte
//	         (DESIGN.md §17)
//
// All traffic flows through pkg/blobclient — the same typed client the
// README documents — so the soak doubles as an end-to-end exercise of the
// v1 envelope contract.
//
// The run writes a schema-versioned SOAK_<tag>.json artifact (see
// EXPERIMENTS.md) and exits non-zero when any profile violates its SLOs:
//
//	blob-soak -seed 1 -short -tag ci
//	blob-soak -profiles sustain,chaos -workers 2 -o /tmp/soak.json
//
// The request schedule is deterministic under -seed; wall-clock latencies
// are measured, so the artifact records them but the pass verdict depends
// only on the SLO ceilings.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/benchmark"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/internal/sim/systems"
	"repro/pkg/blobclient"
)

// SchemaVersion tags the artifact format; readers refuse to interpret a
// version they do not know.
const SchemaVersion = "blob-soak/v1"

// The SLO ceilings. fastP99SLO bounds the immediate tiers (sheds and
// cache hits); goroutineTolerance absorbs runtime bookkeeping noise on
// top of the pre-profile baseline.
const (
	fastP99SLO         = 250 * time.Millisecond
	maxShedRate        = 0.99
	goroutineTolerance = 8
)

// knownReasons are the only rejection reasons a healthy overloaded
// service may emit; anything else is a bug, not load shedding.
var knownReasons = map[string]bool{
	"queue_full": true, "over_quota": true, "deadline_budget": true,
	"breaker_open": true, "shutting_down": true, "deadline_exceeded": true,
	"abandoned": true,
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-soak:", err)
		os.Exit(1)
	}
}

// phase is one step of a profile's load schedule.
type phase struct {
	clients  int
	fraction float64 // of the profile window
}

// profile is one scripted overload scenario.
type profile struct {
	name      string
	phases    []phase
	faults    bool // arm the chaos fault plan
	fair      bool // enable per-client fair share
	aimd      bool // enable the AIMD target latency
	dispatch  bool // drive /v1/dispatch batches instead of threshold sweeps
	clustered bool // N-replica cluster chaos (cluster.go), not a load profile
	partition bool // network-fault cluster chaos (partition.go), not a load profile
}

// profiles returns the scripted scenarios for a given worker count; 4x
// capacity is the saturation point the acceptance criteria name.
func allProfiles(workers int) []profile {
	burst := 4 * workers
	return []profile{
		{name: "ramp", phases: []phase{
			{1, 0.25}, {workers, 0.25}, {2 * workers, 0.25}, {burst, 0.25}}},
		{name: "spike", fair: true, phases: []phase{{1, 0.5}, {burst, 0.5}}},
		{name: "sustain", aimd: true, phases: []phase{{burst, 1}}},
		{name: "chaos", faults: true, phases: []phase{{burst, 1}}},
		{name: "dispatch", dispatch: true, phases: []phase{{burst, 1}}},
		{name: "cluster", clustered: true, phases: []phase{{clusterNodes, 1}}},
		{name: "partition", partition: true, phases: []phase{{partitionNodes, 1}}},
	}
}

// shot is one recorded request outcome.
type shot struct {
	status  int
	reason  string
	cached  bool
	latency time.Duration
	dim     int
	// thresholds is the canonical verdict rendering for 200 responses —
	// the chaos profile compares these against the fault-free reference.
	thresholds string
	// decisions/hits are the dispatch profile's per-batch routing counts.
	decisions int
	hits      int
	// filledFrom names the peer that served this verdict over the
	// cluster's peer-fill path ("" when answered locally).
	filledFrom string
}

// ProfileResult is the artifact's per-profile record.
type ProfileResult struct {
	Name       string         `json:"name"`
	DurationMs float64        `json:"duration_ms"`
	PeakLoad   int            `json:"peak_clients"`
	Requests   int            `json:"requests"`
	OK         int            `json:"ok"`
	Cached     int            `json:"cached"`
	Sheds      map[string]int `json:"sheds,omitempty"`
	Statuses   map[string]int `json:"statuses"`
	// FastP99Ms is the p99 latency over the immediate tiers: admission
	// sheds and cache hits. The SLO applies to this number.
	FastP99Ms         float64 `json:"fast_p99_ms"`
	ShedRate          float64 `json:"shed_rate"`
	GoroutineBaseline int     `json:"goroutine_baseline"`
	GoroutineAfter    int     `json:"goroutine_after"`
	// Decisions/DispatchHits/DispatchHitRate are set by the dispatch
	// profile: total routing decisions, how many the shape cache
	// answered, and their ratio (the profile's warm-cache SLO).
	Decisions       int     `json:"decisions,omitempty"`
	DispatchHits    int     `json:"dispatch_hits,omitempty"`
	DispatchHitRate float64 `json:"dispatch_hit_rate,omitempty"`
	// The cluster profile's chaos-proof numbers: cache-hit rates for the
	// cluster run and the identical single-node schedule, their ratio
	// (the linear-scaling SLO), successful peer cache fills, and the
	// worst request latency observed across the kill/rejoin window.
	ClusterHitRate float64 `json:"cluster_hit_rate,omitempty"`
	SingleHitRate  float64 `json:"single_hit_rate,omitempty"`
	HitScaling     float64 `json:"hit_scaling,omitempty"`
	PeerFills      int     `json:"peer_fills,omitempty"`
	MaxLatencyMs   float64 `json:"max_latency_ms,omitempty"`
	// HedgeWins/FaultsInjected are set by the partition profile: hedged
	// requests the gateway answered from the backup owner, and total
	// faults its netfault injectors fired across the run.
	HedgeWins       int      `json:"hedge_wins,omitempty"`
	FaultsInjected  int      `json:"faults_injected,omitempty"`
	VerdictDigest   string   `json:"verdict_digest,omitempty"`
	ReferenceDigest string   `json:"reference_digest,omitempty"`
	Violations      []string `json:"violations,omitempty"`
	Pass            bool     `json:"pass"`
}

// Artifact is one SOAK_<tag>.json.
type Artifact struct {
	SchemaVersion string          `json:"schema_version"`
	GeneratedAt   time.Time       `json:"generated_at"`
	Host          benchmark.Host  `json:"host"`
	Seed          int64           `json:"seed"`
	Short         bool            `json:"short"`
	Workers       int             `json:"workers"`
	SweepCostMs   float64         `json:"sweep_cost_ms"`
	FastP99SLOMs  float64         `json:"fast_p99_slo_ms"`
	MaxShedRate   float64         `json:"max_shed_rate"`
	Profiles      []ProfileResult `json:"profiles"`
	Pass          bool            `json:"pass"`
}

func run() error {
	var (
		seed      = flag.Int64("seed", 1, "seed for the request schedule (deterministic per seed)")
		sel       = flag.String("profiles", "ramp,spike,sustain,chaos,dispatch,cluster,partition", "comma-separated profiles to run")
		short     = flag.Bool("short", false, "short windows (~2s per profile): the verify-gate mode")
		tag       = flag.String("tag", "dev", "artifact tag; default output is SOAK_<tag>.json")
		out       = flag.String("o", "", "output path (overrides the tag-derived name)")
		workers   = flag.Int("workers", 2, "sweep worker count of the service under test")
		sweepCost = flag.Duration("sweep-cost", 20*time.Millisecond, "artificial cost added to every sweep (creates saturation)")
		planPath  = flag.String("fault-plan", "", "fault plan for the chaos profile (default: built-in transient-fault plan)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	window := 8 * time.Second
	if *short {
		window = 2 * time.Second
	}
	plan, err := chaosPlan(*planPath)
	if err != nil {
		return err
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*sel, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	art := Artifact{
		SchemaVersion: SchemaVersion,
		GeneratedAt:   time.Now().UTC(),
		Host:          benchmark.CurrentHost(),
		Seed:          *seed,
		Short:         *short,
		Workers:       *workers,
		SweepCostMs:   float64(*sweepCost) / float64(time.Millisecond),
		FastP99SLOMs:  float64(fastP99SLO) / float64(time.Millisecond),
		MaxShedRate:   maxShedRate,
		Pass:          true,
	}
	ran := map[string]bool{}
	for _, p := range allProfiles(*workers) {
		if !selected[p.name] {
			continue
		}
		ran[p.name] = true
		if !*quiet {
			fmt.Fprintf(os.Stderr, "soak: profile %-8s window %s peak %d clients\n",
				p.name, window, p.phases[len(p.phases)-1].clients)
		}
		var res ProfileResult
		if p.clustered {
			res = runClusterProfile(*seed, *short)
		} else if p.partition {
			res = runPartitionProfile(*seed, *short)
		} else {
			res = runProfile(p, *workers, *seed, window, *sweepCost, plan)
		}
		if !res.Pass {
			art.Pass = false
		}
		art.Profiles = append(art.Profiles, res)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "soak: profile %-8s %s  requests=%d ok=%d shed_rate=%.2f fast_p99=%.1fms\n",
				res.Name, passStr(res.Pass), res.Requests, res.OK, res.ShedRate, res.FastP99Ms)
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "soak:   violation: %s\n", v)
			}
		}
	}
	for name := range selected {
		if name != "" && !ran[name] {
			return fmt.Errorf("unknown profile %q (have ramp, spike, sustain, chaos, dispatch, cluster, partition)", name)
		}
	}
	if len(art.Profiles) == 0 {
		return fmt.Errorf("no profiles selected")
	}

	path := *out
	if path == "" {
		path = "SOAK_" + *tag + ".json"
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "soak: wrote %s (%s)\n", path, passStr(art.Pass))
	}
	if !art.Pass {
		return fmt.Errorf("SLO violations (see %s)", path)
	}
	return nil
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// chaosPlan loads the operator's plan or falls back to the built-in one:
// transient GPU faults only, which the sweep retry budget absorbs without
// changing any result — the point of the chaos profile is proving
// verdicts survive faults, not manufacturing failures.
func chaosPlan(path string) (*faultinject.Plan, error) {
	if path != "" {
		return faultinject.LoadPlan(path)
	}
	// A sweep makes thousands of backend calls, so the per-call fault
	// probability is kept small enough that a 5-attempt retry budget
	// absorbs every transient (0.02^5 per call is negligible even across
	// a full soak window).
	return faultinject.ParsePlan([]byte(
		`{"seed": 7, "rules": [{"backend": "gpu", "probability": 0.02, "kind": "transient"}]}`))
}

// The sweep-size working set: randomDim draws from ~500 distinct sweep
// sizes — wide enough that the result cache (256 entries) cannot absorb
// the load and cold sweeps keep arriving for the admission layer to
// arbitrate. hotDim sits outside the random range; it is warmed before
// the load starts and must keep answering from the cache throughout.
func randomDim(rng *rand.Rand) int { return 24 + 2*rng.Intn(500) }

const hotDim = 2048

// The dispatch profile's working set: batches of dispatchBatchSize calls
// drawn from dispatchShapes distinct GEMM shapes. The set is small
// enough that the dispatcher's shape cache must absorb nearly everything
// after the first few batches — that warm-cache hit rate is the SLO.
const (
	dispatchBatchSize = 64
	dispatchShapes    = 200
	dispatchHitFloor  = 0.5
)

func thresholdReq(dim int) service.ThresholdRequest {
	req := service.ThresholdRequest{System: "dawn", Kernel: "gemv", Precision: "f64"}
	req.Config.MaxDim = dim
	return req
}

// soakBreakerOff keeps pkg/blobclient's client-side breaker out of the
// experiment: the soak exists to observe the server shedding, and a
// breaker that opens under that shed storm would replace server verdicts
// with client-side ErrOpen refusals.
var soakBreakerOff = resilience.BreakerConfig{MinRequests: 1 << 30}

// soakClients builds the per-identity typed clients: one plain, one that
// stamps the tight X-Deadline-Ms used by the deadline-shedding slice.
func soakClients(url string, hc *http.Client, id int) (plain, tight *blobclient.Client) {
	key := fmt.Sprintf("client-%d", id)
	plain = blobclient.New(blobclient.Options{
		BaseURL: url, HTTPClient: hc, APIKey: key, Breaker: soakBreakerOff})
	tight = blobclient.New(blobclient.Options{
		BaseURL: url, HTTPClient: hc, APIKey: key, DeadlineMs: 10, Breaker: soakBreakerOff})
	return plain, tight
}

// runProfile stands up a fresh server, drives the profile's phases, and
// scores the outcome against the SLOs.
func runProfile(p profile, workers int, seed int64, window time.Duration, sweepCost time.Duration, plan *faultinject.Plan) ProfileResult {
	res := ProfileResult{
		Name:     p.name,
		PeakLoad: p.phases[len(p.phases)-1].clients,
		Sheds:    map[string]int{},
		Statuses: map[string]int{},
		Pass:     true,
	}
	res.GoroutineBaseline = runtime.NumGoroutine()

	opts := service.Options{
		Workers:        workers,
		Queue:          2 * workers,
		RequestTimeout: 2 * time.Second,
		Resilience:     core.Resilience{MaxAttempts: 5},
		Sweep:          costedSweep(sweepCost, nil),
	}
	if p.aimd {
		opts.TargetLatency = sweepCost / 2 // every sweep overshoots: AIMD engages
	}
	if p.fair {
		opts.FairShareRate = 20
		opts.FairShareBurst = 2 * workers
	}
	if p.faults {
		inj := plan.Arm()
		opts.Inject = inj
		opts.Sweep = costedSweep(sweepCost, inj)
	}
	svc := service.New(opts)
	ts := httptest.NewServer(svc.Handler())
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	// Warm the hot entry while the service is idle: the threshold
	// profiles warm the result cache's hot dim, the dispatch profile
	// warms the dispatcher's shape cache with one full-working-set batch.
	warmer := blobclient.New(blobclient.Options{
		BaseURL: ts.URL, HTTPClient: client, Breaker: soakBreakerOff})
	var hotWarmed bool
	if p.dispatch {
		warm, err := warmer.DispatchBatch(context.Background(), dispatchReq(rand.New(rand.NewSource(seed))))
		hotWarmed = err == nil && len(warm.Decisions) == dispatchBatchSize
	} else {
		warm, err := warmer.Threshold(context.Background(), thresholdReq(hotDim))
		hotWarmed = err == nil && len(warm.Thresholds) > 0
	}

	began := time.Now()
	var shots []shot
	for _, ph := range p.phases {
		shots = append(shots, runPhase(p, client, ts.URL, ph, seed, time.Duration(float64(window)*ph.fraction))...)
	}
	res.DurationMs = float64(time.Since(began)) / float64(time.Millisecond)

	// Drain and count goroutines once everything is torn down.
	ts.Close()
	svc.Close()
	transport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res.GoroutineAfter = runtime.NumGoroutine()
		if res.GoroutineAfter <= res.GoroutineBaseline+goroutineTolerance || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	score(&res, shots, hotWarmed)
	if p.dispatch {
		scoreDispatch(&res, shots)
	}
	if p.faults {
		verifyVerdicts(&res, shots, workers)
	}
	return res
}

// costedSweep wraps core.Run with an artificial per-sweep cost (so a
// small worker pool saturates at scripted load) and, for the chaos
// profile, the armed fault injector on the sim backends.
func costedSweep(cost time.Duration, inj faultinject.Point) service.SweepFunc {
	return func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		if inj != nil {
			sys.CPU.Inject = inj
			sys.GPU.Inject = inj
		}
		select {
		case <-time.After(cost):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return core.Run(ctx, sys, pts, precs, cfg)
	}
}

// runPhase runs one phase's closed-loop clients and merges their shots.
// Each client derives its own PRNG from the run seed, so the request
// schedule is reproducible per (seed, profile, phase).
func runPhase(p profile, client *http.Client, url string, ph phase, seed int64, d time.Duration) []shot {
	stop := time.Now().Add(d)
	var mu sync.Mutex
	var all []shot
	var wg sync.WaitGroup
	for i := 0; i < ph.clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(id)))
			plain, tight := soakClients(url, client, id)
			var mine []shot
			for n := 0; time.Now().Before(stop); n++ {
				var s *shot
				var err error
				switch {
				case p.dispatch:
					s, err = dispatchShot(plain, rng)
				default:
					dim := randomDim(rng)
					if n%7 == 3 {
						dim = hotDim // every client revisits the hot cached entry
					}
					cl := plain
					if n%5 == 4 {
						// A slice of traffic carries a client deadline tighter
						// than the sweep cost: once the p50 estimator warms,
						// these shed deterministically on budget.
						cl = tight
					}
					s, err = thresholdShot(cl, dim)
				}
				if err == nil {
					mine = append(mine, *s)
				}
				time.Sleep(2 * time.Millisecond) // think time bounds the spin
			}
			mu.Lock()
			all = append(all, mine...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	return all
}

// thresholdShot issues one typed threshold request and records the
// outcome. Server rejections surface as *blobclient.APIError — status
// plus the machine-readable code the SLOs audit; transport errors (the
// client gave up, not the server) drop the shot as before.
func thresholdShot(cl *blobclient.Client, dim int) (*shot, error) {
	began := time.Now()
	resp, err := cl.Threshold(context.Background(), thresholdReq(dim))
	s := &shot{latency: time.Since(began), dim: dim}
	if err != nil {
		var ae *blobclient.APIError
		if !errors.As(err, &ae) {
			return nil, err
		}
		s.status = ae.Status
		s.reason = ae.Code
		return s, nil
	}
	s.status = http.StatusOK
	s.cached = resp.Cached
	s.thresholds = canonicalThresholds(resp.Thresholds)
	s.filledFrom = resp.FilledFrom
	return s, nil
}

// dispatchReq builds one batch over the bounded shape working set.
func dispatchReq(rng *rand.Rand) service.DispatchRequest {
	req := service.DispatchRequest{System: "isambard-ai"}
	for i := 0; i < dispatchBatchSize; i++ {
		var cr service.DispatchCallRequest
		cr.Kernel = "gemm"
		cr.M = 16 + 4*rng.Intn(dispatchShapes)
		cr.N, cr.K = 64, 64
		cr.Precision = "f64"
		cr.Count = 1
		cr.Movement = "once"
		req.Calls = append(req.Calls, cr)
	}
	return req
}

// dispatchShot issues one routing batch and records the outcome.
func dispatchShot(cl *blobclient.Client, rng *rand.Rand) (*shot, error) {
	began := time.Now()
	resp, err := cl.DispatchBatch(context.Background(), dispatchReq(rng))
	s := &shot{latency: time.Since(began)}
	if err != nil {
		var ae *blobclient.APIError
		if !errors.As(err, &ae) {
			return nil, err
		}
		s.status = ae.Status
		s.reason = ae.Code
		return s, nil
	}
	s.status = http.StatusOK
	s.decisions = len(resp.Decisions)
	s.hits = resp.CacheHits
	return s, nil
}

// canonicalThresholds renders a verdict map deterministically (maps
// marshal with sorted keys) so byte comparison means semantic
// comparison.
func canonicalThresholds(m map[string]service.ThresholdBody) string {
	out, err := json.Marshal(m)
	if err != nil {
		return fmt.Sprintf("%v", m)
	}
	return string(out)
}

// score aggregates the shots and applies the SLO ceilings.
func score(res *ProfileResult, shots []shot, hotWarmed bool) {
	var fast []time.Duration
	shed := 0
	for _, s := range shots {
		res.Requests++
		res.Statuses[fmt.Sprint(s.status)]++
		switch {
		case s.status == http.StatusOK:
			res.OK++
			if s.cached {
				res.Cached++
			}
			// Fast tiers: result-cache hits and dispatch batches (the
			// decision path is microseconds per call; a whole batch must
			// still clear the fast SLO).
			if s.cached || s.decisions > 0 {
				fast = append(fast, s.latency)
			}
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			shed++
			res.Sheds[s.reason]++
			fast = append(fast, s.latency)
		default:
			shed++
			res.Sheds[s.reason]++
		}
	}
	if res.Requests == 0 {
		res.fail("profile produced no requests")
		return
	}
	res.ShedRate = float64(shed) / float64(res.Requests)
	res.FastP99Ms = float64(p99(fast)) / float64(time.Millisecond)

	if !hotWarmed {
		res.fail("hot cache entry failed to warm")
	}
	if res.OK == 0 {
		res.fail("no request completed: total collapse, not load shedding")
	}
	if res.ShedRate > maxShedRate {
		res.fail(fmt.Sprintf("shed rate %.3f above ceiling %.2f", res.ShedRate, maxShedRate))
	}
	if d := time.Duration(res.FastP99Ms * float64(time.Millisecond)); d > fastP99SLO {
		res.fail(fmt.Sprintf("fast-tier p99 %.1fms above SLO %s", res.FastP99Ms, fastP99SLO))
	}
	for reason, n := range res.Sheds {
		if !knownReasons[reason] {
			res.fail(fmt.Sprintf("%d sheds with unknown reason %q", n, reason))
		}
	}
	if res.GoroutineAfter > res.GoroutineBaseline+goroutineTolerance {
		res.fail(fmt.Sprintf("goroutine leak: %d after drain, baseline %d",
			res.GoroutineAfter, res.GoroutineBaseline))
	}
}

// scoreDispatch applies the dispatch profile's extra SLO: with a bounded
// shape working set, the dispatcher's memoization must answer at least
// dispatchHitFloor of all decisions once warm — a cold cache per request
// (or a broken shape key) shows up here as a hit rate near zero.
func scoreDispatch(res *ProfileResult, shots []shot) {
	for _, s := range shots {
		res.Decisions += s.decisions
		res.DispatchHits += s.hits
	}
	if res.Decisions == 0 {
		res.fail("dispatch profile completed no routing decisions")
		return
	}
	res.DispatchHitRate = float64(res.DispatchHits) / float64(res.Decisions)
	if res.DispatchHitRate < dispatchHitFloor {
		res.fail(fmt.Sprintf("dispatch cache hit rate %.3f below floor %.2f",
			res.DispatchHitRate, dispatchHitFloor))
	}
}

func (r *ProfileResult) fail(msg string) {
	r.Pass = false
	r.Violations = append(r.Violations, msg)
}

// p99 returns the 99th-percentile duration (0 for an empty set).
func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// verifyVerdicts proves chaos serves no corrupted result: every verdict
// the chaos profile returned must be byte-identical to a fault-free
// reference sweep of the same dimension. Both digests land in the
// artifact so two runs are comparable at a glance.
func verifyVerdicts(res *ProfileResult, shots []shot, workers int) {
	verdicts := map[int]string{}
	for _, s := range shots {
		if s.status != http.StatusOK || s.thresholds == "" {
			continue
		}
		if prev, ok := verdicts[s.dim]; ok && prev != s.thresholds {
			res.fail(fmt.Sprintf("dim %d served two different verdicts under chaos", s.dim))
		}
		verdicts[s.dim] = s.thresholds
	}
	if len(verdicts) == 0 {
		res.fail("chaos profile completed no verdicts to verify")
		return
	}

	// The fault-free reference: a quiet server, sequential requests.
	svc := service.New(service.Options{Workers: workers, Sweep: costedSweep(0, nil)})
	ts := httptest.NewServer(svc.Handler())
	transport := &http.Transport{}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	cl := blobclient.New(blobclient.Options{
		BaseURL: ts.URL, HTTPClient: client, Breaker: soakBreakerOff})
	reference := map[int]string{}
	dims := make([]int, 0, len(verdicts))
	for dim := range verdicts {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		s, err := thresholdShot(cl, dim)
		if err != nil || s.status != http.StatusOK {
			res.fail(fmt.Sprintf("reference sweep for dim %d failed", dim))
			continue
		}
		reference[dim] = s.thresholds
		if verdicts[dim] != s.thresholds {
			res.fail(fmt.Sprintf("dim %d: chaos verdict differs from fault-free reference", dim))
		}
	}
	ts.Close()
	svc.Close()
	transport.CloseIdleConnections()

	res.VerdictDigest = digest(verdicts)
	res.ReferenceDigest = digest(reference)
}

// digest is a stable fingerprint of a dim -> verdict map.
func digest(m map[int]string) string {
	dims := make([]int, 0, len(m))
	for d := range m {
		dims = append(dims, d)
	}
	sort.Ints(dims)
	h := sha256.New()
	for _, d := range dims {
		fmt.Fprintf(h, "%d=%s\n", d, m[d])
	}
	return hex.EncodeToString(h.Sum(nil))
}
