package main

// The partition profile: chaos-prove the cluster against the network
// itself (internal/netfault, DESIGN.md §17). The cluster profile kills
// a replica cleanly; this one degrades the wires instead — a seeded
// netfault plan blackholes the gateway's edge to one replica over two
// index windows (partition, heal, flap), keeps another replica slow
// enough that hedged requests fire, and randomly truncates or
// bit-flips response bodies on the direct-client edges so the
// blobclient integrity checks have real corruption to catch. The
// acceptance criteria:
//
//   - zero divergence: every verdict served through the faulted run is
//     byte-identical to the unfaulted single-node replay (faults may
//     move or delay a verdict, never change it — a corrupt body must
//     be retried, not believed);
//   - bounded degradation: no request outlives the latency budget even
//     mid-partition (blackholes burn their hold time, not a deadline);
//   - hedges help: the slow-peer rule must produce at least one hedge
//     win at the gateway;
//   - nothing leaks: goroutines return to baseline once the cluster
//     and both injectors wind down.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/netfault"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/pkg/blobclient"
)

const (
	partitionNodes = 3
	// partitionLatencyBudget bounds every request in the faulted run: the
	// replica request timeout (2s) plus routing, hedging, blackhole hold
	// and retry overhead. A request that exceeds it hung instead of
	// degrading.
	partitionLatencyBudget = 5 * time.Second
	// partitionHedgeAfter is the fixed hedge delay: above routine proxy
	// latency, far below the slow-peer rule's 60ms, so hedges fire
	// exactly when the fault plan says a peer is slow.
	partitionHedgeAfter = 25 * time.Millisecond
)

// partitionGatewayPlan is the seeded fault schedule for the gateway's
// peer edges. rep-1 is permanently slow (hedge bait); rep-2 is
// blackholed over two index windows — partition, heal, flap — with a
// hold short enough that a stuck attempt reroutes instead of hanging;
// rep-0 sees a few connection resets for failover seasoning.
func partitionGatewayPlan(seed int64, short bool) (*netfault.Plan, error) {
	p1, p2 := 140, 260 // first partition window (injector evaluation indices)
	f1, f2 := 420, 470 // flap window
	if short {
		p1, p2 = 70, 140
		f1, f2 = 220, 260
	}
	return netfault.ParsePlan([]byte(fmt.Sprintf(`{
  "schema": "netfault/v1",
  "seed": %d,
  "rules": [
    {"peer": "rep-1", "probability": 1, "kind": "latency", "latency_ms": 60, "jitter_ms": 15},
    {"peer": "rep-2", "min_index": %d, "max_index": %d, "probability": 1, "kind": "blackhole", "hold_ms": 250},
    {"peer": "rep-2", "min_index": %d, "max_index": %d, "probability": 1, "kind": "blackhole", "hold_ms": 250},
    {"peer": "rep-0", "probability": 0.05, "kind": "reset", "max_hits": 4}
  ]
}`, seed, p1, p2, f1, f2)))
}

// partitionClientPlan corrupts the direct-client edges: truncated and
// bit-flipped response bodies that pkg/blobclient must classify as
// transient and retry — a verdict read off a damaged wire must never
// be recorded.
func partitionClientPlan(seed int64) (*netfault.Plan, error) {
	return netfault.ParsePlan([]byte(fmt.Sprintf(`{
  "schema": "netfault/v1",
  "seed": %d,
  "rules": [
    {"route": "/v1/threshold", "probability": 0.2, "kind": "truncate", "truncate_after": 40, "max_hits": 25},
    {"route": "/v1/threshold", "probability": 0.15, "kind": "corrupt", "flip_every": 64, "max_hits": 25}
  ]
}`, seed+1)))
}

// runPartitionProfile drives the network-fault scenario and scores it.
func runPartitionProfile(seed int64, short bool) ProfileResult {
	res := ProfileResult{
		Name:     "partition",
		PeakLoad: partitionNodes,
		Sheds:    map[string]int{},
		Statuses: map[string]int{},
		Pass:     true,
	}
	res.GoroutineBaseline = runtime.NumGoroutine()

	cacheSize, dims, passes := 36, 144, 9
	if short {
		cacheSize, dims, passes = 24, 96, 5
	}
	workingSet := make([]int, dims)
	for i := range workingSet {
		workingSet[i] = 24 + 2*i
	}

	gwPlan, err := partitionGatewayPlan(seed, short)
	if err != nil {
		res.fail("gateway fault plan: " + err.Error())
		return res
	}
	clPlan, err := partitionClientPlan(seed)
	if err != nil {
		res.fail("client fault plan: " + err.Error())
		return res
	}
	gwInj := gwPlan.Arm()
	clInj := clPlan.Arm()

	breaker := resilience.BreakerConfig{
		MinRequests: 1, FailureRatio: 0.5, OpenTimeout: 300 * time.Millisecond,
	}
	// Three clients, three trust levels: replicas talk to each other on a
	// clean transport (the faults under test are on the client-facing
	// edges), the gateway reaches replicas through gwInj, and the direct
	// clients read replies through clInj's body-corrupting wrapper.
	cleanTransport := &http.Transport{MaxIdleConnsPerHost: 64}
	cleanc := &http.Client{Transport: cleanTransport, Timeout: 10 * time.Second}

	nodes := make([]*soakNode, partitionNodes)
	handlers := make([]atomic.Value, partitionNodes)
	for i := range nodes {
		n := &soakNode{name: fmt.Sprintf("rep-%d", i)}
		slot := &handlers[i]
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			slot.Load().(http.Handler).ServeHTTP(w, r)
		}))
		nodes[i] = n
	}
	members := make([]cluster.Member, partitionNodes)
	hostToPeer := map[string]string{}
	for i, n := range nodes {
		members[i] = cluster.Member{Name: n.name, URL: n.ts.URL}
		if u, err := url.Parse(n.ts.URL); err == nil {
			hostToPeer[u.Host] = n.name
		}
	}
	// peerOf names the replica behind a faulted request so plan rules can
	// target members, not ephemeral 127.0.0.1 ports.
	peerOf := func(r *http.Request) string {
		if name, ok := hostToPeer[r.URL.Host]; ok {
			return name
		}
		return r.URL.Host
	}
	gwTransport := &http.Transport{MaxIdleConnsPerHost: 64}
	gwc := &http.Client{
		Transport: &netfault.Transport{Inner: gwTransport, Injector: gwInj, Peer: peerOf},
		Timeout:   10 * time.Second,
	}
	clTransport := &http.Transport{MaxIdleConnsPerHost: 64}
	faultyc := &http.Client{
		Transport: &netfault.Transport{Inner: clTransport, Injector: clInj, Peer: peerOf},
		Timeout:   10 * time.Second,
	}

	for i, n := range nodes {
		pool, err := cluster.NewPool(cluster.Options{
			Self:         n.name,
			Members:      members,
			DownAfter:    2,
			ProbeTimeout: 2 * time.Second,
			FillTimeout:  5 * time.Second,
			HTTPClient:   cleanc,
			Breaker:      breaker,
		})
		if err != nil {
			res.fail("cluster setup: " + err.Error())
			return res
		}
		n.pool = pool
		n.svc = service.New(service.Options{
			Workers:        2,
			CacheSize:      cacheSize,
			RequestTimeout: 2 * time.Second,
			PeerFill:       pool.FillThreshold(),
		})
		n.node = cluster.NewNode(pool, n.svc)
		handlers[i].Store(n.node.Handler())
	}
	gwPool, err := cluster.NewGatewayPool(cluster.Options{
		Members:      members,
		DownAfter:    2,
		ProbeTimeout: 2 * time.Second,
		HTTPClient:   gwc,
		Breaker:      breaker,
	})
	if err != nil {
		res.fail("gateway setup: " + err.Error())
		return res
	}
	gw := cluster.NewGateway(gwPool, cluster.GatewayOptions{
		Hedge:      true,
		HedgeAfter: partitionHedgeAfter,
	})
	gwTS := httptest.NewServer(gw.Handler())

	gwClient := blobclient.New(blobclient.Options{
		BaseURL: gwTS.URL, HTTPClient: cleanc, Breaker: soakBreakerOff})
	direct := make([]*blobclient.Client, partitionNodes)
	for i, n := range nodes {
		direct[i] = blobclient.New(blobclient.Options{
			BaseURL:    n.ts.URL,
			HTTPClient: faultyc,
			Breaker:    soakBreakerOff,
			Retry:      resilience.RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond},
		})
	}

	// The faulted run. Same schedule shape as the cluster profile: pass 0
	// warms in order, later passes are seeded shuffles, every fifth
	// request goes to a replica directly (through the body-corrupting
	// transport). The partitions arrive purely from the gateway plan's
	// index windows as its injector counts evaluations.
	rng := rand.New(rand.NewSource(seed))
	verdicts := map[int]string{}
	began := time.Now()
	var maxLatency time.Duration
	for pass := 0; pass < passes; pass++ {
		order := rng.Perm(dims)
		if pass == 0 {
			for i := range order {
				order[i] = i
			}
		}
		for j, idx := range order {
			dim := workingSet[idx]
			cl := gwClient
			if j%5 == 4 {
				cl = direct[(pass+j)%partitionNodes]
			}
			s, err := thresholdShot(cl, dim)
			if err != nil {
				continue // transport fault that outlived the retry budget
			}
			res.Requests++
			res.Statuses[fmt.Sprint(s.status)]++
			if s.latency > maxLatency {
				maxLatency = s.latency
			}
			if s.status != http.StatusOK {
				res.Sheds[s.reason]++
				continue
			}
			res.OK++
			if s.cached {
				res.Cached++
			}
			if s.filledFrom != "" {
				res.PeerFills++
			}
			if prev, ok := verdicts[dim]; ok && prev != s.thresholds {
				res.fail(fmt.Sprintf("dim %d served two different verdicts across the faulted run", dim))
			}
			verdicts[dim] = s.thresholds
		}
	}
	res.DurationMs = float64(time.Since(began)) / float64(time.Millisecond)
	res.MaxLatencyMs = float64(maxLatency) / float64(time.Millisecond)
	res.HedgeWins = scrapeCounter(gwTS.URL+"/metrics", "blob_gateway_hedge_wins_total")
	gwStats, clStats := gwInj.Stats(), clInj.Stats()
	res.FaultsInjected = int(gwStats.Total() + clStats.Total())

	gwTS.Close()
	gwPool.Close()
	for _, n := range nodes {
		n.ts.Close()
		n.node.Close()
	}

	// The unfaulted replay: identical seed and schedule against a single
	// clean node — the byte-identical verdict oracle.
	_, refOK, reference := runClusterReference(seed, cacheSize, dims, passes, workingSet, cleanc)
	cleanTransport.CloseIdleConnections()
	gwTransport.CloseIdleConnections()
	clTransport.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		res.GoroutineAfter = runtime.NumGoroutine()
		if res.GoroutineAfter <= res.GoroutineBaseline+goroutineTolerance || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Score.
	if res.OK == 0 {
		res.fail("partition run completed no requests")
		return res
	}
	if refOK == 0 {
		res.fail("unfaulted reference completed no requests")
		return res
	}
	for dim, v := range verdicts {
		if ref, ok := reference[dim]; !ok {
			res.fail(fmt.Sprintf("dim %d missing from the unfaulted reference", dim))
		} else if ref != v {
			res.fail(fmt.Sprintf("dim %d: faulted verdict differs from the unfaulted replay", dim))
		}
	}
	if maxLatency > partitionLatencyBudget {
		res.fail(fmt.Sprintf("request hung %.0fms, budget %s", res.MaxLatencyMs, partitionLatencyBudget))
	}
	if res.HedgeWins < 1 {
		res.fail("slow-peer rule produced no hedge wins at the gateway")
	}
	if gwStats.Fired[netfault.Blackhole] == 0 {
		res.fail("partition windows never fired (plan indices missed the run)")
	}
	if clStats.Fired[netfault.Truncate]+clStats.Fired[netfault.Corrupt] == 0 {
		res.fail("body-corruption rules never fired on the direct edges")
	}
	if res.GoroutineAfter > res.GoroutineBaseline+goroutineTolerance {
		res.fail(fmt.Sprintf("goroutine leak: %d after drain, baseline %d",
			res.GoroutineAfter, res.GoroutineBaseline))
	}
	res.VerdictDigest = digest(verdicts)
	res.ReferenceDigest = digest(reference)
	if res.VerdictDigest != res.ReferenceDigest {
		// The per-dim loop above names the first divergent dim; the digest
		// check additionally catches dims the faulted run never served.
		for dim := range reference {
			if _, ok := verdicts[dim]; !ok {
				res.fail(fmt.Sprintf("dim %d never served through the faulted run", dim))
			}
		}
	}
	return res
}

// scrapeCounter reads one untyped counter value off a Prometheus text
// endpoint; 0 when the metric is absent or the scrape fails.
func scrapeCounter(metricsURL, name string) int {
	resp, err := http.Get(metricsURL)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err == nil {
				return v
			}
		}
	}
	return 0
}
