package main

// The cluster profile: chaos-prove the consistent-hash advisor cluster
// (internal/cluster, DESIGN.md §16). It stands up an N-replica
// in-process cluster behind a blob-gateway, drives a working set wider
// than any one replica's cache through repeated shuffled scans, kills a
// replica mid-run and rejoins it, and asserts the three cluster
// acceptance criteria:
//
//   - linear cache scaling: the cluster's cache-hit rate is at least
//     clusterHitScalingFloor times a single node's over the identical
//     request schedule (sharding means each replica caches only its arc,
//     so N caches compose instead of duplicating);
//   - zero divergence: every verdict served through the chaos run —
//     routed, rerouted, or peer-filled — is byte-identical to the
//     single-node reference (routing may move where a verdict is
//     computed, never what it says);
//   - bounded degradation: no request hangs past the deadline budget,
//     even while the ring is reconverging around a dead replica.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/resilience"
	"repro/internal/service"
	"repro/pkg/blobclient"
)

const (
	clusterNodes = 3
	// clusterHitScalingFloor is the acceptance floor for cluster-vs-single
	// cache-hit scaling. Perfect sharding over 3 replicas approaches 3x;
	// the floor leaves room for the kill window, when the dead replica's
	// arc re-warms on its failover owner.
	clusterHitScalingFloor = 2.5
	// clusterLatencyBudget bounds every request in the chaos run: the
	// replica request timeout (2s) plus routing, failover and peer-fill
	// overhead. A request that exceeds it hung instead of degrading.
	clusterLatencyBudget = 5 * time.Second
)

// soakNode is one in-process replica with a severable network edge: kill
// makes its HTTP surface abort every connection (the crash a gateway
// sees) while the service underneath keeps running, so a revive models a
// rejoin with a warm cache.
type soakNode struct {
	name   string
	svc    *service.Server
	pool   *cluster.Pool
	node   *cluster.Node
	ts     *httptest.Server
	killed atomic.Bool
}

func (n *soakNode) kill()   { n.killed.Store(true) }
func (n *soakNode) revive() { n.killed.Store(false) }

// runClusterProfile drives the chaos scenario and scores it.
func runClusterProfile(seed int64, short bool) ProfileResult {
	res := ProfileResult{
		Name:     "cluster",
		PeakLoad: clusterNodes,
		Sheds:    map[string]int{},
		Statuses: map[string]int{},
		Pass:     true,
	}
	res.GoroutineBaseline = runtime.NumGoroutine()

	// The working set is 4x one replica's cache, so a single node
	// thrashes (~25% hits) while each ring owner's arc (~1/3 of the set)
	// nearly fits (~75% hits) — the gap the scaling floor measures.
	cacheSize, dims, passes := 36, 144, 9
	if short {
		cacheSize, dims, passes = 24, 96, 5
	}
	killPass, revivePass := 2, passes-2
	workingSet := make([]int, dims)
	for i := range workingSet {
		workingSet[i] = 24 + 2*i
	}

	breaker := resilience.BreakerConfig{
		MinRequests: 1, FailureRatio: 0.5, OpenTimeout: 300 * time.Millisecond,
	}
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	httpc := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	// Replica HTTP servers come up first (their URLs seed the roster),
	// with handlers swapped in once the pools exist.
	nodes := make([]*soakNode, clusterNodes)
	handlers := make([]atomic.Value, clusterNodes)
	for i := range nodes {
		n := &soakNode{name: fmt.Sprintf("rep-%d", i)}
		slot := &handlers[i]
		n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n.killed.Load() {
				panic(http.ErrAbortHandler) // sever the connection, not the process
			}
			slot.Load().(http.Handler).ServeHTTP(w, r)
		}))
		nodes[i] = n
	}
	members := make([]cluster.Member, clusterNodes)
	for i, n := range nodes {
		members[i] = cluster.Member{Name: n.name, URL: n.ts.URL}
	}
	for i, n := range nodes {
		pool, err := cluster.NewPool(cluster.Options{
			Self:         n.name,
			Members:      members,
			DownAfter:    2,
			ProbeTimeout: 2 * time.Second,
			FillTimeout:  5 * time.Second,
			HTTPClient:   httpc,
			Breaker:      breaker,
		})
		if err != nil {
			res.fail("cluster setup: " + err.Error())
			return res
		}
		n.pool = pool
		n.svc = service.New(service.Options{
			Workers:        2,
			CacheSize:      cacheSize,
			RequestTimeout: 2 * time.Second,
			PeerFill:       pool.FillThreshold(),
		})
		n.node = cluster.NewNode(pool, n.svc)
		handlers[i].Store(n.node.Handler())
	}
	gwPool, err := cluster.NewGatewayPool(cluster.Options{
		Members:      members,
		DownAfter:    2,
		ProbeTimeout: 2 * time.Second,
		HTTPClient:   httpc,
		Breaker:      breaker,
	})
	if err != nil {
		res.fail("gateway setup: " + err.Error())
		return res
	}
	gw := cluster.NewGateway(gwPool, cluster.GatewayOptions{})
	gwTS := httptest.NewServer(gw.Handler())

	pools := make([]*cluster.Pool, 0, clusterNodes+1)
	for _, n := range nodes {
		pools = append(pools, n.pool)
	}
	pools = append(pools, gwPool)
	converge := func() {
		// Deterministic health convergence: DownAfter probe rounds on
		// every pool, instead of waiting on a background heartbeat.
		for r := 0; r < 2; r++ {
			for _, p := range pools {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				p.CheckNow(ctx)
				cancel()
			}
		}
	}

	gwClient := blobclient.New(blobclient.Options{
		BaseURL: gwTS.URL, HTTPClient: httpc, Breaker: soakBreakerOff})
	direct := make([]*blobclient.Client, clusterNodes)
	for i, n := range nodes {
		direct[i] = blobclient.New(blobclient.Options{
			BaseURL: n.ts.URL, HTTPClient: httpc, Breaker: soakBreakerOff})
	}

	// The chaos run. Pass 0 warms in order; later passes are seeded
	// shuffles. Most traffic goes through the gateway (owner-routed);
	// every fifth request hits a replica directly, which on a local miss
	// exercises the peer-fill path to the shard owner.
	rng := rand.New(rand.NewSource(seed))
	verdicts := map[int]string{}
	began := time.Now()
	var maxLatency time.Duration
	for pass := 0; pass < passes; pass++ {
		if pass == killPass {
			nodes[1].kill()
			converge()
		}
		if pass == revivePass {
			nodes[1].revive()
			converge()
			time.Sleep(breaker.OpenTimeout + 50*time.Millisecond) // let open breakers re-probe
		}
		order := rng.Perm(dims)
		if pass == 0 {
			for i := range order {
				order[i] = i
			}
		}
		for j, idx := range order {
			dim := workingSet[idx]
			cl := gwClient
			if j%5 == 4 {
				target := (pass + j) % clusterNodes
				if nodes[target].killed.Load() {
					continue // a client of a dead replica just fails; nothing to score
				}
				cl = direct[target]
			}
			s, err := thresholdShot(cl, dim)
			if err != nil {
				continue // transport error (kill window); rerouted retries come via later passes
			}
			res.Requests++
			res.Statuses[fmt.Sprint(s.status)]++
			if s.latency > maxLatency {
				maxLatency = s.latency
			}
			if s.status != http.StatusOK {
				res.Sheds[s.reason]++
				continue
			}
			res.OK++
			if s.cached {
				res.Cached++
			}
			if s.filledFrom != "" {
				res.PeerFills++
			}
			if prev, ok := verdicts[dim]; ok && prev != s.thresholds {
				res.fail(fmt.Sprintf("dim %d served two different verdicts across the chaos run", dim))
			}
			verdicts[dim] = s.thresholds
		}
	}
	res.DurationMs = float64(time.Since(began)) / float64(time.Millisecond)
	res.MaxLatencyMs = float64(maxLatency) / float64(time.Millisecond)

	gwTS.Close()
	gwPool.Close()
	for _, n := range nodes {
		n.ts.Close()
		n.node.Close()
	}

	// The single-node reference: the identical schedule (same seed, same
	// passes, no kill) against one replica with the same cache size. It
	// is both the hit-rate baseline and the byte-identical verdict oracle.
	singleHits, singleOK, reference := runClusterReference(seed, cacheSize, dims, passes, workingSet, httpc)
	transport.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		res.GoroutineAfter = runtime.NumGoroutine()
		if res.GoroutineAfter <= res.GoroutineBaseline+goroutineTolerance || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Score.
	if res.OK == 0 {
		res.fail("cluster run completed no requests")
		return res
	}
	if singleOK == 0 {
		res.fail("single-node reference completed no requests")
		return res
	}
	res.ClusterHitRate = float64(res.Cached) / float64(res.OK)
	res.SingleHitRate = float64(singleHits) / float64(singleOK)
	if res.SingleHitRate > 0 {
		res.HitScaling = res.ClusterHitRate / res.SingleHitRate
	}
	if res.HitScaling < clusterHitScalingFloor {
		res.fail(fmt.Sprintf("cluster cache-hit scaling %.2fx below floor %.1fx (cluster %.3f, single %.3f)",
			res.HitScaling, clusterHitScalingFloor, res.ClusterHitRate, res.SingleHitRate))
	}
	if res.PeerFills == 0 {
		res.fail("peer-fill path never served a request")
	}
	for dim, v := range verdicts {
		if ref, ok := reference[dim]; !ok {
			res.fail(fmt.Sprintf("dim %d missing from the single-node reference", dim))
		} else if ref != v {
			res.fail(fmt.Sprintf("dim %d: cluster verdict differs from single-node reference", dim))
		}
	}
	if maxLatency > clusterLatencyBudget {
		res.fail(fmt.Sprintf("request hung %.0fms, budget %s", res.MaxLatencyMs, clusterLatencyBudget))
	}
	if res.GoroutineAfter > res.GoroutineBaseline+goroutineTolerance {
		res.fail(fmt.Sprintf("goroutine leak: %d after drain, baseline %d",
			res.GoroutineAfter, res.GoroutineBaseline))
	}
	res.VerdictDigest = digest(verdicts)
	res.ReferenceDigest = digest(reference)
	return res
}

// runClusterReference replays the cluster schedule against one node.
func runClusterReference(seed int64, cacheSize, dims, passes int, workingSet []int, httpc *http.Client) (hits, ok int, verdicts map[int]string) {
	svc := service.New(service.Options{
		Workers:        2,
		CacheSize:      cacheSize,
		RequestTimeout: 2 * time.Second,
	})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()
	cl := blobclient.New(blobclient.Options{
		BaseURL: ts.URL, HTTPClient: httpc, Breaker: soakBreakerOff})

	rng := rand.New(rand.NewSource(seed))
	verdicts = map[int]string{}
	for pass := 0; pass < passes; pass++ {
		order := rng.Perm(dims)
		if pass == 0 {
			for i := range order {
				order[i] = i
			}
		}
		for _, idx := range order {
			s, err := thresholdShot(cl, workingSet[idx])
			if err != nil || s.status != http.StatusOK {
				continue
			}
			ok++
			if s.cached {
				hits++
			}
			verdicts[workingSet[idx]] = s.thresholds
		}
	}
	return hits, ok, verdicts
}
