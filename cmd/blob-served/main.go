// blob-served serves the §III-D offload-advisor workflow over HTTP/JSON —
// the long-running counterpart of the one-shot blob-advise CLI, for
// automatic-offload runtimes that consult GPU-BLOB's models at dispatch
// time.
//
// Endpoints (every v1 response is the unified envelope — a "schema"
// token plus "data" on success or "error" {code, message, retry_after_s}
// on failure; DESIGN.md §14.2):
//
//	POST /v1/advise     advisor verdicts for a batch of BLAS call groups
//	POST /v1/threshold  offload-threshold sweep (cached, deduplicated)
//	POST /v1/dispatch   batched CPU/GPU routing through the per-system
//	                    offload dispatcher (memoized, hysteresis-damped)
//	POST /v0/advise     deprecated pre-envelope advise alias; answers
//	                    with Deprecation + Link headers, removed next
//	                    release
//	GET  /healthz       liveness (is the process up)
//	GET  /readyz        readiness (should the process receive traffic) —
//	                    503 not_ready while draining and until the sweep
//	                    worker pool is armed
//	GET  /metrics       Prometheus text metrics
//
// Usage:
//
//	blob-served -addr :8080 -workers 2 -queue 8 -cache 256 -drain 10s
//
// The resilience layer is tunable from the command line: -request-timeout
// bounds one threshold request end to end (expiry answers 504),
// -sweep-retries retries transient backend faults inside a sweep,
// -cache-ttl bounds how long a cached result counts as fresh (while a
// system's circuit breaker is open, an expired entry is still served,
// marked "stale": true), and -fault-plan arms a seeded fault-injection
// plan (JSON, see DESIGN.md §11) on the simulated backends — the chaos
// mode used to rehearse all of the above:
//
//	blob-served -request-timeout 30s -sweep-retries 10 -cache-ttl 1h \
//	    -fault-plan plan.json
//
// Overload robustness is the admission-control layer in front of the
// sweep pool (DESIGN.md §12): -target-latency turns on the AIMD adaptive
// concurrency limiter (admitted sweeps shrink when completions overshoot
// the setpoint), -fair-share / -fair-share-burst enable per-client
// token-bucket quotas, and clients may tighten their own deadline with
// an X-Deadline-Ms request header. Requests the service cannot serve in
// time are shed early with a Retry-After header (whole seconds, mirrored
// by the error body's retry_after_s) and a machine-readable error code
// (queue_full, over_quota, deadline_budget, breaker_open,
// shutting_down):
//
//	blob-served -workers 4 -queue 16 -target-latency 2s -fair-share 0.5
//
// A separate debug listener (disabled by default) exposes net/http/pprof
// and a runtime/metrics dump, so profiles can be captured from the
// running service without putting the profiling surface on the public
// port:
//
//	blob-served -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl -s http://127.0.0.1:6060/debug/runtime
//
// Clustering (DESIGN.md §16): give the replica a ring identity and the
// roster, and a local threshold cache miss asks the shard's ring owner
// over the peer-fill path before paying for a local sweep:
//
//	blob-served -addr :8080 -cluster-self rep-0 \
//	    -peers rep-0=http://10.0.0.1:8080,rep-1=http://10.0.0.2:8080
//
// -peers is the full roster, self included; -cluster-self names this
// replica's entry. The replica announces itself on start, probes its
// peers' /readyz on -cluster-heartbeat, and serves membership messages
// on POST /cluster/v1/hello. Put cmd/blob-gateway in front to route
// clients to shard owners.
//
// SIGINT/SIGTERM starts a graceful drain in a fixed order: first the
// replica flips not-ready and (when clustered) broadcasts a ring-leave,
// so peers and load balancers stop sending traffic; then the listener
// stops accepting and in-flight requests get up to -drain to finish;
// finally the sweep worker pool flushes and the completed drain is
// stamped on the blob_drain_seconds metric.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/sim/systems"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-served:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "concurrent threshold sweeps")
		queue    = flag.Int("queue", 8, "sweep queue depth beyond the workers")
		cache    = flag.Int("cache", 256, "threshold result cache entries")
		maxDim   = flag.Int("max-dim", 4096, "largest sweep max_dim a request may ask for")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		debug    = flag.String("debug-addr", "", "pprof/runtime-metrics listen address (empty = disabled; bind loopback)")

		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline for /v1/threshold; expiry answers 504 (0 = unbounded)")
		minSweep   = flag.Duration("min-sweep-budget", 0, "fail a cache-missing threshold request fast with 504 when its deadline budget is below this floor (0 = disabled)")
		retries    = flag.Int("sweep-retries", 0, "attempts per backend call inside a sweep for transient faults (0/1 = no retry)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "freshness window for cached threshold results; expired entries serve only while the backend's breaker is open, marked stale (0 = fresh forever)")
		faultPlan  = flag.String("fault-plan", "", "seeded fault-injection plan (JSON file) to arm on the simulated backends — chaos mode")

		targetLat = flag.Duration("target-latency", 0, "AIMD setpoint for sweep latency: completions above it shrink admitted sweep concurrency toward 1, below it grow it back toward -workers (0 = fixed at -workers)")
		fairShare = flag.Float64("fair-share", 0, "per-client sweep admissions per second (X-API-Key header, else remote host); 0 disables fair-share shedding")
		fairBurst = flag.Int("fair-share-burst", 4, "per-client token-bucket burst for -fair-share")

		clusterSelf = flag.String("cluster-self", "", "this replica's member name in -peers; empty = standalone (no clustering)")
		peersFlag   = flag.String("peers", "", "cluster roster: comma-separated name=url pairs, self included")
		clusterHB   = flag.Duration("cluster-heartbeat", 2*time.Second, "peer health probe period (0 disables the background loop)")
		clusterDown = flag.Int("cluster-down-after", 2, "consecutive failed probes before a peer leaves this replica's ring")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	opts := service.Options{
		Workers:        *workers,
		Queue:          *queue,
		CacheSize:      *cache,
		MaxSweepDim:    *maxDim,
		Logger:         logger,
		RequestTimeout: *reqTimeout,
		MinSweepBudget: *minSweep,
		Resilience:     core.Resilience{MaxAttempts: *retries},
		CacheTTL:       *cacheTTL,
		TargetLatency:  *targetLat,
		FairShareRate:  *fairShare,
		FairShareBurst: *fairBurst,
	}
	if *faultPlan != "" {
		plan, err := faultinject.LoadPlan(*faultPlan)
		if err != nil {
			return fmt.Errorf("bad -fault-plan: %w", err)
		}
		inj := plan.Arm()
		// One injector feeds every layer: the service-level site plus the
		// sim backends of each sweep, so the fault stream is a single
		// deterministic sequence under the plan's seed.
		opts.Inject = inj
		opts.Sweep = func(ctx context.Context, sys systems.System, problems []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
			sys.CPU.Inject = inj
			sys.GPU.Inject = inj
			return core.Run(ctx, sys, problems, precs, cfg)
		}
		logger.Warn("fault injection armed", "plan", *faultPlan, "seed", plan.Seed, "rules", len(plan.Rules))
	}

	// Clustering: the pool must exist before the service, because the
	// service's peer-fill hook closes over it.
	var pool *cluster.Pool
	if *clusterSelf != "" {
		members, err := cluster.ParseMemberList(*peersFlag)
		if err != nil {
			return fmt.Errorf("bad -peers: %w", err)
		}
		pool, err = cluster.NewPool(cluster.Options{
			Self:      *clusterSelf,
			Members:   members,
			Heartbeat: *clusterHB,
			DownAfter: *clusterDown,
			Logger:    logger,
		})
		if err != nil {
			return err
		}
		opts.PeerFill = pool.FillThreshold()
	} else if *peersFlag != "" {
		return fmt.Errorf("-peers without -cluster-self: name this replica's roster entry")
	}

	svc := service.New(opts)
	defer svc.Close()

	handler := svc.Handler()
	var node *cluster.Node
	if pool != nil {
		node = cluster.NewNode(pool, svc)
		handler = node.Handler()
		defer pool.Close()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache)
	if pool != nil {
		pool.Start(ctx)
		pool.AnnounceHello(ctx)
		logger.Info("clustered", "self", pool.Self(), "roster", len(pool.Members()))
	}

	// The debug listener is its own server on its own (ideally loopback)
	// address: pprof never shares the public port. Failures here are
	// fatal — a debug listener that silently failed to bind would defeat
	// the point of asking for one.
	var debugSrv *http.Server
	if *debug != "" {
		debugSrv = &http.Server{
			Addr:              *debug,
			Handler:           service.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
		logger.Info("debug listening", "addr", *debug)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "timeout", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Close() // nothing to drain: profiles are best-effort
	}

	// Drain order, fixed: (1) ring-leave — flip /readyz not-ready and
	// tell peers, so new traffic stops arriving while the listener is
	// still up; (2) stop accepting and wait for in-flight requests;
	// (3) flush the sweep pool. Close stamps blob_drain_seconds with the
	// whole BeginDrain→flush span.
	if node != nil {
		node.Drain(drainCtx)
	} else {
		svc.BeginDrain()
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	svc.Close()
	logger.Info("drained", "seconds", svc.Metrics().DrainSeconds())
	return nil
}
