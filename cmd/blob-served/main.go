// blob-served serves the §III-D offload-advisor workflow over HTTP/JSON —
// the long-running counterpart of the one-shot blob-advise CLI, for
// automatic-offload runtimes that consult GPU-BLOB's models at dispatch
// time.
//
// Endpoints:
//
//	POST /v1/advise     advisor verdicts for a batch of BLAS call groups
//	POST /v1/threshold  offload-threshold sweep (cached, deduplicated)
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text metrics
//
// Usage:
//
//	blob-served -addr :8080 -workers 2 -queue 8 -cache 256 -drain 10s
//
// SIGINT/SIGTERM starts a graceful drain: the listener stops accepting,
// in-flight requests get up to -drain to finish, then the sweep worker
// pool is shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blob-served:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "concurrent threshold sweeps")
		queue    = flag.Int("queue", 8, "sweep queue depth beyond the workers")
		cache    = flag.Int("cache", 256, "threshold result cache entries")
		maxDim   = flag.Int("max-dim", 4096, "largest sweep max_dim a request may ask for")
		drain    = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log-level: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc := service.New(service.Options{
		Workers:     *workers,
		Queue:       *queue,
		CacheSize:   *cache,
		MaxSweepDim: *maxDim,
		Logger:      logger,
	})
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "timeout", drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	// svc.Close (deferred) waits for in-flight sweeps before exit.
	logger.Info("drained")
	return nil
}
