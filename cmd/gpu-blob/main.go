// gpu-blob is the GPU BLAS Offload Benchmark: it sweeps GEMM and GEMV
// problem types across a range of sizes on a simulated heterogeneous
// system, measures CPU and GPU (Transfer-Once / Transfer-Always / USM)
// performance, validates numerics by checksum, writes one CSV per kernel
// and problem type, and prints the GPU offload threshold tables.
//
// The flag names mirror the original artifact:
//
//	gpu-blob -i 8 -s 1 -d 4096 --system dawn
//
// runs all 28 (kernel, precision, problem-type) sweeps for 8 iterations on
// the DAWN model with sizes 1..4096. Use --experiment to regenerate a
// specific paper table or figure instead (table1, table3..table6, fig2..
// fig7, flops-model, xnack, batched, perfstat, or "all").
//
// The resilience flags make long sweeps survivable: -retries retries
// transient backend faults with full-jitter backoff, -checkpoint-dir
// persists progress so a killed sweep resumes from the last completed
// size (blob-threshold -checkpoint inspects the file), and -fault-plan
// arms a seeded fault-injection plan (DESIGN.md §11) to rehearse both.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpu-blob:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		iters      = flag.Int("i", 8, "iterations per problem size")
		minDim     = flag.Int("s", 1, "minimum dimension (sweep start)")
		maxDim     = flag.Int("d", 4096, "maximum dimension (sweep upper limit)")
		step       = flag.Int("step", 1, "sweep stride (1 = every size)")
		alpha      = flag.Float64("alpha", 1, "GEMM/GEMV alpha")
		beta       = flag.Float64("beta", 0, "GEMM/GEMV beta")
		systemName = flag.String("system", "dawn", "system preset: "+strings.Join(systems.Names(), ", "))
		kernel     = flag.String("kernel", "all", "kernel filter: gemm, gemv or all")
		problem    = flag.String("problem", "", "problem type filter (e.g. square); empty = all")
		cpuOnly    = flag.Bool("cpu-only", false, "run the CPU side only (LUMI-style split build)")
		gpuOnly    = flag.Bool("gpu-only", false, "run the GPU side only (LUMI-style split build)")
		outDir     = flag.String("csv", "", "directory for CSV output (empty = none)")
		noValidate = flag.Bool("no-validate", false, "skip checksum validation")
		liveCPU    = flag.Bool("live-cpu", false, "measure the CPU side for real using this host and the built-in Go BLAS (GPU stays modeled)")
		liveReps   = flag.Int("live-repeats", 1, "with --live-cpu, measurement repeats per size (fastest kept)")
		experiment = flag.String("experiment", "", "regenerate a paper element instead of sweeping (see package doc); 'all' runs every one")
		list       = flag.Bool("list", false, "list available experiments and exit")

		retries   = flag.Int("retries", 0, "attempts per backend call for transient faults (0/1 = no retry)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for sweep checkpoints; an aborted sweep resumes from the last completed size (empty = off)")
		ckptEvery = flag.Int("checkpoint-every", 0, "samples between checkpoint writes (0 = default 64)")
		faultPlan = flag.String("fault-plan", "", "seeded fault-injection plan (JSON file) to arm on the simulated backends — chaos mode")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}
	// Ctrl-C cancels sweeps (and experiment regenerations) between problem
	// sizes instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *experiment != "" {
		// Experiments sweep many configurations; checksum validation is
		// covered by the main benchmark mode and by the test suite, so it
		// stays off here to keep table regeneration fast.
		opt := experiments.Options{Step: *step, MaxDim: *maxDim, OutDir: *outDir}
		if *experiment == "all" {
			return experiments.RunAll(ctx, os.Stdout, opt)
		}
		e, err := experiments.ByID(*experiment)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s ===\n", e.Title)
		return e.Run(ctx, os.Stdout, opt)
	}

	sys, err := systems.ByName(*systemName)
	if err != nil {
		return err
	}
	cfg := core.Config{
		MinDim: *minDim, MaxDim: *maxDim, Step: *step,
		Iterations: *iters, Alpha: *alpha, Beta: *beta,
		Validate: core.DefaultValidation(),
		Resilience: core.Resilience{
			MaxAttempts:     *retries,
			CheckpointDir:   *ckptDir,
			CheckpointEvery: *ckptEvery,
		},
	}
	cfg.Validate.Enabled = !*noValidate
	var inj *faultinject.Injector
	if *faultPlan != "" {
		plan, err := faultinject.LoadPlan(*faultPlan)
		if err != nil {
			return fmt.Errorf("bad -fault-plan: %w", err)
		}
		inj = plan.Arm()
		sys.CPU.Inject = inj
		sys.GPU.Inject = inj
	}
	if *liveCPU {
		cfg.LiveCPU = &core.LiveCPUTimer{Repeats: *liveReps}
	}
	switch {
	case *cpuOnly && *gpuOnly:
		return fmt.Errorf("--cpu-only and --gpu-only are mutually exclusive")
	case *cpuOnly:
		cfg.Mode = core.ModeCPUOnly
	case *gpuOnly:
		cfg.Mode = core.ModeGPUOnly
	}

	problems, err := selectProblems(*kernel, *problem)
	if err != nil {
		return err
	}
	series, err := core.Run(ctx, sys, problems, []core.Precision{core.F32, core.F64}, cfg)
	if inj != nil {
		st := inj.Stats()
		fmt.Fprintf(os.Stderr, "fault injection: %d evaluations, %d transient, %d hard, %d latency, %d panic\n",
			st.Evaluations, st.Transients, st.Hards, st.Latencies, st.Panics)
	}
	if err != nil {
		return err
	}

	if *outDir != "" {
		paths, err := csvio.WriteAll(*outDir, series)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d CSV files to %s\n", len(paths), *outDir)
	}

	if cfg.Mode == core.ModeBoth {
		printThresholds(series)
		printValidation(series)
	} else {
		fmt.Printf("%s run complete: %d series, %d samples each direction; use blob-threshold to combine CPU and GPU CSVs\n",
			cfg.Mode, len(series), len(series[0].Samples))
	}
	return nil
}

func selectProblems(kernel, problem string) ([]core.ProblemType, error) {
	var pool []core.ProblemType
	switch strings.ToLower(kernel) {
	case "gemm":
		pool = core.GemmProblems
	case "gemv":
		pool = core.GemvProblems
	case "all", "":
		pool = core.AllProblems()
	default:
		return nil, fmt.Errorf("unknown kernel %q (gemm, gemv, all)", kernel)
	}
	if problem == "" {
		return pool, nil
	}
	var out []core.ProblemType
	for _, pt := range pool {
		if pt.Name == problem {
			out = append(out, pt)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no problem type named %q for kernel %q", problem, kernel)
	}
	return out, nil
}

func printThresholds(series []*core.Series) {
	fmt.Println("\nGPU offload thresholds:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Kernel\tProblem\tDefinition\tOnce\tAlways\tUSM\n")
	for _, ser := range series {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			ser.KernelName(), ser.Problem.Name, ser.Problem.Desc,
			ser.Thresholds[xfer.TransferOnce],
			ser.Thresholds[xfer.TransferAlways],
			ser.Thresholds[xfer.Unified])
	}
	tw.Flush()
}

func printValidation(series []*core.Series) {
	validated, failed := 0, 0
	for _, ser := range series {
		validated += ser.ValidatedCount()
		failed += len(ser.ValidationFailures())
	}
	if validated == 0 {
		return
	}
	fmt.Printf("\nchecksum validation: %d samples validated, %d failures (tolerance 0.1%%)\n", validated, failed)
	if failed > 0 {
		for _, ser := range series {
			for _, smp := range ser.ValidationFailures() {
				fmt.Printf("  FAIL %s %s %v cpu=%g gpu=%g\n",
					ser.KernelName(), ser.Problem.Name, smp.Dims, smp.CPUChecksum, smp.GPUChecksum)
			}
		}
	}
}
