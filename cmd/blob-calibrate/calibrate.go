package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/flops"
	"repro/internal/sim/efftab"
	"repro/internal/sim/gpumodel"
	"repro/internal/sim/hw"
)

// Calibration grids: grid parameter p per shape class (the canonical
// dims are ShapeGemm/ShapeGemv of p, so skewed classes reach the same
// characteristic sizes with p values ShapeSkew^(1/dims) smaller).
// Roughly logarithmic spacing keeps the log-size interpolation honest
// while the whole run stays tens of seconds on the pure-Go kernels.
var (
	gemmSquareGrid = []int{16, 20, 24, 32, 40, 48, 64, 80, 96, 128, 160, 192, 256, 320, 384, 512}
	gemmSkewGrid   = []int{8, 10, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 128, 160, 192, 256}
	gemvSquareGrid = []int{32, 64, 128, 256, 512, 1024, 2048, 4096}
	gemvSkewGrid   = []int{16, 32, 64, 128, 256, 512, 1024}

	quickGemmSquareGrid = []int{16, 48, 128}
	quickGemmSkewGrid   = []int{8, 24, 64}
	quickGemvSquareGrid = []int{32, 256, 2048}
	quickGemvSkewGrid   = []int{16, 128, 1024}
)

// gpuSynthGrid covers the reference device's occupancy ramp from nearly
// idle to nearly saturated for both kernels. Spacing is √2 per step:
// in the ramp's deep tail efficiency grows like size² (GEMM output
// elements), i.e. exponentially in log(size), and linear-in-log
// interpolation over a 2x-spaced grid would overshoot that tail by ~25%;
// √2 spacing keeps the structural midpoint error near 6%. A synthetic
// grid costs nothing to densify.
var gpuSynthGrid = []int{
	8, 11, 16, 23, 32, 45, 64, 91, 128, 181, 256, 362, 512, 724,
	1024, 1448, 2048, 2896, 4096, 5793, 8192, 11585, 16384, 23170, 32768, 46341, 65536,
}

// calibIters picks how many back-to-back iterations to time at one grid
// point: enough total FLOPs that the measurement rises above timer
// noise, bounded so huge points stay cheap.
func calibIters(fl int64) int {
	const targetFlops = 24e6
	it := int(targetFlops/float64(fl)) + 1
	if it > 256 {
		it = 256
	}
	return it
}

// runCalibrate measures the live CPU kernels and synthesizes the GPU
// reference table, writing both artifacts.
func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	out := fs.String("out", "bench_data", "directory the efftab artifacts are written to")
	threads := fs.Int("threads", 0, "kernel threads for the live measurements (0 = current setting)")
	repeats := fs.Int("repeats", 3, "fastest-of-N repeats per grid point")
	quick := fs.Bool("quick", false, "small smoke grid (for tests; not for committed tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	start := time.Now()
	cpu := calibrateCPU(*threads, *repeats, *quick)
	gpu := synthesizeGPU(hw.GH200H100)
	cpuPath := filepath.Join(*out, "efftab_cpu.json")
	gpuPath := filepath.Join(*out, "efftab_gpu.json")
	if err := cpu.WriteFile(cpuPath); err != nil {
		return err
	}
	if err := gpu.WriteFile(gpuPath); err != nil {
		return err
	}
	log.Printf("wrote %s (%d series, measured) and %s (%d series, %s) in %.1fs",
		cpuPath, len(cpu.Series), gpuPath, len(gpu.Series), gpu.Source, time.Since(start).Seconds())
	return nil
}

// calibrateCPU runs the live internal/blas kernels over the grid and
// folds the rates into a measured efficiency table: per (kernel,
// precision), Eff is each point's GFLOP/s divided by the best rate that
// pair reached anywhere on the grid.
func calibrateCPU(threads, repeats int, quick bool) *efftab.Table {
	timer := &core.LiveCPUTimer{Threads: threads, Repeats: repeats}
	gemmSq, gemmSk := gemmSquareGrid, gemmSkewGrid
	gemvSq, gemvSk := gemvSquareGrid, gemvSkewGrid
	if quick {
		gemmSq, gemmSk = quickGemmSquareGrid, quickGemmSkewGrid
		gemvSq, gemvSk = quickGemvSquareGrid, quickGemvSkewGrid
	}

	t := &efftab.Table{
		Schema:      efftab.Schema,
		CreatedUnix: time.Now().Unix(),
		Source:      "live-blas",
		RefPeakGF:   map[string]float64{},
		Host:        efftab.CurrentHost(),
	}
	for _, prec := range []struct {
		token    string
		elemSize int
	}{{"f32", 4}, {"f64", 8}} {
		for _, class := range efftab.GemmClasses {
			grid := gemmSq
			if class != "square" {
				grid = gemmSk
			}
			s := efftab.Series{Kernel: "gemm", Precision: prec.token, Class: class}
			for _, p := range grid {
				m, n, k := efftab.ShapeGemm(class, p)
				fl := flops.Gemm(m, n, k, flops.Beta{IsZero: true})
				iters := calibIters(fl)
				sec := timer.GemmSeconds(prec.elemSize, m, n, k, true, iters)
				gf := flops.GFLOPS(int64(iters)*fl, sec)
				s.Points = append(s.Points, efftab.Point{Size: efftab.GemmSize(m, n, k), GFlops: gf})
			}
			t.Series = append(t.Series, s)
		}
		for _, class := range efftab.GemvClasses {
			grid := gemvSq
			if class != "square" {
				grid = gemvSk
			}
			s := efftab.Series{Kernel: "gemv", Precision: prec.token, Class: class}
			for _, p := range grid {
				m, n := efftab.ShapeGemv(class, p)
				fl := flops.Gemv(m, n, flops.Beta{IsZero: true})
				iters := calibIters(fl)
				sec := timer.GemvSeconds(prec.elemSize, m, n, true, iters)
				gf := flops.GFLOPS(int64(iters)*fl, sec)
				s.Points = append(s.Points, efftab.Point{Size: efftab.GemvSize(m, n), GFlops: gf})
			}
			t.Series = append(t.Series, s)
		}
	}
	normalize(t)
	return t
}

// normalize converts raw GFLOP/s into relative efficiency: each point's
// rate divided by the best rate its (kernel, precision) pair reached,
// recorded in RefPeakGF so the normalization base stays auditable.
func normalize(t *efftab.Table) {
	best := map[string]float64{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			key := s.Kernel + "/" + s.Precision
			if p.GFlops > best[key] {
				best[key] = p.GFlops
			}
		}
	}
	for key, gf := range best {
		t.RefPeakGF[key] = gf
	}
	for si := range t.Series {
		s := &t.Series[si]
		ref := best[s.Kernel+"/"+s.Precision]
		for pi := range s.Points {
			eff := 0.0
			if ref > 0 {
				eff = s.Points[pi].GFlops / ref
			}
			if eff < 1e-6 {
				eff = 1e-6
			}
			if eff > 1 {
				eff = 1
			}
			s.Points[pi].Eff = eff
		}
	}
}

// synthesizeGPU samples the reference analytic occupancy ramp into a
// table: there is no GPU in this environment to measure, so the GPU
// blackbox path interpolates the reference device's curve instead (the
// "synthetic-GPU table path"). Source records the device so the
// fidelity gate can replay the exact model it was sampled from.
func synthesizeGPU(spec hw.GPUSpec) *efftab.Table {
	model := gpumodel.RampEff(spec)
	t := &efftab.Table{
		Schema:      efftab.Schema,
		CreatedUnix: time.Now().Unix(),
		Source:      "synthetic:" + refGPUName(spec),
		RefPeakGF:   map[string]float64{},
		Host:        efftab.CurrentHost(),
	}
	for _, prec := range []struct {
		token    string
		elemSize int
	}{{"f32", 4}, {"f64", 8}} {
		peak := spec.Peak(prec.elemSize)
		for _, kernel := range []string{"gemm", "gemv"} {
			classes := efftab.GemmClasses
			if kernel == "gemv" {
				classes = efftab.GemvClasses
			}
			for _, class := range classes {
				s := efftab.Series{Kernel: kernel, Precision: prec.token, Class: class}
				for _, p := range gpuSynthGrid {
					var size float64
					if kernel == "gemm" {
						m, n, k := efftab.ShapeGemm(class, p)
						size = efftab.GemmSize(m, n, k)
					} else {
						m, n := efftab.ShapeGemv(class, p)
						size = efftab.GemvSize(m, n)
					}
					eff, ok := model(kernel, prec.token, class, size)
					if !ok || eff <= 0 {
						continue
					}
					s.Points = append(s.Points, efftab.Point{Size: size, GFlops: peak * eff, Eff: eff})
				}
				t.Series = append(t.Series, s)
			}
		}
	}
	return t
}

// refGPUDevices maps the Source token of a synthetic table back onto its
// hardware descriptor, so the fidelity gate can rebuild the reference
// model from the artifact alone.
var refGPUDevices = map[string]hw.GPUSpec{
	"GH200H100": hw.GH200H100,
}

// refGPUName names a spec for the Source field (inverse of
// refGPUDevices).
func refGPUName(spec hw.GPUSpec) string {
	for name, s := range refGPUDevices {
		if s.Name == spec.Name {
			return name
		}
	}
	panic(fmt.Sprintf("blob-calibrate: no Source token for device %q", spec.Name))
}
