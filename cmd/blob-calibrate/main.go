// blob-calibrate is the calibration pipeline behind the sims' blackbox
// mode, split into three subcommands:
//
//	blob-calibrate calibrate [-out dir] [-threads N] [-repeats N] [-quick]
//	blob-calibrate compare   [-step N] [-d maxdim]
//	blob-calibrate fidelity  [-dir dir] [-report FIDELITY.md] [-v]
//
// calibrate runs the repository's own live BLAS kernels
// (internal/blas) across a (kernel, precision, shape-class, size) grid
// and writes the measured CPU efficiency table to
// bench_data/efftab_cpu.json, plus a synthetic GPU table sampled from
// the reference analytic occupancy ramp to bench_data/efftab_gpu.json —
// schema-versioned JSON artifacts with a host block, the same
// discipline as BENCH_<tag>.json.
//
// compare keeps the original tuning view: it prints the offload
// thresholds the models currently produce for the paper's headline
// experiments side by side with the published values (Tables III and
// IV), so model constants can be tuned and drift spotted at a glance.
// Running blob-calibrate with no subcommand still means compare.
//
// fidelity is the model-fidelity gate verify.sh runs: it loads the
// committed tables (no kernel re-runs), computes modeled-vs-measured
// relative error over their grids — leave-one-out for the measured CPU
// table, reference-model midpoints for the synthetic GPU table — and
// fails when any series leaves the documented error bands
// (efftab.MaxMeasured*/MaxSynthetic*), writing the FIDELITY.md report.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	args := os.Args[1:]
	cmd := "compare"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "calibrate":
		err = runCalibrate(args)
	case "compare":
		err = runCompare(args)
	case "fidelity":
		err = runFidelity(args)
	default:
		err = fmt.Errorf("unknown subcommand %q (try calibrate, compare, fidelity)", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}
