package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// paper holds the published thresholds: [system][iters][strategy] as
// "sgemm:dgemm" strings ("—" = none). Source: Tables III and IV.
type paperRow map[xfer.Strategy]string

var paperGemm = map[string]map[int]paperRow{
	"DAWN": {
		1:   {xfer.TransferOnce: "629:582", xfer.TransferAlways: "629:582", xfer.Unified: "657:626"},
		8:   {xfer.TransferOnce: "572:485", xfer.TransferAlways: "629:603", xfer.Unified: "596:529"},
		32:  {xfer.TransferOnce: "514:377", xfer.TransferAlways: "1018:833", xfer.Unified: "509:389"},
		64:  {xfer.TransferOnce: "514:361", xfer.TransferAlways: "1153:1153", xfer.Unified: "465:436"},
		128: {xfer.TransferOnce: "514:361", xfer.TransferAlways: "1265:1153", xfer.Unified: "412:377"},
	},
	"LUMI": {
		1:   {xfer.TransferOnce: "502:237", xfer.TransferAlways: "441:234", xfer.Unified: "—:—"},
		8:   {xfer.TransferOnce: "153:125", xfer.TransferAlways: "512:256", xfer.Unified: "606:539"},
		32:  {xfer.TransferOnce: "2:2", xfer.TransferAlways: "512:461", xfer.Unified: "442:256"},
		64:  {xfer.TransferOnce: "2:2", xfer.TransferAlways: "589:961", xfer.Unified: "381:239"},
		128: {xfer.TransferOnce: "2:2", xfer.TransferAlways: "512:1009", xfer.Unified: "189:153"},
	},
	"Isambard-AI": {
		1:   {xfer.TransferOnce: "26:26", xfer.TransferAlways: "26:26", xfer.Unified: "196:411"},
		8:   {xfer.TransferOnce: "26:26", xfer.TransferAlways: "26:26", xfer.Unified: "26:26"},
		32:  {xfer.TransferOnce: "26:26", xfer.TransferAlways: "26:26", xfer.Unified: "26:26"},
		64:  {xfer.TransferOnce: "26:26", xfer.TransferAlways: "26:26", xfer.Unified: "26:26"},
		128: {xfer.TransferOnce: "26:26", xfer.TransferAlways: "26:26", xfer.Unified: "26:26"},
	},
}

var paperGemv = map[string]map[int]paperRow{
	"DAWN": {
		1:   {xfer.TransferOnce: "—:—", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		8:   {xfer.TransferOnce: "4089:3840", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		32:  {xfer.TransferOnce: "4081:3065", xfer.TransferAlways: "—:—", xfer.Unified: "4089:3521"},
		64:  {xfer.TransferOnce: "3953:3065", xfer.TransferAlways: "—:—", xfer.Unified: "4081:3361"},
		128: {xfer.TransferOnce: "4081:3321", xfer.TransferAlways: "—:—", xfer.Unified: "4089:3481"},
	},
	"LUMI": {
		1:   {xfer.TransferOnce: "—:—", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		8:   {xfer.TransferOnce: "952:1197", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		32:  {xfer.TransferOnce: "569:617", xfer.TransferAlways: "—:—", xfer.Unified: "2129:1885"},
		64:  {xfer.TransferOnce: "529:601", xfer.TransferAlways: "—:—", xfer.Unified: "1219:1205"},
		128: {xfer.TransferOnce: "465:545", xfer.TransferAlways: "—:—", xfer.Unified: "754:909"},
	},
	"Isambard-AI": {
		1:   {xfer.TransferOnce: "—:—", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		8:   {xfer.TransferOnce: "256:256", xfer.TransferAlways: "—:—", xfer.Unified: "—:—"},
		32:  {xfer.TransferOnce: "256:249", xfer.TransferAlways: "—:—", xfer.Unified: "256:255"},
		64:  {xfer.TransferOnce: "256:249", xfer.TransferAlways: "—:—", xfer.Unified: "256:251"},
		128: {xfer.TransferOnce: "256:249", xfer.TransferAlways: "—:—", xfer.Unified: "256:249"},
	},
}

func fmtThresh(s, d core.Threshold) string {
	f := func(t core.Threshold) string {
		if !t.Found {
			return "—"
		}
		return fmt.Sprintf("%d", t.Dims.M)
	}
	return f(s) + ":" + f(d)
}

// runCompare prints model thresholds next to the paper's published ones.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	step := fs.Int("step", 1, "sweep stride (1 = every size, slower)")
	maxDim := fs.Int("d", 4096, "sweep upper bound")
	if err := fs.Parse(args); err != nil {
		return err
	}

	iters := []int{1, 8, 32, 64, 128}
	for _, kernel := range []core.KernelKind{core.GEMM, core.GEMV} {
		pt, err := core.FindProblem(kernel, "square")
		if err != nil {
			return err
		}
		paper := paperGemm
		if kernel == core.GEMV {
			paper = paperGemv
		}
		fmt.Printf("== Square %v (model vs paper), d=%d step=%d ==\n", kernel, *maxDim, *step)
		fmt.Printf("%-12s %5s | %-23s %-23s %-23s\n", "system", "iters", "Once (model|paper)", "Always (model|paper)", "USM (model|paper)")
		for _, sys := range systems.All() {
			for _, it := range iters {
				cfg := core.DefaultConfig(it)
				cfg.Step = *step
				cfg.MaxDim = *maxDim
				cfg.Validate.Enabled = false
				s32, err := core.RunProblem(context.Background(), sys, pt, core.F32, cfg)
				if err != nil {
					return err
				}
				s64, err := core.RunProblem(context.Background(), sys, pt, core.F64, cfg)
				if err != nil {
					return err
				}
				fmt.Printf("%-12s %5d |", sys.Name, it)
				for _, st := range xfer.Strategies {
					model := fmtThresh(s32.Thresholds[st], s64.Thresholds[st])
					fmt.Printf(" %-11s|%-11s", model, paper[sys.Name][it][st])
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}
	return nil
}
