package repro_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestBenchmarkIndexCoversRegistry is the drift check behind
// EXPERIMENTS.md's benchmark index: every experiment in the registry must
// have a testing.B benchmark in bench_test.go, every benchmarked ID must
// exist in the registry, and the EXPERIMENTS.md index table must name
// them all. Adding an experiment without its benchmark (or renaming an
// ID in one place only) fails here instead of rotting silently.
func TestBenchmarkIndexCoversRegistry(t *testing.T) {
	src, err := os.ReadFile("bench_test.go")
	if err != nil {
		t.Fatal(err)
	}
	benched := map[string]bool{}
	for _, m := range regexp.MustCompile(`runExperiment\(b, "([^"]+)"`).FindAllStringSubmatch(string(src), -1) {
		benched[m[1]] = true
	}
	if len(benched) == 0 {
		t.Fatal("no runExperiment calls found in bench_test.go")
	}

	registered := map[string]bool{}
	for _, e := range experiments.Registry {
		registered[e.ID] = true
		if !benched[e.ID] {
			t.Errorf("experiment %q has no benchmark in bench_test.go", e.ID)
		}
	}
	for id := range benched {
		if !registered[id] {
			t.Errorf("bench_test.go benchmarks %q, which is not in the experiments registry", id)
		}
	}

	md, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(md)
	if !strings.Contains(doc, "## Benchmark index") {
		t.Fatal("EXPERIMENTS.md is missing the Benchmark index section")
	}
	for id := range registered {
		if !strings.Contains(doc, "`"+id+"`") {
			t.Errorf("EXPERIMENTS.md benchmark index does not mention experiment %q", id)
		}
	}
}
