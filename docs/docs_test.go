// Package docs pins the reference documentation to the code it
// describes: every ```go fence must parse, every schema token and wire
// field named by the code must appear in the page that documents it,
// and every CLI flag the pages mention must still exist in the command
// sources. A doc that drifts from the contract fails `go test ./docs`.
package docs

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/benchmark"
	"repro/internal/netfault"
	"repro/internal/service"
	"repro/internal/sim/efftab"
)

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(data)
}

// jsonFields walks a struct type (recursing into embedded structs) and
// returns every JSON wire name it serialises.
func jsonFields(t reflect.Type) []string {
	var out []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Anonymous && f.Type.Kind() == reflect.Struct {
			out = append(out, jsonFields(f.Type)...)
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag != "" && tag != "-" {
			out = append(out, tag)
		}
	}
	return out
}

// TestAPIDocCoversWireContract: API.md must name every v1 schema token,
// every machine-readable error code, and every wire field of the
// request/response bodies it documents. Renaming a field or adding an
// endpoint without updating the reference fails here.
func TestAPIDocCoversWireContract(t *testing.T) {
	doc := readDoc(t, "API.md")
	for _, token := range []string{
		service.SchemaAdvise, service.SchemaThreshold, service.SchemaDispatch,
		service.SchemaHealth, service.SchemaReady, service.SchemaError,
	} {
		if !strings.Contains(doc, token) {
			t.Errorf("API.md does not mention schema token %q", token)
		}
	}
	codes := []string{
		"bad_request", "method_not_allowed", "not_found", "internal",
		"queue_full", "over_quota", "deadline_budget", "breaker_open",
		"shutting_down", "deadline_exceeded", "abandoned",
		"not_ready", "no_peer",
	}
	for _, c := range codes {
		if !strings.Contains(doc, "`"+c+"`") {
			t.Errorf("API.md does not document error code %q", c)
		}
	}
	wire := map[string]reflect.Type{
		"Envelope":          reflect.TypeOf(service.Envelope{}),
		"APIError":          reflect.TypeOf(service.APIError{}),
		"HealthBody":        reflect.TypeOf(service.HealthBody{}),
		"ReadyBody":         reflect.TypeOf(service.ReadyBody{}),
		"AdviseRequest":     reflect.TypeOf(service.AdviseRequest{}),
		"AdviseResponse":    reflect.TypeOf(service.AdviseResponse{}),
		"VerdictBody":       reflect.TypeOf(service.VerdictBody{}),
		"SummaryBody":       reflect.TypeOf(service.SummaryBody{}),
		"ThresholdRequest":  reflect.TypeOf(service.ThresholdRequest{}),
		"ThresholdResponse": reflect.TypeOf(service.ThresholdResponse{}),
		"DispatchRequest":   reflect.TypeOf(service.DispatchRequest{}),
		"DispatchResponse":  reflect.TypeOf(service.DispatchResponse{}),
		"DecisionBody":      reflect.TypeOf(service.DecisionBody{}),
	}
	for name, typ := range wire {
		for _, field := range jsonFields(typ) {
			if !strings.Contains(doc, field) {
				t.Errorf("API.md does not mention %s field %q", name, field)
			}
		}
	}
	for _, header := range []string{"X-API-Key", "X-Deadline-Ms", "X-Blob-Peer-Fill", "Retry-After", "Deprecation"} {
		if !strings.Contains(doc, header) {
			t.Errorf("API.md does not mention the %s header", header)
		}
	}
}

// TestAPIDocCoversHedging: API.md must document the gateway's hedging
// and deadline-budget semantics (DESIGN.md §17) — the observable metric
// names and the route restriction — so the hedge contract cannot drift
// undocumented.
func TestAPIDocCoversHedging(t *testing.T) {
	doc := readDoc(t, "API.md")
	for _, tok := range []string{
		"blob_gateway_hedges_total",
		"blob_gateway_hedge_wins_total",
		"blob_gateway_deadline_exhausted_total",
		"/v1/dispatch` is never hedged",
	} {
		if !strings.Contains(doc, tok) {
			t.Errorf("API.md does not mention %q", tok)
		}
	}
}

// TestArtifactsDocCoversSchemas: ARTIFACTS.md must name every artifact
// schema token and the wire fields of the formats it documents.
func TestArtifactsDocCoversSchemas(t *testing.T) {
	doc := readDoc(t, "ARTIFACTS.md")
	tokens := []string{
		fmt.Sprintf(`"schema_version": %d`, benchmark.SchemaVersion),
		"blob-soak/v1",
		efftab.Schema,
		"blobvet-baseline/v1",
		netfault.SchemaVersion,
	}
	for _, tok := range tokens {
		if !strings.Contains(doc, tok) {
			t.Errorf("ARTIFACTS.md does not mention schema token %q", tok)
		}
	}
	wire := map[string]reflect.Type{
		"benchmark.Artifact":   reflect.TypeOf(benchmark.Artifact{}),
		"benchmark.CaseResult": reflect.TypeOf(benchmark.CaseResult{}),
		"efftab.Table":         reflect.TypeOf(efftab.Table{}),
		"efftab.Series":        reflect.TypeOf(efftab.Series{}),
		"efftab.Point":         reflect.TypeOf(efftab.Point{}),
	}
	for name, typ := range wire {
		for _, field := range jsonFields(typ) {
			if !strings.Contains(doc, field) {
				t.Errorf("ARTIFACTS.md does not mention %s field %q", name, field)
			}
		}
	}
}

// TestDocFlagsExist cross-checks the CLI flags the docs mention against
// the command sources: a renamed flag fails here until the doc follows.
func TestDocFlagsExist(t *testing.T) {
	cases := []struct {
		doc, src string
		flags    []string
	}{
		{"ARTIFACTS.md", "../cmd/blob-bench/main.go", []string{"tag", "reps", "warmup", "smoke", "run", "compare"}},
		{"ARTIFACTS.md", "../cmd/blob-calibrate/calibrate.go", []string{"out", "threads", "repeats", "quick"}},
		{"ARTIFACTS.md", "../cmd/blob-calibrate/fidelity.go", []string{"dir", "report"}},
		{"ARTIFACTS.md", "../cmd/blob-threshold/main.go", []string{"checkpoint"}},
		{"API.md", "../cmd/blob-gateway/main.go", []string{"hedge", "hedge-after", "hedge-min", "hedge-max"}},
		{"API.md", "../cmd/blob-served/main.go", []string{"min-sweep-budget"}},
	}
	for _, tc := range cases {
		doc := readDoc(t, tc.doc)
		src := readDoc(t, tc.src)
		for _, f := range tc.flags {
			if !strings.Contains(doc, "`-"+f+"`") {
				t.Errorf("%s does not mention flag -%s", tc.doc, f)
			}
			if !strings.Contains(src, `"`+f+`"`) {
				t.Errorf("%s documents flag -%s but %s no longer declares it", tc.doc, f, tc.src)
			}
		}
	}
}

// TestDocsGoFencesParse mirrors the repo-root docs gate for the pages
// under docs/: every ```go fence must parse as a file, a set of
// declarations, or a statement sequence.
func TestDocsGoFencesParse(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		doc := readDoc(t, e.Name())
		for _, f := range goFences(doc) {
			checked++
			if err := parseFragment(f.src); err != nil {
				t.Errorf("%s:%d: go fence does not parse: %v\n%s", e.Name(), f.line, err, f.src)
			}
		}
	}
	if checked == 0 {
		t.Error("no ```go fences found under docs/; the reference pages should show code")
	}
}

type fence struct {
	line int
	src  string
}

func goFences(md string) []fence {
	var out []fence
	lines := strings.Split(md, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, fence{line: start, src: strings.Join(body, "\n")})
	}
	return out
}

func parseFragment(src string) error {
	fset := token.NewFileSet()
	attempts := []string{
		src,
		"package p\n" + src,
		"package p\nfunc _() {\n" + src + "\n}",
	}
	var firstErr error
	for _, a := range attempts {
		if _, err := parser.ParseFile(fset, "fence.go", a, parser.SkipObjectResolution); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("not a file, declarations, or statements (file reading: %v)", firstErr)
}
