// SoC study: does a system-on-chip design change when to offload?
//
// The paper's second headline question (§I): do SoC devices like the GH200
// change how we should approach GPU utilisation for GEMM and GEMV? This
// example quantifies the contrast between the PCIe-attached systems (DAWN,
// LUMI) and the NVLink-C2C GH200 (Isambard-AI) in three ways:
//
//  1. raw transfer cost of shipping a working set to the GPU,
//  2. the fraction of total GPU time spent moving data, per strategy,
//  3. the square GEMM and GEMV offload thresholds side by side.
//
// Run with: go run ./examples/soc-study
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	all := systems.All()

	fmt.Println("step 1: cost of moving one square SGEMM working set (M=N=K=2048, 48 MiB) to the GPU")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  System\tInterconnect\tBandwidth\tLatency\tTransfer time\n")
	for _, sys := range all {
		toDev, _ := xfer.GemmBytes(4, 2048, 2048, 2048)
		us := sys.GPU.Link.TransferTimeUS(toDev)
		fmt.Fprintf(tw, "  %s\t%s\t%.0f GB/s\t%.1f µs\t%.0f µs\n",
			sys.Name, sys.GPU.Link.Name, sys.GPU.Link.BWGBs, sys.GPU.Link.LatencyUS, us)
	}
	tw.Flush()

	fmt.Println("\nstep 2: share of GPU time spent on data movement (SGEMM 1024³, 8 iterations)")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  System\tOnce\tAlways\tUSM\n")
	for _, sys := range all {
		fmt.Fprintf(tw, "  %s", sys.Name)
		for _, st := range xfer.Strategies {
			total := sys.GPU.GemmSeconds(st, 4, 1024, 1024, 1024, true, 8)
			// Compute-only time: a hypothetical free interconnect.
			free := sys.GPU
			free.Link.BWGBs = 1e9
			free.Link.LatencyUS = 0
			free.USM.FaultLatencyUS = 0
			free.USM.MigrationBWFactor = 1
			compute := free.GemmSeconds(xfer.TransferOnce, 4, 1024, 1024, 1024, true, 8)
			fmt.Fprintf(tw, "\t%.0f%%", 100*(total-compute)/total)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\nstep 3: square offload thresholds, GEMM vs GEMV (Transfer-Once, 8 iterations)")
	cfg := core.DefaultConfig(8)
	cfg.Validate.Enabled = false
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  System\tSGEMM\tSGEMV\n")
	for _, sys := range all {
		row := []string{}
		for _, kernel := range []core.KernelKind{core.GEMM, core.GEMV} {
			pt, err := core.FindProblem(kernel, "square")
			if err != nil {
				log.Fatal(err)
			}
			ser, err := core.RunProblem(context.Background(), sys, pt, core.F32, cfg)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, ser.Thresholds[xfer.TransferOnce].String())
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", sys.Name, row[0], row[1])
	}
	tw.Flush()

	fmt.Println("\nconclusion: on the SoC the offload penalty all but disappears — even GEMV,")
	fmt.Println("traditionally kept on the CPU, crosses over at a small, static size (§V:")
	fmt.Println("\"our GEMV-based mantra must change\"). On PCIe-attached systems the old")
	fmt.Println("mantra survives, but only as a function of library, shape and re-use.")
}
