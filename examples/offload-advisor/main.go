// Offload advisor: the paper's §III-D use case as a tool.
//
// Given an application's BLAS profile — kernel, matrix shape, how many
// back-to-back calls it makes, and how its data moves — the advisor
// compares the modeled CPU and GPU times on each HPC system and answers
// the question GPU-BLOB exists to answer: is porting this code to the GPU
// worth it, and by how much? The speedup column addresses the paper's own
// caveat that "the offload threshold alone does not indicate by how much
// the GPU outperforms the CPU" (§V).
//
//	go run ./examples/offload-advisor -kernel gemm -m 2048 -n 2048 -k 64 -calls 32 -reuse high
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/flops"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	var (
		kernel = flag.String("kernel", "gemm", "gemm or gemv")
		m      = flag.Int("m", 2048, "rows of A / C")
		n      = flag.Int("n", 2048, "columns of B / C (GEMM) or of A (GEMV)")
		k      = flag.Int("k", 64, "inner dimension (GEMM only)")
		calls  = flag.Int("calls", 32, "back-to-back BLAS calls between data changes")
		f64    = flag.Bool("f64", false, "double precision")
		reuse  = flag.String("reuse", "high", "data re-use: high (Transfer-Once), low (Transfer-Always), or usm")
	)
	flag.Parse()

	strategy, err := parseReuse(*reuse)
	if err != nil {
		log.Fatal(err)
	}
	prec := core.F32
	if *f64 {
		prec = core.F64
	}
	es := prec.ElemSize()
	beta := flops.Beta{IsZero: true}

	var flopsPerCall int64
	var desc string
	if *kernel == "gemv" {
		flopsPerCall = flops.Gemv(*m, *n, beta)
		desc = fmt.Sprintf("%sGEMV {%d, %d}", prec, *m, *n)
	} else {
		flopsPerCall = flops.Gemm(*m, *n, *k, beta)
		desc = fmt.Sprintf("%sGEMM {%d, %d, %d}", prec, *m, *n, *k)
	}
	fmt.Printf("workload: %s, %d calls, %s data movement, %.3g FLOPs/call\n",
		desc, *calls, strategy, float64(flopsPerCall))
	if *kernel == "gemv" {
		fmt.Printf("arithmetic intensity: %.3f FLOP/byte\n\n", flops.GemvIntensity(*m, *n, es, beta))
	} else {
		fmt.Printf("arithmetic intensity: %.3f FLOP/byte\n\n", flops.GemmIntensity(*m, *n, *k, es, beta))
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tCPU time\tGPU time (%s)\tVerdict\tGPU speedup\n", strategy)
	for _, sys := range systems.All() {
		var cpu, gpu float64
		if *kernel == "gemv" {
			cpu = sys.CPU.GemvSeconds(es, *m, *n, true, *calls)
			gpu = sys.GPU.GemvSeconds(strategy, es, *m, *n, true, *calls)
		} else {
			cpu = sys.CPU.GemmSeconds(es, *m, *n, *k, true, *calls)
			gpu = sys.GPU.GemmSeconds(strategy, es, *m, *n, *k, true, *calls)
		}
		verdict := "keep on CPU"
		if gpu < cpu {
			verdict = "offload to GPU"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.2fx\n", sys.Name, fmtDur(cpu), fmtDur(gpu), verdict, cpu/gpu)
	}
	tw.Flush()

	fmt.Println("\nnote: speedups below ~1.5x rarely justify a porting effort (§V);")
	fmt.Println("re-run with -reuse low if the data changes between calls.")
}

func parseReuse(s string) (xfer.Strategy, error) {
	switch s {
	case "high":
		return xfer.TransferOnce, nil
	case "low":
		return xfer.TransferAlways, nil
	case "usm":
		return xfer.Unified, nil
	}
	return 0, fmt.Errorf("unknown reuse %q (high, low, usm)", s)
}

func fmtDur(sec float64) string {
	switch {
	case sec >= 1:
		return fmt.Sprintf("%.2f s", sec)
	case sec >= 1e-3:
		return fmt.Sprintf("%.2f ms", sec*1e3)
	default:
		return fmt.Sprintf("%.1f µs", sec*1e6)
	}
}
