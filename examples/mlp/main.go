// A multi-layer perceptron forward pass on the repository's kernels — the
// neural-network workload the paper's intro cites as a GEMM consumer (§I,
// §III-C). The batch dimension makes every layer a non-square GEMM
// {batch, width, width}, and inference re-issues the same weights for every
// batch: exactly the Transfer-Once, high-reuse pattern of §III-B2.
//
// The example runs the same network in float32 and in FP16
// storage/float32-accumulate (internal/half, the §V extension), compares
// the outputs, times both on this host, and asks the offload models where
// each paper system would run the layers.
//
//	go run ./examples/mlp [-batch 256] [-width 512] [-layers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/blas"
	"repro/internal/half"
	"repro/internal/matrix"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	batch := flag.Int("batch", 256, "batch size")
	width := flag.Int("width", 512, "hidden width")
	layers := flag.Int("layers", 4, "hidden layers")
	batches := flag.Int("batches", 16, "number of batches (re-uses of the weights)")
	flag.Parse()

	b, w, nl := *batch, *width, *layers
	rng := matrix.NewRNG(3)

	// Weights: nl layers of w x w, He-style scaling so activations stay
	// bounded through ReLUs.
	scale := float32(math.Sqrt(2.0 / float64(w)))
	weights := make([][]float32, nl)
	for l := range weights {
		weights[l] = make([]float32, w*w)
		for i := range weights[l] {
			weights[l][i] = (rng.Float32()*2 - 1) * scale
		}
	}
	input := make([]float32, b*w)
	for i := range input {
		input[i] = rng.Float32()*2 - 1
	}

	// Float32 forward pass: X_{l+1} = relu(X_l * W_l).
	forward32 := func() []float32 {
		x := append([]float32(nil), input...)
		y := make([]float32, b*w)
		for l := 0; l < nl; l++ {
			blas.OptSgemm(blas.NoTrans, blas.NoTrans, b, w, w, 1, x, b, weights[l], w, 0, y, b)
			for i := range y {
				if y[i] < 0 {
					y[i] = 0
				}
			}
			x, y = y, x
		}
		return x
	}

	// FP16 forward pass: weights and activations stored as Float16,
	// accumulated in float32 (the matrix-engine contract).
	weights16 := make([][]half.Float16, nl)
	for l := range weights {
		weights16[l] = half.FromFloat32s(nil, weights[l])
	}
	forward16 := func() []half.Float16 {
		x := half.FromFloat32s(nil, input)
		y := make([]half.Float16, b*w)
		zero16 := half.FromFloat32(0)
		for l := 0; l < nl; l++ {
			half.Hgemm(blas.NoTrans, blas.NoTrans, b, w, w, 1, x, b, weights16[l], w, 0, y, b)
			for i := range y {
				if y[i].Float32() < 0 {
					y[i] = zero16
				}
			}
			x, y = y, x
		}
		return x
	}

	start := time.Now()
	var out32 []float32
	for i := 0; i < *batches; i++ {
		out32 = forward32()
	}
	t32 := time.Since(start)
	start = time.Now()
	var out16 []half.Float16
	for i := 0; i < *batches; i++ {
		out16 = forward16()
	}
	t16 := time.Since(start)

	// Output agreement between precisions. Relative error is only
	// meaningful away from zero (fp16 quantisation can flip the sign of a
	// near-zero pre-ReLU value), so it is measured against outputs above a
	// twentieth of the RMS magnitude.
	var rms float64
	for _, v := range out32 {
		rms += float64(v) * float64(v)
	}
	rms = math.Sqrt(rms / float64(len(out32)))
	var maxRel, meanAbs float64
	var nonZero int
	for i := range out32 {
		f32 := float64(out32[i])
		f16 := float64(out16[i].Float32())
		meanAbs += math.Abs(f32 - f16)
		if math.Abs(f32) > rms/20 {
			nonZero++
			if rel := math.Abs(f32-f16) / math.Abs(f32); rel > maxRel {
				maxRel = rel
			}
		}
	}
	meanAbs /= float64(len(out32))
	flopsPerPass := 2 * float64(nl) * float64(b) * float64(w) * float64(w)
	fmt.Printf("network: %d layers of %d, batch %d  (%.1f MFLOPs per forward pass)\n",
		nl, w, b, flopsPerPass/1e6)
	fmt.Printf("float32 pass: %8.2f ms/batch on this host\n", t32.Seconds()/float64(*batches)*1e3)
	fmt.Printf("fp16 pass:    %8.2f ms/batch (storage-only fp16; conversions cost on a CPU)\n",
		t16.Seconds()/float64(*batches)*1e3)
	fmt.Printf("agreement: mean |Δ| %.2e, max relative error %.3f%% over %d significant outputs\n\n",
		meanAbs, maxRel*100, nonZero)

	// Where would the paper's systems run one layer's GEMM?
	fmt.Printf("offload advice per layer GEMM {%d, %d, %d}, %d consecutive batches (Transfer-Once):\n",
		b, w, w, *batches)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tCPU f32\tGPU f32\tGPU f16\tVerdict\n")
	for _, sys := range systems.All() {
		cpu := sys.CPU.GemmSeconds(4, b, w, w, true, *batches)
		gpu32 := sys.GPU.GemmSeconds(xfer.TransferOnce, 4, b, w, w, true, *batches)
		gpu16 := sys.GPU.GemmSeconds(xfer.TransferOnce, 2, b, w, w, true, *batches)
		verdict := "CPU"
		if gpu32 < cpu || gpu16 < cpu {
			verdict = "GPU"
			if gpu16 < gpu32 {
				verdict = "GPU (fp16)"
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f ms\t%.2f ms\t%.2f ms\t%s\n",
			sys.Name, cpu*1e3, gpu32*1e3, gpu16*1e3, verdict)
	}
	tw.Flush()
}
