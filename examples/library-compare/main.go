// Library compare: §IV-B's LUMI GEMV investigation as a runnable story.
//
// The paper discovered that LUMI's surprisingly low GEMV offload thresholds
// were an artifact of AOCL not parallelising GEMV at all — perf stat showed
// an SGEMV using 0.89 CPUs while an SGEMM used 50.2 — and that switching
// the CPU library to OpenBLAS erased every GEMV offload threshold. This
// example replays that investigation end to end:
//
//  1. measure effective CPU utilisation per kernel (the perf-stat step),
//  2. compare AOCL vs OpenBLAS DGEMV performance curves (Fig 6),
//  3. recompute the square GEMV offload thresholds under both libraries.
//
// Run with: go run ./examples/library-compare
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	aocl := systems.LUMI()
	openblas := systems.LUMIOpenBLAS()

	fmt.Println("step 1: effective CPU utilisation on LUMI (perf stat equivalent)")
	fmt.Printf("  AOCL     SGEMV M=N=2048:   %5.2f CPUs\n", aocl.CPU.EffectiveCPUs("gemv", 4, 2048, 2048, 0))
	fmt.Printf("  AOCL     SGEMM M=N=K=2048: %5.1f CPUs\n", aocl.CPU.EffectiveCPUs("gemm", 4, 2048, 2048, 2048))
	fmt.Printf("  OpenBLAS SGEMV M=N=2048:   %5.1f CPUs\n", openblas.CPU.EffectiveCPUs("gemv", 4, 2048, 2048, 0))
	fmt.Println("  -> AOCL runs GEMV on a single core; that is the whole story.")

	fmt.Println("\nstep 2: square DGEMV CPU performance, 128 iterations (Fig 6)")
	pt, err := core.FindProblem(core.GEMV, "square")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(128)
	cfg.Validate.Enabled = false
	var chart plot.Chart
	chart.Title = "AOCL vs OpenBLAS square DGEMV CPU performance (128 iterations) on LUMI"
	chart.XLabel, chart.YLabel, chart.LogY = "M=N", "GFLOP/s", true
	var serAOCL, serOpen *core.Series
	for _, sys := range []systems.System{aocl, openblas} {
		ser, err := core.RunProblem(context.Background(), sys, pt, core.F64, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if sys.Name == aocl.Name {
			serAOCL = ser
		} else {
			serOpen = ser
		}
		curve := plot.Curve{Label: ser.CPULibrary}
		for _, smp := range ser.Samples {
			curve.X = append(curve.X, float64(smp.Dims.M))
			curve.Y = append(curve.Y, smp.CPUGflops)
		}
		chart.Curves = append(chart.Curves, plot.Downsample(curve, 140))
	}
	fmt.Print(chart.ASCII(100, 20))

	fmt.Println("\nstep 3: square GEMV offload thresholds under each CPU library")
	fmt.Printf("  %-22s %-12s %-12s %-12s\n", "library", "Once", "Always", "USM")
	for _, ser := range []*core.Series{serAOCL, serOpen} {
		fmt.Printf("  %-22s %-12s %-12s %-12s\n", ser.CPULibrary,
			ser.Thresholds[xfer.TransferOnce].String(),
			ser.Thresholds[xfer.TransferAlways].String(),
			ser.Thresholds[xfer.Unified].String())
	}
	fmt.Println("\n  -> with OpenBLAS the CPU keeps up and the GPU thresholds retreat or vanish:")
	fmt.Println("     \"vendor libraries are not always the best choice\" (§IV-B).")
}
