// Quickstart: run one GPU-BLOB sweep and read off the offload threshold.
//
// This is the smallest useful GPU-BLOB program: pick a system model, pick a
// problem type, sweep sizes 1..1024 at 8 iterations, then print the per-
// strategy GPU offload thresholds and a short excerpt of the performance
// data. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)

	// A system is a CPU socket + BLAS library and a GPU + BLAS library
	// joined by an interconnect. Presets model the paper's three machines.
	sys := systems.IsambardAI()

	// Square GEMM, the classic case: M = N = K.
	problem, err := core.FindProblem(core.GEMM, "square")
	if err != nil {
		log.Fatal(err)
	}

	// Sweep sizes 1..1024 (every size), 8 iterations per size, alpha=1
	// beta=0, with checksum validation on sampled sizes.
	cfg := core.DefaultConfig(8)
	cfg.MaxDim = 1024

	series, err := core.RunProblem(context.Background(), sys, problem, core.F32, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system: %s (CPU: %s, GPU: %s)\n", series.System, series.CPULibrary, series.GPULibrary)
	fmt.Printf("kernel: %s %s (%s), %d sizes, %d iterations each\n\n",
		series.KernelName(), problem.Name, problem.Desc, len(series.Samples), cfg.Iterations)

	fmt.Println("GPU offload thresholds (minimum size from which the GPU always wins):")
	for _, st := range xfer.Strategies {
		fmt.Printf("  %-7s %s\n", st, series.Thresholds[st])
	}

	fmt.Println("\nperformance excerpt (GFLOP/s):")
	fmt.Printf("  %6s %12s %12s %12s %12s\n", "M=N=K", "CPU", "GPU Once", "GPU Always", "GPU USM")
	for _, n := range []int{8, 32, 128, 512, 1024} {
		for _, smp := range series.Samples {
			if smp.Dims.M != n {
				continue
			}
			fmt.Printf("  %6d %12.1f %12.1f %12.1f %12.1f\n", n,
				smp.CPUGflops,
				smp.GPUGflops[xfer.TransferOnce],
				smp.GPUGflops[xfer.TransferAlways],
				smp.GPUGflops[xfer.Unified])
		}
	}

	if v := series.ValidatedCount(); v > 0 {
		fmt.Printf("\nchecksum validation: %d sizes executed with two independent kernels, %d mismatches\n",
			v, len(series.ValidationFailures()))
	}
}
