// K-means clustering on top of the GEMM kernels — one of the applications
// the paper cites to motivate non-square problem types (§III-C): the
// distance computation of Lloyd's algorithm is a tall, skinny GEMM
// (points x dims) · (dims x centroids) with n >> k, nothing like the square
// problems benchmark papers usually sweep.
//
// The example clusters synthetic Gaussian blobs with the squared-distance
// expansion |x - c|² = |x|² + |c|² - 2·x·c, whose cross term is a single
// DGEMM per iteration, then asks the offload models whether that GEMM shape
// is worth a GPU on each paper system.
//
//	go run ./examples/kmeans [-n 20000] [-d 32] [-k 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	nPoints := flag.Int("n", 20000, "number of points")
	dims := flag.Int("d", 32, "dimensions")
	k := flag.Int("k", 16, "clusters")
	iters := flag.Int("iters", 20, "max Lloyd iterations")
	flag.Parse()

	n, d, kk := *nPoints, *dims, *k
	rng := matrix.NewRNG(7)

	// Synthetic blobs: kk true centers, points scattered around them.
	trueCenters := make([]float64, kk*d)
	for i := range trueCenters {
		trueCenters[i] = rng.Float64()*20 - 10
	}
	points := matrix.NewDense64(n, d) // row i = point i (column-major storage)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := int(rng.Next()) % kk
		if c < 0 {
			c = -c
		}
		truth[i] = c
		for j := 0; j < d; j++ {
			points.Set(i, j, trueCenters[c*d+j]+rng.Float64()-0.5)
		}
	}

	// Initial centroids: first kk points (deterministic).
	centroids := matrix.NewDense64(kk, d)
	for c := 0; c < kk; c++ {
		for j := 0; j < d; j++ {
			centroids.Set(c, j, points.At(c, j))
		}
	}

	pNorm := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < d; j++ {
			v := points.At(i, j)
			s += v * v
		}
		pNorm[i] = s
	}

	assign := make([]int, n)
	cross := matrix.NewDense64(n, kk)
	var lastInertia float64
	for it := 0; it < *iters; it++ {
		// Cross term: points (n x d) · centroidsᵀ (d x kk) — the GEMM.
		blas.OptDgemm(blas.NoTrans, blas.Trans, n, kk, d, 1,
			points.Data, points.Ld, centroids.Data, centroids.Ld, 0, cross.Data, cross.Ld)
		cNorm := make([]float64, kk)
		for c := 0; c < kk; c++ {
			var s float64
			for j := 0; j < d; j++ {
				v := centroids.At(c, j)
				s += v * v
			}
			cNorm[c] = s
		}
		// Assignment + inertia.
		inertia := 0.0
		changed := 0
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < kk; c++ {
				dist := pNorm[i] + cNorm[c] - 2*cross.At(i, c)
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				changed++
			}
			assign[i] = best
			inertia += bestD
		}
		// Update step.
		counts := make([]int, kk)
		centroids.Zero()
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for j := 0; j < d; j++ {
				centroids.Set(c, j, centroids.At(c, j)+points.At(i, j))
			}
		}
		for c := 0; c < kk; c++ {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				centroids.Set(c, j, centroids.At(c, j)*inv)
			}
		}
		fmt.Printf("iteration %2d: inertia %.1f, %d reassignments\n", it, inertia, changed)
		if changed == 0 {
			lastInertia = inertia
			break
		}
		lastInertia = inertia
	}

	// Cluster purity against the generating labels.
	purity := clusterPurity(assign, truth, kk)
	fmt.Printf("\nconverged: inertia %.1f, cluster purity %.1f%% (random would be ~%.1f%%)\n",
		lastInertia, purity*100, 100.0/float64(kk))

	// Now the paper's question: should this GEMM go to a GPU? One Lloyd
	// iteration issues a single {n, k, d} GEMM; an outer loop (re-runs,
	// parameter scans) re-issues it with the same operands.
	fmt.Printf("\noffload advice for the per-iteration GEMM {M=%d, N=%d, K=%d}, %d calls:\n", n, kk, d, *iters)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tCPU\tGPU (Once)\tVerdict\n")
	for _, sys := range systems.All() {
		cpu := sys.CPU.GemmSeconds(8, n, kk, d, true, *iters)
		gpu := sys.GPU.GemmSeconds(xfer.TransferOnce, 8, n, kk, d, true, *iters)
		verdict := "CPU"
		if gpu < cpu {
			verdict = "GPU"
		}
		fmt.Fprintf(tw, "%s\t%.2f ms\t%.2f ms\t%s\n", sys.Name, cpu*1e3, gpu*1e3, verdict)
	}
	tw.Flush()
	fmt.Println("\n(a tall-skinny GEMM with tiny K has low arithmetic intensity: on the")
	fmt.Println("PCIe systems it usually stays on the CPU — §IV-C's conclusion.)")
}

// clusterPurity maps each found cluster to its majority true label and
// returns the fraction of points correctly grouped.
func clusterPurity(assign, truth []int, k int) float64 {
	votes := make([][]int, k)
	for i := range votes {
		votes[i] = make([]int, k)
	}
	for i := range assign {
		votes[assign[i]][truth[i]]++
	}
	correct := 0
	for c := 0; c < k; c++ {
		best := 0
		for _, v := range votes[c] {
			if v > best {
				best = v
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}
