// Blocked LU factorization with partial pivoting, built from the
// repository's Level-3 kernels — the second application the paper cites to
// motivate non-square GEMM shapes (§III-C): a right-looking LU spends
// nearly all its FLOPs in trailing-matrix GEMM updates of shape
// {m-j, n-j, nb}, a tall-and-skinny-K problem whose offload profile the
// benchmark sweeps directly.
//
// The example factors P·A = L·U, verifies the residual, reports where the
// FLOPs went, and asks the offload models where each paper system would run
// the dominant trailing update.
//
//	go run ./examples/lu [-n 1024] [-nb 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 1024, "matrix size")
	nb := flag.Int("nb", 64, "panel width")
	flag.Parse()

	rng := matrix.NewRNG(5)
	a := matrix.NewDense64(*n, *n)
	a.Fill(rng)
	// Diagonal boost keeps the factorization comfortably away from
	// breakdown without disabling pivoting.
	for i := 0; i < *n; i++ {
		a.Set(i, i, a.At(i, i)+2)
	}
	orig := a.Clone()

	piv, gemmFlops, panelFlops := factorLU(a, *nb)

	// Residual check: ||P*A - L*U||_max.
	res := residual(orig, a, piv)
	fmt.Printf("factored %dx%d with panel width %d\n", *n, *n, *nb)
	fmt.Printf("residual max|P*A - L*U| = %.3e (inputs O(1))\n", res)
	if res > 1e-9 {
		log.Fatalf("LU residual too large")
	}
	total := gemmFlops + panelFlops
	fmt.Printf("FLOP breakdown: %.1f%% trailing GEMM updates, %.1f%% panel+TRSM\n\n",
		100*float64(gemmFlops)/float64(total), 100*float64(panelFlops)/float64(total))

	// The dominant kernel: the first trailing update {n-nb, n-nb, nb},
	// re-issued once per panel (n/nb calls of shrinking size; we advise on
	// the first, largest one).
	m1 := *n - *nb
	fmt.Printf("offload advice for the dominant update GEMM {%d, %d, %d} x %d panels:\n", m1, m1, *nb, *n / *nb)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tCPU\tGPU (Once)\tVerdict\n")
	for _, sys := range systems.All() {
		cpu := sys.CPU.GemmSeconds(8, m1, m1, *nb, false, *n / *nb)
		gpu := sys.GPU.GemmSeconds(xfer.TransferOnce, 8, m1, m1, *nb, false, *n / *nb)
		verdict := "CPU"
		if gpu < cpu {
			verdict = "GPU"
		}
		fmt.Fprintf(tw, "%s\t%.2f ms\t%.2f ms\t%s\n", sys.Name, cpu*1e3, gpu*1e3, verdict)
	}
	tw.Flush()
}

// factorLU performs blocked right-looking LU with partial pivoting in
// place: on return a holds L (unit lower, below the diagonal) and U (upper)
// and piv the row swaps. Returns the FLOPs spent in GEMM updates vs
// everything else.
func factorLU(a *matrix.Dense64, nb int) (piv []int, gemmFlops, otherFlops int64) {
	n := a.Rows
	piv = make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// Unblocked panel factorization with partial pivoting on columns
		// [j, j+jb).
		for c := j; c < j+jb; c++ {
			// Pivot search in column c, rows c..n.
			p := c
			best := math.Abs(a.At(c, c))
			for i := c + 1; i < n; i++ {
				if v := math.Abs(a.At(i, c)); v > best {
					best, p = v, i
				}
			}
			if best == 0 {
				log.Fatal("singular matrix")
			}
			if p != c {
				swapRows(a, c, p)
				piv[c], piv[p] = piv[p], piv[c]
			}
			inv := 1 / a.At(c, c)
			for i := c + 1; i < n; i++ {
				a.Set(i, c, a.At(i, c)*inv)
			}
			// Rank-1 update restricted to the panel.
			for cc := c + 1; cc < j+jb; cc++ {
				acc := a.At(c, cc)
				if acc == 0 {
					continue
				}
				for i := c + 1; i < n; i++ {
					a.Set(i, cc, a.At(i, cc)-a.At(i, c)*acc)
				}
			}
			otherFlops += 2 * int64(n-c) * int64(j+jb-c)
		}
		if j+jb >= n {
			break
		}
		// U12 = L11^-1 * A12 (unit lower triangular solve).
		a11 := a.View(j, j, jb, jb)
		a12 := a.View(j, j+jb, jb, n-j-jb)
		blas.OptDtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
			jb, n-j-jb, 1, a11.Data, a11.Ld, a12.Data, a12.Ld)
		otherFlops += int64(jb) * int64(jb) * int64(n-j-jb)
		// Trailing update: A22 -= L21 * U12 — the dominant GEMM.
		a21 := a.View(j+jb, j, n-j-jb, jb)
		a22 := a.View(j+jb, j+jb, n-j-jb, n-j-jb)
		blas.OptDgemm(blas.NoTrans, blas.NoTrans, n-j-jb, n-j-jb, jb, -1,
			a21.Data, a21.Ld, a12.Data, a12.Ld, 1, a22.Data, a22.Ld)
		gemmFlops += 2 * int64(n-j-jb) * int64(n-j-jb) * int64(jb)
	}
	return piv, gemmFlops, otherFlops
}

func swapRows(a *matrix.Dense64, r1, r2 int) {
	for j := 0; j < a.Cols; j++ {
		v1, v2 := a.At(r1, j), a.At(r2, j)
		a.Set(r1, j, v2)
		a.Set(r2, j, v1)
	}
}

// residual computes max|P*A - L*U| by reconstructing L*U.
func residual(orig, lu *matrix.Dense64, piv []int) float64 {
	n := orig.Rows
	l := matrix.NewDense64(n, n)
	u := matrix.NewDense64(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			switch {
			case i > j:
				l.Set(i, j, lu.At(i, j))
			case i == j:
				l.Set(i, j, 1)
				u.Set(i, j, lu.At(i, j))
			default:
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	rec := matrix.NewDense64(n, n)
	blas.OptDgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, l.Data, l.Ld, u.Data, u.Ld, 0, rec.Data, rec.Ld)
	var maxDiff float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := math.Abs(rec.At(i, j) - orig.At(piv[i], j))
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff
}
