package repro_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestDocGoFencesParse extracts every ```go fence from the repository's
// Markdown documentation and requires it to parse as Go. Snippets are
// fragments, so each is accepted if any of three readings parses: a
// complete file, a set of top-level declarations, or a sequence of
// statements. This is the "docs can't silently rot" gate for the code
// the README shows (the runnable counterparts live as Example tests in
// internal/core, internal/blas, internal/advisor and internal/service).
func TestDocGoFencesParse(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		fences := goFences(string(data))
		if doc == "README.md" && len(fences) == 0 {
			t.Errorf("README.md has no ```go fences; the library sections should show code")
		}
		for _, f := range fences {
			if err := parseFragment(f.src); err != nil {
				t.Errorf("%s:%d: go fence does not parse: %v\n%s", doc, f.line, err, f.src)
			}
		}
	}
}

type fence struct {
	line int // 1-based line of the ```go marker
	src  string
}

// goFences scans Markdown for ```go blocks.
func goFences(md string) []fence {
	var out []fence
	lines := strings.Split(md, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, fence{line: start, src: strings.Join(body, "\n")})
	}
	return out
}

// parseFragment accepts the snippet under the loosest reading that
// succeeds. Identifiers are not resolved — snippets legitimately use
// variables introduced by surrounding prose — only syntax is checked.
func parseFragment(src string) error {
	fset := token.NewFileSet()
	attempts := []string{
		src,                                     // a complete file (has its own package clause)
		"package p\n" + src,                     // top-level declarations
		"package p\nfunc _() {\n" + src + "\n}", // statements
	}
	var firstErr error
	for _, a := range attempts {
		if _, err := parser.ParseFile(fset, "fence.go", a, parser.SkipObjectResolution); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return fmt.Errorf("not a file, declarations, or statements (file reading: %v)", firstErr)
}
