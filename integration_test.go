package repro_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/plot"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// TestFullPipeline drives the whole stack the way cmd/gpu-blob does: sweep
// with validation → CSV on disk → thresholds re-derived offline → chart
// rendered — and checks every stage agrees with the others.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()
	sys := systems.LUMI()
	cfg := core.DefaultConfig(8)
	cfg.MaxDim = 512
	cfg.Step = 4
	cfg.Validate = core.Validation{Enabled: true, Every: 16, MaxFlops: 4e7}

	series, err := core.Run(context.Background(), sys, core.GemmProblems[:2], []core.Precision{core.F32, core.F64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	validated := 0
	for _, ser := range series {
		validated += ser.ValidatedCount()
		if fails := ser.ValidationFailures(); len(fails) != 0 {
			t.Fatalf("%s %s: %d checksum failures", ser.KernelName(), ser.Problem.Name, len(fails))
		}
	}
	if validated == 0 {
		t.Fatal("nothing was validated")
	}

	paths, err := csvio.WriteAll(dir, series)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("csv files = %d", len(paths))
	}

	// Offline threshold extraction must agree with the runner.
	for i, p := range paths {
		rows, err := csvio.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		th, err := csvio.Thresholds(rows)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range xfer.Strategies {
			want := series[i].Thresholds[st]
			got := th[st.String()]
			if got.Found != want.Found || (got.Found && got.Dims != want.Dims) {
				t.Fatalf("%s %v: offline %v vs runner %v", filepath.Base(p), st, got, want)
			}
		}
	}

	// Charts render from the same CSVs.
	rows, _ := csvio.ReadFile(paths[0])
	curve := plot.Curve{Label: "cpu"}
	for _, r := range rows {
		if r.Device == "CPU" {
			curve.X = append(curve.X, float64(r.M))
			curve.Y = append(curve.Y, r.Gflops)
		}
	}
	ch := plot.Chart{Title: "integration", Curves: []plot.Curve{curve}, LogY: true}
	ascii := ch.ASCII(80, 16)
	if !strings.Contains(ascii, "*") {
		t.Fatal("chart did not render CSV data")
	}
	svgPath := filepath.Join(dir, "chart.svg")
	if err := os.WriteFile(svgPath, []byte(ch.SVG(400, 300)), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(svgPath); !strings.Contains(string(data), "<polyline") {
		t.Fatal("svg chart missing data")
	}
}

// TestPaperHeadlines pins the three headline numbers of the reproduction at
// full sweep resolution so regressions in the models are caught at the
// repository root.
func TestPaperHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution sweeps")
	}
	cfg := core.DefaultConfig(1)
	cfg.Validate.Enabled = false
	squareGemm, _ := core.FindProblem(core.GEMM, "square")

	// DAWN, 1 iteration: the oneMKL drop pins the SGEMM threshold at 629.
	ser, err := core.RunProblem(context.Background(), systems.DAWN(), squareGemm, core.F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if th := ser.Thresholds[xfer.TransferOnce]; !th.Found || th.Dims.M != 629 {
		t.Fatalf("DAWN 1-iter SGEMM Once threshold = %v, want {629,629,629}", th)
	}

	// Isambard-AI: {26,26,26} across strategies at 8 iterations.
	cfg8 := core.DefaultConfig(8)
	cfg8.Validate.Enabled = false
	ser, err = core.RunProblem(context.Background(), systems.IsambardAI(), squareGemm, core.F32, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range xfer.Strategies {
		if th := ser.Thresholds[st]; !th.Found || th.Dims.M != 26 {
			t.Fatalf("Isambard-AI 8-iter SGEMM %v threshold = %v, want {26,26,26}", st, th)
		}
	}

	// Square GEMV Transfer-Always: never a threshold, on any system.
	squareGemv, _ := core.FindProblem(core.GEMV, "square")
	cfg128 := core.DefaultConfig(128)
	cfg128.Validate.Enabled = false
	for _, sys := range systems.All() {
		ser, err := core.RunProblem(context.Background(), sys, squareGemv, core.F64, cfg128)
		if err != nil {
			t.Fatal(err)
		}
		if ser.Thresholds[xfer.TransferAlways].Found {
			t.Fatalf("%s: Transfer-Always GEMV produced a threshold %v", sys.Name, ser.Thresholds[xfer.TransferAlways])
		}
	}
}
