package matrix

//blobvet:file-allow floatcompare -- this file asserts data movement (views, clones, fills, zeroing): values are copied or set verbatim, never computed, so bitwise equality is the contract

import "testing"

func TestDense32ViewCloneZero(t *testing.T) {
	a := NewDense32(6, 6)
	rng := NewRNG(2)
	a.Fill(rng)
	v := a.View(1, 2, 4, 3)
	if v.Rows != 4 || v.Cols != 3 || v.Ld != 6 {
		t.Fatalf("view: %+v", v)
	}
	if v.At(0, 0) != a.At(1, 2) {
		t.Fatal("view offset wrong")
	}
	v.Set(2, 1, -7)
	if a.At(3, 3) != -7 {
		t.Fatal("view must alias")
	}
	c := v.Clone()
	if c.Ld != 4 {
		t.Fatalf("clone ld = %d", c.Ld)
	}
	c.Set(0, 0, 99)
	if v.At(0, 0) == 99 {
		t.Fatal("clone must not alias")
	}
	c.Zero()
	for _, x := range c.Data {
		if x != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestDense32ViewBounds(t *testing.T) {
	a := NewDense32(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.View(0, 2, 1, 2)
}

func TestVector32FillCloneChecksum(t *testing.T) {
	v := NewVector32(10)
	v.Fill(NewRNG(3))
	var sum float64
	for i := 0; i < v.N; i++ {
		sum += float64(v.At(i))
	}
	// The implementation may accumulate in a different order than this
	// loop; checksums are defined up to ChecksumTolerance, not bitwise.
	if got := v.Checksum(); !ChecksumsMatch(got, sum) {
		t.Fatalf("checksum %v != %v", got, sum)
	}
	w := &Vector32{N: 3, Inc: 2, Data: []float32{1, 0, 2, 0, 3}}
	c := w.Clone()
	if c.Inc != 1 || c.Data[2] != 3 {
		t.Fatalf("clone: %+v", c)
	}
	w.Zero()
	if w.Data[0] != 0 || w.Data[2] != 0 || w.Data[4] != 0 {
		t.Fatal("strided zero missed elements")
	}
	if w.Data[1] != 0 && w.Data[3] != 0 {
		t.Fatal("strided zero touched gaps") // gaps were already 0 here
	}
}

func TestFillConst32(t *testing.T) {
	a := NewDense32(4, 4)
	a.FillConst(2.5)
	for _, v := range a.Data {
		if v != 2.5 {
			t.Fatal("FillConst32")
		}
	}
}

func TestVecMaxAbsDiff32(t *testing.T) {
	x := NewVector32(3)
	y := NewVector32(3)
	y.Data[2] = -4
	if d := VecMaxAbsDiff32(x, y); d != 4 {
		t.Fatalf("diff %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length-mismatch panic")
		}
	}()
	VecMaxAbsDiff32(x, NewVector32(2))
}

func TestMaxAbsDiff32ShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsDiff32(NewDense32(2, 2), NewDense32(3, 2))
}

func TestSameSeedSameData32(t *testing.T) {
	a := NewDense32(9, 9)
	b := NewDense32(9, 9)
	a.Fill(NewRNG(DefaultSeed))
	b.Fill(NewRNG(DefaultSeed))
	if MaxAbsDiff32(a, b) != 0 {
		t.Fatal("seeded fills must be identical")
	}
}
