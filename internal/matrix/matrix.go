// Package matrix provides the column-major dense matrix and vector types
// used throughout GPU-BLOB-Go.
//
// All matrices are stored in column-major order, matching the paper's
// configuration (§III-A): GEMM leading dimensions lda=M, ldb=K, ldc=M and
// GEMV increments incx=incy=1. A matrix may view a sub-block of a larger
// allocation via its leading dimension, so kernels must index with
// Data[i+j*Ld], never assume Ld == Rows.
package matrix

import (
	"errors"
	"fmt"
)

// ErrShape is returned when matrix or vector dimensions are inconsistent.
var ErrShape = errors.New("matrix: inconsistent dimensions")

// Dense64 is a column-major matrix of float64 values.
type Dense64 struct {
	Rows, Cols int
	// Ld is the leading dimension (stride between columns). Ld >= Rows.
	Ld   int
	Data []float64
}

// Dense32 is a column-major matrix of float32 values.
type Dense32 struct {
	Rows, Cols int
	Ld         int
	Data       []float32
}

// Vector64 is a strided vector of float64 values.
type Vector64 struct {
	N    int
	Inc  int
	Data []float64
}

// Vector32 is a strided vector of float32 values.
type Vector32 struct {
	N    int
	Inc  int
	Data []float32
}

// NewDense64 allocates a zeroed Rows x Cols column-major matrix with Ld=Rows.
func NewDense64(rows, cols int) *Dense64 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense64{Rows: rows, Cols: cols, Ld: rows, Data: make([]float64, rows*cols)}
}

// NewDense32 allocates a zeroed Rows x Cols column-major matrix with Ld=Rows.
func NewDense32(rows, cols int) *Dense32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense32{Rows: rows, Cols: cols, Ld: rows, Data: make([]float32, rows*cols)}
}

// NewVector64 allocates a zeroed length-n vector with unit increment.
func NewVector64(n int) *Vector64 {
	if n < 0 {
		panic(fmt.Sprintf("matrix: negative length %d", n))
	}
	return &Vector64{N: n, Inc: 1, Data: make([]float64, n)}
}

// NewVector32 allocates a zeroed length-n vector with unit increment.
func NewVector32(n int) *Vector32 {
	if n < 0 {
		panic(fmt.Sprintf("matrix: negative length %d", n))
	}
	return &Vector32{N: n, Inc: 1, Data: make([]float32, n)}
}

// At returns the element at row i, column j.
func (a *Dense64) At(i, j int) float64 { return a.Data[i+j*a.Ld] }

// Set assigns the element at row i, column j.
func (a *Dense64) Set(i, j int, v float64) { a.Data[i+j*a.Ld] = v }

// At returns the element at row i, column j.
func (a *Dense32) At(i, j int) float32 { return a.Data[i+j*a.Ld] }

// Set assigns the element at row i, column j.
func (a *Dense32) Set(i, j int, v float32) { a.Data[i+j*a.Ld] = v }

// At returns element i honouring the vector increment.
func (v *Vector64) At(i int) float64 { return v.Data[i*v.Inc] }

// Set assigns element i honouring the vector increment.
func (v *Vector64) Set(i int, x float64) { v.Data[i*v.Inc] = x }

// At returns element i honouring the vector increment.
func (v *Vector32) At(i int) float32 { return v.Data[i*v.Inc] }

// Set assigns element i honouring the vector increment.
func (v *Vector32) Set(i int, x float32) { v.Data[i*v.Inc] = x }

// Col returns the j-th column as a slice aliasing the matrix storage.
func (a *Dense64) Col(j int) []float64 { return a.Data[j*a.Ld : j*a.Ld+a.Rows] }

// Col returns the j-th column as a slice aliasing the matrix storage.
func (a *Dense32) Col(j int) []float32 { return a.Data[j*a.Ld : j*a.Ld+a.Rows] }

// View returns a sub-matrix view of rows [i, i+r) and columns [j, j+c),
// sharing storage with a.
func (a *Dense64) View(i, j, r, c int) *Dense64 {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > a.Rows || j+c > a.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d,%d:%d] out of %dx%d", i, i+r, j, j+c, a.Rows, a.Cols))
	}
	end := len(a.Data)
	if r > 0 && c > 0 {
		end = i + (j+c-1)*a.Ld + r
	}
	return &Dense64{Rows: r, Cols: c, Ld: a.Ld, Data: a.Data[i+j*a.Ld : end]}
}

// View returns a sub-matrix view of rows [i, i+r) and columns [j, j+c),
// sharing storage with a.
func (a *Dense32) View(i, j, r, c int) *Dense32 {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > a.Rows || j+c > a.Cols {
		panic(fmt.Sprintf("matrix: view [%d:%d,%d:%d] out of %dx%d", i, i+r, j, j+c, a.Rows, a.Cols))
	}
	end := len(a.Data)
	if r > 0 && c > 0 {
		end = i + (j+c-1)*a.Ld + r
	}
	return &Dense32{Rows: r, Cols: c, Ld: a.Ld, Data: a.Data[i+j*a.Ld : end]}
}

// Clone returns a deep copy of a with a compact leading dimension.
func (a *Dense64) Clone() *Dense64 {
	b := NewDense64(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		copy(b.Col(j), a.Col(j))
	}
	return b
}

// Clone returns a deep copy of a with a compact leading dimension.
func (a *Dense32) Clone() *Dense32 {
	b := NewDense32(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		copy(b.Col(j), a.Col(j))
	}
	return b
}

// Clone returns a deep, compacted (Inc=1) copy of v.
func (v *Vector64) Clone() *Vector64 {
	w := NewVector64(v.N)
	for i := 0; i < v.N; i++ {
		w.Data[i] = v.At(i)
	}
	return w
}

// Clone returns a deep, compacted (Inc=1) copy of v.
func (v *Vector32) Clone() *Vector32 {
	w := NewVector32(v.N)
	for i := 0; i < v.N; i++ {
		w.Data[i] = v.At(i)
	}
	return w
}

// Zero sets every element of a to zero.
func (a *Dense64) Zero() {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Zero sets every element of a to zero.
func (a *Dense32) Zero() {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Zero sets every element of v to zero.
func (v *Vector64) Zero() {
	for i := 0; i < v.N; i++ {
		v.Set(i, 0)
	}
}

// Zero sets every element of v to zero.
func (v *Vector32) Zero() {
	for i := 0; i < v.N; i++ {
		v.Set(i, 0)
	}
}

// Bytes64 returns the storage size in bytes of an m x n float64 matrix.
func Bytes64(m, n int) int64 { return int64(m) * int64(n) * 8 }

// Bytes32 returns the storage size in bytes of an m x n float32 matrix.
func Bytes32(m, n int) int64 { return int64(m) * int64(n) * 4 }
