package matrix

import "math"

// ChecksumTolerance is the relative margin of error permitted when comparing
// CPU and GPU checksums. The paper allows 0.1% to absorb floating-point
// rounding differences between libraries (§III-B).
const ChecksumTolerance = 1e-3

// Checksum returns the sum of all elements of a, accumulated in float64.
func (a *Dense64) Checksum() float64 {
	var s float64
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			s += v
		}
	}
	return s
}

// Checksum returns the sum of all elements of a, accumulated in float64.
func (a *Dense32) Checksum() float64 {
	var s float64
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			s += float64(v)
		}
	}
	return s
}

// Checksum returns the sum of all elements of v, accumulated in float64.
func (v *Vector64) Checksum() float64 {
	var s float64
	for i := 0; i < v.N; i++ {
		s += v.At(i)
	}
	return s
}

// Checksum returns the sum of all elements of v, accumulated in float64.
func (v *Vector32) Checksum() float64 {
	var s float64
	for i := 0; i < v.N; i++ {
		s += float64(v.At(i))
	}
	return s
}

// ChecksumsMatch reports whether two checksums agree within
// ChecksumTolerance (relative to the larger magnitude; absolute near zero).
func ChecksumsMatch(a, b float64) bool {
	return ChecksumsMatchTol(a, b, ChecksumTolerance)
}

// ChecksumsMatchTol reports whether two checksums agree within tol.
func ChecksumsMatchTol(a, b, tol float64) bool {
	if a == b { //blobvet:allow floatcompare -- fast path of the tolerance helper itself; also makes equal infinities match
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// MaxAbsDiff returns the largest element-wise absolute difference between a
// and b. It panics if the shapes differ.
func MaxAbsDiff64(a, b *Dense64) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxAbsDiff64 shape mismatch")
	}
	var m float64
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			d := math.Abs(ca[i] - cb[i])
			if d > m {
				m = d
			}
		}
	}
	return m
}

// MaxAbsDiff32 returns the largest element-wise absolute difference between
// a and b. It panics if the shapes differ.
func MaxAbsDiff32(a, b *Dense32) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxAbsDiff32 shape mismatch")
	}
	var m float64
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			d := math.Abs(float64(ca[i]) - float64(cb[i]))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// VecMaxAbsDiff64 returns the largest element-wise absolute difference
// between x and y. It panics if the lengths differ.
func VecMaxAbsDiff64(x, y *Vector64) float64 {
	if x.N != y.N {
		panic("matrix: VecMaxAbsDiff64 length mismatch")
	}
	var m float64
	for i := 0; i < x.N; i++ {
		d := math.Abs(x.At(i) - y.At(i))
		if d > m {
			m = d
		}
	}
	return m
}

// VecMaxAbsDiff32 returns the largest element-wise absolute difference
// between x and y. It panics if the lengths differ.
func VecMaxAbsDiff32(x, y *Vector32) float64 {
	if x.N != y.N {
		panic("matrix: VecMaxAbsDiff32 length mismatch")
	}
	var m float64
	for i := 0; i < x.N; i++ {
		d := math.Abs(float64(x.At(i)) - float64(y.At(i)))
		if d > m {
			m = d
		}
	}
	return m
}
