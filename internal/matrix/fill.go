package matrix

// The paper's artifact initialises all inputs with rand() after srand() with
// a constant seed (§III-B), so CPU and GPU data of the same dimensions are
// always bit-identical and a checksum can validate that both libraries
// compute the same answer. We reproduce that with a small deterministic
// PCG-style generator: same seed + same shape => same contents, portably.

// RNG is a deterministic 64-bit PCG-XSH-RR generator. The zero value is not
// usable; construct with NewRNG.
type RNG struct {
	state uint64
	inc   uint64
}

// DefaultSeed mirrors the artifact's constant srand seed.
const DefaultSeed uint64 = 1337

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.Next()
	r.state += 0x9e3779b97f4a7c15 ^ seed
	r.Next()
	return r
}

// Next returns the next 32 random bits.
func (r *RNG) Next() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	hi := uint64(r.Next())
	lo := uint64(r.Next())
	return float64((hi<<21|lo>>11)&((1<<53)-1)) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Next()>>8) / (1 << 24)
}

// Fill populates a with uniform values in [0, 1) drawn from rng.
// Elements are generated in column-major order so that matrices of equal
// shape receive identical contents for identical seeds.
func (a *Dense64) Fill(rng *RNG) {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.Float64()
		}
	}
}

// Fill populates a with uniform values in [0, 1) drawn from rng.
func (a *Dense32) Fill(rng *RNG) {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.Float32()
		}
	}
}

// Fill populates v with uniform values in [0, 1) drawn from rng.
func (v *Vector64) Fill(rng *RNG) {
	for i := 0; i < v.N; i++ {
		v.Set(i, rng.Float64())
	}
}

// Fill populates v with uniform values in [0, 1) drawn from rng.
func (v *Vector32) Fill(rng *RNG) {
	for i := 0; i < v.N; i++ {
		v.Set(i, rng.Float32())
	}
}

// FillConst sets every element of a to c.
func (a *Dense64) FillConst(c float64) {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = c
		}
	}
}

// FillConst sets every element of a to c.
func (a *Dense32) FillConst(c float32) {
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = c
		}
	}
}
