package matrix

//blobvet:file-allow floatcompare -- this file asserts data movement (views, clones, fills, zeroing): values are copied or set verbatim, never computed, so bitwise equality is the contract

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseShapes(t *testing.T) {
	a := NewDense64(3, 5)
	if a.Rows != 3 || a.Cols != 5 || a.Ld != 3 || len(a.Data) != 15 {
		t.Fatalf("bad dense64: %+v", a)
	}
	b := NewDense32(0, 4)
	if len(b.Data) != 0 {
		t.Fatalf("zero-row matrix should have empty data")
	}
	v := NewVector64(7)
	if v.N != 7 || v.Inc != 1 {
		t.Fatalf("bad vector: %+v", v)
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense64(-1, 2)
}

func TestAtSetColumnMajor(t *testing.T) {
	a := NewDense64(2, 3)
	a.Set(1, 2, 42)
	// Column-major: element (1,2) lives at 1 + 2*2 = 5.
	if a.Data[5] != 42 {
		t.Fatalf("column-major layout violated: %v", a.Data)
	}
	if a.At(1, 2) != 42 {
		t.Fatalf("At/Set mismatch")
	}
}

func TestColAliases(t *testing.T) {
	a := NewDense64(4, 2)
	col := a.Col(1)
	col[3] = 9
	if a.At(3, 1) != 9 {
		t.Fatal("Col must alias matrix storage")
	}
	if len(col) != 4 {
		t.Fatalf("col length %d", len(col))
	}
}

func TestViewSharesStorage(t *testing.T) {
	a := NewDense64(6, 6)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			a.Set(i, j, float64(10*i+j))
		}
	}
	v := a.View(2, 3, 3, 2)
	if v.Rows != 3 || v.Cols != 2 || v.Ld != 6 {
		t.Fatalf("bad view: %+v", v)
	}
	if v.At(0, 0) != a.At(2, 3) || v.At(2, 1) != a.At(4, 4) {
		t.Fatal("view indexes wrong elements")
	}
	v.Set(1, 1, -1)
	if a.At(3, 4) != -1 {
		t.Fatal("view must share storage")
	}
}

func TestViewBoundsPanic(t *testing.T) {
	a := NewDense64(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	a.View(1, 1, 3, 1)
}

func TestCloneIsDeep(t *testing.T) {
	a := NewDense64(5, 4)
	rng := NewRNG(1)
	a.Fill(rng)
	v := a.View(1, 1, 3, 2)
	c := v.Clone()
	if c.Ld != 3 {
		t.Fatalf("clone should be compact, ld=%d", c.Ld)
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			if c.At(i, j) != v.At(i, j) {
				t.Fatal("clone content mismatch")
			}
		}
	}
	c.Set(0, 0, 99)
	if v.At(0, 0) == 99 {
		t.Fatal("clone must not share storage")
	}
}

func TestVectorCloneCompacts(t *testing.T) {
	v := &Vector64{N: 3, Inc: 2, Data: []float64{1, 0, 2, 0, 3}}
	c := v.Clone()
	if c.Inc != 1 || c.Data[0] != 1 || c.Data[1] != 2 || c.Data[2] != 3 {
		t.Fatalf("bad vector clone: %+v", c)
	}
}

func TestZero(t *testing.T) {
	a := NewDense32(3, 3)
	a.FillConst(5)
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero element")
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	// Same seed, same shape => identical contents (the §III-B contract that
	// makes CPU/GPU checksums comparable).
	a := NewDense64(13, 7)
	b := NewDense64(13, 7)
	a.Fill(NewRNG(DefaultSeed))
	b.Fill(NewRNG(DefaultSeed))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := NewDense64(13, 7)
	c.Fill(NewRNG(DefaultSeed + 1))
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Float32(); v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestChecksum(t *testing.T) {
	a := NewDense64(2, 2)
	a.Data = []float64{1, 2, 3, 4}
	if a.Checksum() != 10 {
		t.Fatalf("checksum = %v", a.Checksum())
	}
	v := NewVector32(3)
	v.Data = []float32{1, 2, 3}
	if v.Checksum() != 6 {
		t.Fatalf("vec checksum = %v", v.Checksum())
	}
}

func TestChecksumsMatchTolerance(t *testing.T) {
	if !ChecksumsMatch(1000, 1000.5) {
		t.Fatal("0.05% difference should match at 0.1% tolerance")
	}
	if ChecksumsMatch(1000, 1002) {
		t.Fatal("0.2% difference should not match")
	}
	if !ChecksumsMatch(0, 0) {
		t.Fatal("exact zero match")
	}
	// Near zero the comparison is absolute.
	if !ChecksumsMatch(1e-9, -1e-9) {
		t.Fatal("tiny values should match absolutely")
	}
}

func TestChecksumMatchSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return ChecksumsMatch(a, b) == ChecksumsMatch(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewDense64(2, 2)
	b := NewDense64(2, 2)
	b.Data[3] = 0.25
	if d := MaxAbsDiff64(a, b); d != 0.25 {
		t.Fatalf("diff = %v", d)
	}
	x := NewVector64(2)
	y := NewVector64(2)
	y.Data[1] = -3
	if d := VecMaxAbsDiff64(x, y); d != 3 {
		t.Fatalf("vec diff = %v", d)
	}
}

func TestMaxAbsDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxAbsDiff64(NewDense64(2, 2), NewDense64(2, 3))
}

func TestBytes(t *testing.T) {
	if Bytes64(100, 100) != 80000 {
		t.Fatal("Bytes64")
	}
	if Bytes32(100, 100) != 40000 {
		t.Fatal("Bytes32")
	}
	// No overflow for paper-scale dims.
	if Bytes64(4096, 4096) != 4096*4096*8 {
		t.Fatal("Bytes64 large")
	}
}
