// Package csvio reads and writes GPU-BLOB's CSV result files.
//
// The artifact emits one CSV per (kernel, precision, problem type) — 28
// files per full run: 9 SGEMM, 9 DGEMM, 5 SGEMV, 5 DGEMV. Each row is one
// (problem size, device, transfer strategy) measurement. CPU rows carry an
// empty strategy column. The same format is consumed by blob-threshold
// (offline threshold extraction, the calculateOffloadThreshold.py
// equivalent) and blob-graphs (createGflopsGraphs.py equivalent), including
// the LUMI workflow of concatenating separate CPU-only and GPU-only runs.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim/xfer"
)

// Header is the column layout of every GPU-BLOB CSV file.
var Header = []string{
	"system", "device", "library", "kernel", "problem", "problem_desc",
	"strategy", "m", "n", "k", "iterations", "total_seconds", "gflops",
	"checksum_ok",
}

// Row is one measurement line.
type Row struct {
	System  string
	Device  string // "CPU" or "GPU"
	Library string
	Kernel  string // e.g. "SGEMM"
	Problem string // problem type name, e.g. "square"
	Desc    string // problem type definition, e.g. "M=N=K"
	// Strategy is empty for CPU rows, else Once/Always/USM.
	Strategy   string
	M, N, K    int
	Iterations int
	Seconds    float64
	Gflops     float64
	// ChecksumOK is "", "true" or "false" ("" = not validated).
	ChecksumOK string
}

// FileName returns the canonical CSV name for a series, e.g.
// "sgemm_square.csv".
func FileName(ser *core.Series) string {
	return strings.ToLower(ser.KernelName()) + "_" + ser.Problem.Name + ".csv"
}

// SeriesRows flattens a Series into CSV rows. Rows appear in sweep order:
// for each sample, the CPU row (if run) followed by one GPU row per
// strategy (if run).
func SeriesRows(ser *core.Series) []Row {
	kernel := ser.KernelName()
	var rows []Row
	for _, smp := range ser.Samples {
		check := ""
		if smp.Validated {
			check = strconv.FormatBool(smp.ChecksumOK)
		}
		base := Row{
			System: ser.System, Kernel: kernel,
			Problem: ser.Problem.Name, Desc: ser.Problem.Desc,
			M: smp.Dims.M, N: smp.Dims.N, K: smp.Dims.K,
			Iterations: ser.Config.Iterations,
			ChecksumOK: check,
		}
		if ser.Config.Mode != core.ModeGPUOnly {
			r := base
			r.Device = "CPU"
			r.Library = ser.CPULibrary
			r.Seconds = smp.CPUSeconds
			r.Gflops = smp.CPUGflops
			rows = append(rows, r)
		}
		if ser.Config.Mode != core.ModeCPUOnly {
			for _, st := range xfer.Strategies {
				r := base
				r.Device = "GPU"
				r.Library = ser.GPULibrary
				r.Strategy = st.String()
				r.Seconds = smp.GPUSeconds[st]
				r.Gflops = smp.GPUGflops[st]
				rows = append(rows, r)
			}
		}
	}
	return rows
}

// Write emits rows (with header) to w.
func Write(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.System, r.Device, r.Library, r.Kernel, r.Problem, r.Desc,
			r.Strategy,
			strconv.Itoa(r.M), strconv.Itoa(r.N), strconv.Itoa(r.K),
			strconv.Itoa(r.Iterations),
			strconv.FormatFloat(r.Seconds, 'g', -1, 64),
			strconv.FormatFloat(r.Gflops, 'g', -1, 64),
			r.ChecksumOK,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeries writes one series to dir using the canonical file name and
// returns the full path.
func WriteSeries(dir string, ser *core.Series) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(ser))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := Write(f, SeriesRows(ser)); err != nil {
		return "", err
	}
	return path, nil
}

// WriteAll writes every series into dir, returning the file paths.
func WriteAll(dir string, series []*core.Series) ([]string, error) {
	paths := make([]string, 0, len(series))
	for _, ser := range series {
		p, err := WriteSeries(dir, ser)
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Read parses rows from r, skipping the header. Extra header rows embedded
// mid-file (from concatenating CPU-only and GPU-only CSVs, the LUMI
// workflow) are skipped too.
func Read(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header)
	var rows []Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		if rec[0] == Header[0] && rec[1] == Header[1] {
			// Header row — leading, or embedded mid-file after CPU-only and
			// GPU-only CSVs are concatenated (the LUMI workflow).
			continue
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}

// ReadFile parses a CSV file.
func ReadFile(path string) ([]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("csvio: %s: %w", path, err)
	}
	return rows, nil
}

func parseRow(rec []string) (Row, error) {
	var r Row
	var err error
	r.System, r.Device, r.Library = rec[0], rec[1], rec[2]
	r.Kernel, r.Problem, r.Desc, r.Strategy = rec[3], rec[4], rec[5], rec[6]
	if r.M, err = strconv.Atoi(rec[7]); err != nil {
		return r, fmt.Errorf("bad m %q: %w", rec[7], err)
	}
	if r.N, err = strconv.Atoi(rec[8]); err != nil {
		return r, fmt.Errorf("bad n %q: %w", rec[8], err)
	}
	if r.K, err = strconv.Atoi(rec[9]); err != nil {
		return r, fmt.Errorf("bad k %q: %w", rec[9], err)
	}
	if r.Iterations, err = strconv.Atoi(rec[10]); err != nil {
		return r, fmt.Errorf("bad iterations %q: %w", rec[10], err)
	}
	if r.Seconds, err = strconv.ParseFloat(rec[11], 64); err != nil {
		return r, fmt.Errorf("bad seconds %q: %w", rec[11], err)
	}
	if r.Gflops, err = strconv.ParseFloat(rec[12], 64); err != nil {
		return r, fmt.Errorf("bad gflops %q: %w", rec[12], err)
	}
	r.ChecksumOK = rec[13]
	return r, nil
}

// Thresholds recomputes the per-strategy offload thresholds from raw rows,
// exactly as blob-threshold does for LUMI-style split runs. Rows may mix
// CPU and GPU entries in any order; they are joined on (m, n, k) and
// processed in ascending size order.
func Thresholds(rows []Row) (map[string]core.Threshold, error) {
	type key struct{ m, n, k int }
	cpu := map[key]float64{}
	gpu := map[string]map[key]float64{}
	var order []key
	seen := map[key]bool{}
	iter := 0
	for _, r := range rows {
		k := key{r.M, r.N, r.K}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
		if r.Iterations > iter {
			iter = r.Iterations
		}
		switch r.Device {
		case "CPU":
			cpu[k] = r.Seconds
		case "GPU":
			if gpu[r.Strategy] == nil {
				gpu[r.Strategy] = map[key]float64{}
			}
			gpu[r.Strategy][k] = r.Seconds
		default:
			return nil, fmt.Errorf("csvio: unknown device %q", r.Device)
		}
	}
	out := map[string]core.Threshold{}
	for strat, times := range gpu {
		var det core.ThresholdDetector
		for _, k := range order {
			ct, okC := cpu[k]
			gt, okG := times[k]
			if !okC || !okG {
				continue // unmatched row (size run on only one device)
			}
			det.ObserveTimes(core.Dims{M: k.m, N: k.n, K: k.k}, ct, gt)
		}
		dims, found := det.Threshold()
		out[strat] = core.Threshold{Dims: dims, Found: found}
	}
	return out, nil
}
