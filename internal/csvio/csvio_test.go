package csvio

import (
	"context"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func sampleSeries(t *testing.T, mode core.Mode) *core.Series {
	t.Helper()
	pt, err := core.FindProblem(core.GEMM, "square")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(8)
	cfg.MaxDim = 96
	cfg.Step = 8
	cfg.Mode = mode
	cfg.Validate.Enabled = false
	ser, err := core.RunProblem(context.Background(), systems.IsambardAI(), pt, core.F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ser
}

func TestFileName(t *testing.T) {
	ser := sampleSeries(t, core.ModeBoth)
	if got := FileName(ser); got != "sgemm_square.csv" {
		t.Fatalf("FileName = %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	ser := sampleSeries(t, core.ModeBoth)
	rows := SeriesRows(ser)
	// 12 samples x (1 CPU + 3 GPU) rows.
	if want := len(ser.Samples) * 4; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("read %d rows, wrote %d", len(back), len(rows))
	}
	for i := range rows {
		if rows[i] != back[i] {
			t.Fatalf("row %d: %+v != %+v", i, rows[i], back[i])
		}
	}
}

func TestWriteSeriesAndReadFile(t *testing.T) {
	dir := t.TempDir()
	ser := sampleSeries(t, core.ModeBoth)
	path, err := WriteSeries(dir, ser)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "sgemm_square.csv" {
		t.Fatalf("path = %q", path)
	}
	rows, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows read back")
	}
}

func TestThresholdsFromCombinedRows(t *testing.T) {
	ser := sampleSeries(t, core.ModeBoth)
	th, err := Thresholds(SeriesRows(ser))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range xfer.Strategies {
		want := ser.Thresholds[st]
		got, ok := th[st.String()]
		if !ok {
			t.Fatalf("missing strategy %v", st)
		}
		if got.Found != want.Found || (got.Found && got.Dims != want.Dims) {
			t.Fatalf("%v: csv-derived %v vs runner %v", st, got, want)
		}
	}
}

// The LUMI workflow: CPU-only and GPU-only runs written separately, files
// concatenated (with the embedded second header), thresholds re-derived —
// and they must match a combined run.
func TestLUMIStyleSplitWorkflow(t *testing.T) {
	dir := t.TempDir()
	combined := sampleSeries(t, core.ModeBoth)
	cpuSer := sampleSeries(t, core.ModeCPUOnly)
	gpuSer := sampleSeries(t, core.ModeGPUOnly)
	cpuPath, err := WriteSeries(filepath.Join(dir, "cpu"), cpuSer)
	if err != nil {
		t.Fatal(err)
	}
	gpuPath, err := WriteSeries(filepath.Join(dir, "gpu"), gpuSer)
	if err != nil {
		t.Fatal(err)
	}
	// Concatenate the two files byte-wise, as the artifact instructs.
	a, _ := os.ReadFile(cpuPath)
	b, _ := os.ReadFile(gpuPath)
	cat := filepath.Join(dir, "combined.csv")
	if err := os.WriteFile(cat, append(a, b...), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadFile(cat)
	if err != nil {
		t.Fatal(err)
	}
	th, err := Thresholds(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range xfer.Strategies {
		want := combined.Thresholds[st]
		got := th[st.String()]
		if got.Found != want.Found || (got.Found && got.Dims != want.Dims) {
			t.Fatalf("%v: split-run %v vs combined %v", st, got, want)
		}
	}
}

func TestThresholdsCPUOnlyRowsYieldNothing(t *testing.T) {
	ser := sampleSeries(t, core.ModeCPUOnly)
	th, err := Thresholds(SeriesRows(ser))
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 0 {
		t.Fatalf("CPU-only rows should yield no strategies, got %v", th)
	}
}

func TestReadRejectsMalformedRow(t *testing.T) {
	csv := strings.Join(Header, ",") + "\n" +
		"sys,CPU,lib,SGEMM,square,M=N=K,,notanint,2,3,1,0.5,1.0,true\n"
	if _, err := Read(strings.NewReader(csv)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestThresholdsRejectsUnknownDevice(t *testing.T) {
	rows := []Row{{Device: "FPGA", M: 1, N: 1, K: 1}}
	if _, err := Thresholds(rows); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

func TestChecksumColumnSerialized(t *testing.T) {
	pt, _ := core.FindProblem(core.GEMM, "square")
	cfg := core.DefaultConfig(1)
	cfg.MaxDim = 40
	cfg.Step = 8
	cfg.Validate = core.Validation{Enabled: true, Every: 1, MaxFlops: 1e9}
	ser, err := core.RunProblem(context.Background(), systems.DAWN(), pt, core.F64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := SeriesRows(ser)
	sawTrue := false
	for _, r := range rows {
		if r.ChecksumOK == "true" {
			sawTrue = true
		}
	}
	if !sawTrue {
		t.Fatal("validated series should serialize checksum_ok=true rows")
	}
}
