package overload

import (
	"container/list"
	"math"
	"sync"
	"time"

	"repro/internal/resilience"
)

// fairShare is the per-client token-bucket table: every client (API key
// or remote host) refills at the same rate, so one client hammering cold
// sweeps exhausts its own bucket and gets 429s while everyone else's
// requests still reach the pool. The table is bounded LRU — an attacker
// minting client keys evicts its own oldest buckets, not the service's
// memory.
type fairShare struct {
	rate  float64 // tokens per second per client; <= 0 disables the layer
	burst float64
	max   int // bucket table bound
	clock resilience.Clock

	mu      sync.Mutex
	buckets map[string]*list.Element // client -> element holding *bucket
	order   *list.List               // front = most recently used
}

type bucket struct {
	client string
	tokens float64
	last   time.Time
}

func newFairShare(rate float64, burst float64, maxClients int, clock resilience.Clock) *fairShare {
	if burst < 1 {
		burst = 1
	}
	if maxClients < 1 {
		maxClients = 1024
	}
	return &fairShare{
		rate:    rate,
		burst:   burst,
		max:     maxClients,
		clock:   clock,
		buckets: map[string]*list.Element{},
		order:   list.New(),
	}
}

// allow spends one token from client's bucket, reporting whether it had
// one and, when it did not, how long until the next token refills — the
// Retry-After hint of the 429.
//
//blobvet:hotpath
func (f *fairShare) allow(client string) (ok bool, retryAfter time.Duration) {
	if f.rate <= 0 {
		return true, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clock.Now()
	el, found := f.buckets[client]
	if !found {
		//blobvet:allow hotalloc: one bucket per new client, amortized over its whole session and bounded by the LRU table
		el = f.order.PushFront(&bucket{client: client, tokens: f.burst, last: now})
		f.buckets[client] = el
		for f.order.Len() > f.max {
			oldest := f.order.Back()
			f.order.Remove(oldest)
			delete(f.buckets, oldest.Value.(*bucket).client)
		}
	}
	b := el.Value.(*bucket)
	f.order.MoveToFront(el)
	b.tokens = math.Min(f.burst, b.tokens+now.Sub(b.last).Seconds()*f.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration(math.Ceil((1 - b.tokens) / f.rate * float64(time.Second)))
}
