package overload

import (
	"math"
	"sync"
	"time"

	"repro/internal/resilience"
)

// LimiterConfig tunes the AIMD concurrency limiter. The zero value of
// every field takes a sane default; a zero Target disables adaptation and
// pins the limit at Max (the historical fixed-pool behaviour).
type LimiterConfig struct {
	// Min and Max bound the concurrency limit (defaults 1 and 2). Max is
	// the hard ceiling — the worker pool is sized to it — and Min keeps
	// the limiter from collapsing to zero under a latency storm.
	Min, Max int
	// Target is the sweep-latency setpoint: completions under it grow the
	// limit additively (+1 per limit's worth of completions), completions
	// over it shrink it multiplicatively by Backoff. 0 disables
	// adaptation.
	Target time.Duration
	// Backoff is the multiplicative-decrease factor in (0,1), default 0.5.
	Backoff float64
	// Cooldown is the minimum spacing between multiplicative decreases
	// (default Target), so one burst of slow completions counts as one
	// congestion signal instead of collapsing the limit to Min.
	Cooldown time.Duration
	// Clock replaces time.Now (tests run the limiter in virtual time).
	Clock resilience.Clock
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Target
	}
	return c
}

// Limiter is an adaptive concurrency limiter: AIMD (additive increase,
// multiplicative decrease — TCP congestion avoidance applied to a worker
// pool) on observed completion latency against a target. It replaces a
// fixed "N workers, fail beyond" capacity with a load-tracking ceiling:
// while the backend keeps sweeps under Target the limit climbs toward
// Max, and when latency degrades the limit halves (bounded by Min), so
// the service sheds early instead of queueing into collapse.
//
// The limiter is deterministic: given the same sequence of TryAcquire /
// Release calls and the same injected clock it lands on the same limit.
type Limiter struct {
	cfg LimiterConfig

	mu           sync.Mutex
	limit        float64 // current ceiling; int part is the admitted bound
	inflight     int
	lastDecrease time.Time
}

// NewLimiter builds a limiter starting optimistically at Max — the first
// latency overshoot brings it down, which beats starting cold and slow.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Max)}
}

// TryAcquire claims one concurrency slot if the current limit allows it.
// Every successful TryAcquire must be paired with exactly one Release (or
// Cancel, when the slot never ran any work).
//
//blobvet:hotpath
func (l *Limiter) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= l.bound() {
		return false
	}
	l.inflight++
	return true
}

// Release returns a slot and feeds the completed work's latency into the
// AIMD loop.
//
//blobvet:hotpath
func (l *Limiter) Release(latency time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	l.observe(latency)
}

// Cancel returns a slot without a latency observation — the admitted work
// never ran (submit failure, shed at grant time).
func (l *Limiter) Cancel() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
}

// observe runs one AIMD step. Caller holds l.mu.
func (l *Limiter) observe(latency time.Duration) {
	if l.cfg.Target <= 0 {
		return
	}
	if latency > l.cfg.Target {
		now := l.cfg.Clock.Now()
		if now.Sub(l.lastDecrease) < l.cfg.Cooldown {
			return
		}
		l.lastDecrease = now
		l.limit = math.Max(float64(l.cfg.Min), l.limit*l.cfg.Backoff)
		return
	}
	// Additive increase spread over the current limit's worth of
	// completions: one full RTT at the current concurrency earns +1.
	l.limit = math.Min(float64(l.cfg.Max), l.limit+1/math.Max(1, l.limit))
}

// bound is the integer admission bound. Caller holds l.mu.
func (l *Limiter) bound() int {
	b := int(l.limit)
	if b < l.cfg.Min {
		b = l.cfg.Min
	}
	return b
}

// Limit returns the current integer concurrency ceiling.
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bound()
}

// Inflight returns the number of slots currently held.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}
