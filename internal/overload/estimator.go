package overload

import (
	"slices"
	"sync"
	"time"
)

// costEstimator tracks the p50 cost of recently completed sweeps over a
// fixed ring of samples. The admission queue sheds a request early when
// its remaining deadline budget cannot cover this estimate: if the median
// sweep takes longer than the client is willing to wait, queueing the
// request only converts a cheap immediate shed into an expensive late
// timeout (the CoDel argument, applied to deadline budgets).
type costEstimator struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	scratch []time.Duration // p50's reusable sort buffer, guarded by mu
	next    int
	full    bool
}

func newCostEstimator(window int) *costEstimator {
	if window < 1 {
		window = 32
	}
	return &costEstimator{
		samples: make([]time.Duration, window),
		scratch: make([]time.Duration, 0, window),
	}
}

// add records one completed sweep's duration.
//
//blobvet:hotpath
func (e *costEstimator) add(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples[e.next] = d
	e.next++
	if e.next == len(e.samples) {
		e.next = 0
		e.full = true
	}
}

// p50 returns the median of the recorded window, or 0 before any sample
// exists (no estimate — never shed on a guess). The sort runs in a
// preallocated scratch buffer: every queued request consults the
// estimate, so the admission path must not allocate per call.
//
//blobvet:hotpath
func (e *costEstimator) p50() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.next
	if e.full {
		n = len(e.samples)
	}
	if n == 0 {
		return 0
	}
	e.scratch = append(e.scratch[:0], e.samples[:n]...)
	slices.Sort(e.scratch)
	return e.scratch[n/2]
}
