package overload

import (
	"sort"
	"sync"
	"time"
)

// costEstimator tracks the p50 cost of recently completed sweeps over a
// fixed ring of samples. The admission queue sheds a request early when
// its remaining deadline budget cannot cover this estimate: if the median
// sweep takes longer than the client is willing to wait, queueing the
// request only converts a cheap immediate shed into an expensive late
// timeout (the CoDel argument, applied to deadline budgets).
type costEstimator struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	full    bool
}

func newCostEstimator(window int) *costEstimator {
	if window < 1 {
		window = 32
	}
	return &costEstimator{samples: make([]time.Duration, window)}
}

// add records one completed sweep's duration.
func (e *costEstimator) add(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples[e.next] = d
	e.next++
	if e.next == len(e.samples) {
		e.next = 0
		e.full = true
	}
}

// p50 returns the median of the recorded window, or 0 before any sample
// exists (no estimate — never shed on a guess).
func (e *costEstimator) p50() time.Duration {
	e.mu.Lock()
	n := e.next
	if e.full {
		n = len(e.samples)
	}
	if n == 0 {
		e.mu.Unlock()
		return 0
	}
	window := make([]time.Duration, n)
	copy(window, e.samples[:n])
	e.mu.Unlock()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[n/2]
}
