package overload

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock shared by the package's tests.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time            { return c.now }
func (c *fakeClock) Advance(d time.Duration)   { c.now = c.now.Add(d) }
func (c *fakeClock) Clock() func() time.Time   { return func() time.Time { return c.now } }

func TestLimiterFixedWithoutTarget(t *testing.T) {
	l := NewLimiter(LimiterConfig{Min: 1, Max: 3})
	for i := 0; i < 3; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d refused below the limit", i)
		}
	}
	if l.TryAcquire() {
		t.Fatal("acquire beyond Max admitted")
	}
	l.Release(time.Hour) // no Target: latency must not move the limit
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit = %d after slow completion without target, want 3", got)
	}
}

// TestLimiterAIMD drives the AIMD loop in virtual time: latency over the
// target halves the limit (once per cooldown), latency under it climbs
// back one slot per limit's worth of completions.
func TestLimiterAIMD(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{
		Min: 1, Max: 8,
		Target:   100 * time.Millisecond,
		Cooldown: time.Second,
		Clock:    clk.Clock(),
	})
	if got := l.Limit(); got != 8 {
		t.Fatalf("initial limit = %d, want Max 8", got)
	}

	// One slow completion: multiplicative decrease to 4.
	if !l.TryAcquire() {
		t.Fatal("acquire refused")
	}
	l.Release(500 * time.Millisecond)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit after one overshoot = %d, want 4", got)
	}

	// A second overshoot inside the cooldown is one congestion event, not
	// two: the limit must hold at 4.
	clk.Advance(100 * time.Millisecond)
	l.TryAcquire()
	l.Release(500 * time.Millisecond)
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit inside cooldown = %d, want 4", got)
	}

	// Past the cooldown the next overshoot halves again.
	clk.Advance(2 * time.Second)
	l.TryAcquire()
	l.Release(500 * time.Millisecond)
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit after cooldown overshoot = %d, want 2", got)
	}

	// Healthy completions recover additively: from 2.0, four fast
	// completions add 1/2 + ~1/2.5 + ... — the limit must strictly grow
	// and eventually reach Max again.
	for i := 0; i < 200; i++ {
		l.TryAcquire()
		l.Release(10 * time.Millisecond)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit after recovery = %d, want Max 8", got)
	}
}

func TestLimiterNeverBelowMin(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(LimiterConfig{Min: 2, Max: 4, Target: time.Millisecond, Cooldown: time.Millisecond, Clock: clk.Clock()})
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		l.TryAcquire()
		l.Release(time.Hour)
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit = %d, want floor 2", got)
	}
	// The floor still admits work.
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("floor slots refused")
	}
	if l.TryAcquire() {
		t.Fatal("admitted beyond the floor")
	}
}

func TestLimiterDeterministic(t *testing.T) {
	run := func() []int {
		clk := newFakeClock()
		l := NewLimiter(LimiterConfig{Min: 1, Max: 6, Target: 50 * time.Millisecond, Cooldown: 200 * time.Millisecond, Clock: clk.Clock()})
		var limits []int
		lat := []time.Duration{10, 80, 20, 120, 30, 30, 200, 10}
		for i, ms := range lat {
			clk.Advance(time.Duration(i%3) * 100 * time.Millisecond)
			l.TryAcquire()
			l.Release(ms * time.Millisecond)
			limits = append(limits, l.Limit())
		}
		return limits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at step %d: %v vs %v", i, a, b)
		}
	}
}
