// Package overload is the admission-control and graceful-degradation
// layer in front of the advisor service's sweep pool. Threshold sweeps
// are seconds of work each (§III-C's interleaved repetitions), so under a
// burst of distinct requests a fixed-capacity pool either saturates the
// host or fail-fasts indiscriminately. This package replaces that with
// three cooperating mechanisms:
//
//   - an AIMD adaptive concurrency limiter (Limiter): the admitted
//     concurrency tracks observed sweep latency against a target, the way
//     TCP tracks path capacity — additive increase while healthy,
//     multiplicative decrease on congestion;
//   - a deadline-aware LIFO admission queue: under saturation, waiters
//     queue newest-first (fresh requests have the most remaining budget;
//     under sustained overload the oldest waiters are the ones whose
//     clients have given up), and a request is shed *before* execution
//     whenever its remaining deadline budget cannot cover the observed
//     p50 sweep cost — shedding early and cheaply instead of timing out
//     late and expensively, in the spirit of CoDel;
//   - per-client fair-share token buckets (keyed by API key or remote
//     host), so one client's burst exhausts its own budget instead of the
//     whole pool.
//
// Priority tiers are handled by construction rather than by a scheduler:
// cached and stale-degraded responses never enter admission at all (the
// service answers them inline), so the cheap tier can never be queued
// behind cold sweeps.
//
// Every decision surfaces through Acquire's return value, every clock
// read goes through an injectable resilience.Clock, and the package
// starts no goroutines, so the whole layer is deterministic under test.
package overload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Reason classifies a shed decision; it travels to clients verbatim in
// the rejection body's "reason" field.
type Reason string

// Shed reasons.
const (
	// ReasonQueueFull: the admission queue is at capacity.
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadline: the request's remaining deadline budget cannot
	// cover the observed p50 sweep cost, so running it would only
	// manufacture a 504.
	ReasonDeadline Reason = "deadline_budget"
	// ReasonQuota: the client's fair-share token bucket is empty.
	ReasonQuota Reason = "over_quota"
	// ReasonShutdown: the controller is draining; queued work is shed so
	// shutdown never waits on a backlog.
	ReasonShutdown Reason = "shutting_down"
)

// ShedError is an admission refusal: the request was rejected before any
// sweep work ran. RetryAfter is the client hint (how long until a retry
// could plausibly succeed).
type ShedError struct {
	Reason     Reason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	switch e.Reason {
	case ReasonQueueFull:
		return "overload: admission queue full"
	case ReasonDeadline:
		return "overload: remaining deadline budget below observed sweep cost"
	case ReasonQuota:
		return "overload: client over fair-share quota"
	case ReasonShutdown:
		return "overload: shutting down"
	}
	return fmt.Sprintf("overload: shed (%s)", e.Reason)
}

// Config tunes a Controller. The zero value gives a 2-wide ceiling, an
// 8-deep queue, no latency adaptation and no fair-share enforcement.
type Config struct {
	// MaxConcurrent is the concurrency ceiling (the worker-pool size);
	// MinConcurrent is the AIMD floor. Defaults 2 and 1.
	MaxConcurrent, MinConcurrent int
	// TargetLatency is the AIMD setpoint for sweep latency; 0 pins the
	// limit at MaxConcurrent (no adaptation).
	TargetLatency time.Duration
	// Backoff and Cooldown shape the multiplicative decrease (see
	// LimiterConfig).
	Backoff  float64
	Cooldown time.Duration
	// QueueCap bounds the LIFO admission queue (default 8; 0 keeps the
	// default — use ShedAtLimit for a queueless controller).
	QueueCap int
	// ShedAtLimit disables queueing entirely: at the limit, shed.
	ShedAtLimit bool
	// FairShareRate is each client's token refill rate in tokens/second;
	// <= 0 disables the fair-share layer. FairShareBurst is the bucket
	// size (default 4); MaxClients bounds the bucket table (default 1024).
	FairShareRate  float64
	FairShareBurst int
	MaxClients     int
	// CostWindow is the p50 estimator's sample window (default 32).
	CostWindow int
	// Clock replaces time.Now everywhere in the layer (tests).
	Clock resilience.Clock
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2
	}
	if c.MinConcurrent < 1 {
		c.MinConcurrent = 1
	}
	if c.QueueCap < 1 && !c.ShedAtLimit {
		c.QueueCap = 8
	}
	if c.ShedAtLimit {
		c.QueueCap = 0
	}
	if c.FairShareBurst < 1 {
		c.FairShareBurst = 4
	}
	return c
}

// Ticket describes one admission request.
type Ticket struct {
	// Client is the fair-share identity (API key header or remote host).
	Client string
	// Deadline is the request's absolute deadline; the zero value means
	// no deadline (never shed on budget).
	Deadline time.Time
}

// Controller combines the limiter, the admission queue and the
// fair-share table. Acquire on the request path, Permit.Release when the
// admitted work completes.
type Controller struct {
	cfg     Config
	limiter *Limiter
	costs   *costEstimator
	fair    *fairShare

	mu     sync.Mutex
	closed bool
	queue  []*waiter // stack: append on enqueue, pop from the tail (LIFO)
	queued int       // live (uncancelled) waiters in queue
}

// waiter is one request blocked in Acquire. All fields besides the
// channel are guarded by the controller's mutex.
type waiter struct {
	grant     chan struct{}
	deadline  time.Time
	err       error // set before grant is closed on a shed-while-queued
	granted   bool
	cancelled bool
}

// New builds a Controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg: cfg,
		limiter: NewLimiter(LimiterConfig{
			Min:      cfg.MinConcurrent,
			Max:      cfg.MaxConcurrent,
			Target:   cfg.TargetLatency,
			Backoff:  cfg.Backoff,
			Cooldown: cfg.Cooldown,
			Clock:    cfg.Clock,
		}),
		costs: newCostEstimator(cfg.CostWindow),
		fair:  newFairShare(cfg.FairShareRate, float64(cfg.FairShareBurst), cfg.MaxClients, cfg.Clock),
	}
}

// Permit is one admitted unit of work. Exactly one of Release or Cancel
// must be called; both are idempotent.
type Permit struct {
	c    *Controller
	once sync.Once
}

// Release returns the permit and feeds the work's duration into the AIMD
// loop and the p50 cost estimator, then grants queued waiters whatever
// capacity is now free.
func (p *Permit) Release(latency time.Duration) {
	p.once.Do(func() {
		p.c.limiter.Release(latency)
		p.c.costs.add(latency)
		p.c.grantNext()
	})
}

// Cancel returns the permit without a latency sample — the admitted work
// never ran.
func (p *Permit) Cancel() {
	p.once.Do(func() {
		p.c.limiter.Cancel()
		p.c.grantNext()
	})
}

// Acquire admits one sweep, queues the caller (LIFO, deadline-aware)
// when the limiter is saturated, or sheds with a *ShedError. A context
// error is returned as-is when ctx is done before a decision.
func (c *Controller) Acquire(ctx context.Context, t Ticket) (*Permit, error) {
	// Fair share first: a quota refusal must not depend on pool state or
	// occupy a queue slot.
	if ok, retry := c.fair.allow(t.Client); !ok {
		return nil, &ShedError{Reason: ReasonQuota, RetryAfter: retry}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, &ShedError{Reason: ReasonShutdown, RetryAfter: time.Second}
	}
	if c.limiter.TryAcquire() {
		c.mu.Unlock()
		return &Permit{c: c}, nil
	}
	// Saturated. Shed before queueing when the budget already cannot
	// cover the median sweep, or when the queue is full.
	if err := c.budgetShed(t.Deadline); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.queued >= c.cfg.QueueCap {
		c.mu.Unlock()
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: c.retryAfterHint()}
	}
	w := &waiter{grant: make(chan struct{}), deadline: t.Deadline}
	c.queue = append(c.queue, w)
	c.queued++
	c.mu.Unlock()

	select {
	case <-w.grant:
		if w.err != nil {
			return nil, w.err
		}
		return &Permit{c: c}, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// Lost the race: a grant arrived while ctx fired. The slot is
			// ours to return.
			c.mu.Unlock()
			if w.err == nil {
				(&Permit{c: c}).Cancel()
			}
			return nil, ctx.Err()
		}
		w.cancelled = true
		c.queued--
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// budgetShed decides the CoDel-style early shed: with a deadline and a
// cost estimate, a remaining budget below the p50 sweep cost means the
// request would almost surely expire in the queue. Caller holds c.mu.
func (c *Controller) budgetShed(deadline time.Time) error {
	if deadline.IsZero() {
		return nil
	}
	p50 := c.costs.p50()
	if p50 <= 0 {
		return nil
	}
	if deadline.Sub(c.cfg.Clock.Now()) < p50 {
		return &ShedError{Reason: ReasonDeadline, RetryAfter: c.retryAfterHint()}
	}
	return nil
}

// retryAfterHint is the Retry-After for capacity sheds: roughly one
// median sweep (the earliest a slot can plausibly free), floored at 1s.
func (c *Controller) retryAfterHint() time.Duration {
	if p50 := c.costs.p50(); p50 > time.Second {
		return p50
	}
	return time.Second
}

// grantNext hands freed capacity to queued waiters, newest first. A
// waiter whose budget has been burned below the p50 cost while queueing
// is shed here instead of being granted a doomed slot.
func (c *Controller) grantNext() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 {
		w := c.queue[len(c.queue)-1]
		c.queue = c.queue[:len(c.queue)-1]
		if w.cancelled {
			continue
		}
		if !c.limiter.TryAcquire() {
			c.queue = append(c.queue, w)
			return
		}
		if err := c.budgetShed(w.deadline); err != nil {
			c.limiter.Cancel()
			w.err = err
			w.granted = true
			c.queued--
			close(w.grant)
			continue
		}
		w.granted = true
		c.queued--
		close(w.grant)
	}
}

// Close sheds every queued waiter with ReasonShutdown and refuses new
// admissions. In-flight permits are unaffected: their work completes and
// their Release calls are still safe. Close is idempotent.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.queue {
		if w.cancelled || w.granted {
			continue
		}
		w.err = &ShedError{Reason: ReasonShutdown, RetryAfter: time.Second}
		w.granted = true
		c.queued--
		close(w.grant)
	}
	c.queue = nil
}

// Limit returns the limiter's current concurrency ceiling.
func (c *Controller) Limit() int { return c.limiter.Limit() }

// Inflight returns the number of admitted, unreleased permits.
func (c *Controller) Inflight() int { return c.limiter.Inflight() }

// QueueDepth returns the number of live queued waiters.
func (c *Controller) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// P50Cost returns the current median sweep-cost estimate (0 before any
// completion).
func (c *Controller) P50Cost() time.Duration { return c.costs.p50() }
