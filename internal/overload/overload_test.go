package overload

import (
	"context"
	"errors"
	"testing"
	"time"
)

func shedReason(t *testing.T, err error) Reason {
	t.Helper()
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("error %v is not a ShedError", err)
	}
	return shed.Reason
}

func TestControllerAdmitsUpToLimit(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, ShedAtLimit: true})
	p1, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background(), Ticket{Client: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background(), Ticket{Client: "a"}); shedReason(t, err) != ReasonQueueFull {
		t.Fatalf("third acquire: %v, want queue_full shed", err)
	}
	p1.Release(time.Millisecond)
	if _, err := c.Acquire(context.Background(), Ticket{Client: "a"}); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if got := c.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
}

// TestControllerLIFOQueue: waiters are granted newest-first when
// capacity frees — adaptive LIFO, the discipline that serves fresh
// requests (whose clients are still there) ahead of stale ones.
func TestControllerLIFOQueue(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, QueueCap: 4})
	hold, err := c.Acquire(context.Background(), Ticket{Client: "x"})
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 4)
	acquired := make(chan *Permit, 4)
	enqueue := func(name string, depth int) {
		go func() {
			p, err := c.Acquire(context.Background(), Ticket{Client: name})
			if err != nil {
				t.Error(err)
				order <- "err:" + name
				return
			}
			order <- name
			acquired <- p
		}()
		waitDepth(t, c, depth)
	}
	enqueue("first", 1)
	enqueue("second", 2)
	enqueue("third", 3)

	hold.Release(time.Millisecond)
	for _, want := range []string{"third", "second", "first"} {
		if got := <-order; got != want {
			t.Fatalf("grant order got %q, want %q (LIFO)", got, want)
		}
		(<-acquired).Release(time.Millisecond)
	}
}

// waitDepth blocks until the controller's queue holds at least want live
// waiters — the only observable signal that an Acquire goroutine has
// enqueued itself.
func waitDepth(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", c.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestControllerDeadlineShed: with a cost estimate on record, a request
// whose remaining budget is below the p50 sweep cost is shed at enqueue
// time with reason deadline_budget — before any queueing or execution.
func TestControllerDeadlineShed(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxConcurrent: 1, QueueCap: 4, Clock: clk.Clock()})

	// Record a 100ms cost estimate.
	p, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	if err != nil {
		t.Fatal(err)
	}
	p.Release(100 * time.Millisecond)
	if got := c.P50Cost(); got != 100*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}

	// Saturate the single slot.
	hold, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release(time.Millisecond)

	// 40ms of budget < 100ms p50: shed immediately.
	tight := Ticket{Client: "b", Deadline: clk.Now().Add(40 * time.Millisecond)}
	if _, err := c.Acquire(context.Background(), tight); shedReason(t, err) != ReasonDeadline {
		t.Fatalf("tight-budget acquire: %v, want deadline_budget shed", err)
	}

	// A roomy budget queues instead (then we abandon it via ctx).
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Ticket{Client: "b", Deadline: clk.Now().Add(time.Hour)})
		done <- err
	}()
	waitDepth(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned waiter: %v, want context.Canceled", err)
	}
	if got := c.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after cancel = %d", got)
	}
}

// TestControllerGrantTimeShed: a waiter that was admissible when it
// queued but whose budget burned below the p50 cost while waiting is
// shed at grant time instead of being handed a doomed slot.
func TestControllerGrantTimeShed(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxConcurrent: 1, QueueCap: 4, Clock: clk.Clock()})
	p, _ := c.Acquire(context.Background(), Ticket{Client: "a"})
	p.Release(100 * time.Millisecond) // cost estimate: 100ms

	hold, _ := c.Acquire(context.Background(), Ticket{Client: "a"})
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Ticket{Client: "b", Deadline: clk.Now().Add(200 * time.Millisecond)})
		done <- err
	}()
	waitDepth(t, c, 1)

	// Burn the waiter's budget in virtual time, then free the slot.
	clk.Advance(150 * time.Millisecond)
	hold.Release(time.Millisecond)
	if err := <-done; shedReason(t, err) != ReasonDeadline {
		t.Fatalf("grant-time shed: %v, want deadline_budget", err)
	}
	// The slot stayed free for the next request.
	if p, err := c.Acquire(context.Background(), Ticket{Client: "c"}); err != nil {
		t.Fatalf("slot lost after grant-time shed: %v", err)
	} else {
		p.Release(time.Millisecond)
	}
}

func TestControllerFairShare(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxConcurrent: 8, FairShareRate: 1, FairShareBurst: 2, Clock: clk.Clock()})

	// Client a spends its burst of 2, then is quota-shed.
	for i := 0; i < 2; i++ {
		p, err := c.Acquire(context.Background(), Ticket{Client: "a"})
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		p.Release(time.Millisecond)
	}
	_, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQuota {
		t.Fatalf("over-burst acquire: %v, want over_quota", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("quota shed without a Retry-After hint: %+v", shed)
	}

	// Client b is unaffected: fair share is per client.
	if p, err := c.Acquire(context.Background(), Ticket{Client: "b"}); err != nil {
		t.Fatalf("other client shed: %v", err)
	} else {
		p.Release(time.Millisecond)
	}

	// After a refill interval client a is welcome again.
	clk.Advance(1500 * time.Millisecond)
	if p, err := c.Acquire(context.Background(), Ticket{Client: "a"}); err != nil {
		t.Fatalf("post-refill acquire: %v", err)
	} else {
		p.Release(time.Millisecond)
	}
}

func TestControllerClose(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, QueueCap: 4})
	hold, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Ticket{Client: "b"})
		done <- err
	}()
	waitDepth(t, c, 1)

	c.Close()
	if err := <-done; shedReason(t, err) != ReasonShutdown {
		t.Fatalf("queued waiter on close: %v, want shutting_down", err)
	}
	if _, err := c.Acquire(context.Background(), Ticket{Client: "c"}); shedReason(t, err) != ReasonShutdown {
		t.Fatalf("acquire after close: %v, want shutting_down", err)
	}
	// The in-flight permit is still releasable after close.
	hold.Release(time.Millisecond)
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after close+release = %d", got)
	}
	c.Close() // idempotent
}

func TestPermitIdempotent(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, ShedAtLimit: true})
	p, err := c.Acquire(context.Background(), Ticket{Client: "a"})
	if err != nil {
		t.Fatal(err)
	}
	p.Release(time.Millisecond)
	p.Release(time.Millisecond)
	p.Cancel()
	if got := c.Inflight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}
