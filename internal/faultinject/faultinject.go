// Package faultinject is the deterministic fault-injection harness behind
// the repository's resilience layer. A Plan is a seeded, replayable list of
// rules — each keyed by backend ("cpu", "gpu", "xfer", "usm", "service"),
// kernel and problem-size range, with a per-site firing probability — that
// an armed Injector evaluates at well-defined injection points inside the
// simulated backends (internal/sim/cpumodel, gpumodel, xfer, usm) and the
// serving layer.
//
// Four fault kinds cover the failure modes a real offload runtime sees:
//
//   - Transient: the call fails with a retryable error (a dropped DMA, a
//     momentary ECC stall). resilience.Do retries these.
//   - Hard: the call fails with a non-retryable error (device fell off the
//     bus). Retrying is pointless; the sweep aborts and checkpoints.
//   - Latency: the call succeeds but its modeled time gains a spike,
//     exercising deadline budgets without corrupting numerics elsewhere.
//   - Panic: the call panics, exercising the service's containment
//     middleware. Nothing below the HTTP layer recovers these.
//
// Determinism is the point: the Injector consumes a private seeded PRNG in
// call order, so a single-goroutine sweep under a given plan fails at
// exactly the same sites on every run — a chaos test is as replayable as a
// unit test. When no plan is armed the injection point is a nil-interface
// check: zero allocations, zero locked sections, effectively zero cost
// (proved by a benchmark-suite case and an allocation test).
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Backend names used by the repository's injection sites. Site.Backend is
// a free string so plans can cover future subsystems without a lockstep
// change here.
const (
	BackendCPU     = "cpu"     // CPU BLAS library calls (cpumodel)
	BackendGPU     = "gpu"     // GPU BLAS kernel launches (gpumodel)
	BackendXfer    = "xfer"    // explicit host<->device copies (xfer)
	BackendUSM     = "usm"     // page-migration traffic (usm)
	BackendService = "service" // the serving layer itself
)

// Site identifies one injection point evaluation: which backend is about
// to do work, for which kernel family, at what problem size.
type Site struct {
	// Backend is one of the Backend* constants (or a future subsystem).
	Backend string
	// Kernel is "gemm", "gemv" or "" when the site is not kernel-shaped.
	Kernel string
	// Dim is the largest dimension of the call, the same quantity the
	// sweep's upper limit bounds — rules select size ranges with it.
	Dim int
}

func (s Site) String() string {
	if s.Kernel == "" {
		return fmt.Sprintf("%s@%d", s.Backend, s.Dim)
	}
	return fmt.Sprintf("%s/%s@%d", s.Backend, s.Kernel, s.Dim)
}

// Kind enumerates the fault kinds a rule can inject.
type Kind int

// The fault kinds, in severity order.
const (
	Transient Kind = iota
	Hard
	Latency
	PanicKind
)

// String returns the plan-schema spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Hard:
		return "hard"
	case Latency:
		return "latency"
	case PanicKind:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a plan-schema token into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "hard":
		return Hard, nil
	case "latency":
		return Latency, nil
	case "panic":
		return PanicKind, nil
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q", s)
}

// Rule arms one fault at a set of sites. A zero field matches everything
// in that dimension, so the tightest useful rule names backend, kernel and
// a size range while the loosest ("30% transient everywhere") sets only
// Probability and Kind.
type Rule struct {
	// Backend matches Site.Backend exactly; "" matches any backend.
	Backend string `json:"backend,omitempty"`
	// Kernel matches Site.Kernel exactly; "" matches any kernel.
	Kernel string `json:"kernel,omitempty"`
	// MinDim/MaxDim bound Site.Dim inclusively; MaxDim 0 means unbounded.
	MinDim int `json:"min_dim,omitempty"`
	MaxDim int `json:"max_dim,omitempty"`
	// Probability in [0,1] is the chance the rule fires at a matching
	// site (each evaluation draws from the plan's seeded PRNG).
	Probability float64 `json:"probability"`
	// Kind selects what happens when the rule fires. On the wire it is
	// the lowercase name ("transient", "hard", "latency", "panic"); see
	// plan.go for the JSON mapping.
	Kind Kind `json:"kind"`
	// LatencySeconds is the modeled time added when a Latency rule fires.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
	// MaxHits bounds how many times the rule may fire (0 = unlimited) —
	// "the device dropped off the bus once" is MaxHits 1.
	MaxHits int `json:"max_hits,omitempty"`
}

// matches reports whether the rule covers the site.
func (r *Rule) matches(s Site) bool {
	if r.Backend != "" && r.Backend != s.Backend {
		return false
	}
	if r.Kernel != "" && r.Kernel != s.Kernel {
		return false
	}
	if s.Dim < r.MinDim {
		return false
	}
	if r.MaxDim > 0 && s.Dim > r.MaxDim {
		return false
	}
	return true
}

// Plan is a complete, replayable fault schedule: a seed plus rules. Plans
// are inert data (load one from JSON, build one in a test); Arm turns a
// plan into a live Injector.
type Plan struct {
	// Seed feeds the injector's private PRNG; the same plan armed twice
	// produces the same fault sequence for the same call sequence.
	Seed int64 `json:"seed"`
	// Rules are evaluated in order; the first firing rule wins.
	Rules []Rule `json:"rules"`
}

// Validate checks the plan's rules for schema errors.
func (p *Plan) Validate() error {
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Probability < 0 || r.Probability > 1 {
			return fmt.Errorf("faultinject: rule %d: probability %v outside [0,1]", i, r.Probability)
		}
		if r.MaxDim > 0 && r.MaxDim < r.MinDim {
			return fmt.Errorf("faultinject: rule %d: max_dim %d < min_dim %d", i, r.MaxDim, r.MinDim)
		}
		if r.Kind == Latency && r.LatencySeconds < 0 {
			return fmt.Errorf("faultinject: rule %d: negative latency_seconds", i)
		}
		if r.Kind != Latency && r.LatencySeconds != 0 {
			return fmt.Errorf("faultinject: rule %d: latency_seconds set on a %v rule", i, r.Kind)
		}
	}
	return nil
}

// Point is the injection-point interface the backends consult. At returns
// the extra modeled seconds a Latency fault adds (usually 0) and the
// error a Transient or Hard fault injects; a Panic fault panics with a
// *PanicFault. Implementations must be safe for concurrent use.
//
// A nil Point means "not armed" and every site carries that meaning in a
// single comparison, which is what keeps the unarmed path free.
type Point interface {
	At(Site) (extraSeconds float64, err error)
}

// Error is the injected failure. It wraps nothing (there is no underlying
// cause — the fault IS the cause) and reports retryability through the
// Transient method that internal/resilience classifies by.
type Error struct {
	Site Site
	Kind Kind
	// Seq is the injector's evaluation counter when the fault fired,
	// making "which call died" reconstructible from logs.
	Seq uint64
}

// Error formats the fault for logs.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %v fault at %v (seq %d)", e.Kind, e.Site, e.Seq)
}

// Transient reports whether retrying the operation can succeed.
func (e *Error) Transient() bool { return e.Kind == Transient }

// PanicFault is the value a Panic rule panics with; the service's
// recovery middleware logs it like any other panic.
type PanicFault struct {
	Site Site
	Seq  uint64
}

func (p *PanicFault) String() string {
	return fmt.Sprintf("faultinject: deliberate panic at %v (seq %d)", p.Site, p.Seq)
}

// Stats are an armed injector's running counters, for tests and chaos-run
// reporting.
type Stats struct {
	// Evaluations counts At calls; Matches counts rule matches; the per-
	// kind counters count fired faults.
	Evaluations, Matches                 uint64
	Transients, Hards, Latencies, Panics uint64
}

// Injector is an armed Plan: the live Point the backends consult. Create
// with Plan.Arm; share one injector across every backend of a run so the
// fault sequence is a single deterministic stream.
type Injector struct {
	rules []Rule

	mu   sync.Mutex
	rng  *rand.Rand
	hits []int // per-rule fire counts, for MaxHits

	evals     atomic.Uint64
	matches   atomic.Uint64
	transient atomic.Uint64
	hard      atomic.Uint64
	latency   atomic.Uint64
	panics    atomic.Uint64
}

// Arm builds a live Injector from the plan. The injector owns a private
// PRNG seeded with Plan.Seed, so arming the same plan twice replays the
// same fault stream.
func (p *Plan) Arm() *Injector {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	return &Injector{
		rules: rules,
		rng:   rand.New(rand.NewSource(p.Seed)),
		hits:  make([]int, len(rules)),
	}
}

// At evaluates the plan at one site. The common case — no rule matches —
// touches no locks and allocates nothing.
func (in *Injector) At(site Site) (float64, error) {
	seq := in.evals.Add(1)
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(site) {
			continue
		}
		in.matches.Add(1)
		if extra, err, fired := in.fire(i, r, site, seq); fired {
			return extra, err
		}
	}
	return 0, nil
}

// fire draws the rule's probability and, when it fires, produces the
// fault. The PRNG draw sits under the mutex so concurrent consumers see a
// serialized (and therefore replayable-per-order) stream.
func (in *Injector) fire(i int, r *Rule, site Site, seq uint64) (float64, error, bool) {
	in.mu.Lock()
	if r.MaxHits > 0 && in.hits[i] >= r.MaxHits {
		in.mu.Unlock()
		return 0, nil, false
	}
	fired := r.Probability >= 1 || in.rng.Float64() < r.Probability
	if fired {
		in.hits[i]++
	}
	in.mu.Unlock()
	if !fired {
		return 0, nil, false
	}
	switch r.Kind {
	case Latency:
		in.latency.Add(1)
		return r.LatencySeconds, nil, true
	case PanicKind:
		in.panics.Add(1)
		panic(&PanicFault{Site: site, Seq: seq})
	case Hard:
		in.hard.Add(1)
		return 0, &Error{Site: site, Kind: Hard, Seq: seq}, true
	default:
		in.transient.Add(1)
		return 0, &Error{Site: site, Kind: Transient, Seq: seq}, true
	}
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Evaluations: in.evals.Load(),
		Matches:     in.matches.Load(),
		Transients:  in.transient.Load(),
		Hards:       in.hard.Load(),
		Latencies:   in.latency.Load(),
		Panics:      in.panics.Load(),
	}
}
