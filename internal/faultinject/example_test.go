package faultinject_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Example is the README's "Fault injection & resilience" walkthrough as a
// compiled, output-checked test: a seeded plan makes 30% of the GPU
// model's calls fail transiently, and with a retry budget the sweep
// still converges to exactly the threshold a fault-free run finds
// (compare ExampleRunProblem in internal/core).
func Example() {
	plan := faultinject.Plan{
		Seed: 20260805,
		Rules: []faultinject.Rule{{
			Backend:     faultinject.BackendGPU,
			Probability: 0.3,
			Kind:        faultinject.Transient,
		}},
	}
	sys := systems.DAWN()
	inj := plan.Arm()
	sys.CPU.Inject = inj
	sys.GPU.Inject = inj

	pt, _ := core.FindProblem(core.GEMM, "square")
	cfg := core.DefaultConfig(8) // -i 8 -s 1
	cfg.MaxDim = 1024            // -d 1024
	cfg.Resilience = core.Resilience{MaxAttempts: 25}
	series, err := core.RunProblem(context.Background(), sys, pt, core.F64, cfg)
	if err != nil {
		fmt.Println("sweep failed:", err)
		return
	}
	fmt.Println(series.Thresholds[xfer.TransferOnce])
	// Output: {404, 404, 404}
}
