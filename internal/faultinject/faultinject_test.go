package faultinject

import (
	"errors"
	"math"
	"testing"
)

// TestRuleMatching: backend/kernel/size-range selectors behave as
// documented, including the zero-value-matches-anything convention.
func TestRuleMatching(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		site Site
		want bool
	}{
		{"empty rule matches anything", Rule{}, Site{Backend: "gpu", Kernel: "gemm", Dim: 7}, true},
		{"backend match", Rule{Backend: "gpu"}, Site{Backend: "gpu"}, true},
		{"backend mismatch", Rule{Backend: "gpu"}, Site{Backend: "cpu"}, false},
		{"kernel match", Rule{Kernel: "gemv"}, Site{Backend: "cpu", Kernel: "gemv"}, true},
		{"kernel mismatch", Rule{Kernel: "gemv"}, Site{Backend: "cpu", Kernel: "gemm"}, false},
		{"below min_dim", Rule{MinDim: 100}, Site{Dim: 99}, false},
		{"at min_dim", Rule{MinDim: 100}, Site{Dim: 100}, true},
		{"at max_dim", Rule{MaxDim: 100}, Site{Dim: 100}, true},
		{"above max_dim", Rule{MaxDim: 100}, Site{Dim: 101}, false},
		{"zero max_dim is unbounded", Rule{MinDim: 1}, Site{Dim: 1 << 30}, true},
	}
	for _, tc := range cases {
		if got := tc.rule.matches(tc.site); got != tc.want {
			t.Errorf("%s: matches=%v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDeterministicReplay: the same plan armed twice yields the same
// fault sequence for the same call sequence — the replayable-seed promise.
func TestDeterministicReplay(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Backend: BackendGPU, Probability: 0.3, Kind: Transient},
	}}
	run := func() []bool {
		in := plan.Arm()
		out := make([]bool, 0, 500)
		for i := 0; i < 500; i++ {
			_, err := in.At(Site{Backend: BackendGPU, Kernel: "gemm", Dim: i})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: run A fired=%v, run B fired=%v — not replayable", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	// ~30% of 500 calls; a replayable PRNG far outside this band would
	// mean the probability draw is wrong, not unlucky.
	if fired < 100 || fired > 200 {
		t.Fatalf("30%% rule fired %d/500 times", fired)
	}
}

// TestKinds: each kind produces its documented effect and classification.
func TestKinds(t *testing.T) {
	site := Site{Backend: BackendCPU, Kernel: "gemm", Dim: 64}

	in := (&Plan{Rules: []Rule{{Kind: Transient, Probability: 1}}}).Arm()
	_, err := in.At(site)
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() {
		t.Fatalf("transient rule: got %v, want transient *Error", err)
	}

	in = (&Plan{Rules: []Rule{{Kind: Hard, Probability: 1}}}).Arm()
	_, err = in.At(site)
	if !errors.As(err, &fe) || fe.Transient() {
		t.Fatalf("hard rule: got %v, want non-transient *Error", err)
	}

	in = (&Plan{Rules: []Rule{{Kind: Latency, Probability: 1, LatencySeconds: 0.25}}}).Arm()
	extra, err := in.At(site)
	if err != nil || math.Abs(extra-0.25) > 0 {
		t.Fatalf("latency rule: extra=%v err=%v, want 0.25, nil", extra, err)
	}

	in = (&Plan{Rules: []Rule{{Kind: PanicKind, Probability: 1}}}).Arm()
	func() {
		defer func() {
			if _, ok := recover().(*PanicFault); !ok {
				t.Fatalf("panic rule did not panic with *PanicFault")
			}
		}()
		_, _ = in.At(site)
	}()
}

// TestMaxHits: a bounded rule stops firing after its budget.
func TestMaxHits(t *testing.T) {
	in := (&Plan{Rules: []Rule{{Kind: Hard, Probability: 1, MaxHits: 2}}}).Arm()
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := in.At(Site{Backend: BackendGPU}); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("MaxHits 2 rule fired %d times", failures)
	}
}

// TestFirstMatchWins: rule order is significant.
func TestFirstMatchWins(t *testing.T) {
	in := (&Plan{Rules: []Rule{
		{Backend: BackendGPU, Kind: Latency, Probability: 1, LatencySeconds: 1},
		{Backend: BackendGPU, Kind: Hard, Probability: 1},
	}}).Arm()
	extra, err := in.At(Site{Backend: BackendGPU})
	if err != nil || extra != 1 {
		t.Fatalf("first rule should win: extra=%v err=%v", extra, err)
	}
}

// TestQuietPathAllocationFree: an armed injector whose rules do not match
// the site must not allocate — the "armed but quiet" overhead contract
// the retry-overhead benchmark case tracks.
func TestQuietPathAllocationFree(t *testing.T) {
	in := (&Plan{Seed: 1, Rules: []Rule{
		{Backend: BackendService, Probability: 1, Kind: Hard},
	}}).Arm()
	site := Site{Backend: BackendGPU, Kernel: "gemm", Dim: 512}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := in.At(site); err != nil {
			t.Fatal("quiet site fired")
		}
	})
	if allocs != 0 {
		t.Fatalf("quiet injection path allocates %.1f objects/op, want 0", allocs)
	}
	if s := in.Stats(); s.Evaluations < 1000 || s.Matches != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestPlanJSONRoundTrip: Marshal -> ParsePlan is the identity, and the
// schema rejects unknown fields and bad values.
func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{Seed: 7, Rules: []Rule{
		{Backend: BackendGPU, Kernel: "gemm", MinDim: 32, MaxDim: 4096, Probability: 0.3, Kind: Transient},
		{Backend: BackendXfer, Probability: 0.01, Kind: Latency, LatencySeconds: 0.002},
		{Backend: BackendService, Probability: 1, Kind: PanicKind, MaxHits: 1},
	}}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != p.Seed || len(back.Rules) != len(p.Rules) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range p.Rules {
		if back.Rules[i] != p.Rules[i] {
			t.Errorf("rule %d: %+v != %+v", i, back.Rules[i], p.Rules[i])
		}
	}

	if _, err := ParsePlan([]byte(`{"seed":1,"rules":[{"probabilty":0.5,"kind":"hard"}]}`)); err == nil {
		t.Error("misspelled field accepted")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"probability":2,"kind":"hard"}]}`)); err == nil {
		t.Error("probability 2 accepted")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"probability":0.5,"kind":"meteor"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"probability":0.5,"kind":"hard","min_dim":9,"max_dim":3}]}`)); err == nil {
		t.Error("inverted dim range accepted")
	}
	if _, err := ParsePlan([]byte(`{"rules":[{"probability":0.5,"kind":"hard","latency_seconds":1}]}`)); err == nil {
		t.Error("latency_seconds on a hard rule accepted")
	}
}
