package faultinject

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// This file is the plan's JSON wire format (DESIGN.md §11). A plan file
// is the Plan struct verbatim:
//
//	{
//	  "seed": 42,
//	  "rules": [
//	    {"backend": "gpu", "probability": 0.3, "kind": "transient"},
//	    {"backend": "xfer", "kernel": "gemm", "min_dim": 512,
//	     "probability": 0.05, "kind": "latency", "latency_seconds": 0.002},
//	    {"backend": "service", "probability": 1, "kind": "panic",
//	     "max_hits": 1}
//	  ]
//	}
//
// Kind travels as its lowercase name so plans stay hand-editable.

// MarshalJSON renders Kind as its schema name.
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k {
	case Transient, Hard, Latency, PanicKind:
		return json.Marshal(k.String())
	}
	return nil, fmt.Errorf("faultinject: cannot marshal %v", k)
}

// UnmarshalJSON parses the schema name back into a Kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("faultinject: kind must be a string: %w", err)
	}
	kind, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// ParsePlan decodes and validates a plan from its JSON form. Unknown
// fields are rejected so a typo'd rule key fails loudly instead of
// silently matching everything.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faultinject: invalid plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faultinject: reading plan: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s: %w", path, err)
	}
	return p, nil
}

// Marshal renders the plan as indented JSON, the inverse of ParsePlan.
func (p *Plan) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(p, "", "  ")
}
