package faultinject

import (
	"bytes"
	"testing"
)

// FuzzPlanJSON drives ParsePlan with arbitrary bytes. Plans are
// hand-edited operator input (-fault-plan files), so the parser must
// never panic, and any plan it accepts must round-trip: Marshal output
// re-parses to a plan that marshals byte-identically (the wire form is
// canonical, not lossy).
func FuzzPlanJSON(f *testing.F) {
	f.Add([]byte(`{"seed": 42, "rules": [{"backend": "gpu", "probability": 0.3, "kind": "transient"}]}`))
	f.Add([]byte(`{"seed": 1, "rules": [{"backend": "xfer", "kernel": "gemm", "min_dim": 512, "probability": 0.05, "kind": "latency", "latency_seconds": 0.002}]}`))
	f.Add([]byte(`{"seed": 7, "rules": [{"backend": "service", "probability": 1, "kind": "panic", "max_hits": 1}]}`))
	f.Add([]byte(`{"rules": []}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": -1, "rules": [{"probability": 2, "kind": "hard"}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("plan accepted by ParsePlan fails Marshal: %v\ninput: %q", err, data)
		}
		p2, err := ParsePlan(out)
		if err != nil {
			t.Fatalf("marshalled plan does not re-parse: %v\nwire: %s", err, out)
		}
		out2, err := p2.Marshal()
		if err != nil {
			t.Fatalf("re-parsed plan fails Marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("plan wire form not canonical:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
