package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// curvesFromSeries converts one Series into plot curves: the CPU curve plus
// one GPU curve per transfer strategy (GFLOP/s vs the sweep's largest
// dimension).
func curvesFromSeries(ser *core.Series, includeCPU bool, strategies []xfer.Strategy, labelPrefix string) []plot.Curve {
	var curves []plot.Curve
	x := make([]float64, len(ser.Samples))
	for i, smp := range ser.Samples {
		x[i] = float64(smp.Dims.MaxDim())
	}
	if includeCPU {
		y := make([]float64, len(ser.Samples))
		for i, smp := range ser.Samples {
			y[i] = smp.CPUGflops
		}
		curves = append(curves, plot.Curve{Label: labelPrefix + "CPU (" + ser.CPULibrary + ")", X: x, Y: y})
	}
	for _, st := range strategies {
		y := make([]float64, len(ser.Samples))
		for i, smp := range ser.Samples {
			y[i] = smp.GPUGflops[st]
		}
		curves = append(curves, plot.Curve{Label: labelPrefix + "GPU " + st.String(), X: x, Y: y})
	}
	return curves
}

// renderChart writes the ASCII chart to w and the SVG artifact to OutDir.
func renderChart(w io.Writer, opt Options, fileBase string, ch plot.Chart) error {
	for i := range ch.Curves {
		ch.Curves[i] = plot.Downsample(ch.Curves[i], 160)
	}
	fmt.Fprint(w, ch.ASCII(100, 24))
	return writeArtifact(opt, fileBase+".svg", ch.SVG(800, 480))
}

// runSquare sweeps the square problem of a kernel on one system. The
// caller's context reaches core.RunProblem so cancellation aborts the
// sweep between sizes.
func runSquare(ctx context.Context, sys systems.System, kernel core.KernelKind, prec core.Precision, opt Options, iters int) (*core.Series, error) {
	pt, err := core.FindProblem(kernel, "square")
	if err != nil {
		return nil, err
	}
	return core.RunProblem(ctx, sys, pt, prec, sweepConfig(opt, iters))
}

// Fig2 regenerates Fig 2: square SGEMM performance at one iteration on
// DAWN, showing the oneMKL performance drop at {629,629,629} and the GPU
// curves for all three transfer strategies.
func Fig2(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	ser, err := runSquare(ctx, systems.DAWN(), core.GEMM, core.F32, opt, 1)
	if err != nil {
		return err
	}
	ch := plot.Chart{
		Title:  "Square SGEMM performance (1 iteration) on DAWN",
		XLabel: "M=N=K", YLabel: "GFLOP/s", LogY: true,
		Curves: curvesFromSeries(ser, true, xfer.Strategies, ""),
	}
	return renderChart(w, opt, "fig2_dawn_sgemm_1iter", ch)
}

// Fig3 regenerates Fig 3: square SGEMM CPU performance on Isambard-AI for
// NVPL (72 threads), NVPL (1 thread) and ArmPL over the first 192 problem
// sizes, at 1 and 8 iterations. It shows NVPL's all-threads-always
// heuristic losing to both alternatives at small sizes.
func Fig3(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	opt.MaxDim = 192
	configs := []systems.System{
		systems.IsambardAI(),
		systems.IsambardAINVPL1T(),
		systems.IsambardAIArmPL(),
	}
	for _, iters := range []int{1, 8} {
		var curves []plot.Curve
		for _, sys := range configs {
			ser, err := runSquare(ctx, sys, core.GEMM, core.F32, opt, iters)
			if err != nil {
				return err
			}
			cs := curvesFromSeries(ser, true, nil, "")
			curves = append(curves, cs...)
		}
		ch := plot.Chart{
			Title:  fmt.Sprintf("Square SGEMM CPU performance on Isambard-AI (%d iteration(s), first 192 sizes)", iters),
			XLabel: "M=N=K", YLabel: "GFLOP/s", LogY: true,
			Curves: curves,
		}
		if err := renderChart(w, opt, fmt.Sprintf("fig3_isambard_sgemm_%diter", iters), ch); err != nil {
			return err
		}
	}
	return nil
}

// Fig4 regenerates Fig 4: square DGEMV performance at one iteration on all
// three systems — the CPU wins outright on LUMI, while DAWN and Isambard-AI
// show a mid-range band where the GPU outperforms a dropped CPU curve even
// though no offload threshold exists.
func Fig4(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	for _, sys := range systems.All() {
		ser, err := runSquare(ctx, sys, core.GEMV, core.F64, opt, 1)
		if err != nil {
			return err
		}
		ch := plot.Chart{
			Title:  "Square DGEMV performance (1 iteration) on " + sys.Name,
			XLabel: "M=N", YLabel: "GFLOP/s", LogY: true,
			Curves: curvesFromSeries(ser, true, xfer.Strategies, ""),
		}
		if err := renderChart(w, opt, "fig4_dgemv_1iter_"+sys.Name, ch); err != nil {
			return err
		}
	}
	return nil
}

// Fig5 regenerates Fig 5: square SGEMV performance at 128 iterations on
// Isambard-AI and DAWN — steep GH200 curves from small sizes versus DAWN's
// shallow PCIe-fed curves, plus the NVPL CPU step at {256,256}.
func Fig5(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	for _, sys := range []systems.System{systems.IsambardAI(), systems.DAWN()} {
		ser, err := runSquare(ctx, sys, core.GEMV, core.F32, opt, 128)
		if err != nil {
			return err
		}
		ch := plot.Chart{
			Title:  "Square SGEMV performance (128 iterations) on " + sys.Name,
			XLabel: "M=N", YLabel: "GFLOP/s", LogY: true,
			Curves: curvesFromSeries(ser, true, xfer.Strategies, ""),
		}
		if err := renderChart(w, opt, "fig5_sgemv_128iter_"+sys.Name, ch); err != nil {
			return err
		}
	}
	return nil
}

// Fig6 regenerates Fig 6: AOCL vs OpenBLAS square DGEMV CPU performance on
// LUMI at 128 iterations — AOCL's serial GEMV against OpenBLAS's
// multi-threaded one.
func Fig6(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	var curves []plot.Curve
	for _, sys := range []systems.System{systems.LUMI(), systems.LUMIOpenBLAS()} {
		ser, err := runSquare(ctx, sys, core.GEMV, core.F64, opt, 128)
		if err != nil {
			return err
		}
		curves = append(curves, curvesFromSeries(ser, true, nil, "")...)
	}
	ch := plot.Chart{
		Title:  "AOCL vs OpenBLAS square DGEMV CPU performance (128 iterations) on LUMI",
		XLabel: "M=N", YLabel: "GFLOP/s", LogY: true,
		Curves: curves,
	}
	return renderChart(w, opt, "fig6_lumi_dgemv_libraries", ch)
}

// Fig7 regenerates Fig 7 (Appendix A): DAWN GPU SGEMM Transfer-Once
// performance at 32 iterations under implicit scaling (both PVC tiles as
// one device) versus explicit scaling (one tile) — implicit is lower and
// less consistent despite twice the compute.
func Fig7(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	var curves []plot.Curve
	for _, sys := range []systems.System{systems.DAWN(), systems.DAWNImplicitScaling()} {
		ser, err := runSquare(ctx, sys, core.GEMM, core.F32, opt, 32)
		if err != nil {
			return err
		}
		label := "explicit scaling "
		if sys.GPU.ImplicitScaling {
			label = "implicit scaling "
		}
		curves = append(curves, curvesFromSeries(ser, false, []xfer.Strategy{xfer.TransferOnce}, label)...)
	}
	ch := plot.Chart{
		Title:  "DAWN GPU SGEMM performance (32 iterations): implicit vs explicit scaling",
		XLabel: "M=N=K", YLabel: "GFLOP/s", LogY: true,
		Curves: curves,
	}
	return renderChart(w, opt, "fig7_dawn_scaling", ch)
}
