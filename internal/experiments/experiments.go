// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV, Tables I and III-VI, Figures 2-7) plus the ablations and
// extensions called out in DESIGN.md. Each experiment is a named entry in
// the Registry; cmd/gpu-blob --experiment and the repository's benchmark
// harness both dispatch through it.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Options configures an experiment run.
type Options struct {
	// Step strides the size sweeps. 1 reproduces the paper's every-size
	// sweeps; larger values trade resolution for speed (thresholds may then
	// land on the nearest sampled size).
	Step int
	// MaxDim is the sweep upper bound d (default 4096).
	MaxDim int
	// OutDir, when non-empty, receives CSV files and SVG figures.
	OutDir string
	// Validate enables checksum validation on sampled sizes (slower).
	Validate bool
}

// Normalize fills defaults.
func (o Options) Normalize() Options {
	if o.Step < 1 {
		o.Step = 1
	}
	if o.MaxDim < 1 {
		o.MaxDim = 4096
	}
	return o
}

// Experiment is one regenerable paper element.
type Experiment struct {
	// ID is the CLI token, e.g. "table3" or "fig5".
	ID string
	// Title is the paper element it regenerates.
	Title string
	// Run writes the regenerated rows/series to w. The context flows into
	// every sweep the experiment performs, so cancelling it (Ctrl-C in
	// cmd/gpu-blob) aborts a long regeneration between problem sizes.
	Run func(ctx context.Context, w io.Writer, opt Options) error
}

// Registry lists all experiments in paper order.
var Registry = []Experiment{
	{ID: "table1", Title: "Table I: SGEMM run-times vs alpha/beta across devices and libraries", Run: TableI},
	{ID: "table3", Title: "Table III: square GEMM offload thresholds", Run: TableIII},
	{ID: "fig2", Title: "Fig 2: square SGEMM performance (1 iteration) on DAWN", Run: Fig2},
	{ID: "fig3", Title: "Fig 3: square SGEMM on Isambard-AI across CPU libraries", Run: Fig3},
	{ID: "table4", Title: "Table IV: square GEMV offload thresholds", Run: TableIV},
	{ID: "fig4", Title: "Fig 4: square DGEMV performance (1 iteration)", Run: Fig4},
	{ID: "fig5", Title: "Fig 5: square SGEMV performance (128 iterations), Isambard-AI and DAWN", Run: Fig5},
	{ID: "fig6", Title: "Fig 6: AOCL vs OpenBLAS square DGEMV on LUMI (128 iterations)", Run: Fig6},
	{ID: "table5", Title: "Table V: first iteration count yielding a non-square GEMM threshold", Run: TableV},
	{ID: "table6", Title: "Table VI: first iteration count yielding a non-square GEMV threshold", Run: TableVI},
	{ID: "fig7", Title: "Fig 7: DAWN GPU SGEMM, implicit vs explicit scaling (32 iterations)", Run: Fig7},
	{ID: "flops-model", Title: "Ablation: exact vs approximated FLOP counts (§III-A)", Run: FlopsModel},
	{ID: "xnack", Title: "Ablation: LUMI USM with and without HSA_XNACK (§IV)", Run: Xnack},
	{ID: "batched", Title: "Extension: batched GEMM offload threshold (§V)", Run: Batched},
	{ID: "half", Title: "Extension: half-precision (HGEMM) offload threshold (§V)", Run: HalfPrecision},
	{ID: "sparse", Title: "Extension: sparse SpMV offload threshold (§V)", Run: Sparse},
	{ID: "stability", Title: "Ablation: threshold-detector stability under stride and noise (§III-D)", Run: Stability},
	{ID: "quirks", Title: "Ablation: offload thresholds with all library quirks removed", Run: QuirkAblation},
	{ID: "perfstat", Title: "§IV-B evidence: effective CPUs used by AOCL GEMV vs GEMM", Run: PerfStat},
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Registry))
	for i, e := range Registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAll executes every registered experiment in order.
func RunAll(ctx context.Context, w io.Writer, opt Options) error {
	for _, e := range Registry {
		fmt.Fprintf(w, "=== %s (%s) ===\n", e.ID, e.Title)
		if err := e.Run(ctx, w, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// writeArtifact saves content into opt.OutDir when set.
func writeArtifact(opt Options, name, content string) error {
	if opt.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(opt.OutDir, name), []byte(content), 0o644)
}
