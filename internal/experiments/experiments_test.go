package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fastOpt trades sweep resolution for test speed; qualitative assertions
// below only rely on coarse structure.
func fastOpt() Options {
	return Options{Step: 16, MaxDim: 2048}
}

func TestRegistryCoversPaperElements(t *testing.T) {
	want := []string{
		"table1", "table3", "table4", "table5", "table6",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"flops-model", "xnack", "batched", "half", "sparse",
		"stability", "quirks", "perfstat",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Fatalf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ByID("table42"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("%s: incomplete registration", e.ID)
		}
	}
}

func TestTableIShape(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(context.Background(), &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, dev := range []string{"A100", "MI250X", "Max 1550", "8468", "7543P"} {
		if !strings.Contains(out, dev) {
			t.Fatalf("Table I missing device %s:\n%s", dev, out)
		}
	}
	// The beta effect: every row's b2/b0 ratio must exceed 1 (beta=0 is a
	// real shortcut) and stay bounded near the paper's 1.2x-1.7x band (the
	// single-threaded CPU rows run more memory-bound in the model, so allow
	// up to 2x — the pure byte ratio of the extra C read).
	re := regexp.MustCompile(`(\d+\.\d+)x`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != 5 {
		t.Fatalf("expected 5 ratio cells, got %d:\n%s", len(matches), out)
	}
	for _, m := range matches {
		if m[1] < "1.0" || m[1] >= "2.0" {
			t.Fatalf("beta ratio %s outside [1.0, 2.0):\n%s", m[1], out)
		}
	}
}

func TestTableIIIQualitativeShape(t *testing.T) {
	var buf bytes.Buffer
	opt := fastOpt()
	opt.Step = 1 // threshold values matter here
	opt.MaxDim = 1024
	if err := TableIII(context.Background(), &buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Isambard-AI rows must all be 26:26 for Once (the paper's headline).
	if !strings.Contains(out, "26:26") {
		t.Fatalf("Isambard 26:26 missing:\n%s", out)
	}
	// DAWN at 1 iteration crosses at the oneMKL drop.
	if !strings.Contains(out, "629:629") {
		t.Fatalf("DAWN 629 threshold missing:\n%s", out)
	}
}

func TestTableIVQualitativeShape(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Step: 1, MaxDim: 4096}
	if err := TableIV(context.Background(), &buf, opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	// Every 1-iteration row and every Always cell must be "—:—" (the
	// paper's one fully-consistent GEMV finding).
	oneIterRows := 0
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) < 5 {
			continue
		}
		if fields[1] == "1" {
			oneIterRows++
			if fields[2] != "—:—" || fields[3] != "—:—" || fields[4] != "—:—" {
				t.Fatalf("1-iteration GEMV row should have no thresholds: %q", ln)
			}
		}
		if fields[1] == "8" || fields[1] == "32" || fields[1] == "64" || fields[1] == "128" {
			if fields[3] != "—:—" {
				t.Fatalf("Transfer-Always GEMV should never threshold: %q", ln)
			}
		}
	}
	if oneIterRows != 3 {
		t.Fatalf("expected 3 one-iteration rows, got %d:\n%s", oneIterRows, out)
	}
	// Isambard's static 256 threshold.
	if !strings.Contains(out, "256:") {
		t.Fatalf("Isambard 256 GEMV threshold missing:\n%s", out)
	}
}

func TestTableVAndVIRun(t *testing.T) {
	var buf bytes.Buffer
	opt := Options{Step: 4, MaxDim: 4096}
	if err := TableV(context.Background(), &buf, opt); err != nil {
		t.Fatal(err)
	}
	outV := buf.String()
	if strings.Count(outV, "\n") < 8 {
		t.Fatalf("Table V too short:\n%s", outV)
	}
	// DAWN never thresholds the two-small-dims problem types (§IV-C).
	for _, ln := range strings.Split(outV, "\n") {
		if strings.HasPrefix(ln, "M=N=32") || strings.HasPrefix(ln, "K=N=32") || strings.HasPrefix(ln, "M=K=32") {
			fields := strings.Fields(ln)
			if fields[len(fields)-3] != "—:—" { // DAWN column
				t.Fatalf("DAWN should never threshold %q", ln)
			}
		}
	}
	buf.Reset()
	if err := TableVI(context.Background(), &buf, opt); err != nil {
		t.Fatal(err)
	}
	outVI := buf.String()
	if !strings.Contains(outVI, "M=16N") {
		t.Fatalf("Table VI missing row:\n%s", outVI)
	}
}

func TestFiguresRenderAndWriteSVG(t *testing.T) {
	dir := t.TempDir()
	opt := fastOpt()
	opt.OutDir = dir
	figs := map[string]func(w *bytes.Buffer) error{
		"fig2": func(w *bytes.Buffer) error { return Fig2(context.Background(), w, opt) },
		"fig4": func(w *bytes.Buffer) error { return Fig4(context.Background(), w, opt) },
		"fig6": func(w *bytes.Buffer) error { return Fig6(context.Background(), w, opt) },
		"fig7": func(w *bytes.Buffer) error { return Fig7(context.Background(), w, opt) },
	}
	for name, run := range figs {
		var buf bytes.Buffer
		if err := run(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "GFLOP/s") {
			t.Fatalf("%s: no chart rendered:\n%s", name, buf.String())
		}
	}
	svgs, _ := filepath.Glob(filepath.Join(dir, "*.svg"))
	if len(svgs) < 4 {
		t.Fatalf("expected >=4 SVGs, got %v", svgs)
	}
	data, err := os.ReadFile(svgs[0])
	if err != nil || !strings.Contains(string(data), "<svg") {
		t.Fatalf("svg content: %v", err)
	}
}

func TestFig3SmallSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(context.Background(), &buf, Options{Step: 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NVPL 24.7 (1 thread)") || !strings.Contains(out, "ArmPL") {
		t.Fatalf("Fig 3 must compare three CPU configs:\n%s", out)
	}
}

func TestFig5BothSystems(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(context.Background(), &buf, fastOpt()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Isambard-AI") || !strings.Contains(out, "DAWN") {
		t.Fatalf("Fig 5 must cover both systems:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := FlopsModel(context.Background(), &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GEMM") || !strings.Contains(buf.String(), "%") {
		t.Fatalf("flops ablation:\n%s", buf.String())
	}
	buf.Reset()
	if err := Xnack(context.Background(), &buf, fastOpt()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "XNACK") {
		t.Fatalf("xnack ablation:\n%s", buf.String())
	}
	buf.Reset()
	if err := Batched(context.Background(), &buf, fastOpt()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Batch") {
		t.Fatalf("batched ablation:\n%s", buf.String())
	}
	buf.Reset()
	if err := PerfStat(context.Background(), &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.89 CPUs") {
		t.Fatalf("perfstat should report the paper's 0.89 CPUs figure:\n%s", buf.String())
	}
}

// Batched extension: the threshold must shrink (or vanish into "wins from
// size 1") as the batch size grows, on every system.
func TestBatchedThresholdShrinks(t *testing.T) {
	var buf bytes.Buffer
	if err := Batched(context.Background(), &buf, Options{Step: 1, MaxDim: 512}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	re := regexp.MustCompile(`\{(\d+), \d+, \d+\}`)
	var lastSys string
	var prev int
	for _, ln := range strings.Split(out, "\n") {
		fields := strings.Fields(ln)
		if len(fields) < 2 {
			continue
		}
		m := re.FindStringSubmatch(ln)
		if m == nil {
			continue
		}
		var v int
		fmt := strings.NewReader(m[1])
		_ = fmt
		for _, ch := range m[1] {
			v = v*10 + int(ch-'0')
		}
		if fields[0] == lastSys && v > prev {
			t.Fatalf("batched threshold grew on %s: %d -> %d\n%s", lastSys, prev, v, out)
		}
		lastSys, prev = fields[0], v
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.Normalize()
	if o.Step != 1 || o.MaxDim != 4096 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestHalfPrecisionExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := HalfPrecision(context.Background(), &buf, Options{Step: 4, MaxDim: 2048}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HGEMM") || !strings.Contains(out, "x") {
		t.Fatalf("half experiment output:\n%s", out)
	}
	// GPUs must be faster in half precision at 2048 on every system.
	re := regexp.MustCompile(`(\d+)\.\d+x`)
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		if m[1] == "0" {
			t.Fatalf("HGEMM slower than SGEMM:\n%s", out)
		}
	}
}

func TestSparseExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Sparse(context.Background(), &buf, Options{Step: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "banded") || !strings.Contains(out, "uniform random") {
		t.Fatalf("sparse experiment output:\n%s", out)
	}
	// DAWN must never offload SpMV in either family.
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "DAWN") {
			fields := strings.Fields(ln)
			if fields[len(fields)-1] != "—" || fields[len(fields)-2] != "—" {
				t.Fatalf("DAWN should never offload SpMV: %q", ln)
			}
		}
	}
	if !strings.Contains(out, "kernel sanity") {
		t.Fatal("sparse kernels not exercised")
	}
}
