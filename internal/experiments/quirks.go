package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// QuirkAblation re-runs the square-GEMM and square-GEMV threshold sweeps
// with every library quirk removed — the counterfactual "what if the
// libraries were clean?". It quantifies how much of the paper's headline
// numbers is caused by library heuristics rather than hardware:
//
//   - DAWN's 1-iteration GEMM threshold sits at the oneMKL drop (§IV-A:
//     "without this drop, the one iteration square GEMM offload thresholds
//     on DAWN would have likely been much higher");
//   - Isambard-AI's constant {26,26,26} follows the cuBLAS kernel switch;
//   - Isambard-AI's GEMV {256,256} follows the NVPL step.
func QuirkAblation(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	strip := func(sys systems.System) systems.System {
		sys.Name += " (no quirks)"
		sys.CPU.Lib.GemmQuirk = nil
		sys.CPU.Lib.GemvQuirk = nil
		sys.CPU.Lib.QuirkWarmIters = 0
		sys.GPU.Lib.GemmQuirk = nil
		sys.GPU.Lib.GemvQuirk = nil
		return sys
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tKernel\tIter\tWith quirks (Once)\tWithout quirks (Once)\n")
	for _, base := range systems.All() {
		clean := strip(base)
		for _, kernel := range []core.KernelKind{core.GEMM, core.GEMV} {
			pt, err := core.FindProblem(kernel, "square")
			if err != nil {
				return err
			}
			for _, it := range []int{1, 32} {
				cfg := sweepConfig(opt, it)
				withQ, err := core.RunProblem(ctx, base, pt, core.F32, cfg)
				if err != nil {
					return err
				}
				withoutQ, err := core.RunProblem(ctx, clean, pt, core.F32, cfg)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%v\t%d\t%s\t%s\n", base.Name, kernel, it,
					withQ.Thresholds[xfer.TransferOnce], withoutQ.Thresholds[xfer.TransferOnce])
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "the deltas are the paper's point: offload thresholds are as much a")
	fmt.Fprintln(w, "property of the BLAS libraries' heuristics as of the silicon (§V).")
	return nil
}
