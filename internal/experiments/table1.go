package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/sim/cpumodel"
	"repro/internal/sim/gpumodel"
	"repro/internal/sim/hw"
	"repro/internal/sim/usm"
	"repro/internal/sim/xfer"
)

// TableI regenerates Table I: SGEMM run-times (100 iterations, M=N=8192,
// K=4) for five device/library pairs under three (alpha, beta) settings.
// The paper's finding: beta=0 is 1.2x-1.7x faster than beta=2 (libraries
// implement the beta shortcut), while alpha has no effect (they do not
// shortcut alpha), which fixes GPU-BLOB's FLOP model at 2MNK + MN + qMN.
func TableI(_ context.Context, w io.Writer, opt Options) error {
	const (
		m, n, k = 8192, 8192, 4
		iters   = 100
	)
	type device struct {
		name    string
		library string
		// run returns seconds for the (alpha, beta) pair. alpha is accepted
		// for interface fidelity; like the real libraries, nothing depends
		// on it.
		run func(alpha, beta float64) float64
	}
	gpuRun := func(g gpumodel.Model) func(float64, float64) float64 {
		return func(_, beta float64) float64 {
			return g.GemmSeconds(xfer.TransferOnce, 4, m, n, k, beta == 0, iters)
		}
	}
	cpuRun := func(c cpumodel.Model) func(float64, float64) float64 {
		return func(_, beta float64) float64 {
			return c.GemmSeconds(4, m, n, k, beta == 0, iters)
		}
	}
	devices := []device{
		{
			name: "NVIDIA A100 40GB SXM", library: "cuBLAS 24.3",
			run: gpuRun(gpumodel.Model{GPU: hw.A100SXM40, Link: hw.PCIe4x16, Lib: gpumodel.CuBLAS, USM: usm.NVIDIAUSM}),
		},
		{
			name: "AMD MI250X", library: "rocBLAS 5.2.3",
			run: gpuRun(gpumodel.Model{GPU: hw.MI250XFull, Link: hw.InfinityFabricCPU2GPU, Lib: gpumodel.RocBLAS, USM: usm.AMDUSM}),
		},
		{
			name: "Intel Data Center GPU Max 1550", library: "oneMKL 2024.1.0",
			run: gpuRun(gpumodel.Model{GPU: hw.IntelMax1550Tile, Link: hw.PCIe5x16, Lib: gpumodel.OneMKLGPU, USM: usm.IntelUSM}),
		},
		{
			// Table I CPU runs are single threaded.
			name: "Intel Xeon Platinum 8468", library: "oneMKL 2024.1.0",
			run: cpuRun(cpumodel.Model{CPU: hw.XeonPlatinum8468, Lib: cpumodel.OneMKL, Threads: 1}),
		},
		{
			name: "AMD EPYC 7543P", library: "AOCL 4.2",
			run: cpuRun(cpumodel.Model{CPU: hw.Epyc7543P, Lib: cpumodel.AOCL, Threads: 1}),
		},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "BLAS Library\tDevice\tM\tN\tK\ta=1 b=0\ta=4 b=0\ta=1 b=2\tb2/b0\n")
	for _, d := range devices {
		t10 := d.run(1, 0)
		t40 := d.run(4, 0)
		t12 := d.run(1, 2)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f ms\t%.2f ms\t%.2f ms\t%.2fx\n",
			d.library, d.name, m, n, k, t10*1e3, t40*1e3, t12*1e3, t12/t10)
	}
	return tw.Flush()
}
