package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Stability probes the offload-threshold detector itself (§III-D): how
// stable is the detected threshold under (a) coarser sweep strides and (b)
// injected measurement noise? The detector's two-sample smoothing is there
// "to account for any momentary drops in GPU performance that are due to
// abnormal system behaviour or noise"; this ablation quantifies how much
// noise it absorbs before the threshold moves.
func Stability(_ context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	sys := systems.DAWN()
	const iters = 8
	cpu := func(p int) float64 { return sys.CPU.GemmSeconds(4, p, p, p, true, iters) }
	gpu := func(p int) float64 {
		return sys.GPU.GemmSeconds(xfer.TransferOnce, 4, p, p, p, true, iters)
	}

	fmt.Fprintln(w, "sweep-stride sensitivity (DAWN square SGEMM, 8 iterations, Transfer-Once):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stride\tthreshold\n")
	for _, step := range []int{1, 2, 4, 8, 16, 32} {
		var det core.ThresholdDetector
		for p := 1; p <= opt.MaxDim; p += step {
			det.ObserveTimes(core.Dims{M: p, N: p, K: p}, cpu(p), gpu(p))
		}
		dims, found := det.Threshold()
		fmt.Fprintf(tw, "%d\t%s\n", step, core.Threshold{Dims: dims, Found: found})
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nnoise sensitivity (deterministic multiplicative noise on GPU times):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "noise amplitude\tthreshold (smoothed detector)\tnaive first-win detector\n")
	for _, amp := range []float64{0, 0.01, 0.05, 0.15, 0.30} {
		var det core.ThresholdDetector
		naive := 0
		for p := 1; p <= opt.MaxDim; p += opt.Step {
			// Deterministic pseudo-noise: a fixed-phase oscillation is the
			// worst structured case for a crossover detector.
			noisy := gpu(p) * (1 + amp*math.Sin(float64(p)*1.7))
			c := cpu(p)
			det.ObserveTimes(core.Dims{M: p, N: p, K: p}, c, noisy)
			if naive == 0 && noisy < c {
				naive = p
			}
		}
		dims, found := det.Threshold()
		fmt.Fprintf(tw, "%.0f%%\t%s\t{%d, %d, %d}\n", amp*100,
			core.Threshold{Dims: dims, Found: found}, naive, naive, naive)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe smoothed detector reports the last durable crossover; the naive")
	fmt.Fprintln(w, "first-win rule latches onto the first noise spike and under-reports.")
	return nil
}
