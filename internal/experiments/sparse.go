package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
	"repro/internal/sparse"
)

// Sparse runs the §V sparse-BLAS extension: SpMV offload thresholds for
// two representative sparsity families — banded stencils (regular gathers)
// and uniform random sparsity (irregular gathers) — at 1% density. The
// paper's caveat that "narrowing this down into a core subset that is
// representative ... is non-trivial" shows up directly: the two families
// produce different thresholds on the same machine.
func Sparse(_ context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	type family struct {
		name string
		// storage bytes for an n x n matrix of the family at 1% density
		bytes func(n int) int64
		// CPU / GPU irregularity factors
		cpuIrr, gpuIrr float64
	}
	families := []family{
		{
			name: "banded (bw=n/200)",
			bytes: func(n int) int64 {
				bw := n/200 + 1
				return int64(n)*int64(2*bw+1)*16 + int64(n+1)*8
			},
			cpuIrr: 0.9, gpuIrr: 0.85,
		},
		{
			name: "uniform random (1%)",
			bytes: func(n int) int64 {
				nnz := int64(n) * int64(n) / 100
				if nnz < int64(n) {
					nnz = int64(n)
				}
				return nnz*16 + int64(n+1)*8
			},
			cpuIrr: 0.55, gpuIrr: 0.35,
		},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tFamily\tOnce @8 iters\tOnce @128 iters\n")
	for _, sys := range systems.All() {
		for _, fam := range families {
			row := []string{}
			for _, iters := range []int{8, 128} {
				var det core.ThresholdDetector
				for n := 64; n <= 16384; n += 64 * opt.Step {
					cpu := sys.CPU.SpmvSeconds(fam.bytes(n), n, fam.cpuIrr, iters)
					gpu := sys.GPU.SpmvSeconds(xfer.TransferOnce, fam.bytes(n), n, fam.gpuIrr, iters)
					det.ObserveTimes(core.Dims{M: n, N: n}, cpu, gpu)
				}
				dims, found := det.Threshold()
				row = append(row, core.Threshold{Dims: dims, Found: found}.String())
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", sys.Name, fam.name, row[0], row[1])
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Sanity anchor: the real kernels agree with the dense path (the model
	// rows above are timing only; numerics live in internal/sparse).
	a := sparse.RandomUniform(256, 0.05, 1)
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = 1
	}
	a.SpMV(1, x, 0, y)
	var sum float64
	for _, v := range y {
		sum += v
	}
	fmt.Fprintf(w, "kernel sanity: sum(A*1) = %.3f over %d nnz (matches sum of all values)\n", sum, a.NNZ())
	return nil
}
