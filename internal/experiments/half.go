package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// HalfPrecision runs the §V half-precision extension: square HGEMM offload
// thresholds next to SGEMM's. Matrix engines multiply the GPU's
// half-precision advantage (Tensor Cores / Matrix Cores / XMX deliver
// 5x-15x the FP32 vector rate) while halving the bytes moved, so the HGEMM
// threshold collapses relative to SGEMM everywhere — most dramatically on
// the PCIe-attached systems where transfers used to dominate.
func HalfPrecision(_ context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tIterations\tSGEMM Once\tHGEMM Once\tHGEMM/SGEMM GPU speedup @2048\n")
	for _, sys := range systems.All() {
		for _, it := range []int{1, 8} {
			s32 := thresholdFor(sys, 4, opt, it)
			s16 := thresholdFor(sys, 2, opt, it)
			sp := sys.GPU.GemmSeconds(xfer.TransferOnce, 4, 2048, 2048, 2048, true, it) /
				sys.GPU.GemmSeconds(xfer.TransferOnce, 2, 2048, 2048, 2048, true, it)
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.1fx\n", sys.Name, it, s32, s16, sp)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "note: HGEMM runs the mixed-precision contract of internal/half (FP16 storage,")
	fmt.Fprintln(w, "FP32 accumulation); CPU peaks assume AVX512-FP16 / NEON FP16 where available.")
	return nil
}

// thresholdFor sweeps square GEMM at the element size and returns the
// Transfer-Once threshold. elemSize 2 runs through the same models with the
// FP16 peaks.
func thresholdFor(sys systems.System, elemSize int, opt Options, iters int) core.Threshold {
	var det core.ThresholdDetector
	for p := 1; p <= opt.MaxDim; p += opt.Step {
		cpu := sys.CPU.GemmSeconds(elemSize, p, p, p, true, iters)
		gpu := sys.GPU.GemmSeconds(xfer.TransferOnce, elemSize, p, p, p, true, iters)
		det.ObserveTimes(core.Dims{M: p, N: p, K: p}, cpu, gpu)
	}
	dims, found := det.Threshold()
	return core.Threshold{Dims: dims, Found: found}
}
