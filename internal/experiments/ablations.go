package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/flops"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// FlopsModel quantifies §III-A's argument for the exact FLOP model: the
// relative error of the common 2MNK / 2MN approximations across the
// paper's problem shapes. Thin-K GEMMs and all GEMVs make the
// approximation materially wrong.
func FlopsModel(_ context.Context, w io.Writer, _ Options) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Kernel\tShape\tExact (b!=0)\tApprox\tUndercount\n")
	gemmShapes := []core.Dims{
		{M: 4096, N: 4096, K: 4096},
		{M: 8192, N: 8192, K: 4}, // Table I shape
		{M: 2048, N: 2048, K: 32},
		{M: 32, N: 32, K: 4096},
		{M: 256, N: 256, K: 4096},
	}
	for _, d := range gemmShapes {
		exact := flops.Gemm(d.M, d.N, d.K, flops.Beta{IsZero: false})
		approx := flops.GemmApprox(d.M, d.N, d.K)
		fmt.Fprintf(tw, "GEMM\t%v\t%d\t%d\t%.2f%%\n", d, exact, approx,
			100*float64(exact-approx)/float64(exact))
	}
	gemvShapes := []core.Dims{
		{M: 4096, N: 4096},
		{M: 4096, N: 32},
		{M: 32, N: 4096},
	}
	for _, d := range gemvShapes {
		exact := flops.Gemv(d.M, d.N, flops.Beta{IsZero: false})
		approx := flops.GemvApprox(d.M, d.N)
		fmt.Fprintf(tw, "GEMV\t{%d, %d}\t%d\t%d\t%.2f%%\n", d.M, d.N, exact, approx,
			100*float64(exact-approx)/float64(exact))
	}
	return tw.Flush()
}

// Xnack reproduces the §IV HSA_XNACK observation on LUMI: with XNACK
// disabled no pages migrate and every USM access crosses the interconnect,
// degrading USM transfers by up to 40x and destroying any USM offload
// threshold.
func Xnack(ctx context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Config\tIterations\tUSM threshold (SGEMM)\tUSM time @ M=N=K=2048\n")
	for _, sys := range []systems.System{systems.LUMI(), systems.LUMINoXnack()} {
		for _, it := range []int{8, 128} {
			ser, err := runSquare(ctx, sys, core.GEMM, core.F32, opt, it)
			if err != nil {
				return err
			}
			t2048 := sys.GPU.GemmSeconds(xfer.Unified, 4, 2048, 2048, 2048, true, it)
			fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f ms\n", sys.Name, it,
				ser.Thresholds[xfer.Unified], t2048*1e3)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// The headline ratio: USM data movement with vs without XNACK.
	lumi, noX := systems.LUMI(), systems.LUMINoXnack()
	with := lumi.GPU.USM.MoveSeconds(lumi.GPU.Link, 64<<20, 16<<20, 1)
	without := noX.GPU.USM.MoveSeconds(noX.GPU.Link, 64<<20, 16<<20, 1)
	fmt.Fprintf(w, "USM move penalty without XNACK (64 MiB in, 16 MiB out, 1 iter): %.1fx\n", without/with)
	return nil
}

// Batched runs the §V future-work extension: the offload threshold of
// batched square GEMMs. Batching amortises launch overhead and fills the
// GPU with batch*m*n output tiles, so the per-matrix threshold collapses as
// the batch grows.
func Batched(_ context.Context, w io.Writer, opt Options) error {
	opt = opt.Normalize()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tBatch\tOffload threshold (SGEMM, Transfer-Once, 8 iters)\n")
	for _, sys := range systems.All() {
		for _, batch := range []int{1, 16, 256} {
			var det core.ThresholdDetector
			for p := 1; p <= 512; p += opt.Step {
				cpu := sys.CPU.GemmBatchedSeconds(4, p, p, p, batch, true, 8)
				gpu := sys.GPU.GemmBatchedSeconds(xfer.TransferOnce, 4, p, p, p, batch, true, 8)
				det.ObserveTimes(core.Dims{M: p, N: p, K: p}, cpu, gpu)
			}
			dims, found := det.Threshold()
			fmt.Fprintf(tw, "%s\t%d\t%s\n", sys.Name, batch, core.Threshold{Dims: dims, Found: found})
		}
	}
	return tw.Flush()
}

// PerfStat reproduces the §IV-B perf-stat evidence: AOCL keeps a single CPU
// busy for GEMV but >50 CPUs for GEMM, explaining LUMI's weak CPU GEMV.
func PerfStat(_ context.Context, w io.Writer, _ Options) error {
	lumi := systems.LUMI()
	gemv := lumi.CPU.EffectiveCPUs("gemv", 4, 2048, 2048, 0)
	gemm := lumi.CPU.EffectiveCPUs("gemm", 4, 2048, 2048, 2048)
	fmt.Fprintf(w, "SGEMV M=N=2048, 1000 iterations: %.2f CPUs utilised\n", gemv)
	fmt.Fprintf(w, "SGEMM M=N=K=2048, 1000 iterations: %.1f CPUs utilised\n", gemm)
	ob := systems.LUMIOpenBLAS()
	fmt.Fprintf(w, "OpenBLAS SGEMV M=N=2048: %.1f CPUs utilised\n", ob.CPU.EffectiveCPUs("gemv", 4, 2048, 2048, 0))
	return nil
}
