package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// IterationCounts are the paper's five data-reuse settings (§IV).
var IterationCounts = []int{1, 8, 32, 64, 128}

// sweepConfig builds the paper's sweep (s=1, d=MaxDim) for one iteration
// count with the experiment options applied.
func sweepConfig(opt Options, iters int) core.Config {
	cfg := core.DefaultConfig(iters)
	cfg.MaxDim = opt.MaxDim
	cfg.Step = opt.Step
	cfg.Validate.Enabled = opt.Validate
	return cfg
}

// squareThresholds runs the square problem of the kernel at both precisions
// and returns "sgemm:dgemm"-style threshold cells per strategy.
func squareThresholds(ctx context.Context, sys systems.System, kernel core.KernelKind, opt Options, iters int) ([core.NumStrategies]string, error) {
	var out [core.NumStrategies]string
	pt, err := core.FindProblem(kernel, "square")
	if err != nil {
		return out, err
	}
	cfg := sweepConfig(opt, iters)
	s32, err := core.RunProblem(ctx, sys, pt, core.F32, cfg)
	if err != nil {
		return out, err
	}
	s64, err := core.RunProblem(ctx, sys, pt, core.F64, cfg)
	if err != nil {
		return out, err
	}
	cell := func(t core.Threshold) string {
		if !t.Found {
			return "—"
		}
		return fmt.Sprintf("%d", t.Dims.M)
	}
	for _, st := range xfer.Strategies {
		out[st] = cell(s32.Thresholds[st]) + ":" + cell(s64.Thresholds[st])
	}
	return out, nil
}

// squareTable renders Table III (GEMM) or Table IV (GEMV).
func squareTable(ctx context.Context, w io.Writer, opt Options, kernel core.KernelKind) error {
	opt = opt.Normalize()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\tIterations\tOnce\tAlways\tUSM\n")
	for _, sys := range systems.All() {
		for _, it := range IterationCounts {
			cells, err := squareThresholds(ctx, sys, kernel, opt, it)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", sys.Name, it,
				cells[xfer.TransferOnce], cells[xfer.TransferAlways], cells[xfer.Unified])
		}
	}
	return tw.Flush()
}

// TableIII regenerates Table III: square S/DGEMM offload thresholds per
// system, iteration count and transfer strategy.
func TableIII(ctx context.Context, w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Square SGEMM:DGEMM (M=N=K) GPU offload thresholds")
	return squareTable(ctx, w, opt, core.GEMM)
}

// TableIV regenerates Table IV: square S/DGEMV offload thresholds.
func TableIV(ctx context.Context, w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Square SGEMV:DGEMV (M=N) GPU offload thresholds")
	return squareTable(ctx, w, opt, core.GEMV)
}

// firstThresholdIteration returns the smallest iteration count in
// IterationCounts at which the problem type yields a Transfer-Once offload
// threshold (the paper's Tables V/VI criterion), or 0 when none does.
func firstThresholdIteration(ctx context.Context, sys systems.System, pt core.ProblemType, prec core.Precision, opt Options) (int, error) {
	for _, it := range IterationCounts {
		cfg := sweepConfig(opt, it)
		ser, err := core.RunProblem(ctx, sys, pt, prec, cfg)
		if err != nil {
			return 0, err
		}
		if ser.Thresholds[xfer.TransferOnce].Found {
			return it, nil
		}
	}
	return 0, nil
}

// nonSquareTable renders Table V (GEMM) or Table VI (GEMV): the iteration
// count at which each non-square problem type first yields a threshold.
func nonSquareTable(ctx context.Context, w io.Writer, opt Options, problems []core.ProblemType) error {
	opt = opt.Normalize()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Problem Type\tDAWN\tLUMI\tIsambard-AI\n")
	cell := func(f32, f64 int) string {
		s := func(v int) string {
			if v == 0 {
				return "—"
			}
			return fmt.Sprintf("%d", v)
		}
		return s(f32) + ":" + s(f64)
	}
	for _, pt := range problems {
		if pt.Name == "square" {
			continue
		}
		fmt.Fprintf(tw, "%s", pt.Desc)
		for _, sys := range systems.All() {
			f32, err := firstThresholdIteration(ctx, sys, pt, core.F32, opt)
			if err != nil {
				return err
			}
			f64, err := firstThresholdIteration(ctx, sys, pt, core.F64, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", cell(f32, f64))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// TableV regenerates Table V: the iteration count at which each non-square
// S/DGEMM problem type first yields an offload threshold.
func TableV(ctx context.Context, w io.Writer, opt Options) error {
	fmt.Fprintln(w, "First iteration count yielding a non-square SGEMM:DGEMM offload threshold")
	return nonSquareTable(ctx, w, opt, core.GemmProblems)
}

// TableVI regenerates Table VI for the non-square GEMV problem types.
func TableVI(ctx context.Context, w io.Writer, opt Options) error {
	fmt.Fprintln(w, "First iteration count yielding a non-square SGEMV:DGEMV offload threshold")
	return nonSquareTable(ctx, w, opt, core.GemvProblems)
}
