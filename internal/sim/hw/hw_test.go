package hw

import "testing"

func TestPeakGFLOPSMatchesPaperNumbers(t *testing.T) {
	// The paper quotes socket-wide FP64 FLOPs/cycle: 1,536 (DAWN), 896
	// (LUMI), 1,152 (Grace). Peaks follow from the clock.
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-6 && d > -1e-6
	}
	if got := XeonPlatinum8468.PeakGFLOPS(8); !approx(got, 2.1*1536) {
		t.Fatalf("8468 FP64 peak = %g", got)
	}
	if got := EpycTrento7A53.PeakGFLOPS(8); !approx(got, 2.0*896) {
		t.Fatalf("7A53 FP64 peak = %g", got)
	}
	if got := GraceCPU.PeakGFLOPS(8); !approx(got, 3.4*1152) {
		t.Fatalf("Grace FP64 peak = %g", got)
	}
	// FP32 is twice FP64 on these CPUs.
	if XeonPlatinum8468.PeakGFLOPS(4) != 2*XeonPlatinum8468.PeakGFLOPS(8) { //blobvet:allow floatcompare -- FP32 peak is defined as exactly 2x FP64 in the spec-sheet model
		t.Fatal("FP32 peak should be 2x FP64")
	}
}

func TestGPUPeakSelection(t *testing.T) {
	if GH200H100.Peak(4) != GH200H100.FP32GFLOPS || GH200H100.Peak(8) != GH200H100.FP64GFLOPS { //blobvet:allow floatcompare -- Peak selects one of two stored constants; equality asserts selection
		t.Fatal("Peak must select by element size")
	}
	// MI250X GCD: CDNA2 vector FP32 == FP64 rate.
	if MI250XGCD.Peak(4) != MI250XGCD.Peak(8) { //blobvet:allow floatcompare -- CDNA2 stores one vector rate for both precisions
		t.Fatal("MI250X vector FP32 and FP64 peaks should match")
	}
}

func TestTransferTime(t *testing.T) {
	// 52 GB/s, 10 us latency: 52 MB should take 10us + 1000us.
	got := PCIe5x16.TransferTimeUS(52 << 20)
	want := 10 + float64(52<<20)/(52*1e3)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TransferTimeUS = %g, want %g", got, want)
	}
	// Zero bytes costs just the latency.
	if PCIe5x16.TransferTimeUS(0) != 10 { //blobvet:allow floatcompare -- zero bytes transfers exactly the configured latency constant
		t.Fatal("latency-only transfer")
	}
}

func TestLinkOrdering(t *testing.T) {
	// The SoC link must be far faster and lower latency than the PCIe and
	// Infinity Fabric links — the paper's central hardware contrast.
	if NVLinkC2C.BWGBs <= 5*PCIe5x16.BWGBs {
		t.Fatal("NVLink-C2C should dwarf PCIe bandwidth")
	}
	if NVLinkC2C.LatencyUS >= PCIe5x16.LatencyUS {
		t.Fatal("NVLink-C2C should have lower latency than PCIe")
	}
}

func TestSpecsPlausible(t *testing.T) {
	for _, c := range []CPUSpec{XeonPlatinum8468, EpycTrento7A53, GraceCPU, Epyc7543P} {
		if c.Cores <= 0 || c.FreqGHz <= 0 || c.MemBWGBs <= 0 || c.CacheMB <= 0 ||
			c.PerCoreMemBWGBs <= 0 || c.CacheBWGBs <= c.MemBWGBs {
			t.Fatalf("%s: implausible spec %+v", c.Name, c)
		}
	}
	for _, g := range []GPUSpec{IntelMax1550Tile, MI250XGCD, GH200H100, A100SXM40} {
		if g.FP32GFLOPS < g.FP64GFLOPS || g.HBMGBs <= 0 || g.LaunchLatencyUS <= 0 ||
			g.OccupancyRampElems <= 0 || g.GemvRampRows <= 0 {
			t.Fatalf("%s: implausible spec %+v", g.Name, g)
		}
	}
}
