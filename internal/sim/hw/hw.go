// Package hw holds the hardware descriptors for the processors, GPUs and
// host-device interconnects of the systems evaluated in the paper (Table II)
// plus the Table I devices. All figures are public spec-sheet numbers, the
// same ones the paper itself quotes (e.g. 1,536 FP64 FLOPs/cycle for the
// Xeon 8468 socket, 896 for the EPYC 7A53, 1,152 for Grace).
//
// These descriptors feed the cpumodel/gpumodel/xfer performance models: the
// reproduction does not pretend to run on this silicon, it models the
// first-order behaviour (roofline compute, cache and memory bandwidth,
// interconnect transfer) that the paper's offload thresholds derive from.
package hw

// CPUSpec describes one CPU socket.
type CPUSpec struct {
	Name string
	// Cores usable per socket (LUMI exposes 56 of 64; see §IV).
	Cores int
	// FreqGHz is the sustained all-core frequency used for peak math.
	FreqGHz float64
	// FP64PerCycle is the socket-wide FP64 FLOPs/cycle the paper quotes.
	// FP32 peak is taken as twice the FP64 peak.
	FP64PerCycle int
	// FP16Factor is the FP16 throughput relative to FP32: 2.0 where native
	// half-precision FMAs exist (AVX512-FP16, NEON FP16), 1.0 where FP16 is
	// converted and computed in FP32.
	FP16Factor float64
	// MemBWGBs is the socket's DRAM bandwidth in GB/s.
	MemBWGBs float64
	// PerCoreMemBWGBs caps how much DRAM bandwidth a single core can pull;
	// it sets single-thread streaming performance (AOCL's serial GEMV).
	PerCoreMemBWGBs float64
	// CacheMB is the socket's last-level cache capacity in MiB; the GEMV
	// model uses it to locate the in-cache to in-DRAM performance cliff.
	CacheMB float64
	// CacheBWGBs is the aggregate LLC bandwidth in GB/s.
	CacheBWGBs float64
	// PerCoreCacheBWGBs caps single-core LLC bandwidth.
	PerCoreCacheBWGBs float64
}

// PeakGFLOPS returns the socket peak in GFLOP/s for 8- or 4-byte elements.
func (c CPUSpec) PeakGFLOPS(elemSize int) float64 {
	peak := c.FreqGHz * float64(c.FP64PerCycle)
	switch elemSize {
	case 4:
		peak *= 2
	case 2:
		f := c.FP16Factor
		if f <= 0 {
			f = 1
		}
		peak *= 2 * f
	}
	return peak
}

// GPUSpec describes one GPU device (a single tile/die where the paper
// targets one, per §IV: one PVC tile, one MI250X GCD, one GH200 H100).
type GPUSpec struct {
	Name string
	// FP64GFLOPS and FP32GFLOPS are vector-unit peaks (no matrix engines:
	// the paper's kernels run the classic BLAS paths). FP16GFLOPS is the
	// dense matrix-engine half-precision peak (Tensor Cores / Matrix Cores
	// / XMX), used only by the half-precision extension experiment.
	FP64GFLOPS float64
	FP32GFLOPS float64
	FP16GFLOPS float64
	// HBMGBs is device memory bandwidth in GB/s.
	HBMGBs float64
	// LaunchLatencyUS is the per-kernel launch cost in microseconds.
	LaunchLatencyUS float64
	// OccupancyRampElems is the number of output elements (m*n) at which
	// the device reaches roughly half of its peak efficiency; it captures
	// how much parallelism the device needs before the curve turns up.
	OccupancyRampElems float64
	// GemvRampRows is the GEMV analogue: a GEMV exposes only m rows of
	// parallelism, and devices ramp on rows much earlier than on m*n tiles.
	GemvRampRows float64
}

// Peak returns the device peak GFLOP/s for the element size.
func (g GPUSpec) Peak(elemSize int) float64 {
	switch elemSize {
	case 4:
		return g.FP32GFLOPS
	case 2:
		if g.FP16GFLOPS > 0 {
			return g.FP16GFLOPS
		}
		return 2 * g.FP32GFLOPS
	default:
		return g.FP64GFLOPS
	}
}

// LinkSpec describes the host-device interconnect.
type LinkSpec struct {
	Name string
	// BWGBs is per-direction bandwidth in GB/s.
	BWGBs float64
	// LatencyUS is the fixed per-transfer latency in microseconds.
	LatencyUS float64
	// PinnedSpeedup is how much faster pinned (page-locked) transfers run
	// than pageable ones; the benchmark always pins (§III-B), so effective
	// bandwidth is BWGBs and pageable would be BWGBs/PinnedSpeedup.
	PinnedSpeedup float64
}

// TransferTimeUS returns the time to move bytes across the link once, in
// microseconds, using pinned buffers.
func (l LinkSpec) TransferTimeUS(bytes int64) float64 {
	return l.LatencyUS + float64(bytes)/(l.BWGBs*1e3)/1e6*1e6
}

// --- CPU presets ----------------------------------------------------------

// XeonPlatinum8468 is DAWN's CPU socket: 48 cores, 1,536 FP64 FLOPs/cycle.
var XeonPlatinum8468 = CPUSpec{
	Name:              "Intel Xeon Platinum 8468",
	Cores:             48,
	FreqGHz:           2.1,
	FP64PerCycle:      1536,
	FP16Factor:        2, // AVX512-FP16 (Sapphire Rapids)
	MemBWGBs:          307,
	PerCoreMemBWGBs:   30,
	CacheMB:           105,
	CacheBWGBs:        2400,
	PerCoreCacheBWGBs: 70,
}

// EpycTrento7A53 is LUMI's CPU socket: 56 usable cores, 896 FP64
// FLOPs/cycle.
var EpycTrento7A53 = CPUSpec{
	Name:              "AMD EPYC 7A53",
	Cores:             56,
	FreqGHz:           2.0,
	FP64PerCycle:      896,
	FP16Factor:        1, // no native FP16 FMA on Zen 3: convert + FP32
	MemBWGBs:          204,
	PerCoreMemBWGBs:   42,
	CacheMB:           256,
	CacheBWGBs:        1800,
	PerCoreCacheBWGBs: 48,
}

// GraceCPU is the Grace half of a GH200 superchip: 72 cores, 1,152 FP64
// FLOPs/cycle, LPDDR5X memory.
var GraceCPU = CPUSpec{
	Name:              "NVIDIA Grace",
	Cores:             72,
	FreqGHz:           3.4,
	FP64PerCycle:      1152,
	FP16Factor:        2, // Neoverse V2 NEON/SVE2 FP16
	MemBWGBs:          500,
	PerCoreMemBWGBs:   40,
	CacheMB:           114,
	CacheBWGBs:        2600,
	PerCoreCacheBWGBs: 90,
}

// Epyc7543P is the Table I AOCL host.
var Epyc7543P = CPUSpec{
	Name:              "AMD EPYC 7543P",
	Cores:             32,
	FreqGHz:           2.8,
	FP64PerCycle:      512,
	FP16Factor:        1,
	MemBWGBs:          204,
	PerCoreMemBWGBs:   40,
	CacheMB:           256,
	CacheBWGBs:        1600,
	PerCoreCacheBWGBs: 48,
}

// --- GPU presets -----------------------------------------------------------

// IntelMax1550Tile is one tile of DAWN's Intel Data Center GPU Max 1550
// (explicit scaling, §IV and Appendix A).
var IntelMax1550Tile = GPUSpec{
	Name:               "Intel Data Center GPU Max 1550 (1 tile)",
	FP64GFLOPS:         26000,
	FP32GFLOPS:         40000,
	FP16GFLOPS:         209000, // XMX
	HBMGBs:             1640,
	LaunchLatencyUS:    8,
	OccupancyRampElems: 3.0e5,
	GemvRampRows:       5.0e4,
}

// MI250XGCD is one Graphics Compute Die of LUMI's MI250X.
var MI250XGCD = GPUSpec{
	Name:               "AMD MI250X (1 GCD)",
	FP64GFLOPS:         23950,
	FP32GFLOPS:         23950,
	FP16GFLOPS:         191500, // Matrix Cores
	HBMGBs:             1600,
	LaunchLatencyUS:    6,
	OccupancyRampElems: 1.5e5,
	GemvRampRows:       3.5e5,
}

// GH200H100 is the Hopper half of a GH200 superchip.
var GH200H100 = GPUSpec{
	Name:               "NVIDIA GH200 (H100)",
	FP64GFLOPS:         34000,
	FP32GFLOPS:         67000,
	FP16GFLOPS:         495000, // Tensor Cores (dense)
	HBMGBs:             4000,
	LaunchLatencyUS:    3.5,
	OccupancyRampElems: 1.5e5,
	GemvRampRows:       1.2e5,
}

// A100SXM40 is the Table I cuBLAS device.
var A100SXM40 = GPUSpec{
	Name:               "NVIDIA A100 40GB SXM",
	FP64GFLOPS:         9700,
	FP32GFLOPS:         19500,
	FP16GFLOPS:         312000, // Tensor Cores (dense)
	HBMGBs:             1555,
	LaunchLatencyUS:    5,
	OccupancyRampElems: 5.0e5,
	GemvRampRows:       2.0e5,
}

// MI250XFull is the Table I rocBLAS device (both GCDs visible, but a single
// GEMM runs on one GCD; Table I's high run-times reflect the weaker
// effective throughput for the thin-K shape).
var MI250XFull = MI250XGCD

// --- Link presets -----------------------------------------------------------

// PCIe5x16 is DAWN's host-GPU link.
var PCIe5x16 = LinkSpec{Name: "PCIe 5.0 x16", BWGBs: 52, LatencyUS: 10, PinnedSpeedup: 2.2}

// InfinityFabricCPU2GPU is LUMI's host-GCD link (one IF link pair,
// gpu-bind=closest).
var InfinityFabricCPU2GPU = LinkSpec{Name: "Infinity Fabric", BWGBs: 36, LatencyUS: 25, PinnedSpeedup: 2.0}

// NVLinkC2C is the GH200 on-package link: 450 GB/s per direction.
var NVLinkC2C = LinkSpec{Name: "NVLink-C2C", BWGBs: 450, LatencyUS: 0.8, PinnedSpeedup: 1.0}

// PCIe4x16 is the Table I A100 host link.
var PCIe4x16 = LinkSpec{Name: "PCIe 4.0 x16", BWGBs: 26, LatencyUS: 10, PinnedSpeedup: 2.2}
