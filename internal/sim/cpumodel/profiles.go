package cpumodel

import "math"

// Library profiles. Constants are calibrated so the full benchmark
// reproduces the qualitative shapes of the paper's Tables III-VI and
// Figures 2-6; the named quirks correspond to artifacts the paper
// explicitly documents.

// OneMKLDropStart is the square-GEMM dimension at which oneMKL's heuristics
// switch algorithm and performance drops sharply on DAWN (Fig 2).
const OneMKLDropStart = 629

// OneMKLDropRecover is the dimension by which the drop has been recovered.
const OneMKLDropRecover = 1800

// oneMKLGemmDrop models Fig 2: a sharp performance drop at {629,629,629}
// that is gradually recovered from as the problem grows. The quirk keys on
// the geometric-mean dimension so non-square problems of comparable volume
// see the same heuristic switch.
func oneMKLGemmDrop(_ int, m, n, k int, gf float64) float64 {
	gm := geomMean3(m, n, k)
	if gm < OneMKLDropStart || gm >= OneMKLDropRecover {
		return gf
	}
	f := (gm - OneMKLDropStart) / (OneMKLDropRecover - OneMKLDropStart)
	return gf * (0.35 + 0.65*f)
}

// oneMKLGemvSteps models the stepped SGEMV curves on DAWN (§IV-B): discrete
// plateaus as the library switches blocking strategy.
func oneMKLGemvSteps(elemSize int, m, n, _ int, gf float64) float64 {
	d := max(m, n)
	if elemSize != 4 {
		return gf
	}
	switch {
	case d < 512:
		return gf * 0.70
	case d < 1536:
		return gf * 0.85
	default:
		return gf
	}
}

// nvplGemvStep models the Isambard-AI CPU performance drop at approximately
// {256,256} for square GEMV (Fig 5) and at {2048,32}/{32,2048} for the thin
// non-square problem types (§IV-D).
func nvplGemvStep(_ int, m, n, _ int, gf float64) float64 {
	if m == n {
		if m >= 256 {
			return gf * 0.20
		}
		return gf
	}
	// Thin problems: a drop once the long dimension passes 2048.
	if (m <= 32 || n <= 32) && max(m, n) >= 2048 {
		return gf * 0.25
	}
	return gf
}

// OneMKL is Intel oneMKL 2024.1 on DAWN (mature, work-scaled threading,
// strong small-size path, the Fig-2 drop).
var OneMKL = Profile{
	Name:                "oneMKL 2024.1",
	Heuristic:           ScaleWithWork,
	GemvHeuristic:       ScaleWithWork,
	MaxEff:              0.86,
	RampFlopsPerThread:  2.0e5,
	ScaleGrainFlops:     6.0e5,
	GemvScaleGrainFlops: 1.5e5,
	DispatchBaseUS:      0.4,
	DispatchPerThreadUS: 0.05,
	CacheFraction:       0.505,
	WarmComputeBonus:    0.30,
	QuirkWarmIters:      16,
	GemmQuirk:           oneMKLGemmDrop,
	GemvQuirk:           oneMKLGemvSteps,
}

// AOCL is AMD AOCL 4.1 (BLIS) on LUMI: all configured threads for GEMM
// (BLIS_NUM_THREADS=56) with a noticeable fork/barrier, and a serial GEMV
// (§IV-B).
var AOCL = Profile{
	Name:                "AOCL 4.1",
	Heuristic:           AllThreads,
	GemvHeuristic:       SingleThread,
	MaxEff:              0.72,
	MaxEffF64:           0.45,
	RampFlopsPerThread:  3.6e6,
	RampPower:           0.35,
	DispatchBaseUS:      2.2,
	DispatchPerThreadUS: 0.14,
	CacheFraction:       0.70,
	WarmComputeBonus:    0.35,
}

// NVPL is NVIDIA NVPL 24.7 on Isambard-AI: all 72 threads for every problem
// size (§IV-A), hurting small problems, plus the GEMV step quirks.
var NVPL = Profile{
	Name:                "NVPL 24.7",
	Heuristic:           AllThreads,
	GemvHeuristic:       ScaleWithWork,
	MaxEff:              0.82,
	RampFlopsPerThread:  3.3e5,
	ScaleGrainFlops:     8.0e5,
	DispatchBaseUS:      1.0,
	DispatchPerThreadUS: 0.031,
	CacheFraction:       0.70,
	GemvQuirk:           nvplGemvStep,
}

// NVPLSingleThread is NVPL pinned to one thread (Fig 3's comparison run).
var NVPLSingleThread = Profile{
	Name:               "NVPL 24.7 (1 thread)",
	Heuristic:          SingleThread,
	GemvHeuristic:      SingleThread,
	MaxEff:             0.82,
	RampFlopsPerThread: 1.5e5,
	DispatchBaseUS:     0.3,
	CacheFraction:      0.70,
}

// ArmPL is Arm Performance Libraries 24.04 (Fig 3): scales threads with the
// problem size, so small problems run fast.
var ArmPL = Profile{
	Name:                "ArmPL 24.04",
	Heuristic:           ScaleWithWork,
	GemvHeuristic:       ScaleWithWork,
	MaxEff:              0.80,
	RampFlopsPerThread:  1.8e5,
	ScaleGrainFlops:     5.0e5,
	DispatchBaseUS:      0.5,
	DispatchPerThreadUS: 0.05,
	CacheFraction:       0.70,
}

// OpenBLAS is OpenBLAS 0.3.24 (Fig 6): properly multi-threaded GEMV but a
// weaker small-problem path than AOCL's serial one.
var OpenBLAS = Profile{
	Name:                "OpenBLAS 0.3.24",
	Heuristic:           ScaleWithWork,
	GemvHeuristic:       AllThreads,
	MaxEff:              0.78,
	RampFlopsPerThread:  2.5e5,
	ScaleGrainFlops:     5.0e5,
	DispatchBaseUS:      1.5,
	DispatchPerThreadUS: 0.12,
	CacheFraction:       0.70,
}

func geomMean3(m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	return math.Cbrt(float64(m) * float64(n) * float64(k))
}
