package cpumodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
)

// TestTimeGemmNoInjector: with Inject nil, TimeGemm/TimeGemv are exactly
// GemmSeconds/GemvSeconds with a nil error.
func TestTimeGemmNoInjector(t *testing.T) {
	m := dawnCPU()
	got, err := m.TimeGemm(8, 256, 256, 256, true, 4)
	if err != nil {
		t.Fatalf("TimeGemm: %v", err)
	}
	if want := m.GemmSeconds(8, 256, 256, 256, true, 4); math.Abs(got-want) > 0 {
		t.Fatalf("TimeGemm %g != GemmSeconds %g", got, want)
	}
	got, err = m.TimeGemv(8, 256, 256, true, 4)
	if err != nil {
		t.Fatalf("TimeGemv: %v", err)
	}
	if want := m.GemvSeconds(8, 256, 256, true, 4); math.Abs(got-want) > 0 {
		t.Fatalf("TimeGemv %g != GemvSeconds %g", got, want)
	}
}

// TestTimeGemmFaults: an armed plan targeting the cpu backend surfaces
// faults through TimeGemm — errors for transient/hard rules, extra
// modeled seconds for latency rules — keyed on the call's largest
// dimension.
func TestTimeGemmFaults(t *testing.T) {
	m := dawnCPU()
	m.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendCPU, Kernel: "gemm", MinDim: 1000, Probability: 1, Kind: faultinject.Transient},
	}}).Arm()

	// k=2048 is the largest dim: the MinDim 1000 rule matches.
	if _, err := m.TimeGemm(4, 64, 64, 2048, true, 1); err == nil {
		t.Fatal("matching rule injected no fault")
	} else {
		var fe *faultinject.Error
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Fatalf("got %v, want transient *faultinject.Error", err)
		}
	}
	// Below the size range: clean.
	if _, err := m.TimeGemm(4, 64, 64, 64, true, 1); err != nil {
		t.Fatalf("non-matching size faulted: %v", err)
	}
	// Different kernel: clean.
	if _, err := m.TimeGemv(4, 2048, 2048, true, 1); err != nil {
		t.Fatalf("gemv hit a gemm-only rule: %v", err)
	}

	m.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendCPU, Probability: 1, Kind: faultinject.Latency, LatencySeconds: 0.5},
	}}).Arm()
	base := m.GemvSeconds(4, 512, 512, true, 1)
	got, err := m.TimeGemv(4, 512, 512, true, 1)
	if err != nil {
		t.Fatalf("latency rule errored: %v", err)
	}
	if math.Abs(got-(base+0.5)) > 1e-12 {
		t.Fatalf("latency fault not added: got %g, want %g", got, base+0.5)
	}
}
