package cpumodel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/hw"
)

func dawnCPU() Model {
	return Model{CPU: hw.XeonPlatinum8468, Lib: OneMKL, Threads: 48}
}

func lumiCPU() Model {
	return Model{CPU: hw.EpycTrento7A53, Lib: AOCL, Threads: 56}
}

func isambardCPU() Model {
	return Model{CPU: hw.GraceCPU, Lib: NVPL, Threads: 72}
}

func TestGemmTimePositiveAndMonotoneInIters(t *testing.T) {
	m := dawnCPU()
	t1 := m.GemmSeconds(8, 256, 256, 256, true, 1)
	t8 := m.GemmSeconds(8, 256, 256, 256, true, 8)
	if t1 <= 0 || t8 <= 0 {
		t.Fatal("non-positive times")
	}
	if t8 <= t1 {
		t.Fatalf("8 iterations (%g) not slower than 1 (%g)", t8, t1)
	}
	// Warm iterations are at least as fast as the cold one.
	if t8 > 8*t1 {
		t.Fatalf("warm iterations slower than cold: %g > 8*%g", t8, t1)
	}
}

func TestGemmTimeGrowsWithSize(t *testing.T) {
	m := lumiCPU()
	prev := 0.0
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		cur := m.GemmSeconds(4, n, n, n, true, 1)
		if cur <= prev {
			t.Fatalf("time not increasing at n=%d: %g <= %g", n, cur, prev)
		}
		prev = cur
	}
}

func TestF32FasterThanF64ForLargeGemm(t *testing.T) {
	for _, m := range []Model{dawnCPU(), lumiCPU(), isambardCPU()} {
		s := m.GemmSeconds(4, 2048, 2048, 2048, true, 1)
		d := m.GemmSeconds(8, 2048, 2048, 2048, true, 1)
		if s >= d {
			t.Fatalf("%s: SGEMM (%g) not faster than DGEMM (%g)", m.Lib.Name, s, d)
		}
	}
}

func TestSingleThreadSlowerForLargeProblems(t *testing.T) {
	many := dawnCPU()
	one := dawnCPU()
	one.Threads = 1
	tm := many.GemmSeconds(8, 2048, 2048, 2048, true, 1)
	to := one.GemmSeconds(8, 2048, 2048, 2048, true, 1)
	if to <= tm {
		t.Fatalf("1 thread (%g) not slower than 48 (%g)", to, tm)
	}
}

// NVPL's all-threads-always heuristic must make tiny GEMMs slower than a
// single-threaded run (Fig 3).
func TestNVPLAllThreadsPenaltySmallSizes(t *testing.T) {
	nvpl := isambardCPU()
	single := Model{CPU: hw.GraceCPU, Lib: NVPLSingleThread, Threads: 1}
	small := 30
	if nvpl.GemmSeconds(4, small, small, small, true, 1) <= single.GemmSeconds(4, small, small, small, true, 1) {
		t.Fatal("NVPL 72t should be slower than 1t at tiny sizes")
	}
	big := 1024
	if nvpl.GemmSeconds(4, big, big, big, true, 1) >= single.GemmSeconds(4, big, big, big, true, 1) {
		t.Fatal("NVPL 72t should be faster than 1t at large sizes")
	}
}

// ArmPL scales threads with size, so its small-size GEMMs are cheap.
func TestArmPLScalesWithWork(t *testing.T) {
	armpl := Model{CPU: hw.GraceCPU, Lib: ArmPL, Threads: 72}
	nvpl := isambardCPU()
	small := 40
	if armpl.GemmSeconds(4, small, small, small, true, 1) >= nvpl.GemmSeconds(4, small, small, small, true, 1) {
		t.Fatal("ArmPL should beat NVPL at small sizes")
	}
}

// AOCL does not parallelise GEMV (§IV-B): time must not improve with the
// configured thread count, and EffectiveCPUs must report ~1.
func TestAOCLSerialGemv(t *testing.T) {
	m := lumiCPU()
	one := lumiCPU()
	one.Threads = 1
	a := m.GemvSeconds(4, 2048, 2048, true, 8)
	b := one.GemvSeconds(4, 2048, 2048, true, 8)
	if a != b { //blobvet:allow floatcompare -- AOCL serial-GEMV heuristic: thread count must not change the modeled time at all
		t.Fatalf("AOCL GEMV should ignore threads: %g vs %g", a, b)
	}
	if got := m.EffectiveCPUs("gemv", 4, 2048, 2048, 0); got > 1 {
		t.Fatalf("AOCL GEMV effective CPUs = %g, want <= 1", got)
	}
	if got := m.EffectiveCPUs("gemm", 4, 2048, 2048, 2048); got < 40 {
		t.Fatalf("AOCL GEMM effective CPUs = %g, want ~50", got)
	}
}

// The oneMKL square-GEMM drop (Fig 2): achieved GFLOP/s falls sharply at
// {629,629,629} relative to {628,628,628} and recovers by {1800,...}.
func TestOneMKLDropQuirk(t *testing.T) {
	m := dawnCPU()
	g := func(n int) float64 { return m.GemmGFLOPS(4, n, n, n, true, 1) }
	before, at := g(628), g(629)
	if at >= before*0.8 {
		t.Fatalf("no drop at 629: %g -> %g", before, at)
	}
	rec := g(1900)
	if rec <= at {
		t.Fatal("no recovery after the drop")
	}
}

// The drop amortises over iterations (QuirkWarmIters): per-iteration time
// at 128 iterations is much closer to the clean rate than at 1 iteration.
func TestOneMKLDropAmortises(t *testing.T) {
	m := dawnCPU()
	per1 := m.GemmSeconds(4, 700, 700, 700, true, 1)
	per128 := m.GemmSeconds(4, 700, 700, 700, true, 128) / 128
	if per128 >= per1*0.9 {
		t.Fatalf("drop did not amortise: %g vs %g", per128, per1)
	}
}

// GEMV is bandwidth-bound: warm iterations inside the cache are much
// faster than the cold one, and spilling the LLC erases the advantage
// (the DAWN DGEMV cliff, §IV-B).
func TestGemvCacheCliff(t *testing.T) {
	m := dawnCPU()
	perIterWarm := func(n int) float64 {
		total := m.GemvSeconds(8, n, n, true, 64)
		return total / 64
	}
	inCache := perIterWarm(2000) // 32 MB, fits
	spilled := perIterWarm(4000) // 128 MB, spilled
	perByteIn := inCache / (2000 * 2000 * 8)
	perByteOut := spilled / (4000 * 4000 * 8)
	if perByteOut < perByteIn*2 {
		t.Fatalf("no cache cliff: %g vs %g per byte", perByteIn, perByteOut)
	}
}

// The NVPL GEMV step at {256,256} (Fig 5): warm per-iteration rate drops
// when crossing 256.
func TestNVPLGemvStep(t *testing.T) {
	m := isambardCPU()
	g := func(n int) float64 { return m.GemvGFLOPS(4, n, n, true, 128) }
	if g(256) >= g(255)*0.8 {
		t.Fatalf("no NVPL step at 256: %g -> %g", g(255), g(256))
	}
}

func TestGemvZeroAndDegenerate(t *testing.T) {
	m := dawnCPU()
	if m.GemvSeconds(8, 0, 10, true, 1) != 0 {
		t.Fatal("m=0 should cost 0")
	}
	if m.GemmSeconds(8, 10, 10, 10, true, 0) != 0 {
		t.Fatal("0 iterations should cost 0")
	}
}

// Property: time is finite and positive for any valid shape.
func TestGemmTimeAlwaysPositive(t *testing.T) {
	m := lumiCPU()
	f := func(a, b, c uint8, iters uint8) bool {
		mm, nn, kk := int(a)+1, int(b)+1, int(c)+1
		it := int(iters)%16 + 1
		s := m.GemmSeconds(8, mm, nn, kk, false, it)
		return s > 0 && s < 1e6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Beta != 0 must cost at least as much as beta == 0 (more FLOPs, more
// bytes) — the Table I effect.
func TestBetaNonZeroCostsMore(t *testing.T) {
	m := dawnCPU()
	m.Threads = 1 // Table I CPU runs are single threaded
	b0 := m.GemmSeconds(4, 8192, 8192, 4, true, 100)
	b2 := m.GemmSeconds(4, 8192, 8192, 4, false, 100)
	if b2 <= b0 {
		t.Fatalf("beta=2 (%g) not slower than beta=0 (%g)", b2, b0)
	}
	ratio := b2 / b0
	if ratio < 1.1 || ratio > 2.0 {
		t.Fatalf("beta ratio %g outside the paper's 1.2x-1.7x ballpark", ratio)
	}
}
