// Package cpumodel provides the calibrated CPU-side timing model used by the
// simulated heterogeneous systems.
//
// The model is a roofline with three refinements the paper's results hinge
// on (§IV):
//
//  1. Threading heuristics. Libraries differ in how many threads they devote
//     to a problem: NVPL "seemingly attempts to use all available threads for
//     every problem size, whilst ArmPL scales the thread count with the
//     problem size" (§IV-A), and AOCL does not parallelise GEMV at all
//     (§IV-B, the perf-stat 0.89-CPUs observation). Thread count sets both
//     the usable fraction of peak and the per-call dispatch overhead.
//
//  2. Cache residency across iterations. GPU-BLOB times i back-to-back
//     iterations of the same call; after the first (cold) iteration the
//     working set is cache-resident if it fits, which is what makes CPU GEMV
//     so strong until the matrix spills the LLC (the DAWN performance cliff
//     between M=N=3000 and 3500, §IV-B footnote).
//
//  3. Library quirks. Documented heuristic artifacts — oneMKL's square-GEMM
//     performance drop at {629,629,629} (Fig 2), NVPL's GEMV step at
//     {256,256} (Fig 5) and at {2048,32} for thin shapes (§IV-D) — are
//     injected as explicit, named perturbations of the achieved GFLOP/s.
//
// All times are computed in microseconds internally and returned in seconds.
package cpumodel

import (
	"math"

	"repro/internal/faultinject"
	"repro/internal/flops"
	"repro/internal/sim/efftab"
	"repro/internal/sim/hw"
)

// ThreadHeuristic selects how a library chooses its thread count.
type ThreadHeuristic int

// Threading heuristics observed in the paper.
const (
	// AllThreads always uses every configured thread (NVPL, AOCL GEMM).
	AllThreads ThreadHeuristic = iota
	// ScaleWithWork grows the thread count with the problem (ArmPL, oneMKL,
	// OpenBLAS).
	ScaleWithWork
	// SingleThread never parallelises (AOCL GEMV; single-threaded builds).
	SingleThread
)

// Quirk adjusts the modeled achieved GFLOP/s for one call. It receives the
// element size, problem dimensions (k == 0 for GEMV) and the pre-quirk
// achieved GFLOP/s, and returns the adjusted value.
type Quirk func(elemSize, m, n, k int, gflops float64) float64

// Profile describes one CPU BLAS library's behaviour.
type Profile struct {
	Name string
	// Heuristic governs GEMM thread selection.
	Heuristic ThreadHeuristic
	// GemvHeuristic governs GEMV thread selection (AOCL: SingleThread).
	GemvHeuristic ThreadHeuristic
	// MaxEff is the asymptotic fraction of peak FLOP/s the library reaches.
	MaxEff float64
	// MaxEffF64 overrides MaxEff for double precision when non-zero; some
	// libraries' FP64 kernels deliver a lower fraction of peak than their
	// FP32 ones (AOCL on LUMI, §IV-A).
	MaxEffF64 float64
	// RampFlopsPerThread is how many FLOPs per participating thread a call
	// needs to reach half of MaxEff; it models parallel efficiency loss on
	// small problems.
	RampFlopsPerThread float64
	// RampPower shapes the efficiency ramp, eff = MaxEff / (1 + (R*t/fl)^P).
	// 1 (the default when 0) is a standard saturating ramp; lower values
	// stretch the transition over more size decades (observed for BLIS).
	RampPower float64
	// QuirkWarmIters bounds how many iterations the GemmQuirk persists: the
	// artifacts behind it (algorithm-switch repacking and similar) amortise
	// once the same call repeats. 0 means the quirk applies to every
	// iteration.
	QuirkWarmIters int
	// ScaleGrainFlops is, for ScaleWithWork, the FLOPs assigned per thread
	// when choosing the thread count.
	ScaleGrainFlops float64
	// GemvScaleGrainFlops overrides ScaleGrainFlops for GEMV when non-zero:
	// bandwidth-bound kernels are worth threading at far fewer FLOPs per
	// thread than compute-bound ones.
	GemvScaleGrainFlops float64
	// DispatchBaseUS + DispatchPerThreadUS*threads is the per-call overhead
	// (argument checking, thread wake-up, barrier).
	DispatchBaseUS      float64
	DispatchPerThreadUS float64
	// CacheFraction is the effective share of the LLC available to the
	// working set (the rest holds code, packing buffers, other data).
	CacheFraction float64
	// WarmComputeBonus is the fractional speedup of warm iterations over the
	// first (cold) one for compute-bound kernels: packed panels and TLBs are
	// hot, threads are spinning.
	WarmComputeBonus float64
	// GemmQuirk adjusts achieved GFLOP/s; GemvQuirk adjusts the warm
	// (cache-resident) streaming bandwidth. Nil means no quirk.
	GemmQuirk Quirk
	GemvQuirk Quirk
}

// Model is a CPU socket driven by a library profile at a configured thread
// count (the OMP_NUM_THREADS / BLIS_NUM_THREADS of the paper's runs).
type Model struct {
	CPU     hw.CPUSpec
	Lib     Profile
	Threads int
	// Inject, when non-nil, is consulted by TimeGemm/TimeGemv before each
	// modeled call (Backend "cpu"); nil — the normal configuration — adds
	// a single nil check and nothing else. Arm it with a faultinject.Plan
	// to rehearse backend failures.
	Inject faultinject.Point
	// Eff, when non-nil, switches the model to blackbox mode: the
	// size-dependent efficiency curve is interpolated from the measured
	// table instead of the analytic occupancy ramp, and library quirks are
	// skipped (the measurements already contain whatever quirks the real
	// kernels have). Dispatch overhead and thread selection stay analytic.
	// A (kernel, precision) the table lacks falls back to the roofline.
	Eff *efftab.Table
}

// gemmThreads returns the thread count the library would use for a GEMM of
// the given FLOP volume.
func (mo *Model) gemmThreads(fl int64) int {
	return mo.pickThreads(mo.Lib.Heuristic, fl, mo.Lib.ScaleGrainFlops)
}

// gemvThreads returns the thread count for a GEMV of the given FLOP volume.
func (mo *Model) gemvThreads(fl int64) int {
	grain := mo.Lib.GemvScaleGrainFlops
	if grain <= 0 {
		grain = mo.Lib.ScaleGrainFlops
	}
	return mo.pickThreads(mo.Lib.GemvHeuristic, fl, grain)
}

func (mo *Model) pickThreads(h ThreadHeuristic, fl int64, grain float64) int {
	t := mo.Threads
	if t < 1 {
		t = 1
	}
	switch h {
	case SingleThread:
		return 1
	case ScaleWithWork:
		if grain <= 0 {
			grain = 4e5
		}
		byWork := int(float64(fl)/grain) + 1
		if byWork < t {
			t = byWork
		}
		if t < 1 {
			t = 1
		}
		return t
	default: // AllThreads
		return t
	}
}

// memBWGBs returns the DRAM bandwidth reachable with t threads: each core
// can pull at most PerCoreMemBWGBs, and the socket saturates well before
// all cores participate.
func (mo *Model) memBWGBs(t int) float64 {
	sat := mo.CPU.MemBWGBs * float64(t) / (float64(t) + 4)
	return math.Min(sat, mo.CPU.PerCoreMemBWGBs*float64(t))
}

// cacheBWGBs returns the aggregate LLC bandwidth reachable with t threads.
func (mo *Model) cacheBWGBs(t int) float64 {
	sat := mo.CPU.CacheBWGBs * float64(t) / (float64(t) + 4)
	return math.Min(sat, mo.CPU.PerCoreCacheBWGBs*float64(t))
}

// warmBWGBs blends cache and DRAM bandwidth by working-set residency: fully
// cache-resident sets stream at LLC speed, sets well beyond the effective
// capacity at DRAM speed, with a linear transition as the set spills.
// cacheQuirk scales only the cache-resident side: the blocking-heuristic
// artifacts it models vanish once the data streams from DRAM anyway.
func (mo *Model) warmBWGBs(t int, workingSet int64, cacheQuirk float64) float64 {
	capacity := mo.Lib.CacheFraction * mo.CPU.CacheMB * 1e6
	if capacity <= 0 {
		return mo.memBWGBs(t)
	}
	x := float64(workingSet) / capacity
	cache := mo.cacheBWGBs(t) * cacheQuirk
	mem := mo.memBWGBs(t)
	switch {
	case x <= 0.8:
		return cache
	case x >= 1.4:
		return mem
	default:
		f := (x - 0.8) / 0.6
		return cache + f*(mem-cache)
	}
}

// dispatchUS is the per-call overhead at t threads.
func (mo *Model) dispatchUS(t int) float64 {
	return mo.Lib.DispatchBaseUS + mo.Lib.DispatchPerThreadUS*float64(t)
}

// achievedGemmGF returns the modeled compute rate for one GEMM call,
// before any library quirk, from the parallel ramp: t threads reach MaxEff
// only once the call carries enough FLOPs per thread,
// eff = MaxEff / (1 + (R*t/fl)^P). Small problems on many threads are
// genuinely slow in absolute terms — the NVPL all-threads-always behaviour
// of Fig 3.
func (mo *Model) achievedGemmGF(elemSize int, t int, fl int64) float64 {
	peak := mo.CPU.PeakGFLOPS(elemSize) * float64(t) / float64(mo.CPU.Cores)
	ramp := mo.Lib.RampFlopsPerThread * float64(t)
	power := mo.Lib.RampPower
	if power <= 0 {
		power = 1
	}
	maxEff := mo.Lib.MaxEff
	if elemSize == 8 && mo.Lib.MaxEffF64 > 0 {
		maxEff = mo.Lib.MaxEffF64
	}
	eff := maxEff / (1 + math.Pow(ramp/float64(fl), power))
	return math.Max(peak*eff, 1e-6)
}

// maxEffFor is the library's asymptotic fraction of peak at this
// precision.
func (mo *Model) maxEffFor(elemSize int) float64 {
	if elemSize == 8 && mo.Lib.MaxEffF64 > 0 {
		return mo.Lib.MaxEffF64
	}
	return mo.Lib.MaxEff
}

// blackboxGemmSeconds prices a GEMM from the measured efficiency table:
// the achieved rate is the socket peak times the library asymptote times
// the interpolated relative efficiency for the call's shape class and
// characteristic size. The table was measured on warmed, repeated calls,
// so cache-residency and warm-up structure is already inside the curve;
// only the per-call dispatch overhead stays analytic. Reports !ok when
// the table lacks the (kernel, precision), sending the caller back to
// the roofline.
func (mo *Model) blackboxGemmSeconds(elemSize, m, n, k int, beta0 bool, iters int) (float64, bool) {
	eff, ok := mo.Eff.Eff("gemm", efftab.PrecisionToken(elemSize), efftab.ClassifyGemm(m, n, k), efftab.GemmSize(m, n, k))
	if !ok {
		return 0, false
	}
	fl := flops.Gemm(m, n, k, flops.Beta{IsZero: beta0})
	t := mo.gemmThreads(fl)
	gf := math.Max(mo.CPU.PeakGFLOPS(elemSize)*mo.maxEffFor(elemSize)*eff, 1e-6)
	iterUS := float64(fl) / gf / 1e3
	return (float64(iters)*mo.dispatchUS(t) + float64(iters)*iterUS) * 1e-6, true
}

// blackboxGemvSeconds prices a GEMV from the measured table. GEMV is
// bandwidth-bound, so the relative efficiency scales the lower of the
// compute asymptote and the DRAM roofline at the call's arithmetic
// intensity — the table's curve carries the cache-cliff structure, the
// roofline anchors its absolute ceiling to this socket.
func (mo *Model) blackboxGemvSeconds(elemSize, m, n int, beta0 bool, iters int) (float64, bool) {
	eff, ok := mo.Eff.Eff("gemv", efftab.PrecisionToken(elemSize), efftab.ClassifyGemv(m, n), efftab.GemvSize(m, n))
	if !ok {
		return 0, false
	}
	beta := flops.Beta{IsZero: beta0}
	fl := flops.Gemv(m, n, beta)
	bytes := flops.GemvBytes(m, n, elemSize, beta)
	t := mo.gemvThreads(fl)
	if byRows := m/32 + 1; byRows < t {
		t = byRows
	}
	peak := mo.CPU.PeakGFLOPS(elemSize) * mo.Lib.MaxEff
	bwGF := mo.memBWGBs(t) * float64(fl) / float64(bytes)
	gf := math.Max(math.Min(peak, bwGF)*eff, 1e-6)
	iterUS := float64(fl) / gf / 1e3
	return (float64(iters)*mo.dispatchUS(t) + float64(iters)*iterUS) * 1e-6, true
}

// GemmSeconds models i back-to-back iterations of one GEMM call. Warm
// iterations benefit both from cache residency of the operands and from the
// library's warmed-up state (packed panels, hot TLBs, spun-up threads),
// modeled as the profile's WarmComputeBonus on the compute roofline — the
// effect behind Transfer-Always offload thresholds growing with the
// iteration count (§IV-A).
func (mo *Model) GemmSeconds(elemSize, m, n, k int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 {
		return 0
	}
	if mo.Eff != nil {
		if sec, ok := mo.blackboxGemmSeconds(elemSize, m, n, k, beta0, iters); ok {
			return sec
		}
	}
	beta := flops.Beta{IsZero: beta0}
	fl := flops.Gemm(m, n, k, beta)
	bytes := flops.GemmBytes(m, n, k, elemSize, beta)
	ws := (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)) * int64(elemSize)
	t := mo.gemmThreads(fl)
	gfClean := mo.achievedGemmGF(elemSize, t, fl)
	gfQuirked := gfClean
	if mo.Lib.GemmQuirk != nil {
		gfQuirked = math.Max(mo.Lib.GemmQuirk(elemSize, m, n, k, gfClean), 1e-6)
	}
	warmBW := mo.warmBWGBs(t, ws, 1) * 1e3
	coldBW := mo.memBWGBs(t) * 1e3
	iterUS := func(gf float64, warm bool) float64 {
		computeUS := float64(fl) / gf / 1e3
		bw := coldBW
		if warm {
			computeUS /= 1 + mo.Lib.WarmComputeBonus
			bw = warmBW
		}
		return math.Max(computeUS, float64(bytes)/bw)
	}
	// The quirk persists for the cold call plus QuirkWarmIters warm ones,
	// then amortises away (0 = forever).
	quirkedWarm := iters - 1
	if mo.Lib.QuirkWarmIters > 0 && quirkedWarm > mo.Lib.QuirkWarmIters {
		quirkedWarm = mo.Lib.QuirkWarmIters
	}
	cleanWarm := iters - 1 - quirkedWarm
	totalUS := float64(iters)*mo.dispatchUS(t) +
		iterUS(gfQuirked, false) +
		float64(quirkedWarm)*iterUS(gfQuirked, true) +
		float64(cleanWarm)*iterUS(gfClean, true)
	return totalUS * 1e-6
}

// GemvSeconds models i back-to-back iterations of one GEMV call. GEMV is
// bandwidth-bound, so the compute roofline almost never binds; it is kept
// for completeness and for tiny matrices.
func (mo *Model) GemvSeconds(elemSize, m, n int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 {
		return 0
	}
	if mo.Eff != nil {
		if sec, ok := mo.blackboxGemvSeconds(elemSize, m, n, beta0, iters); ok {
			return sec
		}
	}
	beta := flops.Beta{IsZero: beta0}
	fl := flops.Gemv(m, n, beta)
	bytes := flops.GemvBytes(m, n, elemSize, beta)
	ws := (int64(m)*int64(n) + int64(m) + int64(n)) * int64(elemSize)
	t := mo.gemvThreads(fl)
	// A thread needs a minimum number of rows to be worth waking.
	if byRows := m/32 + 1; byRows < t {
		t = byRows
	}
	peak := mo.CPU.PeakGFLOPS(elemSize) * float64(t) / float64(mo.CPU.Cores) * mo.Lib.MaxEff
	gf := math.Max(peak, 1e-6)
	computeUS := float64(fl) / gf / 1e3
	coldBW := mo.memBWGBs(t)
	// GEMV quirks model blocking-heuristic artifacts in the cache-resident
	// regime (the NVPL {256,256} step of Fig 5, oneMKL's stepped SGEMV
	// curves); streaming from DRAM is unaffected, which is why the paper's
	// CPU curves recover (or the GPU never catches up) at the largest sizes.
	cacheQuirk := 1.0
	if mo.Lib.GemvQuirk != nil {
		cacheQuirk = math.Max(mo.Lib.GemvQuirk(elemSize, m, n, 0, 1), 1e-6)
	}
	warmBW := mo.warmBWGBs(t, ws, cacheQuirk)
	coldUS := math.Max(computeUS, float64(bytes)/(coldBW*1e3))
	warmUS := math.Max(computeUS, float64(bytes)/(warmBW*1e3))
	totalUS := float64(iters)*mo.dispatchUS(t) + coldUS + float64(iters-1)*warmUS
	return totalUS * 1e-6
}

// TimeGemm is GemmSeconds behind the fault-injection point: it consults
// Inject (Backend "cpu", Kernel "gemm", Dim max(m,n,k)) and returns the
// fault error, or the modeled time plus any injected latency. Callers
// that can fail — internal/core's resilient sweep loop — use this; the
// plain GemmSeconds signature stays for calibration code and plots that
// never inject faults.
func (mo *Model) TimeGemm(elemSize, m, n, k int, beta0 bool, iters int) (float64, error) {
	var extra float64
	if mo.Inject != nil {
		var err error
		extra, err = mo.Inject.At(faultinject.Site{
			Backend: faultinject.BackendCPU, Kernel: "gemm", Dim: maxDim3(m, n, k),
		})
		if err != nil {
			return 0, err
		}
	}
	return mo.GemmSeconds(elemSize, m, n, k, beta0, iters) + extra, nil
}

// TimeGemv is GemvSeconds behind the fault-injection point (Backend
// "cpu", Kernel "gemv", Dim max(m,n)).
func (mo *Model) TimeGemv(elemSize, m, n int, beta0 bool, iters int) (float64, error) {
	var extra float64
	if mo.Inject != nil {
		var err error
		extra, err = mo.Inject.At(faultinject.Site{
			Backend: faultinject.BackendCPU, Kernel: "gemv", Dim: maxDim3(m, n, 0),
		})
		if err != nil {
			return 0, err
		}
	}
	return mo.GemvSeconds(elemSize, m, n, beta0, iters) + extra, nil
}

// maxDim3 is the characteristic dimension a fault rule's size range keys
// on: the largest of the call's dimensions.
func maxDim3(m, n, k int) int {
	d := m
	if n > d {
		d = n
	}
	if k > d {
		d = k
	}
	return d
}

// EffectiveCPUs reports the average number of CPUs a long run of the kernel
// keeps busy — the analogue of the paper's perf-stat measurement that
// exposed AOCL's serial GEMV (0.89 CPUs vs 50.2 for GEMM, §IV-B).
func (mo *Model) EffectiveCPUs(kernel string, elemSize, m, n, k int) float64 {
	switch kernel {
	case "gemv":
		fl := flops.Gemv(m, n, flops.Beta{IsZero: true})
		t := mo.gemvThreads(fl)
		if byRows := m/32 + 1; byRows < t {
			t = byRows
		}
		// Serial libraries never quite reach 1.0 because of OS noise.
		if t == 1 {
			return 0.89
		}
		return float64(t) * 0.9
	default:
		fl := flops.Gemm(m, n, k, flops.Beta{IsZero: true})
		t := mo.gemmThreads(fl)
		return float64(t) * 0.9
	}
}

// GemmGFLOPS is a convenience returning modeled GFLOP/s for i iterations.
func (mo *Model) GemmGFLOPS(elemSize, m, n, k int, beta0 bool, iters int) float64 {
	s := mo.GemmSeconds(elemSize, m, n, k, beta0, iters)
	return flops.GFLOPS(int64(iters)*flops.Gemm(m, n, k, flops.Beta{IsZero: beta0}), s)
}

// GemvGFLOPS is a convenience returning modeled GFLOP/s for i iterations.
func (mo *Model) GemvGFLOPS(elemSize, m, n int, beta0 bool, iters int) float64 {
	s := mo.GemvSeconds(elemSize, m, n, beta0, iters)
	return flops.GFLOPS(int64(iters)*flops.Gemv(m, n, flops.Beta{IsZero: beta0}), s)
}
