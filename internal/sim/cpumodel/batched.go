package cpumodel

import (
	"math"

	"repro/internal/flops"
)

// GemmBatchedSeconds models i iterations of a batched GEMM: batch
// independent m x n x k problems issued as one call (§V future work). The
// batch pays one dispatch per iteration and the efficiency ramp sees the
// batch's total FLOPs — which is exactly why batching helps small problems:
// the per-call overhead amortises and the threads all have work.
func (mo *Model) GemmBatchedSeconds(elemSize, m, n, k, batch int, beta0 bool, iters int) float64 {
	if iters < 1 || batch < 1 || m <= 0 || n <= 0 {
		return 0
	}
	beta := flops.Beta{IsZero: beta0}
	flOne := flops.Gemm(m, n, k, beta)
	flTotal := flOne * int64(batch)
	bytes := flops.GemmBytes(m, n, k, elemSize, beta) * int64(batch)
	ws := (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)) * int64(elemSize) * int64(batch)
	t := mo.gemmThreads(flTotal)
	gf := mo.achievedGemmGF(elemSize, t, flTotal)
	computeUS := float64(flTotal) / gf / 1e3
	coldUS := math.Max(computeUS, float64(bytes)/(mo.memBWGBs(t)*1e3))
	warmUS := math.Max(computeUS/(1+mo.Lib.WarmComputeBonus), float64(bytes)/(mo.warmBWGBs(t, ws, 1)*1e3))
	totalUS := float64(iters)*mo.dispatchUS(t) + coldUS + float64(iters-1)*warmUS
	return totalUS * 1e-6
}
