package cpumodel

import "math"

// SpmvSeconds models i iterations of a CSR SpMV touching storageBytes of
// matrix data across rows rows. SpMV is purely bandwidth-bound; the
// irregularity factor (0..1] derates effective bandwidth for the gathered
// accesses to x (≈1 for banded stencils whose gathers stay in cache, ≈0.35
// for uniformly random sparsity). Thread selection follows the library's
// GEMV heuristic — AOCL's serial GEMV path is shared by its sparse
// kernels.
func (mo *Model) SpmvSeconds(storageBytes int64, rows int, irregularity float64, iters int) float64 {
	if iters < 1 || rows <= 0 || storageBytes <= 0 {
		return 0
	}
	if irregularity <= 0 || irregularity > 1 {
		irregularity = 1
	}
	// Vector traffic: x gathered, y written.
	bytes := storageBytes + int64(rows)*16
	// FLOPs proxy for thread scaling: 2 per stored value.
	fl := storageBytes / 8 * 2
	t := mo.gemvThreads(fl)
	if byRows := rows/64 + 1; byRows < t {
		t = byRows
	}
	coldBW := mo.memBWGBs(t) * irregularity
	warmBW := mo.warmBWGBs(t, bytes, 1) * irregularity
	coldUS := float64(bytes) / (coldBW * 1e3)
	warmUS := float64(bytes) / (warmBW * 1e3)
	totalUS := float64(iters)*mo.dispatchUS(t) + coldUS + float64(iters-1)*warmUS
	return math.Max(totalUS, 0) * 1e-6
}
