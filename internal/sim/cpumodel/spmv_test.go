package cpumodel

import "testing"

func TestSpmvSecondsBasics(t *testing.T) {
	m := lumiCPU()
	if m.SpmvSeconds(1<<20, 1000, 0.5, 0) != 0 {
		t.Fatal("0 iterations")
	}
	if m.SpmvSeconds(0, 1000, 0.5, 1) != 0 {
		t.Fatal("0 bytes")
	}
	one := m.SpmvSeconds(1<<20, 1000, 0.5, 1)
	if one <= 0 {
		t.Fatal("non-positive SpMV time")
	}
	// More data costs more.
	if m.SpmvSeconds(8<<20, 1000, 0.5, 1) <= one {
		t.Fatal("SpMV time should grow with storage")
	}
	// Irregular access costs more than regular for the same bytes.
	reg := m.SpmvSeconds(8<<20, 1000, 0.9, 1)
	irr := m.SpmvSeconds(8<<20, 1000, 0.35, 1)
	if irr <= reg {
		t.Fatalf("irregular (%g) should be slower than regular (%g)", irr, reg)
	}
	// Out-of-range irregularity clamps rather than exploding.
	if got := m.SpmvSeconds(1<<20, 1000, 0, 1); got <= 0 {
		t.Fatal("irregularity clamp")
	}
	if got := m.SpmvSeconds(1<<20, 1000, 7, 1); got <= 0 {
		t.Fatal("irregularity clamp high")
	}
}

// AOCL's serial GEMV heuristic carries over to SpMV: thread count must not
// change the result on LUMI, but must on DAWN.
func TestSpmvThreadHeuristics(t *testing.T) {
	lumi := lumiCPU()
	one := lumiCPU()
	one.Threads = 1
	if lumi.SpmvSeconds(64<<20, 100000, 0.5, 4) != one.SpmvSeconds(64<<20, 100000, 0.5, 4) { //blobvet:allow floatcompare -- AOCL serial-SpMV heuristic: identical model arithmetic must give identical times
		t.Fatal("AOCL SpMV should be serial")
	}
	dawn := dawnCPU()
	dawn1 := dawnCPU()
	dawn1.Threads = 1
	many := dawn.SpmvSeconds(64<<20, 100000, 0.5, 4)
	single := dawn1.SpmvSeconds(64<<20, 100000, 0.5, 4)
	if many >= single {
		t.Fatalf("oneMKL SpMV should benefit from threads: %g vs %g", many, single)
	}
}
