package usm

import (
	"testing"

	"repro/internal/sim/hw"
)

func TestMoveSecondsBasics(t *testing.T) {
	link := hw.InfinityFabricCPU2GPU
	if AMDUSM.MoveSeconds(link, 1<<20, 1<<18, 0) != 0 {
		t.Fatal("0 iterations should cost 0")
	}
	one := AMDUSM.MoveSeconds(link, 1<<20, 1<<18, 1)
	if one <= 0 {
		t.Fatal("non-positive migration time")
	}
}

// Migration is slower than a bulk pinned copy of the same bytes.
func TestMigrationSlowerThanBulkCopy(t *testing.T) {
	link := hw.InfinityFabricCPU2GPU
	bytes := int64(64 << 20)
	bulk := link.TransferTimeUS(bytes) * 1e-6
	migrated := AMDUSM.MoveSeconds(link, bytes, 0, 1)
	if migrated <= bulk {
		t.Fatalf("migration (%g) should cost more than a bulk copy (%g)", migrated, bulk)
	}
}

// AMD's residual faulting keeps adding cost per iteration; Intel's does
// not (§IV-A).
func TestResidualFaulting(t *testing.T) {
	link := hw.InfinityFabricCPU2GPU
	bytes := int64(64 << 20)
	amd1 := AMDUSM.MoveSeconds(link, bytes, 0, 1)
	amd64 := AMDUSM.MoveSeconds(link, bytes, 0, 64)
	if amd64 < amd1*2 {
		t.Fatalf("AMD residual faults should accumulate: %g vs %g", amd1, amd64)
	}
	intel1 := IntelUSM.MoveSeconds(hw.PCIe5x16, bytes, 0, 1)
	intel64 := IntelUSM.MoveSeconds(hw.PCIe5x16, bytes, 0, 64)
	if intel64 != intel1 { //blobvet:allow floatcompare -- Intel USM models zero residual cost; identical expressions must agree
		t.Fatalf("Intel USM has no residual cost: %g vs %g", intel1, intel64)
	}
}

// Without XNACK nothing migrates: every iteration streams across the link
// with the penalty, so cost scales linearly with iterations and the 1-iter
// penalty versus migration is dramatic (the up-to-40x observation, §IV).
func TestXnackDisabled(t *testing.T) {
	link := hw.InfinityFabricCPU2GPU
	bytes := int64(64 << 20)
	with := AMDUSM.MoveSeconds(link, bytes, 0, 1)
	without := AMDUSMNoXnack.MoveSeconds(link, bytes, 0, 1)
	ratio := without / with
	if ratio < 5 || ratio > 60 {
		t.Fatalf("XNACK-off penalty ratio %g outside the expected order (paper: up to 40x)", ratio)
	}
	w8 := AMDUSMNoXnack.MoveSeconds(link, bytes, 0, 8)
	if w8 < 7.9*without || w8 > 8.1*without {
		t.Fatalf("XNACK-off cost should scale linearly with iterations: %g vs 8*%g", w8, without)
	}
}

func TestOutputMigratesOnce(t *testing.T) {
	link := hw.NVLinkC2C
	noOut := NVIDIAUSM.MoveSeconds(link, 1<<20, 0, 16)
	withOut := NVIDIAUSM.MoveSeconds(link, 1<<20, 1<<20, 16)
	if withOut <= noOut {
		t.Fatal("output migration should add cost")
	}
	// The output cost is iteration-independent.
	delta16 := withOut - noOut
	delta1 := NVIDIAUSM.MoveSeconds(link, 1<<20, 1<<20, 1) - NVIDIAUSM.MoveSeconds(link, 1<<20, 0, 1)
	if diff := delta16 - delta1; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("output migration should be one-off: %g vs %g", delta16, delta1)
	}
}

func TestZeroBytes(t *testing.T) {
	if got := IntelUSM.MoveSeconds(hw.PCIe5x16, 0, 0, 4); got != 0 {
		t.Fatalf("zero bytes should cost 0, got %g", got)
	}
}

func TestMigrationCostGrowsWithBytes(t *testing.T) {
	link := hw.PCIe5x16
	prev := 0.0
	for _, mb := range []int64{1, 8, 64, 512} {
		cur := IntelUSM.MoveSeconds(link, mb<<20, 0, 1)
		if cur <= prev {
			t.Fatalf("migration cost not increasing at %d MiB", mb)
		}
		prev = cur
	}
}

func TestResidentMoveCheaperThanFirstTouch(t *testing.T) {
	link := hw.PCIe5x16
	for _, p := range []Profile{IntelUSM, AMDUSM, NVIDIAUSM} {
		full := p.MoveSeconds(link, 64<<20, 1<<20, 8)
		resident := p.ResidentMoveSeconds(link, 64<<20, 1<<20, 8)
		if resident >= full {
			t.Errorf("%s: resident move %g should undercut first-touch move %g", p.Name, resident, full)
		}
	}
}

func TestResidentMoveKeepsResidualFaults(t *testing.T) {
	link := hw.PCIe5x16
	// AMD re-faults 5% of the working set every iteration, so resident cost
	// still grows with the iteration count; Intel (no residual) does not.
	amd1 := AMDUSM.ResidentMoveSeconds(link, 64<<20, 0, 1)
	amd16 := AMDUSM.ResidentMoveSeconds(link, 64<<20, 0, 16)
	if amd16 <= amd1 {
		t.Fatalf("AMD resident cost should grow with iterations: %g vs %g", amd16, amd1)
	}
	intel1 := IntelUSM.ResidentMoveSeconds(link, 64<<20, 0, 1)
	intel16 := IntelUSM.ResidentMoveSeconds(link, 64<<20, 0, 16)
	if diff := intel16 - intel1; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("Intel has no residual faulting; resident cost should be flat: %g vs %g", intel1, intel16)
	}
}

func TestResidentMoveNoXnackUnchanged(t *testing.T) {
	link := hw.InfinityFabricCPU2GPU
	full := AMDUSMNoXnack.MoveSeconds(link, 8<<20, 1<<20, 4)
	resident := AMDUSMNoXnack.ResidentMoveSeconds(link, 8<<20, 1<<20, 4)
	if diff := full - resident; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("without XNACK nothing is ever resident: %g vs %g", full, resident)
	}
}
