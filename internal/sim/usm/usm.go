// Package usm models Unified Shared Memory data movement: instead of
// explicit copies, pages migrate to the device on first touch, and vendor
// runtime heuristics decide how well subsequent accesses behave.
//
// The paper's findings this model reproduces:
//
//   - On DAWN, USM performs on par with Transfer-Once (§IV-A): Intel's
//     migration moves data at close to link speed with little residual cost.
//   - On LUMI, USM "consistently has much higher offload thresholds ...
//     this poor USM performance must be a result of the vendor's page
//     migration heuristics" (§IV-A): migration is slower than a bulk copy
//     AND a fraction of pages keeps re-faulting every iteration.
//   - On Isambard-AI, USM lags Transfer-Once at one iteration but the gap
//     "quickly closes as the iteration count increases" (§IV-A): a
//     first-touch cost with negligible residual.
//   - Without HSA_XNACK=1 on AMD, no page migration occurs at all and every
//     device access crosses the interconnect, which has been measured to
//     cost up to 40x in transfer performance (§IV).
package usm

import (
	"math"

	"repro/internal/faultinject"
	"repro/internal/sim/hw"
)

// Profile captures one vendor's page-migration behaviour.
type Profile struct {
	Name string
	// PageBytes is the migration granularity.
	PageBytes int64
	// FaultLatencyUS is the fixed cost of servicing one page fault.
	FaultLatencyUS float64
	// MigrationBWFactor is the fraction of the link bandwidth achieved
	// while migrating (bulk copies reach 1.0; migration is usually worse).
	MigrationBWFactor float64
	// ResidualFaultFraction is the fraction of the working set that
	// re-faults on every iteration after the first (eviction/thrashing
	// heuristics). 0 means the data stays resident.
	ResidualFaultFraction float64
	// XnackEnabled reports whether the device can signal page faults to the
	// host (HSA_XNACK=1 on AMD). When false, pages never migrate and all
	// device accesses stream across the link at XnackDisabledPenalty x cost.
	XnackEnabled         bool
	XnackDisabledPenalty float64
}

// IntelUSM migrates efficiently: on DAWN, USM tracks Transfer-Once.
var IntelUSM = Profile{
	Name:              "Intel USM",
	PageBytes:         64 << 10,
	FaultLatencyUS:    1.5,
	MigrationBWFactor: 0.92,
	XnackEnabled:      true,
}

// AMDUSM (HSA_XNACK=1) migrates slowly and keeps re-faulting a share of the
// working set each iteration.
var AMDUSM = Profile{
	Name:                  "AMD USM (HSA_XNACK=1)",
	PageBytes:             4 << 10,
	FaultLatencyUS:        2.5,
	MigrationBWFactor:     0.30,
	ResidualFaultFraction: 0.05,
	XnackEnabled:          true,
	XnackDisabledPenalty:  40,
}

// AMDUSMNoXnack is the HSA_XNACK unset configuration: no migration, every
// access crosses the interconnect (up to 40x slower transfers, §IV).
var AMDUSMNoXnack = Profile{
	Name:                 "AMD USM (HSA_XNACK=0)",
	PageBytes:            4 << 10,
	FaultLatencyUS:       2.5,
	MigrationBWFactor:    0.40,
	XnackEnabled:         false,
	XnackDisabledPenalty: 40,
}

// NVIDIAUSM on GH200: a visible first-touch cost, negligible residual.
var NVIDIAUSM = Profile{
	Name:                  "NVIDIA USM (GH200)",
	PageBytes:             64 << 10,
	FaultLatencyUS:        0.2,
	MigrationBWFactor:     0.90,
	ResidualFaultFraction: 0.004,
	XnackEnabled:          true,
}

// CheckFault consults an injection point for one page-migration pass
// (Backend "usm"): it returns any extra modeled seconds for a latency
// fault, or the fault error itself. A nil point — the normal, fault-free
// configuration — costs one nil check and nothing else.
func CheckFault(p faultinject.Point, kernel string, dim int) (float64, error) {
	if p == nil {
		return 0, nil
	}
	return p.At(faultinject.Site{Backend: faultinject.BackendUSM, Kernel: kernel, Dim: dim})
}

// MoveSeconds returns the total modeled data-movement time for a USM run
// touching inBytes of input and outBytes of output over iters iterations of
// device compute.
//
// XNACK enabled: the first iteration faults the whole input across the link
// at migration speed; every later iteration re-faults ResidualFaultFraction
// of it; the output migrates back to the host once at the end (first host
// touch after the run).
//
// XNACK disabled: nothing migrates; the device streams the input across the
// link every iteration at the penalty factor.
func (p Profile) MoveSeconds(link hw.LinkSpec, inBytes, outBytes int64, iters int) float64 {
	if iters < 1 {
		return 0
	}
	if !p.XnackEnabled {
		per := p.streamUS(link, inBytes+outBytes) * p.XnackDisabledPenalty
		return per * float64(iters) * 1e-6
	}
	first := p.migrateUS(link, inBytes)
	residual := p.migrateUS(link, int64(float64(inBytes)*p.ResidualFaultFraction)) * float64(iters-1)
	out := p.migrateUS(link, outBytes)
	return (first + residual + out) * 1e-6
}

// ResidentMoveSeconds is MoveSeconds for operands whose first touch has
// already been paid: the working set is resident on the device, so only
// the residual re-fault fraction moves each iteration, plus the output's
// migration back to the host. An automatic-offload runtime that keeps
// dispatching the same operands (internal/offload's residency-aware case)
// pays this instead of the full first-touch cost.
//
// XNACK disabled is unchanged from MoveSeconds: nothing is ever resident,
// every iteration streams across the link at the penalty factor.
func (p Profile) ResidentMoveSeconds(link hw.LinkSpec, inBytes, outBytes int64, iters int) float64 {
	if iters < 1 {
		return 0
	}
	if !p.XnackEnabled {
		return p.MoveSeconds(link, inBytes, outBytes, iters)
	}
	residual := p.migrateUS(link, int64(float64(inBytes)*p.ResidualFaultFraction)) * float64(iters)
	out := p.migrateUS(link, outBytes)
	return (residual + out) * 1e-6
}

// migrateUS returns the microseconds to migrate bytes: per-page fault
// service plus the data itself at migration bandwidth.
func (p Profile) migrateUS(link hw.LinkSpec, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	pages := (bytes + p.PageBytes - 1) / p.PageBytes
	// Fault handling pipelines with the data stream; the runtime batches
	// faults, so charge a sub-linear (square-root) fault cost.
	faultUS := p.FaultLatencyUS * math.Sqrt(float64(pages))
	dataUS := float64(bytes) / (link.BWGBs * p.MigrationBWFactor * 1e3)
	return link.LatencyUS + faultUS + dataUS
}

// streamUS is a plain remote stream across the link (no migration).
func (p Profile) streamUS(link hw.LinkSpec, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return link.LatencyUS + float64(bytes)/(link.BWGBs*1e3)
}
