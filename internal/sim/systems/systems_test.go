package systems

import (
	"testing"

	"repro/internal/sim/xfer"
)

func TestByNameResolvesAllTokens(t *testing.T) {
	for _, name := range Names() {
		sys, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if sys.Name == "" || sys.CPU.Threads < 1 || sys.CPU.Lib.Name == "" || sys.GPU.Lib.Name == "" {
			t.Fatalf("ByName(%q): incomplete system %+v", name, sys)
		}
	}
	if _, err := ByName("fugaku"); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestAllReturnsPaperOrder(t *testing.T) {
	all := All()
	if len(all) != 3 || all[0].Name != "DAWN" || all[1].Name != "LUMI" || all[2].Name != "Isambard-AI" {
		t.Fatalf("All() = %v", all)
	}
}

func TestPaperThreadCounts(t *testing.T) {
	// §IV: OMP_NUM_THREADS=48 (DAWN), BLIS_NUM_THREADS=56 (LUMI),
	// OMP_NUM_THREADS=72 (Isambard-AI).
	if DAWN().CPU.Threads != 48 {
		t.Fatal("DAWN threads")
	}
	if LUMI().CPU.Threads != 56 {
		t.Fatal("LUMI threads")
	}
	if IsambardAI().CPU.Threads != 72 {
		t.Fatal("Isambard-AI threads")
	}
}

func TestVariantsDiffer(t *testing.T) {
	if !DAWNImplicitScaling().GPU.ImplicitScaling || DAWN().GPU.ImplicitScaling {
		t.Fatal("implicit scaling flag")
	}
	if LUMIOpenBLAS().CPU.Lib.Name == LUMI().CPU.Lib.Name {
		t.Fatal("OpenBLAS variant should swap the CPU library")
	}
	if LUMINoXnack().GPU.USM.XnackEnabled {
		t.Fatal("no-xnack variant should disable XNACK")
	}
	if IsambardAINVPL1T().CPU.Threads != 1 {
		t.Fatal("NVPL 1-thread variant")
	}
	if IsambardAIArmPL().CPU.Lib.Name == IsambardAI().CPU.Lib.Name {
		t.Fatal("ArmPL variant should swap the CPU library")
	}
}

// Headline paper facts encoded by the presets: the GH200 amortises
// transfers (SoC), LUMI's CPU is the weakest, DAWN's the strongest.
func TestSystemContrasts(t *testing.T) {
	dawn, lumi, isam := DAWN(), LUMI(), IsambardAI()
	if isam.GPU.Link.BWGBs <= dawn.GPU.Link.BWGBs || isam.GPU.Link.BWGBs <= lumi.GPU.Link.BWGBs {
		t.Fatal("GH200 link must be the fastest")
	}
	if dawn.CPU.CPU.PeakGFLOPS(8) <= lumi.CPU.CPU.PeakGFLOPS(8) {
		t.Fatal("DAWN socket should out-peak LUMI's")
	}
	// A mid-size SGEMM with high reuse: the GH200 should show the smallest
	// GPU-vs-CPU time ratio (lowest offload threshold of the three).
	ratio := func(s System) float64 {
		cpu := s.CPU.GemmSeconds(4, 128, 128, 128, true, 32)
		gpu := s.GPU.GemmSeconds(xfer.TransferOnce, 4, 128, 128, 128, true, 32)
		return gpu / cpu
	}
	if ratio(isam) >= ratio(dawn) {
		t.Fatalf("GH200 should offload small GEMMs best: %g vs DAWN %g", ratio(isam), ratio(dawn))
	}
}

// Model invariant: making the interconnect strictly faster can only lower
// (or keep) the GPU time under any explicit-transfer strategy.
func TestFasterLinkNeverHurts(t *testing.T) {
	base := DAWN()
	fast := DAWN()
	fast.GPU.Link.BWGBs *= 4
	fast.GPU.Link.LatencyUS /= 4
	for _, n := range []int{16, 128, 1024, 4096} {
		for _, st := range []xfer.Strategy{xfer.TransferOnce, xfer.TransferAlways} {
			b := base.GPU.GemmSeconds(st, 4, n, n, n, true, 8)
			f := fast.GPU.GemmSeconds(st, 4, n, n, n, true, 8)
			if f > b {
				t.Fatalf("n=%d %v: faster link increased time %g -> %g", n, st, b, f)
			}
		}
	}
}

// Model invariant: more iterations never reduce total time, and per-
// iteration Transfer-Once cost never increases with the count.
func TestIterationMonotonicity(t *testing.T) {
	sys := LUMI()
	prevTotal, prevPer := 0.0, 1e18
	for _, it := range []int{1, 2, 8, 32, 128} {
		total := sys.GPU.GemmSeconds(xfer.TransferOnce, 8, 512, 512, 512, true, it)
		per := total / float64(it)
		if total < prevTotal {
			t.Fatalf("total time decreased at %d iterations", it)
		}
		if per > prevPer*1.0000001 {
			t.Fatalf("per-iteration Once cost increased at %d iterations: %g -> %g", it, prevPer, per)
		}
		prevTotal, prevPer = total, per
	}
}
