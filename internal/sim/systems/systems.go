// Package systems assembles the paper's three HPC systems (Table II) — and
// the variant configurations used in individual experiments — from the
// hardware descriptors and library profiles.
package systems

import (
	"errors"
	"fmt"

	"repro/internal/sim/cpumodel"
	"repro/internal/sim/efftab"
	"repro/internal/sim/gpumodel"
	"repro/internal/sim/hw"
	"repro/internal/sim/usm"
)

// ErrUnknownSystem is the sentinel wrapped by ByName for unrecognized
// system tokens, so callers can errors.Is the condition instead of
// string-matching (errcontract: errors crossing the package boundary stay
// classifiable).
var ErrUnknownSystem = errors.New("systems: unknown system")

// System is one benchmark target: a CPU socket with its BLAS library and a
// GPU with its BLAS library, joined by an interconnect.
type System struct {
	Name string
	CPU  cpumodel.Model
	GPU  gpumodel.Model
}

// WithEffTables returns a copy of the system with both models switched to
// blackbox mode: CPU and GPU efficiencies come from the given measured
// tables instead of the analytic roofline ramps. A nil set (or nil table
// inside it) leaves the corresponding side on the roofline, matching the
// models' per-(kernel, precision) fallback. The receiver is a value, so
// presets returned by DAWN(), LUMI() etc. are never mutated.
func (s System) WithEffTables(set *efftab.Set) System {
	if set == nil {
		return s
	}
	s.CPU.Eff = set.CPU
	s.GPU.Eff = set.GPU
	return s
}

// DAWN: 2x Xeon 8468 + 4x Intel Max 1550, one socket (48 threads) and one
// GPU tile targeted (explicit scaling), oneMKL on both sides.
func DAWN() System {
	return System{
		Name: "DAWN",
		CPU: cpumodel.Model{
			CPU:     hw.XeonPlatinum8468,
			Lib:     cpumodel.OneMKL,
			Threads: 48,
		},
		GPU: gpumodel.Model{
			GPU:  hw.IntelMax1550Tile,
			Link: hw.PCIe5x16,
			Lib:  gpumodel.OneMKLGPU,
			USM:  usm.IntelUSM,
		},
	}
}

// DAWNImplicitScaling is the Fig-7 configuration: both PVC tiles viewed as
// one device.
func DAWNImplicitScaling() System {
	s := DAWN()
	s.Name = "DAWN (implicit scaling)"
	s.GPU.ImplicitScaling = true
	return s
}

// LUMI: EPYC 7A53 (56 usable cores, BLIS_NUM_THREADS=56) + one MI250X GCD,
// AOCL on the CPU and rocBLAS on the GPU, HSA_XNACK=1.
func LUMI() System {
	return System{
		Name: "LUMI",
		CPU: cpumodel.Model{
			CPU:     hw.EpycTrento7A53,
			Lib:     cpumodel.AOCL,
			Threads: 56,
		},
		GPU: gpumodel.Model{
			GPU:  hw.MI250XGCD,
			Link: hw.InfinityFabricCPU2GPU,
			Lib:  gpumodel.RocBLAS,
			USM:  usm.AMDUSM,
		},
	}
}

// LUMIOpenBLAS swaps the CPU library for OpenBLAS 0.3.24 with
// OMP_NUM_THREADS=56 (Fig 6, §IV-B).
func LUMIOpenBLAS() System {
	s := LUMI()
	s.Name = "LUMI (OpenBLAS)"
	s.CPU.Lib = cpumodel.OpenBLAS
	return s
}

// LUMINoXnack is LUMI without HSA_XNACK=1: USM page migration disabled,
// device accesses stream across the interconnect (§IV, up to 40x penalty).
func LUMINoXnack() System {
	s := LUMI()
	s.Name = "LUMI (HSA_XNACK=0)"
	s.GPU.USM = usm.AMDUSMNoXnack
	return s
}

// IsambardAI: one GH200 superchip — Grace (72 threads, NVPL) + H100
// (cuBLAS) over NVLink-C2C.
func IsambardAI() System {
	return System{
		Name: "Isambard-AI",
		CPU: cpumodel.Model{
			CPU:     hw.GraceCPU,
			Lib:     cpumodel.NVPL,
			Threads: 72,
		},
		GPU: gpumodel.Model{
			GPU:  hw.GH200H100,
			Link: hw.NVLinkC2C,
			Lib:  gpumodel.CuBLAS,
			USM:  usm.NVIDIAUSM,
		},
	}
}

// IsambardAIArmPL swaps the CPU library for ArmPL 24.04 (Fig 3).
func IsambardAIArmPL() System {
	s := IsambardAI()
	s.Name = "Isambard-AI (ArmPL)"
	s.CPU.Lib = cpumodel.ArmPL
	return s
}

// IsambardAINVPL1T pins NVPL to a single thread (Fig 3).
func IsambardAINVPL1T() System {
	s := IsambardAI()
	s.Name = "Isambard-AI (NVPL 1 thread)"
	s.CPU.Lib = cpumodel.NVPLSingleThread
	s.CPU.Threads = 1
	return s
}

// ByName resolves a system preset from a CLI token.
func ByName(name string) (System, error) {
	switch name {
	case "dawn", "DAWN":
		return DAWN(), nil
	case "lumi", "LUMI":
		return LUMI(), nil
	case "isambard-ai", "isambard", "Isambard-AI":
		return IsambardAI(), nil
	case "dawn-implicit":
		return DAWNImplicitScaling(), nil
	case "lumi-openblas":
		return LUMIOpenBLAS(), nil
	case "lumi-noxnack":
		return LUMINoXnack(), nil
	case "isambard-armpl":
		return IsambardAIArmPL(), nil
	case "isambard-nvpl1t":
		return IsambardAINVPL1T(), nil
	}
	return System{}, fmt.Errorf("%w: %q (try dawn, lumi, isambard-ai)", ErrUnknownSystem, name)
}

// Names lists the CLI tokens accepted by ByName.
func Names() []string {
	return []string{
		"dawn", "lumi", "isambard-ai",
		"dawn-implicit", "lumi-openblas", "lumi-noxnack",
		"isambard-armpl", "isambard-nvpl1t",
	}
}

// All returns the three primary systems in the paper's presentation order.
func All() []System {
	return []System{DAWN(), LUMI(), IsambardAI()}
}
