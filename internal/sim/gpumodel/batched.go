package gpumodel

import (
	"math"

	"repro/internal/flops"
	"repro/internal/sim/xfer"
)

// GemmBatchedSeconds models i iterations of a batched GEMM under the given
// transfer strategy: batch independent m x n x k problems in one kernel
// (cublasGemmBatched and friends, §V future work). One launch covers the
// whole batch and the occupancy ramp sees batch*m*n output elements, which
// is why batching moves the offload threshold of small problems sharply
// down (§V: "batched kernels can greatly improve GEMM performance for small
// problem sizes if many can be computed concurrently").
func (g *Model) GemmBatchedSeconds(s xfer.Strategy, elemSize, m, n, k, batch int, beta0 bool, iters int) float64 {
	if iters < 1 || batch < 1 || m <= 0 || n <= 0 {
		return 0
	}
	beta := flops.Beta{IsZero: beta0}
	flTotal := flops.Gemm(m, n, k, beta) * int64(batch)
	devBytes := flops.GemmBytes(m, n, k, elemSize, beta) * int64(batch)
	outElems := float64(m) * float64(n) * float64(batch)
	gf := g.achievedGF(elemSize, m, n, k, outElems)
	if g.Lib.GemmQuirk != nil {
		gf = math.Max(g.Lib.GemmQuirk(elemSize, m, n, k, gf), 1e-6)
	}
	computeUS := g.kernelUS(elemSize, flTotal, devBytes, gf) * float64(iters)
	toDev, fromDev := xfer.GemmBytes(elemSize, m, n, k)
	toDev *= int64(batch)
	fromDev *= int64(batch)
	var moveUS float64
	if s == xfer.Unified {
		moveUS = g.USM.MoveSeconds(g.Link, toDev, fromDev, iters) * 1e6
	} else {
		moveUS = g.transferUS(s, toDev, fromDev, iters)
	}
	return (computeUS + moveUS) * 1e-6
}
