package gpumodel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/hw"
	"repro/internal/sim/usm"
	"repro/internal/sim/xfer"
)

func gh200() Model {
	return Model{GPU: hw.GH200H100, Link: hw.NVLinkC2C, Lib: CuBLAS, USM: usm.NVIDIAUSM}
}

func mi250x() Model {
	return Model{GPU: hw.MI250XGCD, Link: hw.InfinityFabricCPU2GPU, Lib: RocBLAS, USM: usm.AMDUSM}
}

func pvc() Model {
	return Model{GPU: hw.IntelMax1550Tile, Link: hw.PCIe5x16, Lib: OneMKLGPU, USM: usm.IntelUSM}
}

func TestGemmTimesPositive(t *testing.T) {
	for _, g := range []Model{gh200(), mi250x(), pvc()} {
		for _, st := range xfer.Strategies {
			s := g.GemmSeconds(st, 4, 256, 256, 256, true, 4)
			if s <= 0 {
				t.Fatalf("%s %v: non-positive time", g.GPU.Name, st)
			}
		}
	}
}

// Transfer-Always must cost at least as much as Transfer-Once, with the
// gap growing with the iteration count (§III-B2).
func TestAlwaysCostsMoreThanOnce(t *testing.T) {
	g := pvc()
	for _, iters := range []int{1, 8, 128} {
		once := g.GemmSeconds(xfer.TransferOnce, 8, 1024, 1024, 1024, true, iters)
		always := g.GemmSeconds(xfer.TransferAlways, 8, 1024, 1024, 1024, true, iters)
		if always < once {
			t.Fatalf("iters=%d: always (%g) < once (%g)", iters, always, once)
		}
		if iters == 1 && always != once { //blobvet:allow floatcompare -- at one iteration Once and Always are the same model expression
			t.Fatalf("at 1 iteration Always must equal Once: %g vs %g", always, once)
		}
	}
}

// Occupancy ramp: achieved GFLOP/s (compute only, Transfer-Once, many
// iterations) must grow with problem size.
func TestOccupancyRamp(t *testing.T) {
	g := mi250x()
	prev := 0.0
	for _, n := range []int{64, 256, 1024, 4096} {
		gf := g.GemmGFLOPS(xfer.TransferOnce, 4, n, n, n, true, 128)
		if gf <= prev {
			t.Fatalf("GFLOPS not increasing at n=%d: %g <= %g", n, gf, prev)
		}
		prev = gf
	}
	// And stays below the vector peak.
	if prev >= g.GPU.FP32GFLOPS {
		t.Fatalf("achieved %g exceeds peak %g", prev, g.GPU.FP32GFLOPS)
	}
}

// Split-K (cuBLAS, oneMKL GPU): deep-K thin problems run much faster than
// the plain m*n occupancy would allow.
func TestSplitK(t *testing.T) {
	with := gh200()
	without := gh200()
	without.Lib.SplitKGrain = 0
	a := with.GemmSeconds(xfer.TransferOnce, 4, 32, 32, 4096, true, 8)
	b := without.GemmSeconds(xfer.TransferOnce, 4, 32, 32, 4096, true, 8)
	if a >= b {
		t.Fatalf("split-K did not help: %g vs %g", a, b)
	}
	// Square problems with k == n barely change.
	a = with.GemmSeconds(xfer.TransferOnce, 4, 256, 256, 256, true, 8)
	b = without.GemmSeconds(xfer.TransferOnce, 4, 256, 256, 256, true, 8)
	if a > b {
		t.Fatalf("split-K must never hurt: %g vs %g", a, b)
	}
}

// The rocBLAS quirks of §IV-C.
func TestRocBLASQuirks(t *testing.T) {
	g := mi250x()
	// SGEMM jump at {32,32,2560}.
	before := g.GemmGFLOPS(xfer.TransferOnce, 4, 32, 32, 2559, true, 128)
	after := g.GemmGFLOPS(xfer.TransferOnce, 4, 32, 32, 2560, true, 128)
	if after <= before*2 {
		t.Fatalf("no SGEMM jump at k=2560: %g -> %g", before, after)
	}
	// DGEMM flat-line: rate capped regardless of k.
	g1 := g.GemmGFLOPS(xfer.TransferOnce, 8, 32, 32, 1024, true, 128)
	g2 := g.GemmGFLOPS(xfer.TransferOnce, 8, 32, 32, 4096, true, 128)
	if g1 > 46 || g2 > 46 {
		t.Fatalf("DGEMM 32x32 not flat-lined: %g, %g", g1, g2)
	}
}

// The cuBLAS small-kernel floor behind Isambard-AI's constant {26,26,26}.
func TestCuBLASSmallKernelFloor(t *testing.T) {
	g := gh200()
	// Launch latency dominates at these sizes, so compare per-FLOP rates
	// rather than absolute throughput jumps.
	below := g.GemmGFLOPS(xfer.TransferOnce, 4, 25, 25, 25, true, 128)
	at := g.GemmGFLOPS(xfer.TransferOnce, 4, 26, 26, 26, true, 128)
	if at <= below*1.5 {
		t.Fatalf("no kernel switch at 26: %g -> %g", below, at)
	}
	// The raw quirk itself is a hard floor.
	if got := cuBLASSmallKernelFloor(4, 25, 25, 25, 100); got != 4 { //blobvet:allow floatcompare -- the floor multiplier is a configured constant, returned verbatim
		t.Fatalf("floor multiplier = %g, want 4", got)
	}
	if got := cuBLASSmallKernelFloor(4, 26, 26, 26, 100); got != 100 { //blobvet:allow floatcompare -- above the quirk cutoff the input GFLOPS passes through untouched
		t.Fatalf("no floor expected at 26, got %g", got)
	}
}

// Implicit scaling (Fig 7): lower and less consistent than explicit
// despite twice the raw compute.
func TestImplicitScaling(t *testing.T) {
	exp := pvc()
	imp := pvc()
	imp.ImplicitScaling = true
	worse := 0
	for n := 512; n <= 4096; n += 512 {
		e := exp.GemmGFLOPS(xfer.TransferOnce, 4, n, n, n, true, 32)
		i := imp.GemmGFLOPS(xfer.TransferOnce, 4, n, n, n, true, 32)
		if i < e {
			worse++
		}
	}
	if worse < 7 {
		t.Fatalf("implicit scaling should underperform explicit at nearly all sizes, was worse at %d/8", worse)
	}
}

// GEMV on the GPU is weak at small row counts (row-based occupancy) and
// approaches the HBM roofline at large ones.
func TestGemvRowOccupancy(t *testing.T) {
	g := gh200()
	small := g.GemvGFLOPS(xfer.TransferOnce, 4, 128, 128, true, 128)
	large := g.GemvGFLOPS(xfer.TransferOnce, 4, 4096, 4096, true, 128)
	if large <= small {
		t.Fatalf("GEMV rate should grow with rows: %g vs %g", small, large)
	}
}

// USM on Intel tracks Transfer-Once closely; on AMD it lags persistently
// (§IV-A).
func TestUSMVendorBehaviour(t *testing.T) {
	intel := pvc()
	onceI := intel.GemmSeconds(xfer.TransferOnce, 4, 1024, 1024, 1024, true, 32)
	usmI := intel.GemmSeconds(xfer.Unified, 4, 1024, 1024, 1024, true, 32)
	if usmI > onceI*1.25 {
		t.Fatalf("Intel USM should track Once: %g vs %g", usmI, onceI)
	}
	amd := mi250x()
	onceA := amd.GemmSeconds(xfer.TransferOnce, 4, 1024, 1024, 1024, true, 32)
	usmA := amd.GemmSeconds(xfer.Unified, 4, 1024, 1024, 1024, true, 32)
	if usmA < onceA*1.3 {
		t.Fatalf("AMD USM should lag Once clearly: %g vs %g", usmA, onceA)
	}
}

func TestZeroIterations(t *testing.T) {
	g := gh200()
	if g.GemmSeconds(xfer.TransferOnce, 4, 10, 10, 10, true, 0) != 0 {
		t.Fatal("0 iterations should cost 0")
	}
	if g.GemvSeconds(xfer.TransferOnce, 4, 0, 10, true, 1) != 0 {
		t.Fatal("m=0 should cost 0")
	}
}

func TestGemmTimeFiniteProperty(t *testing.T) {
	g := mi250x()
	f := func(a, b, c uint8, s uint8) bool {
		st := xfer.Strategy(int(s) % 3)
		sec := g.GemmSeconds(st, 8, int(a)+1, int(b)+1, int(c)+1, false, 8)
		return sec > 0 && sec < 1e6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
