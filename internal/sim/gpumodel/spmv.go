package gpumodel

import (
	"math"

	"repro/internal/sim/xfer"
)

// SpmvSeconds models i iterations of a CSR SpMV under the given transfer
// strategy. The device kernel is bandwidth-bound with an irregularity
// derating for the gathered x accesses (GPUs tolerate irregular gathers
// worse than CPUs at equal occupancy: the factor applies on top of the
// row-parallelism ramp). Transfers move the CSR arrays and the vectors.
func (g *Model) SpmvSeconds(s xfer.Strategy, storageBytes int64, rows int, irregularity float64, iters int) float64 {
	if iters < 1 || rows <= 0 || storageBytes <= 0 {
		return 0
	}
	if irregularity <= 0 || irregularity > 1 {
		irregularity = 1
	}
	// Below a quarter of the row-parallelism ramp, delivered bandwidth
	// scales with occupancy; beyond it the HBM roofline binds.
	occ := float64(rows) / (float64(rows) + g.GPU.GemvRampRows)
	bw := g.GPU.HBMGBs * irregularity * math.Min(occ/0.25, 1)
	devBytes := storageBytes + int64(rows)*16
	kernelUS := g.GPU.LaunchLatencyUS + g.Lib.SyncPerIterUS + float64(devBytes)/(bw*1e3)
	toDev := storageBytes + int64(rows)*8 // matrix + x
	fromDev := int64(rows) * 8            // y
	var moveUS float64
	if s == xfer.Unified {
		moveUS = g.USM.MoveSeconds(g.Link, toDev, fromDev, iters) * 1e6
	} else {
		moveUS = g.transferUS(s, toDev, fromDev, iters)
	}
	return (kernelUS*float64(iters) + moveUS) * 1e-6
}
