// Package gpumodel provides the calibrated GPU-side timing model: a
// roofline (vector peak vs HBM bandwidth) with an occupancy ramp, per-kernel
// launch latency, and the three data transfer strategies of §III-B2
// composed from the xfer and usm models.
//
// Occupancy ramp: a GPU needs enough independent output tiles in flight to
// hide latency; small problems leave most of the device idle. Efficiency is
// modeled as p / (p + R) where p is the number of output elements (m*n) and
// R the device's OccupancyRampElems. This single knob produces the paper's
// observation that small problems run far below GPU peak and that the
// crossover against the CPU happens where the ramp meets the CPU's achieved
// rate.
//
// Library quirks reproduce the rocBLAS artifacts of §IV-C: the SGEMM
// Transfer-Once performance jump at {32,32,2560}, and the DGEMM flat-line
// at a low GFLOP/s for the same problem type.
package gpumodel

import (
	"math"

	"repro/internal/faultinject"
	"repro/internal/flops"
	"repro/internal/sim/efftab"
	"repro/internal/sim/hw"
	"repro/internal/sim/usm"
	"repro/internal/sim/xfer"
)

// Quirk adjusts the modeled achieved GFLOP/s for one device kernel.
type Quirk func(elemSize, m, n, k int, gflops float64) float64

// Profile describes one GPU BLAS library's behaviour.
type Profile struct {
	Name string
	// MaxEff is the asymptotic fraction of vector peak reached.
	MaxEff float64
	// GemmQuirk and GemvQuirk inject documented artifacts; nil means none.
	GemmQuirk Quirk
	GemvQuirk Quirk
	// SyncPerIterUS is per-iteration stream synchronisation overhead on top
	// of the raw kernel launch.
	SyncPerIterUS float64
	// SplitKGrain, when non-zero, models split-K GEMM kernels: a deep-K
	// problem is split into k/grain partial products computed in parallel,
	// multiplying the available output parallelism. This is what keeps thin
	// M=N, K>>M problems GPU-friendly (Table V) despite tiny m*n.
	SplitKGrain float64
}

// Model is a GPU device + link + library + USM heuristics, optionally in
// the Fig-7 implicit-scaling mode.
type Model struct {
	GPU  hw.GPUSpec
	Link hw.LinkSpec
	Lib  Profile
	USM  usm.Profile
	// ImplicitScaling views both tiles of a two-tile device as one (Fig 7):
	// twice the raw compute, but cross-tile traffic wrecks efficiency and
	// makes it inconsistent.
	ImplicitScaling bool
	// Inject, when non-nil, is consulted by TimeGemm/TimeGemv before each
	// modeled call: once for the device kernel (Backend "gpu") and once
	// for its data movement (Backend "xfer" for explicit strategies,
	// "usm" for Unified). Nil — the normal configuration — adds a single
	// nil check and nothing else.
	Inject faultinject.Point
	// Eff, when non-nil, switches the model to blackbox mode: the
	// occupancy ramp is interpolated from the table (for a GPU this is the
	// synthetic table sampled from a reference device's analytic ramp —
	// there is no GPU to measure on) and library quirks and split-K
	// adjustments are skipped. Launch latency, sync overhead, the HBM
	// roofline, transfers and USM heuristics stay analytic. A missing
	// (kernel, precision) falls back to the roofline.
	Eff *efftab.Table
}

// achievedGemvGF returns the modeled GEMV compute rate for m rows of
// parallelism.
func (g *Model) achievedGemvGF(elemSize int, rows float64) float64 {
	peak := g.GPU.Peak(elemSize)
	eff := g.Lib.MaxEff * rows / (rows + g.GPU.GemvRampRows)
	gf := peak * eff
	if g.ImplicitScaling {
		gf *= 2 * 0.38
	}
	return math.Max(gf, 1e-6)
}

// achievedGF returns the modeled compute rate for one kernel of the given
// output parallelism and FLOP volume.
func (g *Model) achievedGF(elemSize int, m, n, k int, outElems float64) float64 {
	peak := g.GPU.Peak(elemSize)
	if g.Lib.SplitKGrain > 0 && float64(k) > g.Lib.SplitKGrain {
		outElems *= float64(k) / g.Lib.SplitKGrain
	}
	eff := g.Lib.MaxEff * outElems / (outElems + g.GPU.OccupancyRampElems)
	gf := peak * eff
	if g.ImplicitScaling {
		// Twice the tiles, but cross-tile communication more than halves
		// delivered efficiency and adds a size-dependent wobble (Fig 7's
		// "much lower and less-consistent performance").
		wobble := 0.85 + 0.15*math.Sin(float64(m)*0.37+float64(n)*0.11)
		gf *= 2 * 0.38 * wobble
	}
	return math.Max(gf, 1e-6)
}

// blackboxGF interpolates the blackbox compute rate for one device
// kernel: device peak times library asymptote times the table's relative
// efficiency for the call's shape class and size. Split-K and quirks are
// skipped — the table curve stands in for the whole kernel-selection
// story. Reports !ok when Eff is nil or lacks the (kernel, precision).
func (g *Model) blackboxGF(kernel string, elemSize int, class string, size float64) (float64, bool) {
	if g.Eff == nil {
		return 0, false
	}
	eff, ok := g.Eff.Eff(kernel, efftab.PrecisionToken(elemSize), class, size)
	if !ok {
		return 0, false
	}
	gf := g.GPU.Peak(elemSize) * g.Lib.MaxEff * eff
	if g.ImplicitScaling {
		// Same two-tiles-at-reduced-efficiency factor as the analytic path,
		// minus the wobble: the table has no concept of cross-tile phase.
		gf *= 2 * 0.38
	}
	return math.Max(gf, 1e-6), true
}

// RampEff exposes the analytic occupancy ramp as an efftab.ModelEffFunc
// over (kernel, class, characteristic size): the relative-efficiency
// factor that Lib.MaxEff multiplies, evaluated at the class's canonical
// (real-valued) shape. blob-calibrate samples it to synthesize the GPU
// table and replays it in the fidelity gate, so synthesis and check
// share one definition. Precision does not enter: the ramp is a pure
// parallelism story.
func RampEff(spec hw.GPUSpec) efftab.ModelEffFunc {
	return func(kernel, _, class string, size float64) (float64, bool) {
		if size <= 0 {
			return 0, false
		}
		switch kernel {
		case "gemm":
			m, n, _ := efftab.ShapeGemmF(class, size)
			out := m * n
			return out / (out + spec.OccupancyRampElems), true
		case "gemv":
			rows, _ := efftab.ShapeGemvF(class, size)
			return rows / (rows + spec.GemvRampRows), true
		}
		return 0, false
	}
}

// kernelUS returns the on-device time of one kernel invocation (launch +
// max(compute, memory)).
func (g *Model) kernelUS(elemSize int, fl int64, devBytes int64, gf float64) float64 {
	computeUS := float64(fl) / gf / 1e3
	memUS := float64(devBytes) / (g.GPU.HBMGBs * 1e3)
	return g.GPU.LaunchLatencyUS + g.Lib.SyncPerIterUS + math.Max(computeUS, memUS)
}

// transferUS returns the explicit-copy time for the strategy over iters
// iterations (0 for USM, which is accounted separately).
func (g *Model) transferUS(s xfer.Strategy, toDev, fromDev int64, iters int) float64 {
	rounds := xfer.Rounds(s, iters)
	if rounds == 0 {
		return 0
	}
	per := g.Link.TransferTimeUS(toDev) + g.Link.TransferTimeUS(fromDev)
	return per * float64(rounds)
}

// GemmSeconds models i iterations of one GEMM under the given strategy.
func (g *Model) GemmSeconds(s xfer.Strategy, elemSize, m, n, k int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 {
		return 0
	}
	beta := flops.Beta{IsZero: beta0}
	fl := flops.Gemm(m, n, k, beta)
	devBytes := flops.GemmBytes(m, n, k, elemSize, beta)
	gf, blackbox := g.blackboxGF("gemm", elemSize, efftab.ClassifyGemm(m, n, k), efftab.GemmSize(m, n, k))
	if !blackbox {
		gf = g.achievedGF(elemSize, m, n, k, float64(m)*float64(n))
		if g.Lib.GemmQuirk != nil {
			gf = math.Max(g.Lib.GemmQuirk(elemSize, m, n, k, gf), 1e-6)
		}
	}
	computeUS := g.kernelUS(elemSize, fl, devBytes, gf) * float64(iters)
	toDev, fromDev := xfer.GemmBytes(elemSize, m, n, k)
	var moveUS float64
	if s == xfer.Unified {
		moveUS = g.USM.MoveSeconds(g.Link, toDev, fromDev, iters) * 1e6
	} else {
		moveUS = g.transferUS(s, toDev, fromDev, iters)
	}
	return (computeUS + moveUS) * 1e-6
}

// GemvSeconds models i iterations of one GEMV under the given strategy.
func (g *Model) GemvSeconds(s xfer.Strategy, elemSize, m, n int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 {
		return 0
	}
	beta := flops.Beta{IsZero: beta0}
	fl := flops.Gemv(m, n, beta)
	devBytes := flops.GemvBytes(m, n, elemSize, beta)
	// GEMV parallelism is one output element per row; devices ramp on rows
	// via the dedicated GemvRampRows constant.
	gf, blackbox := g.blackboxGF("gemv", elemSize, efftab.ClassifyGemv(m, n), efftab.GemvSize(m, n))
	if !blackbox {
		gf = g.achievedGemvGF(elemSize, float64(m))
		if g.Lib.GemvQuirk != nil {
			gf = math.Max(g.Lib.GemvQuirk(elemSize, m, n, 0, gf), 1e-6)
		}
	}
	computeUS := g.kernelUS(elemSize, fl, devBytes, gf) * float64(iters)
	toDev, fromDev := xfer.GemvBytes(elemSize, m, n)
	var moveUS float64
	if s == xfer.Unified {
		moveUS = g.USM.MoveSeconds(g.Link, toDev, fromDev, iters) * 1e6
	} else {
		moveUS = g.transferUS(s, toDev, fromDev, iters)
	}
	return (computeUS + moveUS) * 1e-6
}

// TimeGemm is GemmSeconds behind the fault-injection point: the device
// kernel site (Backend "gpu", Kernel "gemm", Dim max(m,n,k)) is consulted
// first, then the movement site for the strategy ("xfer" for explicit
// copies, "usm" for Unified). The first fault error wins; latency faults
// from both sites accumulate onto the modeled time. Callers that can
// fail — internal/core's resilient sweep loop — use this; the plain
// GemmSeconds signature stays for calibration code that never injects.
func (g *Model) TimeGemm(s xfer.Strategy, elemSize, m, n, k int, beta0 bool, iters int) (float64, error) {
	extra, err := g.consult(s, "gemm", maxDim3(m, n, k))
	if err != nil {
		return 0, err
	}
	return g.GemmSeconds(s, elemSize, m, n, k, beta0, iters) + extra, nil
}

// TimeGemv is GemvSeconds behind the fault-injection point (Backend
// "gpu" then "xfer"/"usm", Kernel "gemv", Dim max(m,n)).
func (g *Model) TimeGemv(s xfer.Strategy, elemSize, m, n int, beta0 bool, iters int) (float64, error) {
	extra, err := g.consult(s, "gemv", maxDim3(m, n, 0))
	if err != nil {
		return 0, err
	}
	return g.GemvSeconds(s, elemSize, m, n, beta0, iters) + extra, nil
}

// consult asks the injection point about the device-kernel site and the
// strategy's movement site, accumulating injected latency.
func (g *Model) consult(s xfer.Strategy, kernel string, dim int) (float64, error) {
	if g.Inject == nil {
		return 0, nil
	}
	extra, err := g.Inject.At(faultinject.Site{
		Backend: faultinject.BackendGPU, Kernel: kernel, Dim: dim,
	})
	if err != nil {
		return 0, err
	}
	var moveExtra float64
	if s == xfer.Unified {
		moveExtra, err = usm.CheckFault(g.Inject, kernel, dim)
	} else {
		moveExtra, err = xfer.CheckFault(g.Inject, kernel, dim)
	}
	if err != nil {
		return 0, err
	}
	return extra + moveExtra, nil
}

// maxDim3 is the characteristic dimension a fault rule's size range keys
// on: the largest of the call's dimensions.
func maxDim3(m, n, k int) int {
	d := m
	if n > d {
		d = n
	}
	if k > d {
		d = k
	}
	return d
}

// GemmGFLOPS returns modeled GFLOP/s including transfer time, the quantity
// GPU-BLOB reports (§III-A: "GPU time measurements also include the time
// taken to move data to and from the GPU").
func (g *Model) GemmGFLOPS(s xfer.Strategy, elemSize, m, n, k int, beta0 bool, iters int) float64 {
	sec := g.GemmSeconds(s, elemSize, m, n, k, beta0, iters)
	return flops.GFLOPS(int64(iters)*flops.Gemm(m, n, k, flops.Beta{IsZero: beta0}), sec)
}

// GemvGFLOPS returns modeled GFLOP/s including transfer time.
func (g *Model) GemvGFLOPS(s xfer.Strategy, elemSize, m, n int, beta0 bool, iters int) float64 {
	sec := g.GemvSeconds(s, elemSize, m, n, beta0, iters)
	return flops.GFLOPS(int64(iters)*flops.Gemv(m, n, flops.Beta{IsZero: beta0}), sec)
}

// --- Library profiles -------------------------------------------------------

// rocBLASGemmQuirks reproduces §IV-C on LUMI: for the M=N=32 problem type,
// SGEMM shows "a large Transfer-Once GPU performance jump at {32,32,2560}"
// while DGEMM "flat-lines at a low GFLOP/s value very early on".
func rocBLASGemmQuirks(elemSize, m, n, k int, gf float64) float64 {
	if elemSize == 8 {
		// rocBLAS DGEMM delivers a lower fraction of the GCD's vector peak
		// than SGEMM does.
		gf *= 0.8
		if m == 32 && n == 32 {
			// DGEMM flat-line for the M=N=32 problem type (§IV-C): cap at a
			// low absolute rate.
			return math.Min(gf, 45)
		}
		return gf
	}
	if m == 32 && n == 32 && k >= 2560 {
		// The SGEMM Transfer-Once performance jump at {32,32,2560} (§IV-C):
		// rocBLAS switches to a split-K kernel for this shape.
		return gf * 15.0
	}
	return gf
}

// cuBLASSmallKernelFloor reproduces the GH200's remarkably constant
// {26,26,26} offload threshold (Table III): below a dimension of ~26 cuBLAS
// falls back to a non-tiled kernel whose throughput is a small fraction of
// the tiled path, so the CPU keeps those sizes regardless of iteration
// count.
func cuBLASSmallKernelFloor(_ int, m, n, k int, gf float64) float64 {
	if geomMean3(m, n, k) < 26 {
		return gf * 0.04
	}
	return gf
}

func geomMean3(m, n, k int) float64 {
	if k <= 0 {
		k = 1
	}
	if m <= 0 || n <= 0 {
		return 0
	}
	return math.Cbrt(float64(m) * float64(n) * float64(k))
}

// CuBLAS is cuBLAS 24.5 on the GH200.
var CuBLAS = Profile{
	Name:          "cuBLAS 24.5",
	MaxEff:        0.82,
	SyncPerIterUS: 1.0,
	SplitKGrain:   512,
	GemmQuirk:     cuBLASSmallKernelFloor,
}

// rocBLASGemvF64 models rocBLAS's weaker DGEMV kernels: the paper's LUMI
// DGEMV thresholds sit well above the SGEMV ones (Table IV), which requires
// the double-precision GEMV path to deliver a lower fraction of peak.
func rocBLASGemvF64(elemSize, _, _, _ int, gf float64) float64 {
	if elemSize == 8 {
		return gf * 0.30
	}
	return gf
}

// RocBLAS is rocBLAS 5.2.3 on one MI250X GCD.
var RocBLAS = Profile{
	Name:          "rocBLAS 5.2.3",
	MaxEff:        0.75,
	SyncPerIterUS: 2.0,
	GemmQuirk:     rocBLASGemmQuirks,
	GemvQuirk:     rocBLASGemvF64,
}

// OneMKLGPU is oneMKL 2024.1 on one PVC tile.
var OneMKLGPU = Profile{
	Name:          "oneMKL 2024.1 (GPU)",
	MaxEff:        0.78,
	SyncPerIterUS: 2.0,
	SplitKGrain:   512,
}
