package gpumodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/sim/xfer"
)

// TestTimeGemmNoInjector: with Inject nil, the Time* wrappers are exactly
// the *Seconds models with a nil error.
func TestTimeGemmNoInjector(t *testing.T) {
	g := gh200()
	got, err := g.TimeGemm(xfer.TransferOnce, 4, 256, 256, 256, true, 4)
	if err != nil {
		t.Fatalf("TimeGemm: %v", err)
	}
	if want := g.GemmSeconds(xfer.TransferOnce, 4, 256, 256, 256, true, 4); math.Abs(got-want) > 0 {
		t.Fatalf("TimeGemm %g != GemmSeconds %g", got, want)
	}
	got, err = g.TimeGemv(xfer.Unified, 4, 256, 256, true, 4)
	if err != nil {
		t.Fatalf("TimeGemv: %v", err)
	}
	if want := g.GemvSeconds(xfer.Unified, 4, 256, 256, true, 4); math.Abs(got-want) > 0 {
		t.Fatalf("TimeGemv %g != GemvSeconds %g", got, want)
	}
}

// TestTimeGemmDeviceFault: a gpu-backend rule fires for every strategy.
func TestTimeGemmDeviceFault(t *testing.T) {
	g := mi250x()
	g.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendGPU, Probability: 1, Kind: faultinject.Transient},
	}}).Arm()
	for _, st := range xfer.Strategies {
		_, err := g.TimeGemm(st, 4, 512, 512, 512, true, 4)
		var fe *faultinject.Error
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Fatalf("%v: got %v, want transient *faultinject.Error", st, err)
		}
	}
}

// TestTimeGemmMovementSites: explicit strategies consult the "xfer"
// backend, Unified consults "usm" — so a plan can break the interconnect
// without breaking the device, and vice versa.
func TestTimeGemmMovementSites(t *testing.T) {
	g := pvc()
	g.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendXfer, Probability: 1, Kind: faultinject.Hard},
	}}).Arm()
	if _, err := g.TimeGemm(xfer.TransferOnce, 4, 512, 512, 512, true, 4); err == nil {
		t.Fatal("xfer rule did not break an explicit-copy run")
	}
	if _, err := g.TimeGemm(xfer.Unified, 4, 512, 512, 512, true, 4); err != nil {
		t.Fatalf("xfer rule broke a USM run: %v", err)
	}

	g.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendUSM, Probability: 1, Kind: faultinject.Hard},
	}}).Arm()
	if _, err := g.TimeGemv(xfer.Unified, 4, 512, 512, true, 4); err == nil {
		t.Fatal("usm rule did not break a USM run")
	}
	if _, err := g.TimeGemv(xfer.TransferAlways, 4, 512, 512, true, 4); err != nil {
		t.Fatalf("usm rule broke an explicit-copy run: %v", err)
	}
}

// TestTimeGemmLatencyAccumulates: latency faults on the device and the
// movement path both land on the modeled time.
func TestTimeGemmLatencyAccumulates(t *testing.T) {
	g := gh200()
	g.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendGPU, Probability: 1, Kind: faultinject.Latency, LatencySeconds: 0.25},
		{Backend: faultinject.BackendXfer, Probability: 1, Kind: faultinject.Latency, LatencySeconds: 0.5},
	}}).Arm()
	base := g.GemmSeconds(xfer.TransferOnce, 4, 256, 256, 256, true, 1)
	got, err := g.TimeGemm(xfer.TransferOnce, 4, 256, 256, 256, true, 1)
	if err != nil {
		t.Fatalf("latency rules errored: %v", err)
	}
	if math.Abs(got-(base+0.75)) > 1e-12 {
		t.Fatalf("latency faults not accumulated: got %g, want %g", got, base+0.75)
	}
}
