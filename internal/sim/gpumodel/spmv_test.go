package gpumodel

import (
	"testing"

	"repro/internal/sim/xfer"
)

func TestGPUSpmvBasics(t *testing.T) {
	g := gh200()
	if g.SpmvSeconds(xfer.TransferOnce, 1<<20, 1000, 0.5, 0) != 0 {
		t.Fatal("0 iterations")
	}
	one := g.SpmvSeconds(xfer.TransferOnce, 1<<20, 1000, 0.5, 1)
	if one <= 0 {
		t.Fatal("non-positive time")
	}
	// Transfer-Always dominates Once for multiple iterations.
	onceTime := g.SpmvSeconds(xfer.TransferOnce, 64<<20, 100000, 0.5, 16)
	alwaysTime := g.SpmvSeconds(xfer.TransferAlways, 64<<20, 100000, 0.5, 16)
	if alwaysTime <= onceTime {
		t.Fatalf("Always (%g) should exceed Once (%g)", alwaysTime, onceTime)
	}
	// Irregularity hurts.
	reg := g.SpmvSeconds(xfer.TransferOnce, 64<<20, 100000, 0.85, 16)
	irr := g.SpmvSeconds(xfer.TransferOnce, 64<<20, 100000, 0.35, 16)
	if irr <= reg {
		t.Fatal("irregular gathers should be slower on the GPU")
	}
	// Low row counts throttle delivered bandwidth (occupancy).
	fewRows := g.SpmvSeconds(xfer.TransferOnce, 8<<20, 500, 0.85, 16)
	manyRows := g.SpmvSeconds(xfer.TransferOnce, 8<<20, 500000, 0.85, 16)
	if fewRows <= manyRows {
		t.Fatalf("500 rows (%g) should be slower than 500k rows (%g) for equal bytes", fewRows, manyRows)
	}
}

func TestGPUSpmvUSM(t *testing.T) {
	g := mi250x()
	usmT := g.SpmvSeconds(xfer.Unified, 64<<20, 100000, 0.5, 8)
	onceT := g.SpmvSeconds(xfer.TransferOnce, 64<<20, 100000, 0.5, 8)
	if usmT <= onceT {
		t.Fatalf("AMD USM SpMV (%g) should lag Once (%g)", usmT, onceT)
	}
}
