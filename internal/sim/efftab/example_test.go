package efftab_test

import (
	"fmt"

	"repro/internal/sim/efftab"
)

// Example builds a small measured table and interpolates the relative
// efficiency for a concrete GEMM call, the way cpumodel does in
// blackbox mode.
func Example() {
	table := &efftab.Table{
		Schema: efftab.Schema,
		Source: "live-blas",
		Series: []efftab.Series{{
			Kernel:    "gemm",
			Precision: "f32",
			Class:     "square",
			Points: []efftab.Point{
				{Size: 64, GFlops: 1.2, Eff: 0.3},
				{Size: 256, GFlops: 2.8, Eff: 0.7},
				{Size: 1024, GFlops: 4.0, Eff: 1.0},
			},
		}},
	}
	if err := table.Validate(); err != nil {
		panic(err)
	}

	m, n, k := 128, 130, 125 // near-square call
	class := efftab.ClassifyGemm(m, n, k)
	size := efftab.GemmSize(m, n, k)
	eff, ok := table.Eff("gemm", "f32", class, size)
	fmt.Printf("class=%s eff=%.2f ok=%v\n", class, eff, ok)

	// A precision the table lacks reports !ok: the model falls back to
	// its analytic roofline.
	_, ok = table.Eff("gemm", "f64", class, size)
	fmt.Printf("f64 ok=%v\n", ok)
	// Output:
	// class=square eff=0.50 ok=true
	// f64 ok=false
}
