package efftab

import (
	"fmt"
	"math"
)

// Fidelity bands. The numbers are the documented contract of the
// blackbox mode (DESIGN.md §15, FIDELITY.md): the committed tables must
// reproduce their underlying curves at least this well, and
// blob-calibrate's fidelity subcommand — run as a verify.sh stage —
// fails the build when a regenerated or hand-edited table drifts
// outside them.
//
// Rationale: the leave-one-out check removes one measured grid point at
// a time and asks the interpolation scheme to predict it from its
// neighbours, so its band bounds how much real curve structure the grid
// spacing can hide (measured kernels ramp steeply around cache edges —
// the band is wide). The synthetic check compares the GPU table against
// the closed-form reference model it was sampled from at off-grid
// midpoints, so its band bounds pure interpolation error against a
// smooth curve — much tighter.
const (
	// MaxMeasuredRel bounds the worst per-point leave-one-out relative
	// error of a measured (live-blas) table.
	MaxMeasuredRel = 0.45
	// MaxMeasuredGeoMean bounds each measured series' geometric-mean
	// leave-one-out relative error.
	MaxMeasuredGeoMean = 0.18
	// MaxSyntheticRel bounds the worst midpoint error of a synthetic
	// table against its reference model.
	MaxSyntheticRel = 0.12
	// MaxSyntheticGeoMean bounds each synthetic series' geometric-mean
	// midpoint error.
	MaxSyntheticGeoMean = 0.06
)

// SeriesError summarizes modeled-vs-measured relative error over one
// series' checked points.
type SeriesError struct {
	Kernel    string  `json:"kernel"`
	Precision string  `json:"precision"`
	Class     string  `json:"class"`
	Checks    int     `json:"checks"`
	MaxRel    float64 `json:"max_rel"`
	GeoMean   float64 `json:"geomean_rel"`
	WorstSize float64 `json:"worst_size"`
}

// Key names the series for reports.
func (e SeriesError) Key() string {
	return fmt.Sprintf("%s/%s/%s", e.Kernel, e.Precision, e.Class)
}

// Within reports whether the series stays inside the given bands.
func (e SeriesError) Within(maxRel, maxGeoMean float64) bool {
	return e.MaxRel <= maxRel && e.GeoMean <= maxGeoMean
}

// fold accumulates one relative error into the summary.
type fold struct {
	n         int
	maxRel    float64
	worstSize float64
	logSum    float64
}

func (f *fold) add(size, rel float64) {
	f.n++
	if rel > f.maxRel {
		f.maxRel = rel
		f.worstSize = size
	}
	// Geometric mean over max(rel, 1e-6) so an exact point cannot zero
	// the product.
	f.logSum += math.Log(math.Max(rel, 1e-6))
}

func (f *fold) done(s Series) SeriesError {
	e := SeriesError{Kernel: s.Kernel, Precision: s.Precision, Class: s.Class,
		Checks: f.n, MaxRel: f.maxRel, WorstSize: f.worstSize}
	if f.n > 0 {
		e.GeoMean = math.Exp(f.logSum / float64(f.n))
	}
	return e
}

// LeaveOneOut measures how faithfully the table's grid captures its own
// curve: each interior grid point is removed in turn and re-predicted by
// interpolating between its neighbours, and the relative error
// |predicted-actual|/actual is folded per series. Series with fewer than
// three points have no interior and report zero checks — a single-point
// series is a flat curve by construction and cannot drift against
// itself.
func LeaveOneOut(t *Table) []SeriesError {
	out := make([]SeriesError, 0, len(t.Series))
	for _, s := range t.Series {
		var f fold
		for i := 1; i < len(s.Points)-1; i++ {
			a, p, b := s.Points[i-1], s.Points[i], s.Points[i+1]
			frac := (math.Log(p.Size) - math.Log(a.Size)) / (math.Log(b.Size) - math.Log(a.Size))
			pred := a.Eff + frac*(b.Eff-a.Eff)
			f.add(p.Size, math.Abs(pred-p.Eff)/p.Eff)
		}
		out = append(out, f.done(s))
	}
	return out
}

// ModelEffFunc returns a reference model's efficiency for a series'
// class at one characteristic size, or !ok when the model does not
// cover the tuple. CompareModel takes it as a callback so the efftab
// package never depends on the sim models that consume it.
type ModelEffFunc func(kernel, precision, class string, size float64) (float64, bool)

// CompareModel measures modeled-vs-table relative error at off-grid
// points: for every adjacent grid pair the log-midpoint size is
// evaluated through both the table's interpolation and the reference
// model, and the relative error against the model is folded per series.
// For a synthetic table this quantifies pure interpolation loss against
// the closed-form curve the table was sampled from.
func CompareModel(t *Table, model ModelEffFunc) []SeriesError {
	out := make([]SeriesError, 0, len(t.Series))
	for _, s := range t.Series {
		var f fold
		for i := 0; i+1 < len(s.Points); i++ {
			mid := math.Sqrt(s.Points[i].Size * s.Points[i+1].Size)
			want, ok := model(s.Kernel, s.Precision, s.Class, mid)
			if !ok || want <= 0 {
				continue
			}
			got, ok := t.Eff(s.Kernel, s.Precision, s.Class, mid)
			if !ok {
				continue
			}
			f.add(mid, math.Abs(got-want)/want)
		}
		out = append(out, f.done(s))
	}
	return out
}
