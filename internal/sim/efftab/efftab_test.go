package efftab

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testTable() *Table {
	return &Table{
		Schema: Schema,
		Source: "live-blas",
		Series: []Series{
			{Kernel: "gemm", Precision: "f32", Class: "square", Points: []Point{
				{Size: 32, GFlops: 1.0, Eff: 0.25},
				{Size: 128, GFlops: 2.0, Eff: 0.5},
				{Size: 512, GFlops: 4.0, Eff: 1.0},
			}},
			{Kernel: "gemm", Precision: "f32", Class: "tallm", Points: []Point{
				{Size: 64, GFlops: 1.5, Eff: 0.4},
				{Size: 256, GFlops: 3.0, Eff: 0.8},
			}},
			{Kernel: "gemv", Precision: "f64", Class: "square", Points: []Point{
				{Size: 1024, GFlops: 0.5, Eff: 0.9},
			}},
		},
	}
}

func TestValidateAcceptsGoodTable(t *testing.T) {
	if err := testTable().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Table)
		want string
	}{
		{"schema", func(tb *Table) { tb.Schema = "efftab/v0" }, "schema"},
		{"empty", func(tb *Table) { tb.Series = nil }, "no series"},
		{"kernel", func(tb *Table) { tb.Series[0].Kernel = "spmv" }, "unknown kernel"},
		{"precision", func(tb *Table) { tb.Series[0].Precision = "f16" }, "unknown precision"},
		{"class", func(tb *Table) { tb.Series[0].Class = "" }, "empty class"},
		{"dup", func(tb *Table) { tb.Series[1] = tb.Series[0] }, "duplicate"},
		{"nopoints", func(tb *Table) { tb.Series[0].Points = nil }, "no points"},
		{"order", func(tb *Table) { tb.Series[0].Points[1].Size = 32 }, "strictly increasing"},
		{"effzero", func(tb *Table) { tb.Series[0].Points[0].Eff = 0 }, "outside (0, 1]"},
		{"effhigh", func(tb *Table) { tb.Series[0].Points[0].Eff = 1.5 }, "outside (0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := testTable()
			tc.mut(tb)
			err := tb.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestEffSinglePointTable(t *testing.T) {
	tb := testTable()
	// The gemv/f64/square series has exactly one point: every size — below,
	// at, above — must return that point's efficiency.
	for _, size := range []float64{1, 1024, 1 << 20} {
		eff, ok := tb.Eff("gemv", "f64", "square", size)
		if !ok || eff != 0.9 { //blobvet:allow floatcompare -- single-point series: the stored eff is returned verbatim, no arithmetic
			t.Fatalf("Eff(gemv,f64,square,%g) = %g,%v, want 0.9,true", size, eff, ok)
		}
	}
}

func TestEffClampsOutsideGrid(t *testing.T) {
	tb := testTable()
	if eff, ok := tb.Eff("gemm", "f32", "square", 4); !ok || eff != 0.25 { //blobvet:allow floatcompare -- clamped extrapolation returns the grid endpoint verbatim, no arithmetic
		t.Fatalf("below-grid Eff = %g,%v, want first point 0.25", eff, ok)
	}
	if eff, ok := tb.Eff("gemm", "f32", "square", 1e9); !ok || eff != 1.0 {
		t.Fatalf("above-grid Eff = %g,%v, want last point 1.0", eff, ok)
	}
}

func TestEffInterpolatesInLogSize(t *testing.T) {
	tb := testTable()
	// Log-midpoint of 32 and 128 is 64: exactly halfway between the
	// bracketing efficiencies 0.25 and 0.5.
	eff, ok := tb.Eff("gemm", "f32", "square", 64)
	if !ok || math.Abs(eff-0.375) > 1e-12 {
		t.Fatalf("Eff at log-midpoint = %g,%v, want 0.375", eff, ok)
	}
	// Grid points return their exact values.
	if eff, _ := tb.Eff("gemm", "f32", "square", 128); math.Abs(eff-0.5) > 1e-12 {
		t.Fatalf("Eff at grid point = %g, want 0.5", eff)
	}
}

func TestEffMissingPrecisionReportsNotOK(t *testing.T) {
	tb := testTable()
	// No f64 GEMM series exists: the lookup must report !ok so the model
	// falls back to its analytic roofline, not silently borrow f32.
	if eff, ok := tb.Eff("gemm", "f64", "square", 128); ok {
		t.Fatalf("Eff(gemm,f64) = %g,%v, want !ok for missing precision", eff, ok)
	}
	if _, ok := tb.Eff("gemv", "f32", "square", 128); ok {
		t.Fatal("Eff(gemv,f32) reported ok for a precision the table lacks")
	}
}

func TestEffClassFallback(t *testing.T) {
	tb := testTable()
	// Unknown class with a "square" series recorded: fall back to square.
	got, ok := tb.Eff("gemm", "f32", "deepk", 128)
	want, _ := tb.Eff("gemm", "f32", "square", 128)
	if !ok || got != want { //blobvet:allow floatcompare -- class fallback delegates to the same series; equality asserts delegation
		t.Fatalf("deepk fallback = %g,%v, want square's %g", got, ok, want)
	}
	// Table with no square series: fall back to the lexicographically
	// first class for the pair.
	noSq := &Table{Schema: Schema, Source: "live-blas", Series: []Series{
		{Kernel: "gemm", Precision: "f32", Class: "widen", Points: []Point{{Size: 10, GFlops: 1, Eff: 0.5}}},
		{Kernel: "gemm", Precision: "f32", Class: "tallm", Points: []Point{{Size: 10, GFlops: 1, Eff: 0.7}}},
	}}
	if eff, ok := noSq.Eff("gemm", "f32", "deepk", 10); !ok || eff != 0.7 { //blobvet:allow floatcompare -- single-point series: the stored eff is returned verbatim, no arithmetic
		t.Fatalf("no-square fallback = %g,%v, want tallm's 0.7", eff, ok)
	}
}

func TestEffRejectsBadSize(t *testing.T) {
	tb := testTable()
	for _, size := range []float64{0, -3, math.NaN()} {
		if _, ok := tb.Eff("gemm", "f32", "square", size); ok {
			t.Fatalf("Eff with size %g reported ok", size)
		}
	}
}

// TestEffMonotoneBetweenGridPoints is the ISSUE-mandated property test:
// for any series, walking sizes between two adjacent grid points must
// produce efficiencies that move monotonically from one endpoint to the
// other — linear interpolation admits no overshoot or wiggle.
func TestEffMonotoneBetweenGridPoints(t *testing.T) {
	tb := testTable()
	for _, s := range tb.Series {
		for i := 0; i+1 < len(s.Points); i++ {
			a, b := s.Points[i], s.Points[i+1]
			sign := 0.0
			if b.Eff > a.Eff {
				sign = 1
			} else if b.Eff < a.Eff {
				sign = -1
			}
			prev, _ := tb.Eff(s.Kernel, s.Precision, s.Class, a.Size)
			const steps = 64
			for j := 1; j <= steps; j++ {
				f := float64(j) / steps
				size := math.Exp(math.Log(a.Size)*(1-f) + math.Log(b.Size)*f)
				eff, ok := tb.Eff(s.Kernel, s.Precision, s.Class, size)
				if !ok {
					t.Fatalf("%s/%s/%s: !ok inside grid at %g", s.Kernel, s.Precision, s.Class, size)
				}
				if d := (eff - prev) * sign; d < -1e-12 {
					t.Fatalf("%s/%s/%s: non-monotone between %g and %g: eff %g after %g",
						s.Kernel, s.Precision, s.Class, a.Size, b.Size, eff, prev)
				}
				if sign == 0 && math.Abs(eff-a.Eff) > 1e-12 {
					t.Fatalf("%s/%s/%s: flat segment wiggled to %g", s.Kernel, s.Precision, s.Class, eff)
				}
				prev = eff
			}
			if math.Abs(prev-b.Eff) > 1e-12 {
				t.Fatalf("%s/%s/%s: interpolation did not land on endpoint: %g vs %g",
					s.Kernel, s.Precision, s.Class, prev, b.Eff)
			}
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	tb := testTable()
	tb.Host = CurrentHost()
	tb.RefPeakGF = map[string]float64{"f32": 4.0, "f64": 0.56}
	path := filepath.Join(t.TempDir(), "efftab.json")
	if err := tb.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Fingerprint() != tb.Fingerprint() {
		t.Fatal("round-tripped table has a different fingerprint")
	}
	if got.RefPeakGF["f32"] != 4.0 { //blobvet:allow floatcompare -- JSON round trip must preserve bits exactly
		t.Fatalf("RefPeakGF lost in round trip: %v", got.RefPeakGF)
	}
}

func TestLoadRejectsBadFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load(missing) = nil error")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load(bad json) = nil error")
	}
}

func TestFingerprintIgnoresHostAndTime(t *testing.T) {
	a, b := testTable(), testTable()
	b.Host = Host{OS: "plan9", Arch: "riscv64", NumCPU: 1}
	b.CreatedUnix = 1234567890
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on host/timestamp")
	}
	b.Series[0].Points[0].Eff = 0.26
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignored a data change")
	}
}

func TestFingerprintIgnoresSeriesOrder(t *testing.T) {
	a, b := testTable(), testTable()
	b.Series[0], b.Series[1] = b.Series[1], b.Series[0]
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on series order")
	}
}

func TestSetFingerprint(t *testing.T) {
	tb := testTable()
	full := (&Set{CPU: tb, GPU: tb}).Fingerprint()
	cpuOnly := (&Set{CPU: tb}).Fingerprint()
	if full == cpuOnly {
		t.Fatal("Set fingerprint ignores the GPU table")
	}
	if (&Set{}).Fingerprint() == "" {
		t.Fatal("empty Set fingerprint is empty")
	}
}

func TestClassifyGemm(t *testing.T) {
	cases := []struct {
		m, n, k int
		want    string
	}{
		{128, 128, 128, "square"},
		{1024, 128, 128, "tallm"},
		{128, 1024, 128, "widen"},
		{128, 128, 1024, "deepk"},
		{512, 128, 128, "tallm"}, // exactly 4x: dominant
		{384, 128, 128, "square"},
		{1024, 1024, 128, "square"}, // two large dims: neither dominates
	}
	for _, tc := range cases {
		if got := ClassifyGemm(tc.m, tc.n, tc.k); got != tc.want {
			t.Errorf("ClassifyGemm(%d,%d,%d) = %q, want %q", tc.m, tc.n, tc.k, got, tc.want)
		}
	}
}

func TestClassifyGemv(t *testing.T) {
	cases := []struct {
		m, n int
		want string
	}{
		{1000, 1000, "square"},
		{8000, 1000, "tallm"},
		{1000, 8000, "widen"},
		{3000, 1000, "square"},
	}
	for _, tc := range cases {
		if got := ClassifyGemv(tc.m, tc.n); got != tc.want {
			t.Errorf("ClassifyGemv(%d,%d) = %q, want %q", tc.m, tc.n, got, tc.want)
		}
	}
}

func TestCanonicalShapesClassifyOntoTheirClass(t *testing.T) {
	for _, class := range GemmClasses {
		m, n, k := ShapeGemm(class, 64)
		if got := ClassifyGemm(m, n, k); got != class {
			t.Errorf("ShapeGemm(%q) dims %d,%d,%d classify as %q", class, m, n, k, got)
		}
	}
	for _, class := range GemvClasses {
		m, n := ShapeGemv(class, 256)
		if got := ClassifyGemv(m, n); got != class {
			t.Errorf("ShapeGemv(%q) dims %d,%d classify as %q", class, m, n, got)
		}
	}
}

func TestCharacteristicSizes(t *testing.T) {
	if got := GemmSize(64, 64, 64); math.Abs(got-64) > 1e-9 {
		t.Errorf("GemmSize(cube) = %g, want 64", got)
	}
	if got := GemvSize(100, 400); math.Abs(got-200) > 1e-9 {
		t.Errorf("GemvSize(100,400) = %g, want 200", got)
	}
}

func TestLeaveOneOut(t *testing.T) {
	tb := testTable()
	errs := LeaveOneOut(tb)
	if len(errs) != len(tb.Series) {
		t.Fatalf("LeaveOneOut returned %d summaries for %d series", len(errs), len(tb.Series))
	}
	for _, e := range errs {
		switch {
		case e.Kernel == "gemm" && e.Class == "square":
			// Three points: one interior check. Predicted eff at size 128
			// from (32,0.25)-(512,1.0): log-fraction 0.5 → 0.625, actual
			// 0.5 → rel error 0.25.
			if e.Checks != 1 || math.Abs(e.MaxRel-0.25) > 1e-9 {
				t.Errorf("%s: checks=%d maxRel=%g, want 1, 0.25", e.Key(), e.Checks, e.MaxRel)
			}
			if e.WorstSize != 128 { //blobvet:allow floatcompare -- WorstSize is a copied grid coordinate, no arithmetic
				t.Errorf("%s: worst size %g, want 128", e.Key(), e.WorstSize)
			}
		default:
			// Two- and one-point series have no interior: zero checks, zero
			// error.
			if e.Checks != 0 || e.MaxRel != 0 {
				t.Errorf("%s: checks=%d maxRel=%g, want no interior checks", e.Key(), e.Checks, e.MaxRel)
			}
		}
	}
}

func TestCompareModelAgainstExactModel(t *testing.T) {
	// Sample a table directly from a model that is linear in log(size):
	// linear interpolation reproduces it exactly, so every midpoint error
	// must be ~0.
	model := func(kernel, precision, class string, size float64) (float64, bool) {
		return 0.1 + 0.1*math.Log2(size/16), true
	}
	s := Series{Kernel: "gemm", Precision: "f32", Class: "square"}
	for _, size := range []float64{16, 64, 256, 1024} {
		eff, _ := model("gemm", "f32", "square", size)
		s.Points = append(s.Points, Point{Size: size, GFlops: eff * 10, Eff: eff})
	}
	tb := &Table{Schema: Schema, Source: "synthetic:test", Series: []Series{s}}
	for _, e := range CompareModel(tb, model) {
		if e.Checks != 3 {
			t.Fatalf("CompareModel checks = %d, want 3 midpoints", e.Checks)
		}
		if e.MaxRel > 1e-9 {
			t.Fatalf("log-linear model reproduced with rel error %g", e.MaxRel)
		}
	}
	// A model that skips the tuple contributes no checks.
	none := CompareModel(tb, func(string, string, string, float64) (float64, bool) { return 0, false })
	if none[0].Checks != 0 {
		t.Fatalf("uncovered model produced %d checks", none[0].Checks)
	}
}

func TestSeriesErrorWithin(t *testing.T) {
	e := SeriesError{MaxRel: 0.10, GeoMean: 0.05}
	if !e.Within(0.12, 0.06) {
		t.Fatal("in-band series reported out of band")
	}
	if e.Within(0.08, 0.06) || e.Within(0.12, 0.04) {
		t.Fatal("out-of-band series reported in band")
	}
}
