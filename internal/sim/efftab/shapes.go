package efftab

import (
	"math"
	"strconv"
)

// PrecisionToken maps a BLAS element size onto the table precision token
// ("f32", "f64"). Other widths render as "f<bits>", which no committed
// table records — the lookup misses and the caller falls back to its
// analytic roofline.
func PrecisionToken(elemSize int) string {
	switch elemSize {
	case 4:
		return "f32"
	case 8:
		return "f64"
	default:
		return "f" + strconv.Itoa(elemSize*8)
	}
}

// Shape classes: every BLAS call maps onto one of a small set of aspect
// classes, and the calibration grid measures one efficiency curve per
// class. A dimension must dominate the others by ClassAspect (4x) before
// a call leaves the "square" class — the same first-order cut the
// paper's problem-type taxonomy makes between its square and 16:1 shapes.
const ClassAspect = 4.0

// GEMM shape classes. "tallm"/"widen"/"deepk" name the dominant
// dimension; canonical shapes put it at ShapeSkew times the others.
var GemmClasses = []string{"square", "tallm", "widen", "deepk"}

// GEMV shape classes (no K).
var GemvClasses = []string{"square", "tallm", "widen"}

// ShapeSkew is the aspect ratio of the canonical non-square calibration
// shapes: comfortably past the ClassAspect boundary, cheap to measure.
const ShapeSkew = 8

// ClassifyGemm maps concrete GEMM dims onto a shape class: the class of
// the dimension that dominates the other two by ClassAspect, else
// "square".
func ClassifyGemm(m, n, k int) string {
	fm, fn, fk := float64(m), float64(n), float64(k)
	switch {
	case fm >= ClassAspect*fn && fm >= ClassAspect*fk:
		return "tallm"
	case fn >= ClassAspect*fm && fn >= ClassAspect*fk:
		return "widen"
	case fk >= ClassAspect*fm && fk >= ClassAspect*fn:
		return "deepk"
	default:
		return "square"
	}
}

// ClassifyGemv maps concrete GEMV dims onto a shape class.
func ClassifyGemv(m, n int) string {
	fm, fn := float64(m), float64(n)
	switch {
	case fm >= ClassAspect*fn:
		return "tallm"
	case fn >= ClassAspect*fm:
		return "widen"
	default:
		return "square"
	}
}

// GemmSize is the characteristic size interpolation keys on: the
// geometric mean of the three dimensions, so that a canonical shape and
// a concrete call of equal FLOP volume land near each other on the axis.
func GemmSize(m, n, k int) float64 {
	return math.Cbrt(float64(m) * float64(n) * float64(k))
}

// GemvSize is the GEMV characteristic size: the geometric mean of the
// two dimensions.
func GemvSize(m, n int) float64 {
	return math.Sqrt(float64(m) * float64(n))
}

// ShapeGemm returns the canonical dims of a GEMM class at grid parameter
// p: the calibration and synthesis grids measure these exact shapes, and
// ClassifyGemm maps each back onto its class.
func ShapeGemm(class string, p int) (m, n, k int) {
	switch class {
	case "tallm":
		return ShapeSkew * p, p, p
	case "widen":
		return p, ShapeSkew * p, p
	case "deepk":
		return p, p, ShapeSkew * p
	default: // square
		return p, p, p
	}
}

// ShapeGemv returns the canonical dims of a GEMV class at grid
// parameter p.
func ShapeGemv(class string, p int) (m, n int) {
	switch class {
	case "tallm":
		return ShapeSkew * p, p
	case "widen":
		return p, ShapeSkew * p
	default: // square
		return p, p
	}
}

// ShapeGemmF is ShapeGemm over the continuous size axis: real-valued
// canonical dims whose geometric mean is exactly size. Fidelity checks
// use it to evaluate an analytic reference model at off-grid sizes.
func ShapeGemmF(class string, size float64) (m, n, k float64) {
	p := size / math.Cbrt(ShapeSkew)
	switch class {
	case "tallm":
		return ShapeSkew * p, p, p
	case "widen":
		return p, ShapeSkew * p, p
	case "deepk":
		return p, p, ShapeSkew * p
	default: // square
		return size, size, size
	}
}

// ShapeGemvF is ShapeGemv over the continuous size axis.
func ShapeGemvF(class string, size float64) (m, n float64) {
	p := size / math.Sqrt(ShapeSkew)
	switch class {
	case "tallm":
		return ShapeSkew * p, p
	case "widen":
		return p, ShapeSkew * p
	default: // square
		return size, size
	}
}
