// Package xfer defines the three host-device data movement strategies of
// GPU-BLOB (§III-B2) and the byte accounting for GEMM and GEMV under each:
//
//   - TransferOnce: inputs (A, B, C for GEMM; A, x, y for GEMV) are copied
//     to the device before all i iterations, and the output (C; y) copied
//     back once afterwards. Characterises high data re-use.
//   - TransferAlways: inputs copied to and output copied from the device
//     around every single iteration. Characterises accelerated BLAS
//     interleaved with host compute phases.
//   - Unified: unified shared memory; no explicit copies, data moves by page
//     migration (modeled in package usm).
//
// GPU time measurements in the paper include data movement (§III-A); the
// same holds for every strategy here.
package xfer

import (
	"errors"
	"fmt"

	"repro/internal/faultinject"
)

// ErrUnknownStrategy is the sentinel wrapped by ParseStrategy for
// unrecognized tokens, so callers can errors.Is the condition instead of
// string-matching (errcontract: errors crossing the package boundary stay
// classifiable).
var ErrUnknownStrategy = errors.New("xfer: unknown strategy")

// Strategy identifies a data transfer paradigm.
type Strategy int

// The three strategies of §III-B2.
const (
	TransferOnce Strategy = iota
	TransferAlways
	Unified
)

// Strategies lists all strategies in presentation order (paper tables use
// Once / Always / USM columns).
var Strategies = []Strategy{TransferOnce, TransferAlways, Unified}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case TransferOnce:
		return "Once"
	case TransferAlways:
		return "Always"
	case Unified:
		return "USM"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a CLI/CSV token into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "Once", "once", "transfer-once":
		return TransferOnce, nil
	case "Always", "always", "transfer-always":
		return TransferAlways, nil
	case "USM", "usm", "unified":
		return Unified, nil
	}
	return 0, fmt.Errorf("%w %q", ErrUnknownStrategy, s)
}

// GemmBytes returns the bytes moved host-to-device and device-to-host for
// ONE round of explicit GEMM transfers: A (m x k), B (k x n) and C (m x n)
// up; C down.
func GemmBytes(elemSize, m, n, k int) (toDev, fromDev int64) {
	es := int64(elemSize)
	toDev = (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)) * es
	fromDev = int64(m) * int64(n) * es
	return toDev, fromDev
}

// GemvBytes returns the bytes moved for ONE round of explicit GEMV
// transfers: A (m x n), x (n) and y (m) up; y down.
func GemvBytes(elemSize, m, n int) (toDev, fromDev int64) {
	es := int64(elemSize)
	toDev = (int64(m)*int64(n) + int64(n) + int64(m)) * es
	fromDev = int64(m) * es
	return toDev, fromDev
}

// CheckFault consults an injection point for one explicit-transfer
// operation (Backend "xfer"): it returns any extra modeled seconds for a
// latency fault, or the fault error itself. A nil point — the normal,
// fault-free configuration — costs one nil check and nothing else.
func CheckFault(p faultinject.Point, kernel string, dim int) (float64, error) {
	if p == nil {
		return 0, nil
	}
	return p.At(faultinject.Site{Backend: faultinject.BackendXfer, Kernel: kernel, Dim: dim})
}

// Rounds returns how many explicit transfer rounds the strategy performs
// for i iterations: 1 for TransferOnce, i for TransferAlways, 0 for Unified
// (whose movement is modeled by page migration instead).
func Rounds(s Strategy, iters int) int {
	switch s {
	case TransferOnce:
		return 1
	case TransferAlways:
		return iters
	default:
		return 0
	}
}
