package xfer

import "testing"

func TestStrategyStrings(t *testing.T) {
	if TransferOnce.String() != "Once" || TransferAlways.String() != "Always" || Unified.String() != "USM" {
		t.Fatal("strategy names")
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy should still format")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{
		{"Once", TransferOnce}, {"once", TransferOnce}, {"transfer-once", TransferOnce},
		{"Always", TransferAlways}, {"always", TransferAlways},
		{"USM", Unified}, {"usm", Unified}, {"unified", Unified},
	} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestGemmBytes(t *testing.T) {
	// A (2x4), B (4x3), C (2x3) up; C down; f64.
	toDev, fromDev := GemmBytes(8, 2, 3, 4)
	if toDev != (2*4+4*3+2*3)*8 {
		t.Fatalf("toDev = %d", toDev)
	}
	if fromDev != 2*3*8 {
		t.Fatalf("fromDev = %d", fromDev)
	}
}

func TestGemvBytes(t *testing.T) {
	// A (3x4), x (4), y (3) up; y down; f32.
	toDev, fromDev := GemvBytes(4, 3, 4)
	if toDev != (3*4+4+3)*4 {
		t.Fatalf("toDev = %d", toDev)
	}
	if fromDev != 3*4 {
		t.Fatalf("fromDev = %d", fromDev)
	}
}

func TestGemmBytesNoOverflow(t *testing.T) {
	toDev, _ := GemmBytes(8, 65536, 65536, 65536)
	if toDev <= 0 {
		t.Fatalf("overflow: %d", toDev)
	}
}

func TestRounds(t *testing.T) {
	if Rounds(TransferOnce, 128) != 1 {
		t.Fatal("Once should transfer once")
	}
	if Rounds(TransferAlways, 128) != 128 {
		t.Fatal("Always should transfer every iteration")
	}
	if Rounds(Unified, 128) != 0 {
		t.Fatal("USM has no explicit transfer rounds")
	}
}

func TestStrategiesOrder(t *testing.T) {
	if len(Strategies) != 3 || Strategies[0] != TransferOnce || Strategies[1] != TransferAlways || Strategies[2] != Unified {
		t.Fatal("Strategies must be the paper's Once/Always/USM order")
	}
}
