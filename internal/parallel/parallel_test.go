package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitCoversExactly(t *testing.T) {
	f := func(n, parts uint8) bool {
		rs := Split(int(n), int(parts))
		// Ranges must tile [0, n) exactly, in order, non-empty.
		next := 0
		for _, r := range rs {
			if r.Lo != next || r.Hi <= r.Lo {
				return false
			}
			next = r.Hi
		}
		return next == int(n) || (n == 0 && len(rs) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBalance(t *testing.T) {
	rs := Split(10, 3)
	if len(rs) != 3 {
		t.Fatalf("want 3 ranges, got %d", len(rs))
	}
	sizes := []int{rs[0].Len(), rs[1].Len(), rs[2].Len()}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("unbalanced split: %v", sizes)
	}
}

func TestSplitFewerThanParts(t *testing.T) {
	rs := Split(2, 8)
	if len(rs) != 2 {
		t.Fatalf("n < parts should cap ranges at n, got %d", len(rs))
	}
}

func TestSplitDegenerate(t *testing.T) {
	if Split(0, 4) != nil {
		t.Fatal("n=0 should return nil")
	}
	if rs := Split(5, 0); len(rs) != 1 || rs[0] != (Range{0, 5}) {
		t.Fatalf("parts<1 should clamp to 1: %v", rs)
	}
}

func TestSplitChunks(t *testing.T) {
	rs := SplitChunks(10, 4)
	want := []Range{{0, 4}, {4, 8}, {8, 10}}
	if len(rs) != len(want) {
		t.Fatalf("chunks: %v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("chunk %d: %v != %v", i, rs[i], want[i])
		}
	}
	if SplitChunks(0, 4) != nil {
		t.Fatal("n=0 chunks")
	}
}

func TestPoolForCoversAll(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	hit := make([]int32, n)
	p.For(n, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestPoolForSmallN(t *testing.T) {
	p := NewPool(8)
	var count int32
	p.For(3, func(_ int, r Range) {
		atomic.AddInt32(&count, int32(r.Len()))
	})
	if count != 3 {
		t.Fatalf("covered %d of 3", count)
	}
	p.For(0, func(_ int, r Range) { t.Fatal("n=0 must not call body") })
}

func TestPoolWorkerIndicesDistinct(t *testing.T) {
	p := NewPool(4)
	seen := make(map[int]bool)
	var mu sync.Mutex
	p.For(4, func(w int, _ Range) {
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) != 4 {
		t.Fatalf("expected 4 distinct workers, saw %d", len(seen))
	}
	for w := range seen {
		if w < 0 || w >= 4 {
			t.Fatalf("worker index %d out of range", w)
		}
	}
}

func TestPoolSequentialReuse(t *testing.T) {
	p := NewPool(3)
	for iter := 0; iter < 50; iter++ {
		var sum int64
		p.For(100, func(_ int, r Range) {
			var local int64
			for i := r.Lo; i < r.Hi; i++ {
				local += int64(i)
			}
			atomic.AddInt64(&sum, local)
		})
		if sum != 4950 {
			t.Fatalf("iter %d: sum %d", iter, sum)
		}
	}
}

func TestPoolConcurrentForCalls(t *testing.T) {
	// Concurrent For calls on one pool must serialize, not interleave
	// incorrectly; both loops must fully cover their ranges.
	p := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum int64
			p.For(200, func(_ int, r Range) {
				var local int64
				for i := r.Lo; i < r.Hi; i++ {
					local += 1
				}
				atomic.AddInt64(&sum, local)
			})
			if sum != 200 {
				t.Errorf("concurrent For covered %d", sum)
			}
		}()
	}
	wg.Wait()
}

func TestForChunkedCoversAll(t *testing.T) {
	p := NewPool(4)
	const n = 137
	hit := make([]int32, n)
	p.ForChunked(n, 10, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			atomic.AddInt32(&hit[i], 1)
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestTilesCoverSpace(t *testing.T) {
	tiles := Tiles(10, 7, 4, 3)
	covered := make([][]bool, 10)
	for i := range covered {
		covered[i] = make([]bool, 7)
	}
	for _, tl := range tiles {
		for i := tl.Row.Lo; i < tl.Row.Hi; i++ {
			for j := tl.Col.Lo; j < tl.Col.Hi; j++ {
				if covered[i][j] {
					t.Fatalf("cell (%d,%d) covered twice", i, j)
				}
				covered[i][j] = true
			}
		}
	}
	for i := range covered {
		for j := range covered[i] {
			if !covered[i][j] {
				t.Fatalf("cell (%d,%d) uncovered", i, j)
			}
		}
	}
}

func TestFor2DCoversSpace(t *testing.T) {
	p := NewPool(4)
	m, n := 33, 29
	hit := make([]int32, m*n)
	p.For2D(m, n, 8, 8, func(_ int, tl Tile) {
		for j := tl.Col.Lo; j < tl.Col.Hi; j++ {
			for i := tl.Row.Lo; i < tl.Row.Hi; i++ {
				atomic.AddInt32(&hit[i+j*m], 1)
			}
		}
	})
	for idx, h := range hit {
		if h != 1 {
			t.Fatalf("cell %d visited %d times", idx, h)
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("default pool must have >=1 worker")
	}
	if NewPool(-5).Workers() < 1 {
		t.Fatal("negative worker count must clamp")
	}
	if NewPool(3).Workers() != 3 {
		t.Fatal("explicit worker count")
	}
}
