package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// --- Edge cases for the partitioners -------------------------------------

func TestSplitChunksEdgeCases(t *testing.T) {
	// chunk > n: a single range spanning everything.
	if rs := SplitChunks(5, 100); len(rs) != 1 || rs[0] != (Range{0, 5}) {
		t.Fatalf("chunk>n: %v", rs)
	}
	// chunk < 1 clamps to 1: n singleton ranges.
	rs := SplitChunks(4, 0)
	if len(rs) != 4 {
		t.Fatalf("chunk=0 should clamp to 1: %v", rs)
	}
	for i, r := range rs {
		if r != (Range{i, i + 1}) {
			t.Fatalf("chunk=0 range %d: %v", i, r)
		}
	}
	if rs := SplitChunks(4, -3); len(rs) != 4 {
		t.Fatalf("negative chunk should clamp to 1: %v", rs)
	}
	// n <= 0 yields nothing.
	if SplitChunks(0, 1) != nil || SplitChunks(-2, 1) != nil {
		t.Fatal("n<=0 must return nil")
	}
}

func TestSplitNegativeN(t *testing.T) {
	if Split(-1, 4) != nil {
		t.Fatal("negative n must return nil")
	}
}

func TestTilesEdgeCases(t *testing.T) {
	// Empty iteration space in either dimension.
	if Tiles(0, 5, 2, 2) != nil || Tiles(5, 0, 2, 2) != nil {
		t.Fatal("empty space must return nil")
	}
	if Tiles(-1, 5, 2, 2) != nil || Tiles(5, -1, 2, 2) != nil {
		t.Fatal("negative space must return nil")
	}
	// Tile bigger than the space: exactly one tile covering everything.
	ts := Tiles(3, 4, 100, 100)
	if len(ts) != 1 || ts[0].Row != (Range{0, 3}) || ts[0].Col != (Range{0, 4}) {
		t.Fatalf("tile>space: %v", ts)
	}
	// Tile sizes < 1 clamp to 1: one tile per cell.
	if ts := Tiles(2, 3, 0, -1); len(ts) != 6 {
		t.Fatalf("clamped tiles: want 6, got %d", len(ts))
	}
}

// --- Property tests: every partitioner tiles its space exactly -----------

// rangesTileExactly reports whether rs is an in-order, gap-free,
// overlap-free tiling of [0, n) with no empty ranges.
func rangesTileExactly(rs []Range, n int) bool {
	next := 0
	for _, r := range rs {
		if r.Lo != next || r.Hi <= r.Lo {
			return false
		}
		next = r.Hi
	}
	return next == n
}

func TestSplitChunksTilesExactly(t *testing.T) {
	f := func(n uint8, chunk int8) bool {
		rs := SplitChunks(int(n), int(chunk))
		if n == 0 {
			return rs == nil
		}
		return rangesTileExactly(rs, int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTilesExactly(t *testing.T) {
	f := func(n uint8, parts int8) bool {
		rs := Split(int(n), int(parts))
		if n == 0 {
			return rs == nil
		}
		return rangesTileExactly(rs, int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTilesTileExactly(t *testing.T) {
	f := func(m, n uint8, tr, tc int8) bool {
		mm, nn := int(m%40), int(n%40)
		tiles := Tiles(mm, nn, int(tr), int(tc))
		if mm == 0 || nn == 0 {
			return tiles == nil
		}
		seen := make([]int, mm*nn)
		for _, tl := range tiles {
			if tl.Row.Len() <= 0 || tl.Col.Len() <= 0 {
				return false
			}
			for j := tl.Col.Lo; j < tl.Col.Hi; j++ {
				for i := tl.Row.Lo; i < tl.Row.Hi; i++ {
					seen[i+j*mm]++
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Race regression: concurrent guided loops on one pool ----------------

// TestPoolConcurrentGuidedLoops hammers ForChunked and For2D from many
// goroutines sharing one pool. Run under -race this guards the shared chunk
// cursor in both schedulers (the cursor and its mutex are reallocated per
// call; a stray cross-call access or a torn counter would be reported).
func TestPoolConcurrentGuidedLoops(t *testing.T) {
	p := NewPool(4)
	const (
		goroutines = 8
		iters      = 20
		n          = 257
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if (g+it)%2 == 0 {
					var covered int64
					p.ForChunked(n, 7, func(_ int, r Range) {
						atomic.AddInt64(&covered, int64(r.Len()))
					})
					if covered != n {
						t.Errorf("ForChunked covered %d of %d", covered, n)
						return
					}
				} else {
					var covered int64
					p.For2D(19, 13, 4, 3, func(_ int, tl Tile) {
						atomic.AddInt64(&covered, int64(tl.Row.Len()*tl.Col.Len()))
					})
					if covered != 19*13 {
						t.Errorf("For2D covered %d of %d", covered, 19*13)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
