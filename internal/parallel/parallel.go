// Package parallel provides the shared-memory parallel building blocks used
// by the optimized BLAS kernels: static and guided range partitioning and a
// reusable worker pool.
//
// The abstractions deliberately mirror the OpenMP knobs the paper's artifact
// is driven by (OMP_NUM_THREADS, BLIS_NUM_THREADS): a Pool has a fixed
// thread count, and For/For2D split iteration spaces statically by default,
// like OMP's schedule(static).
package parallel

import (
	"runtime"
	"sync"
)

//blobvet:file-allow locksafety: p.mu serializes whole For/For2D invocations (the OpenMP parallel-region model); the body calls and wg.Wait under it ARE the critical section, and the bodies are compute kernels that never re-enter the pool

// Range is a half-open interval [Lo, Hi) of loop iterations.
type Range struct {
	Lo, Hi int
}

// Len returns the number of iterations in r.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most parts contiguous ranges whose sizes
// differ by at most one. Fewer than parts ranges are returned when n < parts.
func Split(n, parts int) []Range {
	if parts < 1 {
		parts = 1
	}
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base, rem := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		sz := base
		if p < rem {
			sz++
		}
		out = append(out, Range{lo, lo + sz})
		lo += sz
	}
	return out
}

// SplitChunks partitions [0, n) into contiguous ranges of exactly chunk
// iterations (the final range may be shorter).
func SplitChunks(n, chunk int) []Range {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// Pool is a fixed-size group of workers that executes data-parallel loops.
// A Pool is safe for sequential reuse; concurrent For calls on the same Pool
// are serialized by an internal mutex so kernels can share one pool.
type Pool struct {
	mu      sync.Mutex
	workers int
}

// NewPool returns a pool of n workers. n < 1 selects GOMAXPROCS workers.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// For executes body over [0, n) split statically across the pool's workers.
// body receives the worker index and the sub-range it owns. For n below the
// worker count, only n workers run. The call returns when all workers finish.
func (p *Pool) For(n int, body func(worker int, r Range)) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ranges := Split(n, p.workers)
	if len(ranges) == 1 {
		body(0, ranges[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	for w := 1; w < len(ranges); w++ {
		go func(w int) {
			defer wg.Done()
			body(w, ranges[w])
		}(w)
	}
	body(0, ranges[0])
	wg.Wait()
}

// ForChunked executes body over [0, n) in chunks of the given size, with the
// pool's workers pulling chunks from a shared queue (guided scheduling).
// Useful when per-iteration cost is irregular.
func (p *Pool) ForChunked(n, chunk int, body func(worker int, r Range)) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	chunks := SplitChunks(n, chunk)
	if len(chunks) == 1 {
		body(0, chunks[0])
		return
	}
	workers := p.workers
	if workers > len(chunks) {
		workers = len(chunks)
	}
	next := 0
	var mu sync.Mutex
	take := func() (Range, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(chunks) {
			return Range{}, false
		}
		r := chunks[next]
		next++
		return r, true
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	run := func(w int) {
		for {
			r, ok := take()
			if !ok {
				return
			}
			body(w, r)
		}
	}
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(0)
	wg.Wait()
}

// Tile is a rectangular block of a 2D iteration space.
type Tile struct {
	Row, Col Range
}

// Tiles partitions the m x n iteration space into tiles of at most tr x tc.
func Tiles(m, n, tr, tc int) []Tile {
	if m <= 0 || n <= 0 {
		return nil
	}
	if tr < 1 {
		tr = 1
	}
	if tc < 1 {
		tc = 1
	}
	rows := SplitChunks(m, tr)
	cols := SplitChunks(n, tc)
	out := make([]Tile, 0, len(rows)*len(cols))
	for _, c := range cols {
		for _, r := range rows {
			out = append(out, Tile{Row: r, Col: c})
		}
	}
	return out
}

// For2D executes body over the m x n space tiled into tr x tc blocks, with
// tiles distributed across the pool's workers by a shared queue. Tiles are
// column-major ordered so writes to a column-major output matrix stay as
// local as possible per worker.
func (p *Pool) For2D(m, n, tr, tc int, body func(worker int, t Tile)) {
	tiles := Tiles(m, n, tr, tc)
	if len(tiles) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(tiles) == 1 {
		body(0, tiles[0])
		return
	}
	workers := p.workers
	if workers > len(tiles) {
		workers = len(tiles)
	}
	var mu sync.Mutex
	next := 0
	take := func() (Tile, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(tiles) {
			return Tile{}, false
		}
		t := tiles[next]
		next++
		return t, true
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	run := func(w int) {
		for {
			t, ok := take()
			if !ok {
				return
			}
			body(w, t)
		}
	}
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(0)
	wg.Wait()
}
