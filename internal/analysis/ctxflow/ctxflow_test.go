package ctxflow_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/ctxflow"
)

// TestFixture covers all three rules in a loop-scope package: ctx not
// first in an exported signature, Background()/TODO() outside main, and
// a deaf loop — plus the justified-allow escape hatch. The severity
// split is part of the contract: rules 1 and 2 are error level, rule 3
// is warn level (baseline-eligible).
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, ctxflow.Analyzer,
		"../testdata/src/ctxflow", "fixture/internal/core")
	for _, d := range diags {
		want := blobvet.SevError
		if strings.Contains(d.Message, "never consults its context") {
			want = blobvet.SevWarn
		}
		if d.Severity != want {
			t.Errorf("%q: severity = %s, want %s", d.Message, d.Severity, want)
		}
	}
}

// TestLoopScopeOnly isolates rule 3's package scoping with a fixture
// containing nothing but a deaf loop: it fires in internal/core and is
// silent outside the sweep/serve packages (rules 1 and 2 apply
// everywhere, which is why the main fixture cannot be reused here).
func TestLoopScopeOnly(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer,
		"../testdata/src/ctxflow_scope", "fixture/internal/core")
}

// TestLoopScopeExempt: the same deaf loop outside the loop-scope
// packages produces nothing.
func TestLoopScopeExempt(t *testing.T) {
	analysistest.RunNoDiagnostics(t, ctxflow.Analyzer,
		"../testdata/src/ctxflow_scope", "fixture/internal/csvio")
}

// TestMainExempt: package main is the sanctioned place to mint a root
// context, so rule 2 stays silent there.
func TestMainExempt(t *testing.T) {
	analysistest.RunNoDiagnostics(t, ctxflow.Analyzer,
		"../testdata/src/ctxflow_main", "fixture/cmd/app")
}
