// Package ctxflow machine-enforces the repository's context-plumbing
// contract: cancellation flows down the call tree through explicit
// context.Context parameters, never through ambient background contexts,
// and the long-running loops that dominate a sweep actually consult the
// context they were handed.
//
// The serving layer (ISSUE 2) promised "context-aware throughout": a
// cancelled advisor request must abort its sweep mid-flight, and the
// overload controller's deadline-aware shedding (ISSUE 5) only works if
// deadlines propagate. Three rules make the promise checkable:
//
//  1. An exported function or method that takes a context.Context must
//     receive it as the first parameter (after the receiver). This is the
//     stdlib convention; violating it invites call sites that thread the
//     wrong context. Error severity.
//
//  2. Production code must not call context.Background() or
//     context.TODO() outside package main: a background context severs
//     the cancellation chain, so only the program entry point (and tests)
//     may mint one. Deliberate detachment points — a singleflight flight
//     that must outlive its first caller — carry an allow directive with
//     a justification. Error severity.
//
//  3. In the sweep/serve packages (internal/core, internal/service), a
//     loop inside a context-taking function that makes calls but never
//     consults the context — no ctx.Err(), ctx.Done(), or any use of any
//     context value in its body — runs to completion even after
//     cancellation. Warn severity: existing long loops are baselined,
//     new ones are pushed toward a ctx.Err() check per iteration.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the ctxflow instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "ctxflow",
	Doc: "context.Context first in exported signatures, no Background()/TODO() " +
		"outside main, sweep/serve loops must consult their context",
	Run: run,
}

// loopScopePaths are the package-path suffixes rule 3 applies to: the
// packages whose loops iterate over problem sizes or queued requests and
// therefore must be cancellable mid-flight.
var loopScopePaths = []string{"internal/core", "internal/service"}

func run(pass *blobvet.Pass) error {
	checkLoops := inScope(pass.Pkg.Path(), loopScopePaths)
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxFirst(pass, fn)
			if fn.Body == nil {
				continue
			}
			if checkLoops && !pass.TestFile(fn.Pos()) {
				checkLoopConsultsCtx(pass, fn)
			}
		}
		if !isMain {
			checkNoBackground(pass, file)
		}
	}
	return nil
}

func inScope(path string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxFirst enforces rule 1 on exported declarations (tests included:
// an exported test helper sets the same example).
func checkCtxFirst(pass *blobvet.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	idx := 0 // flattened parameter index
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		tv, ok := pass.Info.Types[field.Type]
		if ok && isContextType(tv.Type) && idx > 0 {
			pass.Reportf(field.Pos(),
				"exported %s takes context.Context as parameter %d; the context must be the first parameter",
				fn.Name.Name, idx+1)
			return
		}
		idx += n
	}
}

// checkNoBackground enforces rule 2 over a production file.
func checkNoBackground(pass *blobvet.Pass, file *ast.File) {
	if pass.TestFile(file.Pos()) {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "context" {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() severs the cancellation chain; accept a ctx parameter instead (allow-with-justification for deliberate detachment)",
			sel.Sel.Name)
		return true
	})
}

// checkLoopConsultsCtx enforces rule 3: outermost for/range loops in a
// context-taking function must reference some context value if they make
// calls.
func checkLoopConsultsCtx(pass *blobvet.Pass, fn *ast.FuncDecl) {
	// Does fn take a context parameter at all?
	hasCtx := false
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if tv, ok := pass.Info.Types[field.Type]; ok && isContextType(tv.Type) {
				hasCtx = true
			}
		}
	}
	if !hasCtx {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch loop := m.(type) {
			case *ast.ForStmt:
				inspectLoop(pass, fn, loop, loop.Body)
				return false // outermost loop only; nested loops share its verdict
			case *ast.RangeStmt:
				inspectLoop(pass, fn, loop, loop.Body)
				return false
			case *ast.FuncLit:
				return false // closure bodies run elsewhere; judged where invoked
			}
			return true
		})
	}
	walk(fn.Body)
}

func inspectLoop(pass *blobvet.Pass, fn *ast.FuncDecl, loop ast.Node, body *ast.BlockStmt) {
	hasCall := false
	consultsCtx := false
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			hasCall = true
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				consultsCtx = true
			}
		}
		return true
	})
	if hasCall && !consultsCtx {
		pass.Warnf(loop.Pos(),
			"loop in %s never consults its context; add a ctx.Err() check so cancellation aborts the iteration",
			fn.Name.Name)
	}
}
