// Package floatcompare bans == and != between floating-point values,
// repo-wide, with two deliberate exceptions that the BLAS contract itself
// depends on:
//
//   - comparison against an exact 0 or 1 constant. The paper's Beta=0
//     contract (§III-A, Table I) requires kernels to branch on beta == 0
//     and beta != 1 — these sentinel values are exact in IEEE-754 and the
//     branch is the documented behaviour of all five vendor libraries.
//   - x != x / x == x, the standard NaN probe.
//
// Everything else — comparing computed results to each other or to
// arbitrary constants — is how FP-equality bugs sneak into threshold
// detection: two timing curves that differ in the last ulp flip the
// "GPU keeps beating CPU" decision, and a test that demands bitwise
// equality of a re-associated parallel sum fails on any reordering.
// Code must use the tolerance helpers (matrix.MaxAbsDiff32/64,
// matrix.ChecksumsMatchTol, math.Abs(a-b) <= tol) instead, or carry a
// //blobvet:allow floatcompare directive with a justification.
package floatcompare

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the floatcompare instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "floatcompare",
	Doc: "no ==/!= on float32/float64 except against exact 0/1 sentinels or " +
		"the x != x NaN probe; use the tolerance helpers",
	Run: run,
}

func run(pass *blobvet.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !floatOperand(pass, cmp.X) && !floatOperand(pass, cmp.Y) {
				return true
			}
			if exactSentinel(pass, cmp.X) || exactSentinel(pass, cmp.Y) {
				return true
			}
			if nanProbe(pass, cmp) {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"floating-point %s comparison; use a tolerance helper (matrix.MaxAbsDiff*, ChecksumsMatchTol, math.Abs(a-b) <= tol) or an exact 0/1 sentinel",
				cmp.Op)
			return true
		})
	}
	return nil
}

// floatOperand reports whether expr has (or defaults to) a float32/float64
// type and is not itself a compile-time constant paired below.
func floatOperand(pass *blobvet.Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}

// exactSentinel reports whether expr is a compile-time constant whose value
// is exactly 0 or 1 — the two values the Beta=0 contract compares against.
func exactSentinel(pass *blobvet.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	return constant.Compare(v, token.EQL, constant.ToFloat(constant.MakeInt64(0))) ||
		constant.Compare(v, token.EQL, constant.ToFloat(constant.MakeInt64(1)))
}

// nanProbe reports whether cmp is the x != x (or x == x) NaN idiom: both
// sides print to the same source expression.
func nanProbe(pass *blobvet.Pass, cmp *ast.BinaryExpr) bool {
	return render(pass.Fset, cmp.X) == render(pass.Fset, cmp.Y)
}

func render(fset *token.FileSet, expr ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, expr); err != nil {
		return ""
	}
	return sb.String()
}
