package floatcompare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcompare"
)

// TestFixture seeds FP-equality comparisons and asserts the analyzer
// flags exactly them: sentinels, the NaN probe, integer comparisons and
// directive-suppressed lines stay silent.
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, floatcompare.Analyzer,
		"../testdata/src/floatcompare", "fixture/floatcompare")
	if len(diags) != 4 {
		t.Errorf("want 4 diagnostics from seeded violations, got %d", len(diags))
	}
}
