// Package determinism guards the simulator's bit-reproducibility promise.
//
// DESIGN.md sells the substitution of vendor BLAS + GPUs with calibrated
// models precisely because "every table/figure shape is reproducible
// deterministically": running `gpu-blob` twice must regenerate Tables
// III–VI byte-for-byte. Three stdlib conveniences silently break that
// promise inside the model packages (internal/sim/...):
//
//   - time.Now / time.Since / time.Until — wall-clock leaks into modeled
//     results (live measurement belongs in internal/core, not the sim);
//   - the global math/rand source — unseeded (Go 1.20+) and therefore
//     different every process; models must thread an explicit seeded
//     source (rand.New(rand.NewSource(seed))) or the repo's matrix.RNG;
//   - ranging over a map on a result path — Go randomizes iteration
//     order per run, so any slice, CSV row order or accumulated float
//     sum built from it differs between runs. Sort the keys first.
//
// Production files only; sim tests may time themselves.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the determinism instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "determinism",
	Doc: "internal/sim packages must stay bit-reproducible: no wall-clock " +
		"reads, no global math/rand source, no map-ordered iteration",
	Run: run,
}

// pathScope marks the simulator subtree (and fixtures impersonating it).
const pathScope = "internal/sim"

// clockFuncs are the time package functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that build explicit,
// seedable sources and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *blobvet.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), pathScope) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector flags pkg.Func selections on the time clock functions and
// the math/rand global source.
func checkSelector(pass *blobvet.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch path := pkgName.Imported().Path(); path {
	case "time":
		if clockFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock inside the simulator; results must be modeled, not measured (live timing belongs in internal/core)",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"rand.%s uses the global math/rand source, which is seeded differently every run; use rand.New(rand.NewSource(seed)) or matrix.RNG",
				sel.Sel.Name)
		}
	}
}

// checkRange flags iteration over maps: order is randomized per run, so
// anything order-sensitive built from it is nondeterministic. The one
// exempt shape is the canonical fix itself — a pure key-collection loop
// (`for k := range m { keys = append(keys, k) }`) whose result is sorted
// before use; collecting keys is order-insensitive.
func checkRange(pass *blobvet.Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if isKeyCollection(rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is randomized per process; sort the keys before ranging so sim output stays bit-reproducible")
}

// isKeyCollection matches `for k := range m { s = append(s, k) }`: no
// value variable, a single append of the key into a slice.
func isKeyCollection(rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
