package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

// TestFixture seeds wall-clock reads, global-rand draws and map-ordered
// iteration on a simulated result path and asserts each is caught, while
// the seeded-source and sorted-keys fixes stay silent.
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, determinism.Analyzer,
		"../testdata/src/determinism", "fixture/internal/sim/resultpath")
	if len(diags) != 4 {
		t.Errorf("want 4 diagnostics from seeded violations, got %d", len(diags))
	}
}

// TestOutOfScope: identical code outside internal/sim is not the
// simulator's problem (internal/core measures real time on purpose).
func TestOutOfScope(t *testing.T) {
	analysistest.RunNoDiagnostics(t, determinism.Analyzer,
		"../testdata/src/determinism", "fixture/internal/core")
}
