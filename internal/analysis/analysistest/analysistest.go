// Package analysistest runs a blobvet.Analyzer over a fixture package and
// checks its diagnostics against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest (stdlib
// rebuild — see internal/analysis/blobvet for why x/tools is not used).
//
// Expectations are written as comments on the line the diagnostic must
// land on:
//
//	beta := 0.5
//	if x == beta { // want `floating-point == comparison`
//	}
//
// Each `want` carries one or more backquoted or double-quoted regular
// expressions; every expectation must be matched by a diagnostic on that
// line, and every diagnostic must match an expectation, or the test
// fails. A fixture therefore "fails without the analyzer" by
// construction: it contains seeded violations the analyzer must find.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/load"
)

// Run loads dir as a package with import path asPath, applies a, and
// reports mismatches between diagnostics and // want expectations on t.
// It returns the diagnostics for any further assertions.
func Run(t *testing.T, a *blobvet.Analyzer, dir, asPath string) []blobvet.Diagnostic {
	t.Helper()
	pkg, err := load.Dir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", dir, terr)
	}
	pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags := pass.Diagnostics()

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				// Only quoted payloads are expectations; prose that
				// happens to start with "want" is not.
				if rest := strings.TrimSpace(strings.TrimPrefix(text, "want ")); rest == "" || (rest[0] != '`' && rest[0] != '"') {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				patterns, err := splitPatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a want payload: a space-separated sequence of
// quoted (`...` or "...") regular expressions.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Re-quote through strconv to honour escapes.
			lit, rest, err := scanStringLit(s)
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = strings.TrimSpace(rest)
		default:
			return nil, fmt.Errorf("want pattern must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}

func scanStringLit(s string) (lit, rest string, err error) {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}

// RunNoDiagnostics loads dir under asPath like Run but ignores // want
// comments and asserts the analyzer stays silent. It exists for scope
// tests: the same seeded fixture, impersonated under an out-of-scope
// import path, must produce nothing.
func RunNoDiagnostics(t *testing.T, a *blobvet.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := load.Dir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	RunClean(t, a, pkg)
}

// RunClean asserts a runs with zero diagnostics over an already-loaded
// package; cmd/blob-vet uses the same code path, so this is also the
// repo-level "suite runs clean" assertion helper.
func RunClean(t *testing.T, a *blobvet.Analyzer, pkg *load.Package) {
	t.Helper()
	pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
	}
	for _, d := range pass.Diagnostics() {
		pos := pkg.Fset.Position(d.Pos)
		t.Errorf("%s: %s:%d: %s", a.Name, pos.Filename, pos.Line, d.Message)
	}
}
