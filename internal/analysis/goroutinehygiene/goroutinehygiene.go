// Package goroutinehygiene enforces the concurrency discipline of the
// benchmark's hot paths (internal/blas, internal/core, internal/parallel)
// and of the serving layer (internal/service):
//
//  1. No naked go statements outside a sanctioned Pool type. The
//     interleaved CPU/GPU sweep assumes every kernel's parallelism is
//     funnelled through parallel.Pool, whose worker count mirrors
//     OMP_NUM_THREADS / BLIS_NUM_THREADS (§III-B); an ad-hoc goroutine
//     escapes that budget and perturbs the very timings the benchmark
//     publishes. The service makes the same promise for a different
//     reason: its sweep concurrency is bounded by service.Pool, and a
//     goroutine spawned anywhere else would dodge that bound (and the
//     queue-depth metric). Inside the pool-defining packages (parallel,
//     service), go statements are permitted only in methods of Pool.
//     Test files are exempt from this rule.
//
//  2. wg.Add must lexically precede the go statement whose goroutine
//     calls wg.Done. Add inside the spawned closure is the classic lost-
//     wakeup race: Wait can return before the goroutine registers.
//
//  3. A goroutine closure must not capture an enclosing for/range loop
//     variable in its body; the index is passed as an argument instead
//     (go func(w int) {...}(w)). Go 1.22 made capture memory-safe, but
//     the explicit-argument form keeps worker identity obvious and the
//     code meaning-stable under toolchain downgrades.
package goroutinehygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the goroutinehygiene instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "goroutinehygiene",
	Doc: "hot-path packages: no naked go statements outside parallel.Pool, " +
		"wg.Add before the go it guards, loop indices passed by value",
	Run: run,
}

// hotPaths are the package-path suffixes the analyzer applies to. The
// resilience and fault-injection packages (faultinject, netfault) sit
// on every retried backend call and every proxied network exchange, so
// they carry the same hygiene bar as the kernels they guard.
var hotPaths = []string{
	"internal/blas", "internal/cluster", "internal/core",
	"internal/faultinject", "internal/netfault", "internal/offload",
	"internal/overload", "internal/parallel", "internal/resilience",
	"internal/service",
}

// poolPackages are the hot-path packages that define a sanctioned worker
// pool: go statements are legal there, but only inside Pool's methods.
var poolPackages = []string{"internal/cluster", "internal/parallel", "internal/service"}

func run(pass *blobvet.Pass) error {
	if !inScope(pass.Pkg.Path(), hotPaths) {
		return nil
	}
	definesPool := inScope(pass.Pkg.Path(), poolPackages)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkNakedGo(pass, fn, definesPool)
			checkFuncBody(pass, fn.Body)
		}
	}
	return nil
}

func inScope(path string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// checkNakedGo reports go statements outside the sanctioned Pool methods
// (rule 1). Production files only.
func checkNakedGo(pass *blobvet.Pass, fn *ast.FuncDecl, definesPool bool) {
	if pass.TestFile(fn.Pos()) {
		return
	}
	if definesPool && isPoolMethod(fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(),
				"naked go statement in hot-path function %s; route parallelism through the package's Pool",
				fn.Name.Name)
		}
		return true
	})
}

func isPoolMethod(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Pool"
}

// checkFuncBody applies rules 2 and 3 to one function body (tests
// included — a racy test is still a racy program).
func checkFuncBody(pass *blobvet.Pass, body *ast.BlockStmt) {
	// Gather, in source order, every wg.Add call position per WaitGroup
	// object, excluding Adds that sit inside a go statement's closure
	// (those are themselves rule-2 violations).
	type addSite struct {
		obj types.Object
		pos token.Pos
	}
	var adds []addSite
	var goClosures []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goClosures = append(goClosures, lit)
			}
		}
		if obj := waitGroupCall(pass, n, "Add"); obj != nil {
			adds = append(adds, addSite{obj, n.Pos()})
		}
		return true
	})
	inGoClosure := func(pos token.Pos) bool {
		for _, lit := range goClosures {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			lit, ok := n.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, obj := range doneTargets(pass, lit) {
				guarded := false
				for _, a := range adds {
					if a.obj == obj && a.pos < n.Pos() && !inGoClosure(a.pos) {
						guarded = true
						break
					}
				}
				if !guarded {
					pass.Reportf(n.Pos(),
						"goroutine calls %s.Done but no %s.Add precedes this go statement; Wait may return early",
						obj.Name(), obj.Name())
				}
			}
			checkLoopCapture(pass, body, n, lit)
		}
		return true
	})

	// Rule 2 corollary: Add inside the spawned closure itself.
	for _, a := range adds {
		if inGoClosure(a.pos) {
			pass.Reportf(a.pos,
				"%s.Add inside the spawned goroutine races with Wait; call Add before the go statement",
				a.obj.Name())
		}
	}
}

// waitGroupCall returns the root variable object when n is a call
// wg.<method>() on a sync.WaitGroup, else nil.
func waitGroupCall(pass *blobvet.Pass, n ast.Node, method string) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[recv]
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "WaitGroup" {
		return nil
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Path() != "sync" {
		return nil
	}
	return obj
}

// doneTargets lists the WaitGroup objects whose Done is called (directly
// or via defer) inside the goroutine closure lit.
func doneTargets(pass *blobvet.Pass, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if obj := waitGroupCall(pass, n, "Done"); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// checkLoopCapture reports loop variables of any for/range statement
// enclosing goStmt that are referenced inside the goroutine's body
// (rule 3).
func checkLoopCapture(pass *blobvet.Pass, root ast.Node, goStmt *ast.GoStmt, lit *ast.FuncLit) {
	loopVars := map[types.Object]bool{}
	collect := func(expr ast.Expr) {
		if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	// Find loops whose body spans the go statement.
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n.Pos() > goStmt.Pos() || n.End() < goStmt.End() {
			return false
		}
		switch loop := n.(type) {
		case *ast.ForStmt:
			if init, ok := loop.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					collect(lhs)
				}
			}
		case *ast.RangeStmt:
			if loop.Tok == token.DEFINE {
				collect(loop.Key)
				if loop.Value != nil {
					collect(loop.Value)
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil && loopVars[obj] {
			pass.Reportf(id.Pos(),
				"goroutine closure captures loop variable %s; pass it as an argument (go func(%s ...) {...}(%s))",
				id.Name, id.Name, id.Name)
		}
		return true
	})
}
