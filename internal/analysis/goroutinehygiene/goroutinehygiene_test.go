package goroutinehygiene_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutinehygiene"
)

// TestFixture covers the three rules in a hot-path (non-parallel)
// package: naked go, Add-after-go, loop-variable capture.
func TestFixture(t *testing.T) {
	analysistest.Run(t, goroutinehygiene.Analyzer,
		"../testdata/src/goroutinehygiene", "fixture/internal/core")
}

// TestPoolExemption verifies go statements are sanctioned inside
// parallel.Pool methods and naked elsewhere in package parallel.
func TestPoolExemption(t *testing.T) {
	analysistest.Run(t, goroutinehygiene.Analyzer,
		"../testdata/src/goroutinehygiene_pool", "fixture/internal/parallel")
}

// TestServicePoolExemption does the same for the serving layer: the
// worker pool's Pool methods may spawn, handlers may not.
func TestServicePoolExemption(t *testing.T) {
	analysistest.Run(t, goroutinehygiene.Analyzer,
		"../testdata/src/goroutinehygiene_service", "fixture/internal/service")
}

// TestOutOfScope: the same seeded file outside the hot-path packages
// produces nothing.
func TestOutOfScope(t *testing.T) {
	analysistest.RunNoDiagnostics(t, goroutinehygiene.Analyzer,
		"../testdata/src/goroutinehygiene", "fixture/internal/csvio")
}
