package kernelargcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/kernelargcheck"
)

// TestFixture seeds unvalidated kernels and asserts the analyzer catches
// each one (and stays quiet on the compliant shapes).
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, kernelargcheck.Analyzer,
		"../testdata/src/kernelargcheck", "fixture/internal/blas")
	if len(diags) != 3 {
		t.Errorf("want 3 diagnostics from seeded violations, got %d", len(diags))
	}
}

// TestOutOfScope verifies the analyzer ignores packages outside
// internal/blas even when they contain the same shapes.
func TestOutOfScope(t *testing.T) {
	analysistest.RunNoDiagnostics(t, kernelargcheck.Analyzer,
		"../testdata/src/kernelargcheck", "fixture/somewhere/else")
}
