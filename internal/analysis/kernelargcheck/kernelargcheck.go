// Package kernelargcheck enforces the BLAS argument-validation invariant:
// every exported GEMM/GEMV kernel entry point in internal/blas must invoke
// its check* validator (checkGemm, checkGemv, ...) before it indexes or
// slices any operand.
//
// Why this matters for the benchmark: the paper's offload-threshold tables
// are produced by sweeping every problem size in [s, d] through the same
// kernel entry points the checksum validator uses. A kernel that indexes
// a[i+j*lda] before validating lda/m/n/k turns a mis-sized argument into
// either an out-of-range panic deep inside a micro-kernel (useless
// diagnostics) or — far worse — a silent read of stale memory that still
// produces a plausible checksum. The check* validators panic with the
// offending argument by name, which is the contract the sweep engine and
// tests rely on.
package kernelargcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the kernelargcheck instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "kernelargcheck",
	Doc: "exported GEMM/GEMV kernels in internal/blas must call their check* " +
		"argument validator before indexing or slicing any operand",
	Run: run,
}

// pathScope limits the analyzer to the hand-rolled BLAS package (and to
// fixtures impersonating it).
const pathScope = "internal/blas"

func run(pass *blobvet.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), pathScope) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isKernelEntry(fn) {
				continue
			}
			checkKernel(pass, fn)
		}
	}
	return nil
}

// isKernelEntry reports whether fn is an exported GEMM or GEMV entry point
// (OptSgemm, RefDgemv, DgemmStridedBatched, ...).
func isKernelEntry(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if !ast.IsExported(name) || fn.Recv != nil {
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "gemm") || strings.Contains(lower, "gemv")
}

// checkKernel walks fn's body in source order and reports any slice/array
// indexing that precedes the first call to a check* validator.
func checkKernel(pass *blobvet.Pass, fn *ast.FuncDecl) {
	checkPos := token.NoPos
	var firstIndex ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && strings.HasPrefix(id.Name, "check") {
				if checkPos == token.NoPos {
					checkPos = n.Pos()
				}
			}
		case *ast.IndexExpr:
			if firstIndex == nil && indexable(pass, n.X) {
				firstIndex = n
			}
		case *ast.SliceExpr:
			if firstIndex == nil && indexable(pass, n.X) {
				firstIndex = n
			}
		}
		return true
	})
	switch {
	case checkPos == token.NoPos && firstIndex != nil:
		pass.Reportf(fn.Name.Pos(),
			"exported kernel %s indexes operands but never calls a check* argument validator",
			fn.Name.Name)
	case checkPos == token.NoPos:
		pass.Reportf(fn.Name.Pos(),
			"exported kernel %s has no check* argument validator call", fn.Name.Name)
	case firstIndex != nil && firstIndex.Pos() < checkPos:
		pass.Reportf(firstIndex.Pos(),
			"kernel %s indexes an operand before its check* validator runs", fn.Name.Name)
	}
}

// indexable reports whether expr is a kernel operand buffer: a slice or
// array whose elements are floating point (or a pointer to one, for the
// register-tile accumulators). Indexing other slices — e.g. a batch's
// item descriptors — is not an operand access and does not need to wait
// for the validator.
func indexable(pass *blobvet.Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	basic, ok := elem.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
