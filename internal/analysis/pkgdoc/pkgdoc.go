// Package pkgdoc enforces the repository's documentation contract: every
// package — internal libraries and commands alike — must carry a real
// GoDoc package comment, not nothing and not a stub.
//
// The repo's documentation pass (ISSUE 3) found packages whose only doc
// was the package clause itself; once fixed, this analyzer keeps it
// fixed. The rules:
//
//   - some non-test file of the package must have a package doc comment;
//   - for library packages it must follow the GoDoc convention and start
//     with "Package <name> ...", so godoc renders it on the index;
//   - it must say something: at least MinDocLen characters after comment
//     markers are stripped, which rules out "Package foo." stubs while
//     leaving the wording entirely to the author.
//
// External test packages (package foo_test) and packages consisting only
// of _test.go files are exempt: their documentation lives with the
// package they test.
package pkgdoc

import (
	"strings"

	"repro/internal/analysis/blobvet"
)

// MinDocLen is the minimum length of the package comment's text. It is
// calibrated to be shorter than every real package comment in this
// repository and longer than any placeholder: one honest sentence about
// what the package is for always clears it.
const MinDocLen = 60

// Analyzer is the pkgdoc instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "pkgdoc",
	Doc: "every package must carry a substantial GoDoc package comment " +
		"(\"Package <name> ...\" for libraries) in some non-test file",
	Run: run,
}

func run(pass *blobvet.Pass) error {
	name := pass.Pkg.Name()
	if strings.HasSuffix(name, "_test") {
		return nil
	}
	var docs []string
	reportPos := -1 // index of the first non-test file, for anchoring
	for i, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		if reportPos < 0 {
			reportPos = i
		}
		if f.Doc != nil {
			if text := strings.TrimSpace(f.Doc.Text()); text != "" {
				docs = append(docs, text)
			}
		}
	}
	if reportPos < 0 {
		// Only test files (an in-package test-only package): the
		// documentation obligation belongs to the production package.
		return nil
	}
	anchor := pass.Files[reportPos].Name.Pos()

	if len(docs) == 0 {
		pass.Reportf(anchor,
			"package %s has no package comment; add a GoDoc comment (\"Package %s ...\") to one of its files",
			name, name)
		return nil
	}
	// Go permits the package comment to be split across files; judge the
	// concatenation so a legitimate split is not misread as a stub.
	all := strings.Join(docs, "\n")
	if name != "main" {
		wantPrefix := "Package " + name + " "
		hasPrefix := false
		for _, d := range docs {
			if strings.HasPrefix(d, wantPrefix) {
				hasPrefix = true
				break
			}
		}
		if !hasPrefix {
			pass.Reportf(anchor,
				"package %s's comment does not start with %q; follow the GoDoc convention so the index renders it",
				name, wantPrefix+"...")
		}
	}
	if len(all) < MinDocLen {
		pass.Reportf(anchor,
			"package %s's comment is a stub (%d chars, want >= %d); say what the package is for and how it fits the repo",
			name, len(all), MinDocLen)
	}
	return nil
}
