package pkgdoc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pkgdoc"
)

// TestMissing: a package with no package comment at all is flagged once,
// anchored to its first file's package clause.
func TestMissing(t *testing.T) {
	diags := analysistest.Run(t, pkgdoc.Analyzer,
		"../testdata/src/pkgdoc_missing", "fixture/pkgdocmissing")
	if len(diags) != 1 {
		t.Errorf("want exactly 1 diagnostic, got %d", len(diags))
	}
}

// TestStub: "Package foo." alone is not documentation.
func TestStub(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer,
		"../testdata/src/pkgdoc_stub", "fixture/pkgdocstub")
}

// TestWrongPrefix: a substantial comment that ignores the GoDoc
// "Package <name>" convention is still a violation for library packages.
func TestWrongPrefix(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer,
		"../testdata/src/pkgdoc_wrongprefix", "fixture/pkgdocwrongprefix")
}

// TestOK: a conventional, substantial comment is silent.
func TestOK(t *testing.T) {
	analysistest.RunNoDiagnostics(t, pkgdoc.Analyzer,
		"../testdata/src/pkgdoc_ok", "fixture/pkgdocok")
}

// TestMainPackage: commands document the command, not "Package main", so
// only existence and substance are enforced for main packages.
func TestMainPackage(t *testing.T) {
	analysistest.RunNoDiagnostics(t, pkgdoc.Analyzer,
		"../testdata/src/pkgdoc_main", "fixture/pkgdocmain")
}
