package errcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/errcontract"
)

// TestStrictInSim: under internal/sim the backend consult wrappers are
// where injected faults enter the system, so a chain-severing
// constructor there is error severity.
func TestStrictInSim(t *testing.T) {
	diags := analysistest.Run(t, errcontract.Analyzer,
		"../testdata/src/errcontract", "fixture/internal/sim/backend")
	for _, d := range diags {
		if d.Severity != blobvet.SevError {
			t.Errorf("%q: severity = %s, want %s", d.Message, d.Severity, blobvet.SevError)
		}
	}
}

// TestWarnElsewhere: the same violations elsewhere under internal/ are
// warn severity — frozen by the baseline rather than fixed wholesale.
func TestWarnElsewhere(t *testing.T) {
	diags := analysistest.Run(t, errcontract.Analyzer,
		"../testdata/src/errcontract", "fixture/internal/service")
	for _, d := range diags {
		if d.Severity != blobvet.SevWarn {
			t.Errorf("%q: severity = %s, want %s", d.Message, d.Severity, blobvet.SevWarn)
		}
	}
}

// TestOutOfScope: outside internal/ the analyzer does not apply.
func TestOutOfScope(t *testing.T) {
	analysistest.RunNoDiagnostics(t, errcontract.Analyzer,
		"../testdata/src/errcontract", "fixture/pkg/outside")
}
