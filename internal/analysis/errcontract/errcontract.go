// Package errcontract enforces the repository's error-classification
// contract: errors that cross a package boundary must stay classifiable.
//
// The resilience layer (ISSUE 4) retries a backend call only when
// resilience.IsTransient says the failure is transient, and IsTransient
// walks the error chain via errors.As looking for a Transienter. A bare
// fmt.Errorf("consult failed: %v", err) at any boundary flattens the
// chain to a string and silently turns every injected transient fault
// into a permanent one — the retry loop stops retrying, the breaker
// opens, and a chaos run diverges from its fault-free reference with no
// type error anywhere.
//
// The rule: inside a return statement of an exported function or method,
// constructing an error with fmt.Errorf without a %w verb, or with
// errors.New, severs the chain. Root-cause errors belong in package-level
// sentinels (var ErrX = errors.New(...)) so callers can errors.Is them;
// contextual errors must wrap their cause with %w.
//
// Severity is split by blast radius. In the simulation backends
// (packages under internal/sim), violations are error severity: the
// backend consult wrappers are exactly where fault-injection errors
// enter, so an unclassifiable error there defeats the chaos gate.
// Everywhere else in internal/, violations are warn severity —
// pre-existing sites are frozen in the committed baseline, new code is
// pushed toward sentinels and %w.
package errcontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the errcontract instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "errcontract",
	Doc: "errors returned across package boundaries must wrap a cause (%w) " +
		"or be a named sentinel; bare fmt.Errorf/errors.New in exported " +
		"returns lose the fault class resilience.IsTransient depends on",
	Run: run,
}

func run(pass *blobvet.Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/") {
		return nil
	}
	strict := strings.Contains(path, "internal/sim")
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkFunc(pass, fn, strict)
		}
	}
	return nil
}

func checkFunc(pass *blobvet.Pass, fn *ast.FuncDecl, strict bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are not the exported boundary
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			var msg string
			switch bareErrorCtor(pass, call) {
			case "fmt.Errorf":
				msg = "%s returns fmt.Errorf without %%w; wrap the cause (%%w) or return a package sentinel so resilience.IsTransient can classify it"
			case "errors.New":
				msg = "%s returns an inline errors.New; hoist it to a package-level sentinel (var Err...) so callers can errors.Is it"
			default:
				continue
			}
			if strict {
				pass.Reportf(call.Pos(), msg, fn.Name.Name)
			} else {
				pass.Warnf(call.Pos(), msg, fn.Name.Name)
			}
		}
		return true
	})
}

// bareErrorCtor classifies call as a chain-severing error constructor:
// "fmt.Errorf" (no %w verb) or "errors.New", else "".
func bareErrorCtor(pass *blobvet.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	switch {
	case pkgName.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		if len(call.Args) == 0 {
			return ""
		}
		if format, ok := stringLit(call.Args[0]); ok && !strings.Contains(format, "%w") {
			return "fmt.Errorf"
		}
		return ""
	case pkgName.Imported().Path() == "errors" && sel.Sel.Name == "New":
		return "errors.New"
	}
	return ""
}

// stringLit returns the value of a string literal expression.
func stringLit(expr ast.Expr) (string, bool) {
	lit, ok := expr.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
