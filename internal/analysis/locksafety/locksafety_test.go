package locksafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/locksafety"
)

// TestFixture covers the three rules in a lock-scope package: the leak,
// the double-lock (write and read side), every blocking-under-lock
// shape (chan ops, bare select, Wait, Sleep, caller-supplied func
// values), the one-level inlining, and the sanctioned shapes (select
// with default, notify-after-unlock, go statements, closure scoping).
// Every locksafety finding is a contract violation, so all diagnostics
// must be error severity.
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, locksafety.Analyzer,
		"../testdata/src/locksafety", "fixture/internal/overload")
	for _, d := range diags {
		if d.Severity != blobvet.SevError {
			t.Errorf("%q: severity = %s, want %s", d.Message, d.Severity, blobvet.SevError)
		}
	}
}

// TestOutOfScope: the same seeded fixture outside the concurrency-heavy
// packages produces nothing.
func TestOutOfScope(t *testing.T) {
	analysistest.RunNoDiagnostics(t, locksafety.Analyzer,
		"../testdata/src/locksafety", "fixture/internal/csvio")
}
