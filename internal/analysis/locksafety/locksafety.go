// Package locksafety checks mutex discipline in the concurrency-heavy
// packages (internal/overload, internal/service, internal/parallel,
// internal/resilience): the admission controller, the serving layer's
// cache/singleflight/pool, the worker pool under the BLAS kernels, and
// the retry/breaker stack all guard shared state with sync.Mutex or
// sync.RWMutex, and a single held-too-long or never-released lock there
// stalls every request behind it — precisely the dispatch-path overhead
// the offload advisor exists to avoid.
//
// The analyzer works lexically, per function body (closures are analyzed
// as independent bodies), tracking which mutexes are held between a
// Lock()/RLock() call and the next matching Unlock()/RUnlock() — a
// deferred unlock holds to the end of the body. Three rules:
//
//  1. A function that calls mu.Lock() must contain a matching
//     mu.Unlock() (direct or deferred) somewhere in the same body.
//     Branch-complete path analysis is out of scope; a body with zero
//     unlocks is the leak this rule catches.
//
//  2. No double-lock: locking a mutex that is already held by the same
//     body is a guaranteed deadlock for sync.Mutex (and a
//     writer-starvation hazard for recursive RLock).
//
//  3. No blocking operation while a mutex is held: channel sends and
//     receives (unless inside a select with a default clause), select
//     statements without default, sync.WaitGroup.Wait / sync.Cond.Wait,
//     time.Sleep, and calls through caller-supplied function values
//     (func-typed struct fields or parameters — the callee is outside
//     this package's control and may block or re-enter the lock).
//     Values of the named type resilience.Clock are exempt: reading a
//     clock is non-blocking by contract. Calls to same-package functions
//     are inlined one level deep, so a helper that performs a blocking
//     operation is caught at the locked call site (the breaker's
//     OnStateChange-under-lock bug, found by this rule, hid exactly
//     there).
//
// All three rules are error severity and apply to production files only;
// tests may serialize however they like.
package locksafety

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/blobvet"
)

// Analyzer is the locksafety instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "locksafety",
	Doc: "every Lock has an Unlock, no double-lock, no blocking operation " +
		"(chan op, Wait, Sleep, caller-supplied callback) while a mutex is held",
	Run: run,
}

// scopePaths are the package-path suffixes the analyzer applies to.
var scopePaths = []string{
	"internal/overload", "internal/parallel", "internal/resilience",
	"internal/service",
}

func run(pass *blobvet.Pass) error {
	if !inScope(pass.Pkg.Path(), scopePaths) {
		return nil
	}
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, body := range bodies(fn.Body) {
				checkBody(pass, fn, body, decls)
			}
		}
	}
	return nil
}

func inScope(path string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// packageFuncDecls indexes this package's function declarations by their
// types.Func object, for the one-level inlining of rule 3.
func packageFuncDecls(pass *blobvet.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	return decls
}

// bodies returns body plus the body of every function literal nested in
// it: each is checked as an independent lexical scope, because a
// closure's statements execute on some other goroutine or at some other
// time than its enclosing function's.
func bodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, bodies(lit.Body)...)
			return false
		}
		return true
	})
	return out
}

// event is one lock-relevant occurrence in source order.
type event struct {
	pos  token.Pos
	kind string // "lock", "unlock", "deferUnlock", "block"
	key  string // mutex key for lock events
	desc string // human description for blocking events
}

func checkBody(pass *blobvet.Pass, fn *ast.FuncDecl, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl) {
	events := collectEvents(pass, body, decls, true)

	// Rule 1: a Lock with no Unlock anywhere in the body.
	unlocked := map[string]bool{}
	for _, e := range events {
		if e.kind == "unlock" || e.kind == "deferUnlock" {
			unlocked[e.key] = true
		}
	}
	reportedLeak := map[string]bool{}
	for _, e := range events {
		if e.kind == "lock" && !unlocked[e.key] && !reportedLeak[e.key] {
			reportedLeak[e.key] = true
			pass.Reportf(e.pos,
				"%s locks %s but never unlocks it in this body; add an Unlock (or defer it)",
				fn.Name.Name, e.key)
		}
	}

	// Rules 2 and 3: simulate held state in source order. A lexical
	// unlock releases the lock even when it sits in one branch of a
	// conditional — an under-approximation that trades missed findings
	// for zero branch-merge false positives.
	held := map[string]token.Pos{}
	for _, e := range events {
		switch e.kind {
		case "lock":
			if _, ok := held[e.key]; ok {
				pass.Reportf(e.pos,
					"%s locks %s while already holding it; deadlock (sync mutexes are not reentrant)",
					fn.Name.Name, e.key)
				continue
			}
			held[e.key] = e.pos
		case "unlock":
			delete(held, e.key)
		case "deferUnlock":
			// Lock stays held to the end of the body; nothing to do.
		case "block":
			if len(held) == 0 {
				continue
			}
			// One report per site; pick the alphabetically first held
			// mutex so the message is deterministic.
			keys := make([]string, 0, len(held))
			for key := range held {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			pass.Reportf(e.pos,
				"%s while %s is held in %s; release the lock first (collect under lock, act after)",
				e.desc, keys[0], fn.Name.Name)
		}
	}
}

// collectEvents walks body in source order, recording lock transitions
// and blocking operations. Nested function literals are skipped (they are
// separate scopes); go statements are skipped entirely (the spawned work
// does not block the lock holder); deferred calls other than Unlock are
// skipped (they run after the body's own unlocks). When inline is true,
// calls to same-package functions are scanned one level deep for blocking
// operations.
func collectEvents(pass *blobvet.Pass, body *ast.BlockStmt, decls map[*types.Func]*ast.FuncDecl, inline bool) []event {
	var events []event
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.DeferStmt:
				if key, op, ok := mutexOp(pass, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
					events = append(events, event{pos: n.Pos(), kind: "deferUnlock", key: lockKey(key, op)})
				}
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, clause := range n.Body.List {
					if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					events = append(events, event{pos: n.Pos(), kind: "block", desc: "select without default"})
				}
				// Don't descend: comm clauses' chan ops are part of the
				// select; clause bodies run after it unblocks, but a
				// lock held across the select is already reported.
				for _, clause := range n.Body.List {
					if comm, ok := clause.(*ast.CommClause); ok {
						for _, stmt := range comm.Body {
							walk(stmt)
						}
					}
				}
				return false
			case *ast.SendStmt:
				events = append(events, event{pos: n.Pos(), kind: "block", desc: "channel send"})
				return true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					events = append(events, event{pos: n.Pos(), kind: "block", desc: "channel receive"})
				}
				return true
			case *ast.CallExpr:
				if key, op, ok := mutexOp(pass, n); ok {
					switch op {
					case "Lock", "RLock":
						events = append(events, event{pos: n.Pos(), kind: "lock", key: lockKey(key, op)})
					case "Unlock", "RUnlock":
						events = append(events, event{pos: n.Pos(), kind: "unlock", key: lockKey(key, op)})
					}
					return true
				}
				if desc, ok := blockingCall(pass, n); ok {
					events = append(events, event{pos: n.Pos(), kind: "block", desc: desc})
					return true
				}
				if inline {
					if callee, ok := calleeDecl(pass, n, decls); ok {
						for _, e := range collectEvents(pass, callee.Body, decls, false) {
							if e.kind == "block" {
								events = append(events, event{pos: n.Pos(), kind: "block",
									desc: e.desc + " inside " + callee.Name.Name + " (called here)"})
							}
						}
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)
	// ast.Inspect is pre-order, which matches source order for the events
	// we record (all are anchored at their node's Pos).
	return events
}

// mutexOp reports whether call is <expr>.Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver expression's lexical
// key.
func mutexOp(pass *blobvet.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := pass.Info.Types[sel.X]
	if !found {
		return "", "", false
	}
	if !isMutexType(tv.Type) {
		return "", "", false
	}
	return exprString(pass.Fset, sel.X), sel.Sel.Name, true
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		// A named type embedding sync.Mutex promotes Lock/Unlock; treat
		// any type whose method set includes them via sync as opaque and
		// skip — the embedded-mutex idiom is rare in this repo.
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockKey distinguishes the read and write sides of an RWMutex: RLock
// pairs with RUnlock, Lock with Unlock.
func lockKey(key, op string) string {
	if strings.HasPrefix(op, "R") {
		return key + " (read)"
	}
	return key
}

// blockingCall classifies calls that block by contract: WaitGroup/Cond
// Wait, time.Sleep, and calls through caller-supplied function values.
func blockingCall(pass *blobvet.Pass, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// wg.Wait() / cond.Wait()
		if sel.Sel.Name == "Wait" {
			if tv, ok := pass.Info.Types[sel.X]; ok && isSyncWaiter(tv.Type) {
				return exprString(pass.Fset, sel.X) + ".Wait()", true
			}
		}
		// time.Sleep(...)
		if sel.Sel.Name == "Sleep" {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkgName.Imported().Path() == "time" {
					return "time.Sleep", true
				}
			}
		}
		// obj.field(...) where field is a caller-supplied func value.
		if isFuncValueField(pass, sel) {
			return "call through caller-supplied func value " + exprString(pass.Fset, sel), true
		}
	}
	// f(...) where f is a func-typed variable — a parameter or a local
	// holding a value the lock holder cannot bound.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, ok := pass.Info.Uses[id].(*types.Var); ok && !obj.IsField() && isPlainFuncType(obj.Type()) {
			return "call through func value " + id.Name, true
		}
	}
	return "", false
}

func isSyncWaiter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "WaitGroup" || obj.Name() == "Cond")
}

// isFuncValueField reports whether sel names a func-typed struct field —
// a value the caller injected, whose behaviour this package cannot bound.
// The named type resilience.Clock is exempt: a clock read is non-blocking
// by its documented contract.
func isFuncValueField(pass *blobvet.Pass, sel *ast.SelectorExpr) bool {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	return isPlainFuncType(selection.Obj().Type())
}

// isPlainFuncType reports whether t is a func type that is not an
// exempted named type (resilience.Clock).
func isPlainFuncType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Clock" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/resilience") {
			return false
		}
	}
	_, isFunc := t.Underlying().(*types.Signature)
	return isFunc
}

// calleeDecl resolves a call to a same-package function or method
// declaration, for one-level inlining.
func calleeDecl(pass *blobvet.Pass, call *ast.CallExpr, decls map[*types.Func]*ast.FuncDecl) (*ast.FuncDecl, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil, false
	}
	fnObj, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	decl, ok := decls[fnObj]
	return decl, ok
}

// exprString renders a receiver expression compactly for diagnostics and
// lock keys ("c.mu", "b.mu").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}
