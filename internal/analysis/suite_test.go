package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/load"
)

// TestRepositoryIsClean runs the full blob-vet suite over every package
// of this module, tests included, and fails on any diagnostic. This is
// the same gate scripts/verify.sh applies via cmd/blob-vet, folded into
// `go test ./...` so the invariants cannot rot unnoticed.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate module root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	pkgs, err := load.Module(root, true, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	for _, pkg := range pkgs {
		for _, a := range analysis.All() {
			analysistest.RunClean(t, a, pkg)
		}
	}
}
