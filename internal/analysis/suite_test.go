package analysis_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/load"
)

// TestRepositoryIsClean runs the full blob-vet suite over every package
// of this module, tests included, and fails on any active finding: an
// error-severity diagnostic, a warn-severity diagnostic not covered by
// the committed baseline (blobvet.baseline.json), or a malformed
// //blobvet: directive. This is the same gate scripts/verify.sh applies
// via cmd/blob-vet, folded into `go test ./...` so the invariants
// cannot rot unnoticed.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate module root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))

	// A missing baseline means every warn finding counts; a malformed
	// one is a hard failure, exactly as in cmd/blob-vet.
	var bl *blobvet.Baseline
	data, err := os.ReadFile(filepath.Join(root, "blobvet.baseline.json"))
	switch {
	case err == nil:
		bl, err = blobvet.ParseBaseline(data)
		if err != nil {
			t.Fatalf("parsing baseline: %v", err)
		}
	case errors.Is(err, fs.ErrNotExist):
	default:
		t.Fatalf("reading baseline: %v", err)
	}

	pkgs, err := load.Module(root, true, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
		}
		report := func(d blobvet.Diagnostic) {
			f := blobvet.NewFinding(pkg.Fset, root, d)
			if bl.Covers(f) {
				return
			}
			t.Errorf("%s:%d: [%s/%s] %s", f.File, f.Line, f.Analyzer, f.Severity, f.Message)
		}
		for _, d := range blobvet.CheckDirectives(pkg.Fset, pkg.Files) {
			report(d)
		}
		for _, a := range analysis.All() {
			pass := blobvet.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.Diagnostics() {
				report(d)
			}
		}
	}
	// Stale entries don't fail the suite (cmd/blob-vet surfaces them on
	// stderr every run) but they should be visible here too.
	for _, stale := range bl.Unused() {
		t.Logf("stale baseline entry: %s [%s] %s", stale.File, stale.Analyzer, stale.Message)
	}
}
