package hotalloc_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/hotalloc"
)

// TestFixture covers the marker-scoped allocation rules: certain
// allocations (&composite, slice/map literals, make/new, capturing
// closures) are error severity; cost advisories (growing append,
// interface boxing in a loop) are warn severity and baseline-eligible.
// Scope is the //blobvet:hotpath marker, not the import path, so the
// fixture also seeds an unmarked function that must stay silent.
func TestFixture(t *testing.T) {
	diags := analysistest.Run(t, hotalloc.Analyzer,
		"../testdata/src/hotalloc", "fixture/internal/blas")
	for _, d := range diags {
		want := blobvet.SevError
		if strings.Contains(d.Message, "may grow its backing array") ||
			strings.Contains(d.Message, "boxes per iteration") {
			want = blobvet.SevWarn
		}
		if d.Severity != want {
			t.Errorf("%q: severity = %s, want %s", d.Message, d.Severity, want)
		}
	}
}
