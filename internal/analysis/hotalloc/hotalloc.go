// Package hotalloc keeps functions marked //blobvet:hotpath free of
// per-call heap allocation. The offload advisor's consumers intercept
// every BLAS call ("Performant Automatic BLAS Offloading on Unified
// Memory Architecture", PAPERS.md), so the code on the decision path —
// the blas micro-kernels, the overload admission decision, the service
// cache lookup — is the product's overhead: an allocation per call there
// is a GC tax on every intercepted GEMM.
//
// A function opts in by carrying the marker in or directly above its doc
// comment:
//
//	//blobvet:hotpath
//	func microKernel32(...)
//
// Inside a marked function's body, error severity:
//
//   - &T{...}: an address-taken composite literal escapes to the heap;
//   - []T{...} and map[K]V{...} literals: slice and map literals allocate
//     their backing store;
//   - make(...) and new(...): explicit allocation;
//   - a function literal that captures an enclosing variable: a capturing
//     closure allocates its environment (a capture-free literal compiles
//     to a static function and is permitted).
//
// Warn severity (baseline-eligible — these are costs, not certainties):
//
//   - append whose destination is not an explicit reslice (s[:0], s[:n])
//     of an existing backing array: growth may reallocate; the fix is a
//     preallocated scratch buffer resliced per call;
//   - an explicit conversion to an interface type inside a loop body:
//     boxing allocates per iteration.
//
// The marker is load-bearing documentation too: it tells the next editor
// this function's allocation profile is part of its contract.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/blobvet"
)

// Marker is the doc-comment directive that opts a function into the
// allocation-free contract.
const Marker = "//blobvet:hotpath"

// Analyzer is the hotalloc instance registered with blob-vet.
var Analyzer = &blobvet.Analyzer{
	Name: "hotalloc",
	Doc: "//blobvet:hotpath functions must not heap-allocate: no &composite, " +
		"slice/map literals, make/new, capturing closures; append must reslice " +
		"a preallocated buffer",
	Run: run,
}

func run(pass *blobvet.Pass) error {
	for _, file := range pass.Files {
		marked := markedLines(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isHotpath(pass, fn, marked) {
				continue
			}
			checkHotpath(pass, fn)
		}
	}
	return nil
}

// markedLines records the line of every //blobvet:hotpath comment in the
// file, so a marker separated from the func by a blank-line-free gap
// still attaches even when the parser did not fold it into Doc.
func markedLines(pass *blobvet.Pass, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if c.Text == Marker {
				lines[pass.Fset.Position(c.Slash).Line] = true
			}
		}
	}
	return lines
}

func isHotpath(pass *blobvet.Pass, fn *ast.FuncDecl, marked map[int]bool) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if c.Text == Marker {
				return true
			}
		}
	}
	return marked[pass.Fset.Position(fn.Pos()).Line-1]
}

func checkHotpath(pass *blobvet.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	var loops []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})
	inLoop := func(pos ast.Node) bool {
		for _, l := range loops {
			if l.Pos() <= pos.Pos() && pos.End() <= l.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite literal in hotpath %s escapes to the heap; use a preallocated value", name)
					return false // don't double-report the inner literal
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal in hotpath %s allocates its backing array", name)
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal in hotpath %s allocates", name)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch {
				case isBuiltin(pass, id, "make"):
					pass.Reportf(n.Pos(), "make in hotpath %s allocates per call; hoist to a preallocated field", name)
				case isBuiltin(pass, id, "new"):
					pass.Reportf(n.Pos(), "new in hotpath %s allocates per call; hoist to a preallocated field", name)
				case isBuiltin(pass, id, "append"):
					if len(n.Args) > 0 && !isReslice(n.Args[0]) {
						pass.Warnf(n.Pos(),
							"append in hotpath %s may grow its backing array; append into a preallocated buffer resliced to zero (buf[:0])", name)
					}
				}
			}
			// Explicit conversion to an interface type inside a loop:
			// per-iteration boxing.
			if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() && inLoop(n) {
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
					pass.Warnf(n.Pos(),
						"interface conversion in a loop of hotpath %s boxes per iteration; convert once outside the loop", name)
				}
			}
		case *ast.FuncLit:
			if captures(pass, fn, n) {
				pass.Reportf(n.Pos(),
					"closure in hotpath %s captures enclosing variables and allocates its environment; pass values as arguments or hoist the func", name)
			}
			return false // the literal's own body is not the hot path
		}
		return true
	})
}

// isBuiltin reports whether id resolves to the named Go builtin.
func isBuiltin(pass *blobvet.Pass, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// isReslice reports whether expr is a slice expression like s[:0] or
// s[a:b] — appending into an existing backing array rather than a fresh
// slice value.
func isReslice(expr ast.Expr) bool {
	_, ok := expr.(*ast.SliceExpr)
	return ok
}

// captures reports whether lit references any variable declared in fn but
// outside lit — the condition under which the closure needs a heap
// environment.
func captures(pass *blobvet.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		pos := v.Pos()
		// Declared inside fn but outside the literal -> captured.
		if fn.Pos() <= pos && pos < fn.End() && !(lit.Pos() <= pos && pos < lit.End()) {
			captured = true
			return false
		}
		return true
	})
	return captured
}
