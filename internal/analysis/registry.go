// Package analysis aggregates the blob-vet analyzer suite: the custom
// static checks that machine-enforce the benchmark's numeric and
// concurrency invariants (see each analyzer's package doc for the paper
// rationale). cmd/blob-vet drives them from the command line and
// suite_test.go keeps the repository itself clean under `go test`.
package analysis

import (
	"repro/internal/analysis/blobvet"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/errcontract"
	"repro/internal/analysis/floatcompare"
	"repro/internal/analysis/goroutinehygiene"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/kernelargcheck"
	"repro/internal/analysis/locksafety"
	"repro/internal/analysis/pkgdoc"
)

// All returns the full analyzer suite in stable order.
func All() []*blobvet.Analyzer {
	return []*blobvet.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		errcontract.Analyzer,
		floatcompare.Analyzer,
		goroutinehygiene.Analyzer,
		hotalloc.Analyzer,
		kernelargcheck.Analyzer,
		locksafety.Analyzer,
		pkgdoc.Analyzer,
	}
}
