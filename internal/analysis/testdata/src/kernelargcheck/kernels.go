// Fixture for the kernelargcheck analyzer. Loaded by analysistest with
// import path "fixture/internal/blas" so the path-scoped analyzer fires.
// Seeded violations carry // want expectations; the compliant kernels at
// the bottom must stay diagnostic-free.
package blas

import "fmt"

func checkGemm(m, n, k, lda, ldb, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("blas: negative dim m=%d n=%d k=%d", m, n, k))
	}
}

func checkGemv(m, n, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative dim")
	}
}

// BadGemmNoCheck indexes its operands without ever validating them.
func BadGemmNoCheck(m, n, k int, a, b, c []float64, lda, ldb, ldc int) { // want `indexes operands but never calls a check\* argument validator`
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] = a[i] * b[j]
		}
	}
}

// BadGemvIndexBeforeCheck validates, but only after touching memory.
func BadGemvIndexBeforeCheck(m, n int, a, x, y []float64, lda int) {
	y[0] = x[0] // want `indexes an operand before its check\* validator runs`
	checkGemv(m, n, lda)
	for i := 1; i < m; i++ {
		y[i] = a[i] * x[0]
	}
}

// BadGemvNoIndex never validates; it has no indexing but still must call
// its validator before delegating.
func BadGemvNoIndex(m, n int, a, x, y []float64, lda int) { // want `has no check\* argument validator call`
	GoodGemv(m, n, a, x, y, lda)
}

// GoodGemm is the compliant shape: validate first, index after.
func GoodGemm(m, n, k int, a, b, c []float64, lda, ldb, ldc int) {
	checkGemm(m, n, k, lda, ldb, ldc)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] += a[i] * b[j]
		}
	}
}

// GoodGemv validates before its first slice access.
func GoodGemv(m, n int, a, x, y []float64, lda int) {
	checkGemv(m, n, lda)
	for i := 0; i < m; i++ {
		y[i] = a[i] * x[0]
	}
}

// unexportedGemmHelper is out of scope: only exported entry points carry
// the validation contract.
func unexportedGemmHelper(c []float64) {
	c[0] = 0
}

// SyrkLike is out of scope: not a GEMM/GEMV entry point.
func SyrkLike(c []float64) {
	c[0] = 1
}
