// Fixture for the hotalloc analyzer. Scope is marker-based rather than
// path-based, so the import path does not matter; only functions carrying
// //blobvet:hotpath are checked.
package blas

type tile struct {
	data []float64
	n    int
}

// AddrComposite escapes a composite literal to the heap.
//
//blobvet:hotpath
func AddrComposite(n int) *tile {
	return &tile{n: n} // want `&composite literal in hotpath AddrComposite escapes to the heap`
}

// Literals allocates a slice and a map literal per call.
//
//blobvet:hotpath
func Literals() int {
	s := []int{1, 2, 3}         // want `slice literal in hotpath Literals allocates its backing array`
	m := map[string]int{"a": 1} // want `map literal in hotpath Literals allocates`
	return len(s) + len(m)
}

// Builtins allocates with make and new.
//
//blobvet:hotpath
func Builtins(n int) []float64 {
	p := new(tile)              // want `new in hotpath Builtins allocates per call`
	p.data = make([]float64, n) // want `make in hotpath Builtins allocates per call`
	return p.data
}

// GrowingAppend may reallocate: the destination is a plain slice value,
// not a reslice of a preallocated buffer.
//
//blobvet:hotpath
func GrowingAppend(dst, src []float64) []float64 {
	return append(dst, src...) // want `append in hotpath GrowingAppend may grow its backing array`
}

// ScratchAppend is the sanctioned shape: append into buf[:0] reuses the
// backing array.
//
//blobvet:hotpath
func ScratchAppend(buf, src []float64) []float64 {
	return append(buf[:0], src...)
}

// Boxing converts to an interface type inside the loop: one allocation
// per iteration.
//
//blobvet:hotpath
func Boxing(xs []int) int {
	total := 0
	for _, x := range xs {
		v := any(x) // want `interface conversion in a loop of hotpath Boxing boxes per iteration`
		if n, ok := v.(int); ok {
			total += n
		}
	}
	return total
}

// CapturingClosure allocates its environment to carry total.
//
//blobvet:hotpath
func CapturingClosure(xs []int) int {
	total := 0
	add := func(x int) { // want `closure in hotpath CapturingClosure captures enclosing variables`
		total += x
	}
	for _, x := range xs {
		add(x)
	}
	return total
}

// StaticClosure captures nothing; it compiles to a static function.
//
//blobvet:hotpath
func StaticClosure(xs []int, f func(int) int) int {
	g := func(x int) int { return x * 2 }
	total := 0
	for _, x := range xs {
		total += f(g(x))
	}
	return total
}

//blobvet:hotpath
func markerAboveLine(n int) []int {
	return make([]int, n) // want `make in hotpath markerAboveLine allocates per call`
}

// unmarked is ordinary code: it may allocate freely.
func unmarked(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}
