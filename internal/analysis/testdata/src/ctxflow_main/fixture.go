// Fixture for ctxflow's package-main exemption: the program entry point
// is the one production place allowed to mint a root context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
