// Fixture isolating ctxflow rule 3: one deaf loop, nothing else. Loaded
// as "fixture/internal/core" it produces exactly one warn; loaded as
// "fixture/internal/csvio" (outside the loop-scope packages) it is clean.
package core

import "context"

func work() {}

// Drain loops and calls without consulting its context.
func Drain(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want `loop in Drain never consults its context`
		work()
	}
}
