// Fixture for the errcontract analyzer. Loaded as
// "fixture/internal/sim/backend" every finding is error severity (the
// chaos gate depends on classifiable faults there); as
// "fixture/internal/service" the same findings are warn severity; as
// "fixture/pkg/outside" the analyzer is out of scope and silent.
package backend

import (
	"errors"
	"fmt"
)

// ErrBad is the sanctioned shape for a root cause: a package sentinel.
var ErrBad = errors.New("backend: bad input")

// Flatten severs the chain: %v stringifies the cause, so errors.Is and
// resilience.IsTransient stop seeing it.
func Flatten(err error) error {
	return fmt.Errorf("consult failed: %v", err) // want `Flatten returns fmt\.Errorf without %w`
}

// Inline mints an unmatchable one-off error.
func Inline() error {
	return errors.New("backend: something went wrong") // want `Inline returns an inline errors\.New; hoist it to a package-level sentinel`
}

// Wrap keeps the chain intact; %w is the contract.
func Wrap(err error) error {
	return fmt.Errorf("consult failed: %w", err)
}

// Sentinel wraps the package sentinel; callers can errors.Is it.
func Sentinel(name string) error {
	return fmt.Errorf("%w: %q", ErrBad, name)
}

// unexported boundaries are not the exported surface.
func flattenPrivately(err error) error {
	return fmt.Errorf("internal detail: %v", err)
}

// ClosureReturn: the closure's return is not the exported boundary.
func ClosureReturn() func() error {
	return func() error {
		return errors.New("closure-local")
	}
}
