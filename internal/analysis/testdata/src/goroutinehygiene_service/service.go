// Fixture for goroutinehygiene's service.Pool exemption, loaded with
// import path "fixture/internal/service": the serving layer's worker
// pool may spawn goroutines from Pool methods, but a handler (or any
// other function) that forks its own goroutine dodges the sweep
// concurrency bound and is flagged.
package service

import "sync"

type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// start spawns the workers: a Pool method, so its go statements are
// sanctioned.
func (p *Pool) start(workers int) {
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
}

// handleSweep is not a Pool method: spawning the sweep directly instead
// of submitting it to the pool escapes the concurrency bound.
func handleSweep(sweep func()) {
	done := make(chan struct{})
	go func() { // want `naked go statement in hot-path function handleSweep`
		sweep()
		close(done)
	}()
	<-done
}
