// Fixture for the ctxflow analyzer, loaded with import path
// "fixture/internal/core" (a loop-scope package, so rule 3 applies) and
// re-loaded as "fixture/internal/csvio" by the scope test (where only
// rules 1 and 2 fire).
package core

import "context"

// Sweep violates rule 1: the context hides behind the dimension.
func Sweep(dim int, ctx context.Context) error { // want `exported Sweep takes context.Context as parameter 2; the context must be the first parameter`
	_ = ctx
	_ = dim
	return nil
}

// SweepOK has the context first; rule 1 stays silent.
func SweepOK(ctx context.Context, dim int) error {
	_ = ctx
	_ = dim
	return nil
}

// unexportedOrder is not the exported surface; rule 1 ignores it.
func unexportedOrder(dim int, ctx context.Context) {
	_ = ctx
	_ = dim
}

// detach violates rule 2 twice: Background and TODO both sever the chain.
func detach() context.Context {
	c := context.Background() // want `context.Background\(\) severs the cancellation chain`
	_ = context.TODO()        // want `context.TODO\(\) severs the cancellation chain`
	return c
}

// sanctionedDetach carries the justified allow; nothing is reported.
func sanctionedDetach() context.Context {
	//blobvet:allow ctxflow: fixture's deliberate detachment case
	return context.Background()
}

func step() {}

// DeafLoop violates rule 3: it takes a context, loops and calls, but the
// loop never consults any context value.
func DeafLoop(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want `loop in DeafLoop never consults its context`
		step()
	}
}

// ListeningLoop checks ctx.Err each iteration; rule 3 stays silent.
func ListeningLoop(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		step()
	}
	return nil
}

// CallFreeLoop makes no calls; a pure compute loop need not poll.
func CallFreeLoop(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// NoCtxLoop takes no context, so rule 3 has nothing to enforce.
func NoCtxLoop(n int) {
	for i := 0; i < n; i++ {
		step()
	}
}
