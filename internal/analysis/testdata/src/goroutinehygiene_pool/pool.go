// Fixture for goroutinehygiene's parallel.Pool exemption, loaded with
// import path "fixture/internal/parallel": go statements are legal inside
// Pool methods and flagged everywhere else in the package.
package parallel

import "sync"

type Pool struct {
	workers int
}

// For may spawn workers: it is a Pool method, the one sanctioned home of
// go statements in the hot paths.
func (p *Pool) For(n int, body func(w int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	wg.Wait()
}

// Helper is not a Pool method, so its goroutine is naked even inside
// package parallel.
func Helper(f func()) {
	done := make(chan struct{})
	go func() { // want `naked go statement in hot-path function Helper`
		f()
		close(done)
	}()
	<-done
}
