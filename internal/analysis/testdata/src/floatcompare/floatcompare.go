// Fixture for the floatcompare analyzer: seeded FP-equality bugs with
// want expectations, the allowed sentinel/NaN idioms, and the two
// suppression directive forms.
package fixture

import "math"

func violations(got, want float64, xs []float32) bool {
	if got == want { // want `floating-point == comparison`
		return true
	}
	if got != 42.0 { // want `floating-point != comparison`
		return false
	}
	if xs[0] == xs[1] { // want `floating-point == comparison`
		return true
	}
	var threshold float64 = 0.5
	return got == threshold // want `floating-point == comparison`
}

func allowedSentinels(alpha, beta float64) bool {
	if beta == 0 { // Beta=0 contract: exact sentinel, allowed
		return true
	}
	if beta != 1 {
		return false
	}
	return alpha == 0.0
}

func allowedNaNProbe(x float64) bool {
	return x != x
}

func allowedTolerance(got, want float64) bool {
	return math.Abs(got-want) <= 1e-12
}

func suppressed(a, b float64) bool {
	if a == b { //blobvet:allow floatcompare -- exercised by the framework test
		return true
	}
	//blobvet:allow floatcompare -- standalone form covers the next line
	return a != b
}

func intsAreFine(i, j int) bool { return i == j }
