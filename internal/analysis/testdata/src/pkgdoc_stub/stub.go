// Package pkgdocstub is small.
package pkgdocstub // want `comment is a stub`

func Sub(a, b int) int { return a - b }
