// This package multiplies integers together and exists so the analyzer can
// check that a substantial comment still fails when it ignores the GoDoc
// "Package <name> ..." convention.
package pkgdocwrongprefix // want `does not start with "Package pkgdocwrongprefix \.\.\."`

func Mul(a, b int) int { return a * b }
