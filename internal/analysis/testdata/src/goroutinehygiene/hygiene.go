// Fixture for the goroutinehygiene analyzer, loaded with import path
// "fixture/internal/core" (a hot-path package, not package parallel, so
// every go statement is naked).
package core

import "sync"

func nakedGo(n int) {
	done := make(chan struct{})
	go func() { // want `naked go statement in hot-path function nakedGo`
		close(done)
	}()
	<-done
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() { // want `naked go statement` `goroutine calls wg.Done but no wg.Add precedes this go statement`
		wg.Add(1) // want `wg.Add inside the spawned goroutine races with Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want `naked go statement` `goroutine calls wg.Done but no wg.Add precedes this go statement`
		defer wg.Done()
	}()
	wg.Wait()
}

func capturedLoopIndex(out []int) {
	var wg sync.WaitGroup
	for i := 0; i < len(out); i++ {
		wg.Add(1)
		go func() { // want `naked go statement`
			defer wg.Done()
			out[i] = i // want `captures loop variable i` `captures loop variable i`
		}()
	}
	wg.Wait()
}

func compliantShape(out []int) {
	var wg sync.WaitGroup
	wg.Add(len(out))
	for i := 0; i < len(out); i++ {
		go func(i int) { // want `naked go statement`
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
}
