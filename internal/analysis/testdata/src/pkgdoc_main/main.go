// pkgdocmain is a command fixture: main packages document the command
// ("what does running this do"), so the "Package main ..." prefix rule
// does not apply — but the comment must still exist and say something.
package main

func main() {}
