// Fixture for the determinism analyzer, loaded with import path
// "fixture/internal/sim/resultpath" so the sim-scoped checks fire.
package resultpath

import (
	"math/rand"
	"sort"
	"time"
)

// Result is a stand-in for a sweep result row.
type Result struct {
	Dim     int
	Seconds float64
}

func wallClockLeak() float64 {
	start := time.Now()          // want `time.Now reads the wall clock inside the simulator`
	elapsed := time.Since(start) // want `time.Since reads the wall clock inside the simulator`
	return elapsed.Seconds()
}

func globalRandLeak() float64 {
	return rand.Float64() // want `rand.Float64 uses the global math/rand source`
}

func seededRandOK() float64 {
	rng := rand.New(rand.NewSource(42))
	return rng.Float64()
}

func mapOrderLeak(bySize map[int]Result) []Result {
	var out []Result
	for _, r := range bySize { // want `map iteration order is randomized per process`
		out = append(out, r)
	}
	return out
}

func sortedKeysOK(bySize map[int]Result) []Result {
	keys := make([]int, 0, len(bySize))
	for k := range bySize { // exempt: pure key collection feeding the sort below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Result, 0, len(keys))
	for _, k := range keys {
		out = append(out, bySize[k])
	}
	return out
}
