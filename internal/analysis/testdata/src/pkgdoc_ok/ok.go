// Package pkgdocok divides integers and demonstrates the documentation
// contract: a GoDoc-conventional, more-than-one-stub-sentence package
// comment in a non-test file satisfies the pkgdoc analyzer.
package pkgdocok

// Div returns a/b; callers must ensure b is non-zero.
func Div(a, b int) int { return a / b }
