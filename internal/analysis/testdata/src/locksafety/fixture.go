// Fixture for the locksafety analyzer, loaded with import path
// "fixture/internal/overload" (a lock-scope package) and re-loaded as
// "fixture/internal/csvio" by the scope test (clean there).
package overload

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	cb func(int) // caller-supplied callback
	ch chan int
	n  int
}

// Leak violates rule 1: the lock is taken and never released.
func (g *guarded) Leak() {
	g.mu.Lock() // want `Leak locks g\.mu but never unlocks it in this body`
	g.n++
}

// DoubleLock violates rule 2: relocking a held sync.Mutex deadlocks.
func (g *guarded) DoubleLock() {
	g.mu.Lock()
	g.mu.Lock() // want `DoubleLock locks g\.mu while already holding it; deadlock`
	g.n++
	g.mu.Unlock()
	g.mu.Unlock()
}

// DoubleRLock violates rule 2 on the read side.
func (g *guarded) DoubleRLock() int {
	g.rw.RLock()
	g.rw.RLock() // want `DoubleRLock locks g\.rw \(read\) while already holding it`
	v := g.n
	g.rw.RUnlock()
	g.rw.RUnlock()
	return v
}

// SendUnderLock violates rule 3: a channel send can block forever while
// every other goroutine queues behind the mutex.
func (g *guarded) SendUnderLock(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- v // want `channel send while g\.mu is held in SendUnderLock`
}

// ReceiveUnderLock: same hazard, receive side.
func (g *guarded) ReceiveUnderLock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want `channel receive while g\.mu is held in ReceiveUnderLock`
}

// SelectUnderLock: a select without a default blocks by design.
func (g *guarded) SelectUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select without default while g\.mu is held in SelectUnderLock`
	case v := <-g.ch:
		g.n = v
	}
}

// PollUnderLock is fine: select with a default never blocks.
func (g *guarded) PollUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-g.ch:
		g.n = v
	default:
	}
}

// WaitUnderLock: sync.WaitGroup.Wait while holding the lock.
func (g *guarded) WaitUnderLock(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `wg\.Wait\(\) while g\.mu is held in WaitUnderLock`
}

// SleepUnderLock: time.Sleep while holding the lock.
func (g *guarded) SleepUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.mu is held in SleepUnderLock`
}

// CallbackUnderLock: invoking a caller-supplied func field under the lock
// hands control to code that may block or re-enter the mutex.
func (g *guarded) CallbackUnderLock() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cb(g.n) // want `call through caller-supplied func value g\.cb while g\.mu is held in CallbackUnderLock`
}

// ParamUnderLock: same for a func-typed parameter.
func (g *guarded) ParamUnderLock(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f() // want `call through func value f while g\.mu is held in ParamUnderLock`
}

// NotifyAfterUnlock is the sanctioned shape: collect under the lock, act
// after releasing it.
func (g *guarded) NotifyAfterUnlock() {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	g.cb(n)
}

func blockingHelper() {
	time.Sleep(time.Millisecond)
}

// InlinedBlocking is caught through the one-level inlining of rule 3: the
// blocking operation hides one call away.
func (g *guarded) InlinedBlocking() {
	g.mu.Lock()
	defer g.mu.Unlock()
	blockingHelper() // want `time\.Sleep inside blockingHelper \(called here\) while g\.mu is held in InlinedBlocking`
}

// SpawnUnderLock is fine: the goroutine's send happens on another
// goroutine and does not block the lock holder.
func (g *guarded) SpawnUnderLock(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		g.ch <- v
	}()
	g.n = v
}

// ClosureScopes: a closure is its own lexical scope — its lock/unlock
// pair does not leak into the enclosing body, and vice versa.
func (g *guarded) ClosureScopes() func() {
	inc := func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.n++
	}
	return inc
}
