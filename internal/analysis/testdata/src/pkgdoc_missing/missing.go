package pkgdocmissing // want `package pkgdocmissing has no package comment`

// Add is documented, but the package itself is not — function comments do
// not substitute for a package comment.
func Add(a, b int) int { return a + b }
