// Package load turns Go source on disk into type-checked packages for the
// blob-vet analyzers, using only the standard library plus the go tool that
// is necessarily present wherever this repository builds.
//
// Why not golang.org/x/tools/go/packages: the repository's contract is
// "stdlib-only, offline-friendly" (README), so blob-vet reimplements the
// small slice of that loader it needs. The strategy is the same one the
// real `go vet` driver uses:
//
//  1. `go list -export -json -deps` enumerates the packages matched by the
//     patterns plus every dependency, and — because of -export — makes the
//     go build cache hold fresh export data for each, reporting the file
//     path in the Export field.
//  2. Each module-local package is parsed from source and type-checked
//     with go/types; imports resolve through go/importer's gc importer
//     reading the export data from step 1 (per-package ImportMap applied
//     first, so test variants resolve correctly).
//
// With -tests, `go list -test` is used and the test-augmented variant
// "p [p.test]" (package files + in-package _test.go files) replaces the
// plain package, while external test packages "p_test" load as packages
// of their own. Generated test mains (ImportPath ending in ".test") are
// skipped, as is any package under a testdata/ tree — fixtures are
// deliberately violation-riddled and must never reach the analyzers
// through Module (the analysistest harness loads them explicitly via
// Dir). Generated *files* inside ordinary packages are handled one layer
// up: blobvet.NewPass drops diagnostics positioned in files carrying the
// standard "Code generated" marker.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's canonical import path. Test-augmented
	// variants keep their " [p.test]" suffix trimmed off.
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-checking problems. Analysis proceeds
	// on a best-effort basis when non-empty.
	TypeErrors []error
}

type meta struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	GoFiles    []string
	ImportMap  map[string]string
	ForTest    string
	Standard   bool
}

// Module loads, parses and type-checks every package of the module rooted
// at root that matches patterns (e.g. "./..."). When tests is true,
// in-package _test.go files are folded into their package and external
// _test packages are loaded too.
func Module(root string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(root, tests, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}

	// Pick the packages to analyze: module-local, not a generated test
	// main. go list -test can surface the same package several times —
	// plain "p", its own test-augmented variant "p [p.test]", and
	// recompiled-for-another-test variants "p [q.test]" — so packages are
	// deduplicated by canonical import path, preferring the own-test
	// variant (it carries the in-package _test.go files) over the plain
	// build over any foreign variant. Without this, a package imported by
	// another package's tests is analyzed (and its findings reported)
	// more than once.
	best := map[string]meta{}
	var order []string
	for _, m := range metas {
		if m.Standard || strings.HasSuffix(m.ImportPath, ".test") {
			continue
		}
		if !inDir(m.Dir, root) {
			continue
		}
		if underTestdata(m.Dir) {
			// testdata/ trees are analyzer fixtures (deliberately
			// violation-riddled), never production code: skip them here,
			// once, instead of in every analyzer. go list only surfaces
			// them when a pattern names one explicitly, but the guard
			// keeps that case from polluting a run too.
			continue
		}
		key := canonical(m.ImportPath)
		prev, seen := best[key]
		if !seen {
			best[key] = m
			order = append(order, key)
			continue
		}
		if variantRank(m) > variantRank(prev) {
			best[key] = m
		}
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, key := range order {
		m := best[key]
		pkg, err := check(fset, m, exports)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// Dir loads a single directory of Go files as one package with the given
// import path, resolving its imports (standard library only) through the
// build cache. It exists for analysistest fixtures, which live under
// testdata/ and therefore are invisible to go list patterns; the asPath
// argument lets a fixture impersonate a scoped package such as
// "repro/internal/blas" so path-scoped analyzers fire on it.
func Dir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var parsed []*ast.File
	imports := map[string]bool{}
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, im := range f.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}

	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		metas, err := goList(dir, false, paths)
		if err != nil {
			return nil, fmt.Errorf("resolving fixture imports %v: %w", paths, err)
		}
		for _, m := range metas {
			if m.Export != "" {
				exports[m.ImportPath] = m.Export
			}
		}
	}
	return checkFiles(fset, asPath, dir, parsed, nil, exports)
}

// goList runs `go list -export -json -deps` (plus -test when asked) and
// decodes the JSON stream.
func goList(dir string, tests bool, patterns []string) ([]meta, error) {
	args := []string{"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,Name,GoFiles,ImportMap,ForTest,Standard",
		"-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var metas []meta
	dec := json.NewDecoder(&stdout)
	for {
		var m meta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

func inDir(path, dir string) bool {
	rel, err := filepath.Rel(dir, path)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// underTestdata reports whether any element of path is "testdata", the go
// tool's conventional name for trees excluded from builds.
func underTestdata(path string) bool {
	for _, elem := range strings.Split(filepath.ToSlash(path), "/") {
		if elem == "testdata" {
			return true
		}
	}
	return false
}

// check parses m's files and type-checks them against the export data in
// exports.
func check(fset *token.FileSet, m meta, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range m.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return checkFiles(fset, canonical(m.ImportPath), m.Dir, files, m.ImportMap, exports)
}

func checkFiles(fset *token.FileSet, importPath, dir string, files []*ast.File, importMap map[string]string, exports map[string]string) (*Package, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: fset, Files: files}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types, pkg.Info = tpkg, info
	return pkg, nil
}

// variantRank orders the builds of one package: the own-test-augmented
// variant "p [p.test]" (2) supersedes the plain build (1), which
// supersedes a foreign recompilation "p [q.test]" (0).
func variantRank(m meta) int {
	switch {
	case m.ForTest != "" && m.ImportPath == m.ForTest+" ["+m.ForTest+".test]":
		return 2
	case m.ForTest == "":
		return 1
	default:
		return 0
	}
}

// canonical strips go list's test-variant suffix: "p [p.test]" -> "p".
func canonical(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}
