package blobvet

import (
	"testing"
)

// FuzzBaselineJSON hammers the strict baseline parser: on any input it
// must either return an error or a baseline that survives a
// marshal→reparse round trip. It must never panic, and it must never
// "succeed" on a document that is not schema-exact — a corrupted
// committed baseline silently degrading to zero suppressions would
// resurrect hundreds of findings (annoying), but one silently suppressing
// the wrong things would hide real violations (dangerous).
func FuzzBaselineJSON(f *testing.F) {
	seed, err := MarshalReport([]Finding{
		{Analyzer: "ctxflow", Severity: SevWarn, File: "internal/core/runner.go", Line: 42, Column: 3, Message: "loop never consults ctx"},
	})
	if err != nil {
		f.Fatalf("seed: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(`{"schema": "blobvet-baseline/v1", "findings": []}`))
	f.Add([]byte(`{"schema": "blobvet-baseline/v0", "findings": []}`))
	f.Add([]byte(`{"findings": [{"analyzer": "", "severity": "warn", "file": "", "line": 0, "message": ""}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"schema": "blobvet-baseline/v1", "findings": []}{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		bl, err := ParseBaseline(data)
		if err != nil {
			if bl != nil {
				t.Fatalf("ParseBaseline returned both a baseline and error %v", err)
			}
			return
		}
		// An accepted baseline must re-serialize and reparse to the same
		// entry count: acceptance implies canonical content.
		var entries []Finding
		for _, ent := range bl.findings {
			entries = append(entries, ent)
		}
		out, err := MarshalReport(entries)
		if err != nil {
			t.Fatalf("accepted baseline failed to re-marshal: %v", err)
		}
		bl2, err := ParseBaseline(out)
		if err != nil {
			t.Fatalf("re-marshalled baseline rejected: %v\n%s", err, out)
		}
		if bl2.Len() != bl.Len() {
			t.Fatalf("round trip changed entry count: %d -> %d", bl.Len(), bl2.Len())
		}
	})
}
