package blobvet

import (
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Analyzer: "ctxflow", Severity: SevWarn, File: "internal/core/runner.go", Line: 42, Column: 3, Message: "loop never consults ctx"},
		{Analyzer: "hotalloc", Severity: SevError, File: "internal/blas/gemm32.go", Line: 7, Column: 1, Message: "composite literal in hot path"},
	}
	data, err := MarshalReport(findings)
	if err != nil {
		t.Fatalf("MarshalReport: %v", err)
	}
	bl, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline(MarshalReport(...)): %v", err)
	}
	if bl.Len() != 2 {
		t.Fatalf("Len=%d, want 2", bl.Len())
	}
	// Warn entry suppresses the matching warn finding, even if the line moved.
	moved := findings[0]
	moved.Line = 99
	if !bl.Covers(moved) {
		t.Errorf("baseline should cover warn finding independent of line")
	}
	// Error findings are never suppressed, even when present in the document.
	if bl.Covers(findings[1]) {
		t.Errorf("baseline must never cover an error-severity finding")
	}
}

func TestBaselineUnused(t *testing.T) {
	findings := []Finding{
		{Analyzer: "ctxflow", Severity: SevWarn, File: "a.go", Line: 1, Message: "m1"},
		{Analyzer: "ctxflow", Severity: SevWarn, File: "b.go", Line: 1, Message: "m2"},
	}
	data, err := MarshalReport(findings)
	if err != nil {
		t.Fatalf("MarshalReport: %v", err)
	}
	bl, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	bl.Covers(findings[0])
	unused := bl.Unused()
	if len(unused) != 1 || unused[0].File != "b.go" {
		t.Errorf("Unused()=%v, want the b.go entry only", unused)
	}
}

func TestParseBaselineRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":    `{"schema": "blobvet-baseline/v1", "findings": [`,
		"wrong schema":    `{"schema": "blobvet-baseline/v0", "findings": []}`,
		"missing schema":  `{"findings": []}`,
		"unknown field":   `{"schema": "blobvet-baseline/v1", "findings": [], "extra": 1}`,
		"missing message": `{"schema": "blobvet-baseline/v1", "findings": [{"analyzer": "x", "severity": "warn", "file": "a.go", "line": 1}]}`,
		"bad severity":    `{"schema": "blobvet-baseline/v1", "findings": [{"analyzer": "x", "severity": "fatal", "file": "a.go", "line": 1, "message": "m"}]}`,
		"negative line":   `{"schema": "blobvet-baseline/v1", "findings": [{"analyzer": "x", "severity": "warn", "file": "a.go", "line": -1, "message": "m"}]}`,
		"trailing data":   `{"schema": "blobvet-baseline/v1", "findings": []}{"again": true}`,
		"not an object":   `[1, 2, 3]`,
	}
	for name, doc := range cases {
		if _, err := ParseBaseline([]byte(doc)); err == nil {
			t.Errorf("%s: ParseBaseline accepted malformed document %s", name, doc)
		}
	}
}

func TestWarnOnly(t *testing.T) {
	findings := []Finding{
		{Analyzer: "a", Severity: SevError, File: "x.go", Line: 1, Message: "e"},
		{Analyzer: "b", Severity: SevWarn, File: "y.go", Line: 2, Message: "w"},
	}
	got := WarnOnly(findings)
	if len(got) != 1 || got[0].Severity != SevWarn {
		t.Errorf("WarnOnly=%v, want only the warn entry", got)
	}
}

func TestMarshalReportEmpty(t *testing.T) {
	data, err := MarshalReport(nil)
	if err != nil {
		t.Fatalf("MarshalReport(nil): %v", err)
	}
	if strings.Contains(string(data), "null") {
		t.Errorf("empty report must encode findings as [], got:\n%s", data)
	}
	if _, err := ParseBaseline(data); err != nil {
		t.Errorf("empty report must round-trip: %v", err)
	}
}

func TestNilBaseline(t *testing.T) {
	var bl *Baseline
	if bl.Covers(Finding{Analyzer: "a", Severity: SevWarn, File: "x.go", Message: "m"}) {
		t.Errorf("nil baseline must cover nothing")
	}
	if bl.Unused() != nil || bl.Len() != 0 {
		t.Errorf("nil baseline must be empty")
	}
}
