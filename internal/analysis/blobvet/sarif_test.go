package blobvet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestMarshalSarifValid schema-checks the emitted document: it must
// strictly decode into the SARIF 2.1.0 struct subset (no unknown fields
// on our side, no missing required properties) and carry the version and
// $schema markers renderers key on. The real OASIS JSON schema cannot be
// fetched offline, so the structural check doubles as the schema check.
func TestMarshalSarifValid(t *testing.T) {
	findings := []Finding{
		{Analyzer: "locksafety", Severity: SevError, File: "internal/resilience/breaker.go", Line: 227, Column: 2, Message: "callback invoked while mutex held"},
		{Analyzer: "ctxflow", Severity: SevWarn, File: "internal/core/runner.go", Line: 257, Message: "loop never consults ctx"},
		{Analyzer: "blobvet", Severity: SevError, File: "internal/sparse/csr.go", Line: 3, Message: "bare allow"},
	}
	analyzers := []*Analyzer{
		{Name: "locksafety", Doc: "locksafety checks mutex discipline.\n\nLonger text."},
		{Name: "ctxflow", Doc: "ctxflow checks context plumbing."},
	}
	data, err := MarshalSarif(findings, analyzers)
	if err != nil {
		t.Fatalf("MarshalSarif: %v", err)
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var log SarifLog
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("emitted SARIF does not round-trip strictly: %v\n%s", err, data)
	}
	if log.Version != SarifVersion {
		t.Errorf("version=%q, want %q", log.Version, SarifVersion)
	}
	if log.Schema != SarifSchemaURI {
		t.Errorf("$schema=%q, want %q", log.Schema, SarifSchemaURI)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs=%d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "blob-vet" {
		t.Errorf("driver name=%q, want blob-vet", run.Tool.Driver.Name)
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results=%d, want %d", len(run.Results), len(findings))
	}

	// Every result's ruleId must resolve to a declared rule — including
	// the "blobvet" pseudo-rule that has no registered Analyzer.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing required id/shortDescription", r)
		}
		ruleIDs[r.ID] = true
	}
	levels := map[string]bool{}
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result ruleId %q has no rule entry", r.RuleID)
		}
		if r.Level != "error" && r.Level != "warning" {
			t.Errorf("result level %q not in SARIF enum subset", r.Level)
		}
		levels[r.Level] = true
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" {
			t.Errorf("result %q missing artifact URI", r.Message.Text)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("result %q startLine=%d, want >=1 (SARIF regions are 1-based)", r.Message.Text, loc.Region.StartLine)
		}
	}
	if !levels["error"] || !levels["warning"] {
		t.Errorf("severity mapping lost a level: got %v", levels)
	}
}

func TestMarshalSarifEmpty(t *testing.T) {
	data, err := MarshalSarif(nil, nil)
	if err != nil {
		t.Fatalf("MarshalSarif(nil, nil): %v", err)
	}
	var log SarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil {
		t.Errorf("empty log must still carry one run with a non-nil results array")
	}
}
