package blobvet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// SARIF 2.1.0 document structs — the minimal subset of the OASIS schema
// that CI renderers (GitHub code scanning et al.) consume. Field names
// follow the spec exactly; the emitter fills every required property so
// the document validates against sarif-schema-2.1.0.json.

// SarifVersion and SarifSchemaURI identify the emitted document format.
const (
	SarifVersion   = "2.1.0"
	SarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

// SarifLog is the top-level SARIF document.
type SarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SarifRun `json:"runs"`
}

// SarifRun is one analysis run: the tool description plus its results.
type SarifRun struct {
	Tool    SarifTool     `json:"tool"`
	Results []SarifResult `json:"results"`
}

// SarifTool wraps the driver descriptor.
type SarifTool struct {
	Driver SarifDriver `json:"driver"`
}

// SarifDriver names the tool and enumerates its rules (one per analyzer).
type SarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SarifRule `json:"rules"`
}

// SarifRule describes one analyzer as a SARIF reportingDescriptor.
type SarifRule struct {
	ID               string           `json:"id"`
	ShortDescription SarifMessage     `json:"shortDescription"`
	FullDescription  *SarifMessage    `json:"fullDescription,omitempty"`
	DefaultConfig    *SarifRuleConfig `json:"defaultConfiguration,omitempty"`
}

// SarifRuleConfig holds a rule's default severity level.
type SarifRuleConfig struct {
	Level string `json:"level"`
}

// SarifMessage is SARIF's string-wrapper object.
type SarifMessage struct {
	Text string `json:"text"`
}

// SarifResult is one finding.
type SarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   SarifMessage    `json:"message"`
	Locations []SarifLocation `json:"locations"`
}

// SarifLocation anchors a result to a file position.
type SarifLocation struct {
	PhysicalLocation SarifPhysicalLocation `json:"physicalLocation"`
}

// SarifPhysicalLocation is the artifact + region pair.
type SarifPhysicalLocation struct {
	ArtifactLocation SarifArtifactLocation `json:"artifactLocation"`
	Region           SarifRegion           `json:"region"`
}

// SarifArtifactLocation is a repo-relative file URI.
type SarifArtifactLocation struct {
	URI string `json:"uri"`
}

// SarifRegion is a 1-based start position.
type SarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps blobvet severities onto the SARIF level enum.
func sarifLevel(s Severity) string {
	if s == SevWarn {
		return "warning"
	}
	return "error"
}

// MarshalSarif renders findings as a SARIF 2.1.0 document. analyzers
// supplies rule metadata (name → doc); analyzers that appear only in
// findings (the "blobvet" directive pseudo-rule, say) still get a rule
// entry so every result's ruleId resolves.
func MarshalSarif(findings []Finding, analyzers []*Analyzer) ([]byte, error) {
	docs := map[string]string{}
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	ruleSet := map[string]bool{}
	for name := range docs {
		ruleSet[name] = true
	}
	for _, f := range findings {
		ruleSet[f.Analyzer] = true
	}
	names := make([]string, 0, len(ruleSet))
	for name := range ruleSet {
		names = append(names, name)
	}
	sort.Strings(names)

	rules := make([]SarifRule, 0, len(names))
	for _, name := range names {
		doc := docs[name]
		if doc == "" {
			doc = "blobvet driver diagnostic"
		}
		short := doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		rules = append(rules, SarifRule{
			ID:               name,
			ShortDescription: SarifMessage{Text: short},
			FullDescription:  &SarifMessage{Text: doc},
			DefaultConfig:    &SarifRuleConfig{Level: "error"},
		})
	}

	findings = append([]Finding{}, findings...) // sort a copy; callers keep their order
	sortFindings(findings)
	results := make([]SarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, SarifResult{
			RuleID:  f.Analyzer,
			Level:   sarifLevel(f.Severity),
			Message: SarifMessage{Text: f.Message},
			Locations: []SarifLocation{{
				PhysicalLocation: SarifPhysicalLocation{
					ArtifactLocation: SarifArtifactLocation{URI: f.File},
					Region:           SarifRegion{StartLine: max(f.Line, 1), StartColumn: f.Column},
				},
			}},
		})
	}

	log := SarifLog{
		Schema:  SarifSchemaURI,
		Version: SarifVersion,
		Runs: []SarifRun{{
			Tool: SarifTool{Driver: SarifDriver{
				Name:           "blob-vet",
				InformationURI: "https://go.dev/", // stdlib-only tool; no hosted docs
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sarif: encoding log: %w", err)
	}
	return append(data, '\n'), nil
}
