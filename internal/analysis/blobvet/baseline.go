package blobvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineSchema is the format identifier a baseline file must carry.
// Bumping it invalidates every committed baseline at once, which is the
// point: baseline compatibility breaks loudly, never silently.
const BaselineSchema = "blobvet-baseline/v1"

// A Finding is one diagnostic in driver-portable form: positions resolved
// to repo-relative slash paths, severity and analyzer spelled out. It is
// both the -format=json output record and the baseline entry, so the two
// round-trip through the same parser.
type Finding struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column,omitempty"`
	Message  string   `json:"message"`
}

// NewFinding resolves d against fset and makes the filename relative to
// root (slash-separated, so baselines are portable across machines). A
// file outside root keeps its absolute path.
func NewFinding(fset *token.FileSet, root string, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Finding{
		Analyzer: d.Analyzer,
		Severity: d.Severity,
		File:     filepath.ToSlash(file),
		Line:     pos.Line,
		Column:   pos.Column,
		Message:  d.Message,
	}
}

// key is the identity a baseline entry matches on. Line and column are
// deliberately excluded: unrelated edits shift line numbers constantly,
// and a baseline that rots on every edit trains people to regenerate it
// blindly. (analyzer, file, message) is stable and still specific —
// messages embed the offending identifier.
func (f Finding) key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// A Report is the JSON document shape shared by -format=json output and
// the committed baseline file.
type Report struct {
	Schema   string    `json:"schema"`
	Findings []Finding `json:"findings"`
}

// A Baseline suppresses a fixed set of pre-existing warn-level findings.
// Error-level entries may appear in a parsed report (the -format=json
// output includes them) but never suppress anything: errors must be fixed
// or carry a source-level allow directive.
type Baseline struct {
	findings map[string]Finding
	hits     map[string]bool
}

// ParseBaseline strictly decodes a baseline/report document. Any
// malformation — invalid JSON, unknown fields, wrong schema string, a
// missing analyzer/file/message, or an unknown severity — is an error;
// a broken baseline must never degrade into "no suppressions" silently.
func ParseBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("baseline: invalid JSON: %w", err)
	}
	// Trailing garbage after the document is as suspicious as a bad field.
	if dec.More() {
		return nil, fmt.Errorf("baseline: trailing data after JSON document")
	}
	if rep.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline: schema %q, want %q", rep.Schema, BaselineSchema)
	}
	b := &Baseline{findings: map[string]Finding{}, hits: map[string]bool{}}
	for i, f := range rep.Findings {
		if f.Analyzer == "" || f.File == "" || f.Message == "" {
			return nil, fmt.Errorf("baseline: finding %d missing analyzer, file or message", i)
		}
		if f.Severity != SevError && f.Severity != SevWarn {
			return nil, fmt.Errorf("baseline: finding %d has unknown severity %q", i, f.Severity)
		}
		if f.Line < 0 || f.Column < 0 {
			return nil, fmt.Errorf("baseline: finding %d has negative position", i)
		}
		b.findings[f.key()] = f
	}
	return b, nil
}

// Covers reports whether f is suppressed by the baseline. Only
// warn-severity findings are ever suppressed, and only by a warn-severity
// baseline entry.
func (b *Baseline) Covers(f Finding) bool {
	if b == nil || f.Severity != SevWarn {
		return false
	}
	ent, ok := b.findings[f.key()]
	if !ok || ent.Severity != SevWarn {
		return false
	}
	b.hits[f.key()] = true
	return true
}

// Unused returns baseline entries that no finding matched, sorted by file
// then analyzer. Drivers surface these so a fixed warning is removed from
// the baseline instead of lingering as a stale suppression.
func (b *Baseline) Unused() []Finding {
	if b == nil {
		return nil
	}
	var out []Finding
	for k, f := range b.findings {
		if !b.hits[k] && f.Severity == SevWarn {
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// Len returns the number of entries in the baseline.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.findings)
}

// MarshalReport renders findings as the canonical JSON document (sorted,
// indented, trailing newline) shared by -format=json and the baseline
// file.
func MarshalReport(findings []Finding) ([]byte, error) {
	findings = append([]Finding{}, findings...) // sort a copy; also turns nil into [], not null
	sortFindings(findings)
	data, err := json.MarshalIndent(Report{Schema: BaselineSchema, Findings: findings}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("baseline: encoding report: %w", err)
	}
	return append(data, '\n'), nil
}

// WarnOnly filters findings to the warn-severity subset — the only
// entries -write-baseline persists, since error findings must not be
// baselined away.
func WarnOnly(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Severity == SevWarn {
			out = append(out, f)
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
