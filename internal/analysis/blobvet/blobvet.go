// Package blobvet is a minimal static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, rebuilt on the standard library only.
//
// The repository is deliberately dependency-free (README: "stdlib-only and
// runs anywhere Go runs"), so instead of importing x/tools this package
// defines the same three load-bearing concepts — Analyzer, Pass and
// Diagnostic — with exactly the surface the blob-vet checkers need. An
// Analyzer inspects one type-checked package and reports diagnostics; a
// driver (cmd/blob-vet, or the analysistest harness in tests) loads
// packages and runs analyzers over them.
//
// Suppression directives. A diagnostic can be silenced in source, so that
// deliberate, documented exceptions (for example an exact float comparison
// that is correct by construction) stay visible at the use site:
//
//	x := a == b //blobvet:allow floatcompare -- view aliases the same word
//
// The directive suppresses matching diagnostics on its own line (trailing
// form) and on the line directly below (standalone form). A
// file-scoped variant whitelists a whole file for one or more analyzers:
//
//	//blobvet:file-allow floatcompare -- golden values are exact by design
//
// Both forms name the analyzers they apply to (comma separated), or "all".
// Everything after " -- " is a free-form justification and is ignored by
// the matcher but required by convention.
package blobvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Run inspects the Pass's
// package and reports findings through pass.Reportf; a nil error with zero
// diagnostics means the package satisfies the invariant.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant,
	// shown by blob-vet -list.
	Doc string
	// Run performs the check on a single package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed sources, including in-package _test.go files
	// when the driver loaded the test-augmented variant.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags      []Diagnostic
	suppressed int
	directives *directiveIndex
}

// NewPass assembles a Pass over a loaded package for the given analyzer.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		directives: indexDirectives(a.Name, fset, files),
	}
}

// Reportf records a diagnostic at pos unless a //blobvet:allow or
// //blobvet:file-allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.directives.covers(p.Fset.Position(pos)) {
		p.suppressed++
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(p.diags[i].Pos), p.Fset.Position(p.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return p.diags
}

// Suppressed returns how many reports were silenced by directives.
func (p *Pass) Suppressed() int { return p.suppressed }

// TestFile reports whether pos lies in a _test.go file. Several analyzers
// scope invariants to production code only (tests legitimately spawn bare
// goroutines, for example).
func (p *Pass) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// directiveIndex records, per file, the lines whitelisted for one analyzer.
type directiveIndex struct {
	fileAllow map[string]bool         // filename -> whole file allowed
	lineAllow map[string]map[int]bool // filename -> line -> allowed
}

func indexDirectives(name string, fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		fileAllow: map[string]bool{},
		lineAllow: map[string]map[int]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, names, ok := parseDirective(c.Text)
				if !ok || !nameListMatches(names, name) {
					continue
				}
				pos := fset.Position(c.Slash)
				switch kind {
				case "file-allow":
					idx.fileAllow[pos.Filename] = true
				case "allow":
					m := idx.lineAllow[pos.Filename]
					if m == nil {
						m = map[int]bool{}
						idx.lineAllow[pos.Filename] = m
					}
					// The directive covers its own line (trailing form)
					// and the next line (standalone form), mirroring
					// //nolint conventions.
					m[pos.Line] = true
					m[pos.Line+1] = true
				}
			}
		}
	}
	return idx
}

func (d *directiveIndex) covers(pos token.Position) bool {
	if d.fileAllow[pos.Filename] {
		return true
	}
	return d.lineAllow[pos.Filename][pos.Line]
}

// parseDirective splits "//blobvet:allow name1,name2 -- reason" into its
// kind ("allow" or "file-allow") and analyzer names.
func parseDirective(text string) (kind string, names []string, ok bool) {
	const prefix = "//blobvet:"
	if !strings.HasPrefix(text, prefix) {
		return "", nil, false
	}
	rest := strings.TrimPrefix(text, prefix)
	var body string
	switch {
	case strings.HasPrefix(rest, "file-allow"):
		kind, body = "file-allow", strings.TrimPrefix(rest, "file-allow")
	case strings.HasPrefix(rest, "allow"):
		kind, body = "allow", strings.TrimPrefix(rest, "allow")
	default:
		return "", nil, false
	}
	if reason := strings.Index(body, " -- "); reason >= 0 {
		body = body[:reason]
	}
	for _, fld := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, fld)
	}
	return kind, names, true
}

func nameListMatches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}
