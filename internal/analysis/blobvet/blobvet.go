// Package blobvet is a minimal static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, rebuilt on the standard library only.
//
// The repository is deliberately dependency-free (README: "stdlib-only and
// runs anywhere Go runs"), so instead of importing x/tools this package
// defines the same three load-bearing concepts — Analyzer, Pass and
// Diagnostic — with exactly the surface the blob-vet checkers need. An
// Analyzer inspects one type-checked package and reports diagnostics; a
// driver (cmd/blob-vet, or the analysistest harness in tests) loads
// packages and runs analyzers over them.
//
// Severity. Every diagnostic carries a severity: SevError findings are
// contract violations that must be fixed (or explicitly allowed in
// source), while SevWarn findings are hygiene advisories that may instead
// be suppressed wholesale by a committed baseline file (see Baseline), so
// pre-existing debt is frozen while new code is held to the stricter bar.
// Reportf records an error-level diagnostic; Warnf records a warn-level
// one.
//
// Suppression directives. A diagnostic can be silenced in source, so that
// deliberate, documented exceptions (for example an exact float comparison
// that is correct by construction) stay visible at the use site:
//
//	x := a == b //blobvet:allow floatcompare -- view aliases the same word
//
// The directive suppresses matching diagnostics on its own line (trailing
// form) and on the line directly below (standalone form). A
// file-scoped variant whitelists a whole file for one or more analyzers:
//
//	//blobvet:file-allow floatcompare -- golden values are exact by design
//
// Both forms name the analyzers they apply to (comma separated), or "all",
// followed by a mandatory free-form justification introduced by " -- " (or
// the equivalent "name: justification" colon form). A bare directive with
// no justification is rejected: it suppresses nothing, and CheckDirectives
// reports it as an error-level finding of the "blobvet" pseudo-analyzer,
// so an undocumented exception cannot silently disable a check.
//
// Generated files. Diagnostics positioned in files carrying the standard
// "Code generated ... DO NOT EDIT." marker (per ast.IsGenerated) are
// dropped for every analyzer: generated code is the generator's problem,
// and each checker stays free of its own skipping logic. testdata/ trees
// are excluded one layer down, by the internal/analysis/load loader.
package blobvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity classifies a diagnostic: SevError findings fail the build
// outright, SevWarn findings fail unless covered by the committed
// baseline.
type Severity string

// The two severity levels.
const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

// An Analyzer describes one invariant checker. Run inspects the Pass's
// package and reports findings through pass.Reportf; a nil error with zero
// diagnostics means the package satisfies the invariant.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant,
	// shown by blob-vet -list.
	Doc string
	// Run performs the check on a single package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Severity Severity
	Message  string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed sources, including in-package _test.go files
	// when the driver loaded the test-augmented variant.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags      []Diagnostic
	suppressed int
	directives *directiveIndex
	generated  map[string]bool
}

// NewPass assembles a Pass over a loaded package for the given analyzer.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		directives: indexDirectives(a.Name, fset, files),
		generated:  generatedFiles(fset, files),
	}
}

// generatedFiles maps the filenames of files carrying the standard
// generated-code marker, so every analyzer skips them uniformly.
func generatedFiles(fset *token.FileSet, files []*ast.File) map[string]bool {
	gen := map[string]bool{}
	for _, f := range files {
		if ast.IsGenerated(f) {
			gen[fset.Position(f.Pos()).Filename] = true
		}
	}
	return gen
}

// Reportf records an error-level diagnostic at pos unless a
// //blobvet:allow or //blobvet:file-allow directive covers it or the file
// is generated.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(SevError, pos, format, args...)
}

// Warnf records a warn-level diagnostic at pos: same suppression rules as
// Reportf, but additionally eligible for baseline suppression by the
// driver.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.report(SevWarn, pos, format, args...)
}

func (p *Pass) report(sev Severity, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.generated[position.Filename] {
		p.suppressed++
		return
	}
	if p.directives.covers(position) {
		p.suppressed++
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(p.diags[i].Pos), p.Fset.Position(p.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return p.diags
}

// Suppressed returns how many reports were silenced by directives.
func (p *Pass) Suppressed() int { return p.suppressed }

// TestFile reports whether pos lies in a _test.go file. Several analyzers
// scope invariants to production code only (tests legitimately spawn bare
// goroutines, for example).
func (p *Pass) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// CheckDirectives validates every //blobvet: directive in files and
// returns error-level diagnostics (Analyzer "blobvet") for malformed
// ones: a directive with no analyzer names, or — the tightened PR6
// contract — an allow with no justification. Drivers run it once per
// package, independent of which analyzers are selected, so a bare allow
// naming a disabled analyzer is still rejected.
func CheckDirectives(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	gen := generatedFiles(fset, files)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if gen[fset.Position(c.Slash).Filename] {
					continue
				}
				switch {
				case len(d.names) == 0:
					diags = append(diags, Diagnostic{
						Pos: c.Slash, Analyzer: "blobvet", Severity: SevError,
						Message: fmt.Sprintf("//blobvet:%s names no analyzers; write //blobvet:%s <analyzer>: <justification>", d.kind, d.kind),
					})
				case d.justification == "":
					diags = append(diags, Diagnostic{
						Pos: c.Slash, Analyzer: "blobvet", Severity: SevError,
						Message: fmt.Sprintf("bare //blobvet:%s without justification; write //blobvet:%s %s: <justification>", d.kind, d.kind, strings.Join(d.names, ",")),
					})
				}
			}
		}
	}
	return diags
}

// directiveIndex records, per file, the lines whitelisted for one analyzer.
type directiveIndex struct {
	fileAllow map[string]bool         // filename -> whole file allowed
	lineAllow map[string]map[int]bool // filename -> line -> allowed
}

func indexDirectives(name string, fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		fileAllow: map[string]bool{},
		lineAllow: map[string]map[int]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok || !nameListMatches(d.names, name) {
					continue
				}
				// A directive without a justification is malformed
				// (CheckDirectives reports it) and suppresses nothing.
				if d.justification == "" {
					continue
				}
				pos := fset.Position(c.Slash)
				switch d.kind {
				case "file-allow":
					idx.fileAllow[pos.Filename] = true
				case "allow":
					m := idx.lineAllow[pos.Filename]
					if m == nil {
						m = map[int]bool{}
						idx.lineAllow[pos.Filename] = m
					}
					// The directive covers its own line (trailing form)
					// and the next line (standalone form), mirroring
					// //nolint conventions.
					m[pos.Line] = true
					m[pos.Line+1] = true
				}
			}
		}
	}
	return idx
}

func (d *directiveIndex) covers(pos token.Position) bool {
	if d.fileAllow[pos.Filename] {
		return true
	}
	return d.lineAllow[pos.Filename][pos.Line]
}

// directive is one parsed //blobvet: comment.
type directive struct {
	kind          string // "allow" or "file-allow"
	names         []string
	justification string
}

// parseDirective splits "//blobvet:allow name1,name2 -- reason" (or the
// equivalent "//blobvet:allow name1,name2: reason" colon form) into its
// kind, analyzer names and justification.
func parseDirective(text string) (directive, bool) {
	const prefix = "//blobvet:"
	if !strings.HasPrefix(text, prefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, prefix)
	var d directive
	var body string
	switch {
	case strings.HasPrefix(rest, "file-allow"):
		d.kind, body = "file-allow", strings.TrimPrefix(rest, "file-allow")
	case strings.HasPrefix(rest, "allow"):
		d.kind, body = "allow", strings.TrimPrefix(rest, "allow")
	default:
		return directive{}, false
	}
	// " -- reason" and "names: reason" both introduce the justification;
	// whichever separator appears first wins.
	dash := strings.Index(body, " -- ")
	colon := strings.Index(body, ":")
	switch {
	case dash >= 0 && (colon < 0 || dash < colon):
		d.justification = strings.TrimSpace(body[dash+len(" -- "):])
		body = body[:dash]
	case colon >= 0:
		d.justification = strings.TrimSpace(body[colon+1:])
		body = body[:colon]
	}
	for _, fld := range strings.FieldsFunc(body, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		d.names = append(d.names, fld)
	}
	return d, true
}

func nameListMatches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}
