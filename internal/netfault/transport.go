package netfault

import (
	"context"
	"io"
	"net/http"
	"time"
)

// Transport is the client-side fault edge: an http.RoundTripper that
// consults an Injector before (and around) every exchange. With a nil
// Injector it is a pass-through whose entire cost is one nil comparison —
// production wiring can leave the wrapper in place permanently and arm it
// only under test (benchmarked in netfault_test.go).
type Transport struct {
	// Inner performs the real exchange (nil takes http.DefaultTransport).
	Inner http.RoundTripper
	// Injector is the armed plan; nil disarms the wrapper entirely.
	Injector *Injector
	// Peer resolves a request to the logical peer name rules match on;
	// nil uses the request's URL host. Cluster harnesses map httptest
	// hosts back to member names here so plans can say "rep-1".
	Peer func(*http.Request) string
}

// RoundTrip applies at most one fault to the exchange: pre-faults (latency,
// reset, blackhole) act before the inner round trip; body faults
// (slowloris, truncate, corrupt) wrap the inner response's body.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if t.Injector == nil {
		return inner.RoundTrip(req)
	}
	peer := req.URL.Host
	if t.Peer != nil {
		peer = t.Peer(req)
	}
	f := t.Injector.At(peer, req.URL.Path)
	if f == nil {
		return inner.RoundTrip(req)
	}
	ctx := req.Context()
	switch f.Kind {
	case Latency:
		if err := sleepCtx(ctx, f.Latency); err != nil {
			closeRequestBody(req)
			return nil, err
		}
		return inner.RoundTrip(req)
	case Reset:
		closeRequestBody(req)
		return nil, f.Error()
	case Blackhole:
		// Silence, not refusal: hold until the caller's context gives up
		// (the common case under a deadline) or the bounded hold elapses.
		closeRequestBody(req)
		timer := time.NewTimer(f.Hold)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
			return nil, f.Error()
		}
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch f.Kind {
	case SlowLoris:
		resp.Body = &dribbleBody{inner: resp.Body, ctx: ctx, chunk: f.ChunkBytes, delay: f.ChunkDelay}
	case Truncate:
		resp.Body = &truncateBody{inner: resp.Body, remain: f.TruncateAfter}
	case Corrupt:
		resp.Body = &corruptBody{inner: resp.Body, every: f.FlipEvery}
	}
	return resp, nil
}

// closeRequestBody honours the RoundTripper contract: on error the body
// must be closed by the transport.
func closeRequestBody(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}

// sleepCtx waits d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// truncateBody yields the first remain bytes, then reports the cut the way
// a severed connection does: io.ErrUnexpectedEOF, not a clean EOF — the
// exact error pkg/blobclient must classify as transient.
type truncateBody struct {
	inner  io.ReadCloser
	remain int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The upstream body really ended inside the window; keep EOF.
		return n, err
	}
	if b.remain <= 0 && err == nil {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncateBody) Close() error { return b.inner.Close() }

// corruptBody flips the low bit of every stride-th payload byte (byte 0
// included), breaking JSON structure without changing the byte count —
// the fault the envelope's strict decode must catch.
type corruptBody struct {
	inner  io.ReadCloser
	every  int
	offset int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	for i := 0; i < n; i++ {
		if (b.offset+i)%b.every == 0 {
			p[i] ^= 0x01
		}
	}
	b.offset += n
	return n, err
}

func (b *corruptBody) Close() error { return b.inner.Close() }

// dribbleBody delivers at most chunk bytes per Read, sleeping delay before
// each — the slow-loris peer that ties a caller up without ever failing.
// The request context bounds the total stall.
type dribbleBody struct {
	inner io.ReadCloser
	ctx   context.Context
	chunk int
	delay time.Duration
}

func (b *dribbleBody) Read(p []byte) (int, error) {
	if err := sleepCtx(b.ctx, b.delay); err != nil {
		return 0, err
	}
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.inner.Read(p)
}

func (b *dribbleBody) Close() error { return b.inner.Close() }
