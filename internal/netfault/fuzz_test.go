package netfault

import (
	"encoding/json"
	"testing"
)

// FuzzNetfaultPlan fuzzes the strict netfault/v1 plan parser (part of the
// verify.sh fuzz stage): arbitrary bytes must either parse into a plan
// that validates and round-trips, or error — never panic, and never
// produce a plan whose re-marshal fails.
func FuzzNetfaultPlan(f *testing.F) {
	seeds := []string{
		`{"schema": "netfault/v1", "seed": 1, "rules": []}`,
		`{"schema": "netfault/v1", "seed": 42, "rules": [
		  {"peer": "n1", "probability": 0.5, "kind": "latency", "latency_ms": 10, "jitter_ms": 4},
		  {"peer": "n2", "min_index": 40, "max_index": 80, "probability": 1, "kind": "blackhole", "hold_ms": 200},
		  {"route": "/v1/threshold", "probability": 0.25, "kind": "truncate", "truncate_after": 8},
		  {"probability": 0.2, "kind": "reset", "max_hits": 2},
		  {"probability": 0.1, "kind": "slowloris", "chunk_bytes": 4, "chunk_delay_ms": 2},
		  {"probability": 0.1, "kind": "corrupt", "flip_every": 32}
		]}`,
		`{"schema": "faultinject/v1", "rules": []}`,
		`{"schema": "netfault/v1", "rules": [{"probability": 2, "kind": "reset"}]}`,
		`{"rules": [{"kind": "gremlin"}]}`,
		`not json at all`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		if p.Schema != SchemaVersion {
			t.Fatalf("parser accepted schema %q", p.Schema)
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("parsed plan fails its own Validate: %v", verr)
		}
		out, merr := p.Marshal()
		if merr != nil {
			t.Fatalf("accepted plan does not re-marshal: %v", merr)
		}
		q, rerr := ParsePlan(out)
		if rerr != nil {
			t.Fatalf("re-marshaled plan does not re-parse: %v", rerr)
		}
		if len(q.Rules) != len(p.Rules) {
			t.Fatalf("round trip changed rule count: %d -> %d", len(p.Rules), len(q.Rules))
		}
		// Arming must never panic regardless of rule contents.
		in := p.Arm()
		_ = in.At("peer", "/route")
		if _, jerr := json.Marshal(in.Stats()); jerr != nil {
			t.Fatalf("stats not marshalable: %v", jerr)
		}
	})
}
