package netfault

import (
	"net"
	"sync"
	"time"
)

// WrapListener is the server-side fault edge: each accepted connection
// consults the injector once (route "", since no HTTP parsing happens at
// this layer) and carries the drawn fault for its lifetime. peer names the
// local endpoint in rules — wrap each replica's listener with its own
// member name and one shared injector to fault a whole cluster from one
// plan. A nil injector returns l unchanged.
func WrapListener(l net.Listener, in *Injector, peer string) net.Listener {
	if in == nil {
		return l
	}
	return &faultListener{Listener: l, in: in, peer: peer}
}

type faultListener struct {
	net.Listener
	in   *Injector
	peer string
}

// Accept wraps the next connection with its drawn fault. A Reset here
// closes the connection before a single byte moves — the accept-then-slam
// a dying peer produces.
func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	f := l.in.At(l.peer, "")
	if f == nil {
		return c, nil
	}
	if f.Kind == Reset {
		_ = c.Close()
	}
	return &faultConn{Conn: c, fault: f, done: make(chan struct{})}, nil
}

// faultConn applies one Fault to a connection's byte streams:
//
//   - Reset: every Read/Write fails immediately (the conn is closed);
//   - Blackhole: Reads stall for the hold, then fail — bytes in, nothing
//     out, exactly what a partitioned peer looks like;
//   - Latency: the first Read stalls once, then the conn behaves;
//   - SlowLoris: Writes are chunked with a delay per chunk;
//   - Truncate: the conn severs after TruncateAfter written bytes;
//   - Corrupt: the low bit of every stride-th written byte flips.
//
// Close unblocks any in-flight stall so a faulted server can still shut
// down promptly.
type faultConn struct {
	net.Conn
	fault     *Fault
	done      chan struct{}
	closeOnce sync.Once
	latDone   bool // Latency: first-read stall already paid
	written   int  // Truncate/Corrupt: stream offset
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.fault.Kind {
	case Reset:
		return 0, c.fault.Error()
	case Blackhole:
		c.stall(c.fault.Hold)
		return 0, c.fault.Error()
	case Latency:
		if !c.latDone {
			c.latDone = true
			c.stall(c.fault.Latency)
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.fault.Kind {
	case Reset:
		return 0, c.fault.Error()
	case SlowLoris:
		total := 0
		for len(p) > 0 {
			c.stall(c.fault.ChunkDelay)
			chunk := p
			if len(chunk) > c.fault.ChunkBytes {
				chunk = chunk[:c.fault.ChunkBytes]
			}
			n, err := c.Conn.Write(chunk)
			total += n
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		return total, nil
	case Truncate:
		remain := c.fault.TruncateAfter - c.written
		if remain <= 0 {
			_ = c.Conn.Close()
			return 0, c.fault.Error()
		}
		if len(p) > remain {
			p = p[:remain]
		}
		n, err := c.Conn.Write(p)
		c.written += n
		return n, err
	case Corrupt:
		// Copy so the caller's buffer is never scribbled on.
		q := make([]byte, len(p))
		copy(q, p)
		for i := range q {
			if (c.written+i)%c.fault.FlipEvery == 0 {
				q[i] ^= 0x01
			}
		}
		n, err := c.Conn.Write(q)
		c.written += n
		return n, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// stall sleeps d, or returns early when the conn closes.
func (c *faultConn) stall(d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-c.done:
	}
}
