// Package netfault is the deterministic network-fault layer: the wire-level
// sibling of internal/faultinject, one layer up the stack. Where faultinject
// perturbs the simulated BLAS backends, netfault perturbs the HTTP traffic
// between cluster members — an http.RoundTripper wrapper for the client side
// and net.Listener / net.Conn wrappers for the server side — driven by
// seeded, replayable JSON fault plans (schema "netfault/v1").
//
// A plan's rules are keyed by (peer, route, request-index window), so a
// schedule like "partition replica n1 for attempts 40–80, heal, then flap it
// again at 120" is three blackhole rules with different index windows. Six
// fault kinds cover what a real cluster sees on the wire:
//
//   - latency: add a seeded latency (base + jitter) before the request is
//     forwarded — the slow peer that hedged requests exist to beat;
//   - reset: fail the exchange immediately with a connection-reset-flavored
//     transient error;
//   - blackhole: hold the request until its context expires (or a bounded
//     hold elapses), the symptom of a network partition — no RST, no FIN,
//     just silence;
//   - slowloris: deliver the response, but dribble its body a few bytes at
//     a time with a delay per chunk;
//   - truncate: cut the response body short and surface the cut as
//     io.ErrUnexpectedEOF, the way a mid-stream connection loss does;
//   - corrupt: bit-flip the response body payload, which strict envelope
//     decoding (and the content-length check) must catch.
//
// Determinism is the point, exactly as in faultinject: the Injector draws
// from a private seeded PRNG in evaluation order, so a sequential request
// schedule under a given plan faults at the same indices on every run (the
// golden test pins this). When no injector is armed, the wrappers are a
// single nil comparison on the hot path: zero allocations, zero locks,
// benchmarked in netfault_test.go.
package netfault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadPlan is the sentinel wrapped by every plan-shape rejection
// (unknown kind, bad schema token, out-of-range rule field), so callers
// can distinguish a malformed plan from an I/O failure with errors.Is.
var ErrBadPlan = errors.New("netfault: bad plan")

// Kind enumerates the wire-fault kinds a rule can inject.
type Kind int

// The fault kinds. Latency and SlowLoris degrade, Reset and Blackhole
// sever, Truncate and Corrupt lie.
const (
	Latency Kind = iota
	Reset
	Blackhole
	SlowLoris
	Truncate
	Corrupt
	numKinds
)

// String returns the plan-schema spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Blackhole:
		return "blackhole"
	case SlowLoris:
		return "slowloris"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts a plan-schema token into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "latency":
		return Latency, nil
	case "reset":
		return Reset, nil
	case "blackhole":
		return Blackhole, nil
	case "slowloris":
		return SlowLoris, nil
	case "truncate":
		return Truncate, nil
	case "corrupt":
		return Corrupt, nil
	}
	return 0, fmt.Errorf("%w: unknown fault kind %q", ErrBadPlan, s)
}

// Rule arms one wire fault against a slice of traffic. A zero field matches
// everything in that dimension: the tightest rule names a peer, a route and
// an index window; the loosest ("2% resets everywhere") sets only
// Probability and Kind.
type Rule struct {
	// Peer matches the logical peer name the transport resolves for each
	// request (the URL host by default, a member name under a Peer func);
	// "" matches any peer.
	Peer string `json:"peer,omitempty"`
	// Route matches the request's URL path exactly; "" matches any route.
	Route string `json:"route,omitempty"`
	// MinIndex/MaxIndex bound the injector's global evaluation index
	// (0-based, one per evaluated exchange) inclusively; MaxIndex 0 means
	// unbounded. Index windows are how partitions get heal times: a
	// blackhole over [40,80] heals at 81, and a second window is a flap.
	MinIndex int `json:"min_index,omitempty"`
	MaxIndex int `json:"max_index,omitempty"`
	// Probability in [0,1] is the chance the rule fires at a matching
	// exchange (each evaluation draws from the plan's seeded PRNG).
	Probability float64 `json:"probability"`
	// Kind selects the fault; on the wire it is the lowercase name.
	Kind Kind `json:"kind"`
	// LatencyMs (+ a uniform draw over JitterMs) is the added delay when a
	// Latency rule fires.
	LatencyMs float64 `json:"latency_ms,omitempty"`
	JitterMs  float64 `json:"jitter_ms,omitempty"`
	// HoldMs bounds how long a Blackhole holds before failing when the
	// request context outlives it (default 30000 — a SYN timeout).
	HoldMs float64 `json:"hold_ms,omitempty"`
	// TruncateAfter is how many body bytes survive a Truncate (default 20
	// — enough to look like an envelope, not enough to be one).
	TruncateAfter int `json:"truncate_after,omitempty"`
	// FlipEvery is the byte stride of a Corrupt rule's bit flips (default
	// 64; byte 0 is always flipped so no payload escapes).
	FlipEvery int `json:"flip_every,omitempty"`
	// ChunkBytes / ChunkDelayMs shape a SlowLoris dribble (defaults 1 byte
	// per 1 ms).
	ChunkBytes   int     `json:"chunk_bytes,omitempty"`
	ChunkDelayMs float64 `json:"chunk_delay_ms,omitempty"`
	// MaxHits bounds how many times the rule may fire (0 = unlimited).
	MaxHits int `json:"max_hits,omitempty"`
}

// matches reports whether the rule covers one (peer, route, index) triple.
func (r *Rule) matches(peer, route string, index int) bool {
	if r.Peer != "" && r.Peer != peer {
		return false
	}
	if r.Route != "" && r.Route != route {
		return false
	}
	if index < r.MinIndex {
		return false
	}
	if r.MaxIndex > 0 && index > r.MaxIndex {
		return false
	}
	return true
}

// validate checks one rule for schema errors (i is its index, for messages).
func (r *Rule) validate(i int) error {
	if r.Probability < 0 || r.Probability > 1 {
		return fmt.Errorf("%w: rule %d: probability %v outside [0,1]", ErrBadPlan, i, r.Probability)
	}
	if r.MinIndex < 0 {
		return fmt.Errorf("%w: rule %d: negative min_index", ErrBadPlan, i)
	}
	if r.MaxIndex > 0 && r.MaxIndex < r.MinIndex {
		return fmt.Errorf("%w: rule %d: max_index %d < min_index %d", ErrBadPlan, i, r.MaxIndex, r.MinIndex)
	}
	if r.LatencyMs < 0 || r.JitterMs < 0 || r.HoldMs < 0 || r.ChunkDelayMs < 0 {
		return fmt.Errorf("%w: rule %d: negative duration field", ErrBadPlan, i)
	}
	if r.TruncateAfter < 0 || r.FlipEvery < 0 || r.ChunkBytes < 0 {
		return fmt.Errorf("%w: rule %d: negative byte-count field", ErrBadPlan, i)
	}
	if (r.LatencyMs != 0 || r.JitterMs != 0) && r.Kind != Latency {
		return fmt.Errorf("%w: rule %d: latency_ms/jitter_ms set on a %v rule", ErrBadPlan, i, r.Kind)
	}
	if r.HoldMs != 0 && r.Kind != Blackhole {
		return fmt.Errorf("%w: rule %d: hold_ms set on a %v rule", ErrBadPlan, i, r.Kind)
	}
	if r.TruncateAfter != 0 && r.Kind != Truncate {
		return fmt.Errorf("%w: rule %d: truncate_after set on a %v rule", ErrBadPlan, i, r.Kind)
	}
	if r.FlipEvery != 0 && r.Kind != Corrupt {
		return fmt.Errorf("%w: rule %d: flip_every set on a %v rule", ErrBadPlan, i, r.Kind)
	}
	if (r.ChunkBytes != 0 || r.ChunkDelayMs != 0) && r.Kind != SlowLoris {
		return fmt.Errorf("%w: rule %d: chunk_bytes/chunk_delay_ms set on a %v rule", ErrBadPlan, i, r.Kind)
	}
	return nil
}

// Fault is one resolved firing: the kind plus its fully defaulted
// parameters, stamped with the evaluation index that drew it.
type Fault struct {
	Kind  Kind
	Peer  string
	Route string
	Index int

	Latency       time.Duration // Latency: resolved base + jitter draw
	Hold          time.Duration // Blackhole: bounded hold
	TruncateAfter int           // Truncate: surviving body bytes
	FlipEvery     int           // Corrupt: bit-flip byte stride
	ChunkBytes    int           // SlowLoris: bytes per dribble
	ChunkDelay    time.Duration // SlowLoris: delay per dribble
}

// FaultError is the injected wire failure. It reports itself transient
// (resilience.IsTransient retries it): a reset or a partition is exactly
// the class of failure a retry or a hedge may beat.
type FaultError struct {
	Kind  Kind
	Peer  string
	Route string
	Index int
}

// Error formats the fault for logs.
func (e *FaultError) Error() string {
	return fmt.Sprintf("netfault: injected %v (peer %q route %q index %d)", e.Kind, e.Peer, e.Route, e.Index)
}

// Transient reports that retrying may succeed (resilience.Transienter).
func (e *FaultError) Transient() bool { return true }

// Timeout implements net.Error's convention: a blackhole looks like a
// timed-out dial, a reset does not.
func (e *FaultError) Timeout() bool { return e.Kind == Blackhole }

// Stats are an armed injector's running counters.
type Stats struct {
	// Evaluations counts At calls; Matches counts rule matches; Fired
	// counts per kind.
	Evaluations, Matches uint64
	Fired                [numKinds]uint64
}

// Total returns the fired-fault total across kinds.
func (s Stats) Total() uint64 {
	var n uint64
	for _, v := range s.Fired {
		n += v
	}
	return n
}

// Injector is an armed Plan: the live decision point the transport and
// listener wrappers consult. Create with Plan.Arm; share one injector
// across every wrapped edge of a run so the fault stream is a single
// deterministic sequence. A nil *Injector is "not armed" and costs one
// comparison per exchange.
type Injector struct {
	rules []Rule

	index atomic.Uint64 // global evaluation counter (0-based indices)

	mu   sync.Mutex
	rng  *rand.Rand
	hits []int // per-rule fire counts, for MaxHits

	evals   atomic.Uint64
	matches atomic.Uint64
	fired   [numKinds]atomic.Uint64
}

// Arm builds a live Injector. The injector owns a private PRNG seeded with
// Plan.Seed, so arming the same plan twice replays the same fault stream
// for the same evaluation sequence.
func (p *Plan) Arm() *Injector {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	return &Injector{
		rules: rules,
		rng:   rand.New(rand.NewSource(p.Seed)),
		hits:  make([]int, len(rules)),
	}
}

// At evaluates the plan for one exchange against peer over route. It
// returns nil (no fault — the overwhelmingly common case) or the resolved
// Fault to apply. Safe on a nil receiver, which is what keeps unarmed
// wrappers free.
func (in *Injector) At(peer, route string) *Fault {
	if in == nil {
		return nil
	}
	idx := int(in.index.Add(1) - 1)
	in.evals.Add(1)
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(peer, route, idx) {
			continue
		}
		in.matches.Add(1)
		if f := in.fire(i, r, peer, route, idx); f != nil {
			return f
		}
	}
	return nil
}

// fire draws the rule's probability and, when it fires, resolves the fault
// parameters. All PRNG draws sit under the mutex so concurrent consumers
// see one serialized (replayable-per-order) stream.
func (in *Injector) fire(i int, r *Rule, peer, route string, idx int) *Fault {
	in.mu.Lock()
	if r.MaxHits > 0 && in.hits[i] >= r.MaxHits {
		in.mu.Unlock()
		return nil
	}
	fired := r.Probability >= 1 || in.rng.Float64() < r.Probability
	var jitter float64
	if fired {
		in.hits[i]++
		if r.Kind == Latency && r.JitterMs > 0 {
			jitter = in.rng.Float64() * r.JitterMs
		}
	}
	in.mu.Unlock()
	if !fired {
		return nil
	}
	in.fired[r.Kind].Add(1)
	f := &Fault{Kind: r.Kind, Peer: peer, Route: route, Index: idx}
	switch r.Kind {
	case Latency:
		f.Latency = time.Duration((r.LatencyMs + jitter) * float64(time.Millisecond))
	case Blackhole:
		hold := r.HoldMs
		if hold <= 0 {
			hold = 30_000
		}
		f.Hold = time.Duration(hold * float64(time.Millisecond))
	case Truncate:
		f.TruncateAfter = r.TruncateAfter
		if f.TruncateAfter <= 0 {
			f.TruncateAfter = 20
		}
	case Corrupt:
		f.FlipEvery = r.FlipEvery
		if f.FlipEvery <= 0 {
			f.FlipEvery = 64
		}
	case SlowLoris:
		f.ChunkBytes = r.ChunkBytes
		if f.ChunkBytes <= 0 {
			f.ChunkBytes = 1
		}
		delay := r.ChunkDelayMs
		if delay <= 0 {
			delay = 1
		}
		f.ChunkDelay = time.Duration(delay * float64(time.Millisecond))
	}
	return f
}

// Error builds the FaultError for a severing fault.
func (f *Fault) Error() *FaultError {
	return &FaultError{Kind: f.Kind, Peer: f.Peer, Route: f.Route, Index: f.Index}
}

// Stats snapshots the injector's counters (zero value on a nil receiver).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	s := Stats{
		Evaluations: in.evals.Load(),
		Matches:     in.matches.Load(),
	}
	for k := range s.Fired {
		s.Fired[k] = in.fired[k].Load()
	}
	return s
}
