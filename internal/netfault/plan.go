package netfault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// This file is the plan's JSON wire format. A plan file is the Plan struct
// verbatim, and the schema token is mandatory so a netfault plan can never
// be mistaken for a faultinject one (docs/ARTIFACTS.md):
//
//	{
//	  "schema": "netfault/v1",
//	  "seed": 42,
//	  "rules": [
//	    {"peer": "rep-1", "probability": 0.5, "kind": "latency",
//	     "latency_ms": 40, "jitter_ms": 10},
//	    {"peer": "rep-2", "min_index": 40, "max_index": 80,
//	     "probability": 1, "kind": "blackhole", "hold_ms": 200},
//	    {"route": "/v1/threshold", "probability": 0.05, "kind": "truncate",
//	     "truncate_after": 16}
//	  ]
//	}
//
// Kind travels as its lowercase name so plans stay hand-editable.

// SchemaVersion is the plan schema token; ParsePlan refuses any other.
const SchemaVersion = "netfault/v1"

// MarshalJSON renders Kind as its schema name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if k < 0 || k >= numKinds {
		return nil, fmt.Errorf("%w: cannot marshal kind %d", ErrBadPlan, int(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the schema name back into a Kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("netfault: kind must be a string: %w", err)
	}
	kind, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = kind
	return nil
}

// Plan is a complete, replayable wire-fault schedule: the schema token, a
// seed, and rules evaluated in order (first firing rule wins). Plans are
// inert data; Arm turns one into a live Injector.
type Plan struct {
	// Schema must be SchemaVersion ("netfault/v1").
	Schema string `json:"schema"`
	// Seed feeds the injector's private PRNG.
	Seed int64 `json:"seed"`
	// Rules are evaluated in order; the first firing rule wins.
	Rules []Rule `json:"rules"`
}

// Validate checks the plan for schema errors.
func (p *Plan) Validate() error {
	if p.Schema != SchemaVersion {
		return fmt.Errorf("%w: plan schema %q, want %q", ErrBadPlan, p.Schema, SchemaVersion)
	}
	for i := range p.Rules {
		if err := p.Rules[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParsePlan decodes and validates a plan from its JSON form. Unknown
// fields are rejected so a typo'd rule key fails loudly instead of
// silently matching everything.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("netfault: invalid plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after plan", ErrBadPlan)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netfault: reading plan: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("netfault: %s: %w", path, err)
	}
	return p, nil
}

// Marshal renders the plan as indented JSON, the inverse of ParsePlan.
func (p *Plan) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(p, "", "  ")
}
