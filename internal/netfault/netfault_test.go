package netfault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

// goldenPlan is the determinism fixture: a mix of probabilistic and
// windowed rules over two peers.
func goldenPlan() *Plan {
	return &Plan{
		Schema: SchemaVersion,
		Seed:   42,
		Rules: []Rule{
			{Peer: "n1", Probability: 0.5, Kind: Latency, LatencyMs: 10, JitterMs: 4},
			{Peer: "n2", MinIndex: 4, MaxIndex: 9, Probability: 1, Kind: Blackhole, HoldMs: 50},
			{Route: "/v1/threshold", Probability: 0.25, Kind: Truncate, TruncateAfter: 8},
			{Probability: 0.2, Kind: Reset, MaxHits: 2},
		},
	}
}

// goldenSequence drives a fixed evaluation schedule and renders each
// outcome as "index:kind" (or "-" for no fault).
func goldenSequence(in *Injector) string {
	var b strings.Builder
	for i := 0; i < 24; i++ {
		peer := "n1"
		if i%2 == 1 {
			peer = "n2"
		}
		route := "/v1/threshold"
		if i%3 == 0 {
			route = "/v1/advise"
		}
		f := in.At(peer, route)
		if i > 0 {
			b.WriteByte(' ')
		}
		if f == nil {
			b.WriteString(fmt.Sprintf("%d:-", i))
		} else {
			b.WriteString(fmt.Sprintf("%d:%v", i, f.Kind))
		}
	}
	return b.String()
}

// TestGoldenFaultSequence pins the deterministic contract: the same seed +
// plan yields the same fault sequence, byte for byte, on every run. If a
// PRNG-consumption change breaks this, the partition soak's replayability
// breaks with it — treat a diff here as a contract change, not a test fix.
func TestGoldenFaultSequence(t *testing.T) {
	const want = "0:latency 1:- 2:latency 3:- 4:latency 5:blackhole 6:- 7:blackhole 8:latency 9:blackhole 10:latency 11:- 12:- 13:reset 14:latency 15:- 16:truncate 17:reset 18:latency 19:- 20:- 21:- 22:truncate 23:-"
	first := goldenSequence(goldenPlan().Arm())
	if first != want {
		t.Fatalf("golden fault sequence changed:\n got %s\nwant %s", first, want)
	}
	if second := goldenSequence(goldenPlan().Arm()); second != first {
		t.Fatalf("re-armed plan diverged:\n got %s\nwant %s", second, first)
	}
}

func TestPlanParseRoundTrip(t *testing.T) {
	p := goldenPlan()
	data, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	q, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(q.Rules) != len(p.Rules) || q.Seed != p.Seed || q.Schema != SchemaVersion {
		t.Fatalf("round trip changed the plan: %+v", q)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := map[string]string{
		"missing schema":    `{"seed": 1, "rules": []}`,
		"wrong schema":      `{"schema": "faultinject/v1", "seed": 1, "rules": []}`,
		"unknown field":     `{"schema": "netfault/v1", "seed": 1, "rules": [{"probability": 1, "kind": "reset", "bogus": 3}]}`,
		"unknown kind":      `{"schema": "netfault/v1", "rules": [{"probability": 1, "kind": "gremlin"}]}`,
		"probability > 1":   `{"schema": "netfault/v1", "rules": [{"probability": 1.5, "kind": "reset"}]}`,
		"inverted window":   `{"schema": "netfault/v1", "rules": [{"min_index": 9, "max_index": 3, "probability": 1, "kind": "reset"}]}`,
		"param wrong kind":  `{"schema": "netfault/v1", "rules": [{"probability": 1, "kind": "reset", "latency_ms": 5}]}`,
		"negative duration": `{"schema": "netfault/v1", "rules": [{"probability": 1, "kind": "latency", "latency_ms": -5}]}`,
		"trailing data":     `{"schema": "netfault/v1", "rules": []} {}`,
		"not json":          `schema: netfault/v1`,
	}
	for name, body := range cases {
		if _, err := ParsePlan([]byte(body)); err == nil {
			t.Errorf("%s: ParsePlan accepted %s", name, body)
		}
	}
}

// singleFault arms a plan whose only rule always fires kind k at peer
// "srv" on every route.
func singleFault(r Rule) *Injector {
	r.Probability = 1
	return (&Plan{Schema: SchemaVersion, Seed: 1, Rules: []Rule{r}}).Arm()
}

func testBackend(t *testing.T, body string) *httptest.Server {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, hc *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp, raw, err
}

func TestTransportLatencyAndReset(t *testing.T) {
	ts := testBackend(t, `{"ok":true}`)

	hc := &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: Latency, LatencyMs: 30})}}
	began := time.Now()
	_, raw, err := get(t, hc, ts.URL)
	if err != nil {
		t.Fatalf("latency-faulted GET failed: %v", err)
	}
	if string(raw) != `{"ok":true}` {
		t.Fatalf("latency fault changed the body: %q", raw)
	}
	if d := time.Since(began); d < 25*time.Millisecond {
		t.Fatalf("latency fault added only %v", d)
	}

	hc = &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: Reset})}}
	_, _, err = get(t, hc, ts.URL)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != Reset {
		t.Fatalf("reset fault surfaced as %v", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("injected reset is not transient: %v", err)
	}
}

func TestTransportBlackholeRespectsContext(t *testing.T) {
	ts := testBackend(t, "{}")
	hc := &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: Blackhole, HoldMs: 5000})}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	began := time.Now()
	_, err := hc.Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if d := time.Since(began); d > time.Second {
		t.Fatalf("blackhole ignored the context for %v", d)
	}
}

func TestTransportBodyFaults(t *testing.T) {
	const body = `{"schema":"blob.v1.threshold","data":{"found":true}}`
	ts := testBackend(t, body)

	// Truncate: short read ends in io.ErrUnexpectedEOF.
	hc := &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: Truncate, TruncateAfter: 10})}}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(raw) != 10 {
		t.Fatalf("truncate kept %d bytes, want 10", len(raw))
	}

	// Corrupt: byte count intact, content changed.
	hc = &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: Corrupt, FlipEvery: 16})}}
	_, raw, err = get(t, hc, ts.URL)
	if err != nil {
		t.Fatalf("corrupt-faulted GET failed: %v", err)
	}
	if len(raw) != len(body) {
		t.Fatalf("corrupt changed the length: %d != %d", len(raw), len(body))
	}
	if string(raw) == body {
		t.Fatal("corrupt fault left the body intact")
	}

	// SlowLoris: body intact, delivery dribbled.
	hc = &http.Client{Transport: &Transport{Injector: singleFault(Rule{Kind: SlowLoris, ChunkBytes: 8, ChunkDelayMs: 1})}}
	began := time.Now()
	_, raw, err = get(t, hc, ts.URL)
	if err != nil {
		t.Fatalf("slowloris GET failed: %v", err)
	}
	if string(raw) != body {
		t.Fatalf("slowloris changed the body: %q", raw)
	}
	if d := time.Since(began); d < 5*time.Millisecond {
		t.Fatalf("slowloris dribbled too fast: %v", d)
	}
}

func TestRuleWindowsAndMaxHits(t *testing.T) {
	in := (&Plan{Schema: SchemaVersion, Seed: 1, Rules: []Rule{
		{MinIndex: 2, MaxIndex: 3, Probability: 1, Kind: Reset},
	}}).Arm()
	var kinds []string
	for i := 0; i < 6; i++ {
		f := in.At("p", "/r")
		if f == nil {
			kinds = append(kinds, "-")
		} else {
			kinds = append(kinds, f.Kind.String())
		}
	}
	if got := strings.Join(kinds, " "); got != "- - reset reset - -" {
		t.Fatalf("index window misapplied: %s", got)
	}

	in = singleFault(Rule{Kind: Reset, MaxHits: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if in.At("p", "/r") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("max_hits=2 fired %d times", fired)
	}
	st := in.Stats()
	if st.Evaluations != 5 || st.Fired[Reset] != 2 || st.Total() != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWrapListenerFaults(t *testing.T) {
	// A reset-everything listener: every request dies on a severed conn.
	in := singleFault(Rule{Kind: Reset})
	backend := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "{}")
	}))
	backend.Listener = WrapListener(backend.Listener, in, "srv")
	backend.Start()
	defer backend.Close()
	hc := &http.Client{Timeout: 2 * time.Second}
	if _, err := hc.Get(backend.URL); err == nil {
		t.Fatal("request through a reset listener succeeded")
	}
	if in.Stats().Fired[Reset] == 0 {
		t.Fatal("listener never consulted the injector")
	}

	// Nil injector: WrapListener is the identity.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer plain.Close()
	if l := WrapListener(plain.Listener, nil, "srv"); l != plain.Listener {
		t.Fatal("WrapListener(nil injector) wrapped anyway")
	}
}

// TestUnarmedZeroAlloc pins the acceptance criterion that an unarmed
// wrapper costs nothing on the hot path: no allocations for the nil
// injector check, and a nil *Injector's At is alloc-free too.
func TestUnarmedZeroAlloc(t *testing.T) {
	var in *Injector
	if n := testing.AllocsPerRun(100, func() {
		if in.At("p", "/r") != nil {
			t.Fatal("nil injector fired")
		}
	}); n != 0 {
		t.Fatalf("nil Injector.At allocates %.1f per call", n)
	}
}

// BenchmarkTransportUnarmed measures the pass-through tax of leaving an
// unarmed Transport wrapper in production wiring.
func BenchmarkTransportUnarmed(b *testing.B) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "{}")
	}))
	defer ts.Close()
	hc := &http.Client{Transport: &Transport{Inner: http.DefaultTransport}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := hc.Get(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkInjectorAtNoMatch measures the armed-but-quiet cost: rules
// present, none matching this peer.
func BenchmarkInjectorAtNoMatch(b *testing.B) {
	in := (&Plan{Schema: SchemaVersion, Seed: 1, Rules: []Rule{
		{Peer: "other", Probability: 1, Kind: Reset},
	}}).Arm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if in.At("p", "/r") != nil {
			b.Fatal("unexpected fault")
		}
	}
}
