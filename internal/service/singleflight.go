package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key, in the spirit of
// x/sync/singleflight but rebuilt on the standard library with two
// service-specific twists:
//
//   - execution is delegated to a submit function (the worker pool) so
//     sweep concurrency is bounded and never runs on request goroutines;
//   - each flight owns a context that is cancelled when its last waiter
//     hangs up, so an abandoned sweep stops mid-loop instead of running
//     to completion for nobody (core.RunProblem checks the context
//     between problem sizes).
//
// The flight context deliberately derives from context.Background(), not
// from the first caller's request context: the leader is just whichever
// request arrived first, and its disconnection must not kill the sweep
// for the followers that joined afterwards.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done   chan struct{}
	val    any
	err    error
	refs   int
	cancel context.CancelFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[string]*flight{}}
}

// Do returns the result of fn for key, computing it at most once across
// concurrent callers. submit enqueues the computation (returning an error
// when the queue is full, which fails the whole flight). shared reports
// whether this caller joined an existing flight. When ctx is done before
// the flight completes, Do detaches the caller and returns ctx's error;
// the last caller to detach cancels the flight's context.
func (g *flightGroup) Do(ctx context.Context, key string, submit func(func()) error, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	fl, ok := g.flights[key]
	if ok {
		fl.refs++
		g.mu.Unlock()
		return g.wait(ctx, key, fl, true)
	}
	//blobvet:allow ctxflow: deliberate detachment — the flight outlives its first caller and is cancelled by the last one to detach
	fctx, cancel := context.WithCancel(context.Background())
	fl = &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	g.flights[key] = fl
	g.mu.Unlock()

	run := func() {
		v, e := fn(fctx)
		cancel() // release the flight context's resources
		g.mu.Lock()
		fl.val, fl.err = v, e
		// Future calls for the key start a fresh flight; the result (if
		// cacheable) is the fn closure's business, not the group's.
		if g.flights[key] == fl {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(fl.done)
	}
	if err := submit(run); err != nil {
		cancel()
		g.mu.Lock()
		fl.err = err
		if g.flights[key] == fl {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(fl.done)
	}
	return g.wait(ctx, key, fl, false)
}

// waiterCount returns the number of callers currently waiting across all
// flights. The concurrency tests use it as a deterministic barrier: once
// every request has joined the flight, releasing the sweep proves the
// whole batch shares one execution.
func (g *flightGroup) waiterCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, fl := range g.flights {
		n += fl.refs
	}
	return n
}

// wait blocks until the flight completes or the caller's ctx is done.
func (g *flightGroup) wait(ctx context.Context, key string, fl *flight, shared bool) (any, bool, error) {
	select {
	case <-fl.done:
		return fl.val, shared, fl.err
	case <-ctx.Done():
		g.mu.Lock()
		fl.refs--
		last := fl.refs == 0
		if last && g.flights[key] == fl {
			// Remove the doomed flight so the next request for this key
			// starts a fresh sweep instead of inheriting a cancellation.
			delete(g.flights, key)
		}
		g.mu.Unlock()
		if last {
			fl.cancel()
		}
		return nil, shared, ctx.Err()
	}
}
