package service

import (
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestReadyzReady pins the readiness body the way TestHealthz pins
// liveness: a replica with an armed worker pool and no drain in
// progress answers 200 with the blob.v1.ready schema.
func TestReadyzReady(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body ReadyBody
	decodeEnvelope(t, string(raw), SchemaReady, &body)
	if body.Status != "ready" || body.Draining || !body.WorkersArmed || body.UptimeSeconds < 0 {
		t.Fatalf("body = %+v", body)
	}
}

// TestReadyzDuringDrain: BeginDrain flips /readyz to 503 not_ready
// while /healthz stays 200 — a draining replica is alive (it is still
// flushing in-flight work) but must stop receiving new traffic.
func TestReadyzDuringDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.BeginDrain()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	apiErr := decodeAPIError(t, string(raw))
	if apiErr.Code != "not_ready" {
		t.Fatalf("code = %q, want not_ready", apiErr.Code)
	}
	if !strings.Contains(apiErr.Message, "draining") {
		t.Fatalf("message %q does not say why the replica is not ready", apiErr.Message)
	}
	if apiErr.RetryAfterS != 1 {
		t.Fatalf("retry_after_s = %d does not mirror the header", apiErr.RetryAfterS)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz followed readiness down during drain: %d", hresp.StatusCode)
	}

	ok, reason := s.Ready()
	if ok || reason != "draining" {
		t.Fatalf("Ready() = (%v, %q) during drain", ok, reason)
	}
}

// TestReadyzBeforeWorkersArmed: readiness tracks the worker pool — a
// replica is not ready until every worker has parked on the job
// channel, so an orchestrator will not route traffic into a cold
// replica. A fresh pool arms within the startup window; Ready() and
// Pool.Armed() flip together.
func TestReadyzBeforeWorkersArmed(t *testing.T) {
	s := New(Options{Workers: 4})
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, reason := s.Ready()
		if ok {
			if !s.pool.Armed() {
				t.Fatal("Ready() true while the pool reports unarmed")
			}
			return
		}
		if reason != "worker pool not armed" {
			t.Fatalf("not-ready reason = %q during startup", reason)
		}
		if time.Now().After(deadline) {
			t.Fatal("worker pool never armed")
		}
		runtime.Gosched()
	}
}

// TestDrainOrderAndMetric pins the drain sequence at the service layer:
// BeginDrain (not-ready) happens before Close (flush), in-flight work
// admitted before the drain still completes, and the completed drain
// stamps blob_drain_seconds exactly once.
func TestDrainOrderAndMetric(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	// Admit a request, then drain. The response must still be served:
	// drain stops new traffic at the readiness gate, never truncates
	// accepted work.
	req := `{"system":"dawn","kernel":"gemv","precision":"f64","config":{"max_dim":32,"step":8,"iterations":2}}`
	resp, body := postJSON(t, ts.URL+"/v1/threshold", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain threshold: %d %s", resp.StatusCode, body)
	}

	s.BeginDrain()
	if got := s.Metrics().DrainSeconds(); got != 0 {
		t.Fatalf("blob_drain_seconds = %g before flush completed, want 0", got)
	}
	s.Close()
	got := s.Metrics().DrainSeconds()
	if got <= 0 {
		t.Fatalf("blob_drain_seconds = %g after drain, want > 0", got)
	}

	// Close is idempotent and must not re-stamp a new (zero-length)
	// drain on the second call.
	s.Close()
	if again := s.Metrics().DrainSeconds(); math.Abs(again-got) > 0 {
		t.Fatalf("second Close moved blob_drain_seconds %g -> %g", got, again)
	}
}
