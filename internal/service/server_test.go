package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// wireEnvelope mirrors Envelope with a raw Data payload, so tests can
// check the schema token before unmarshalling the typed body.
type wireEnvelope struct {
	Schema string          `json:"schema"`
	Data   json.RawMessage `json:"data"`
	Error  *APIError       `json:"error"`
}

// decodeEnvelope unwraps a success envelope into data, failing the test
// on a schema mismatch or an error payload.
func decodeEnvelope(t *testing.T, body, wantSchema string, data any) {
	t.Helper()
	var env wireEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("non-envelope body %q: %v", body, err)
	}
	if env.Schema != wantSchema {
		t.Fatalf("schema = %q, want %q (body %s)", env.Schema, wantSchema, body)
	}
	if env.Error != nil {
		t.Fatalf("unexpected error payload: %+v", env.Error)
	}
	if err := json.Unmarshal(env.Data, data); err != nil {
		t.Fatalf("bad data payload %s: %v", env.Data, err)
	}
}

// decodeAPIError unwraps an error envelope, failing the test when the
// body is not a well-formed v1 error.
func decodeAPIError(t *testing.T, body string) *APIError {
	t.Helper()
	var env wireEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("non-envelope error body %q: %v", body, err)
	}
	if env.Schema != SchemaError || env.Error == nil {
		t.Fatalf("not a v1 error envelope: %s", body)
	}
	return env.Error
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body HealthBody
	decodeEnvelope(t, string(raw), SchemaHealth, &body)
	if body.Status != "ok" || body.UptimeSeconds < 0 {
		t.Fatalf("body = %+v", body)
	}
}

func TestAdviseHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{
	  "systems": ["isambard-ai"],
	  "calls": [
	    {"kernel":"gemm","m":2048,"n":2048,"k":2048,"precision":"f32","count":32,"movement":"once"},
	    {"kernel":"gemv","m":8,"n":8,"precision":"f64","count":1,"movement":"always"}
	  ]
	}`
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out AdviseResponse
	decodeEnvelope(t, body, SchemaAdvise, &out)
	if len(out.Verdicts) != 2 || len(out.Summaries) != 1 {
		t.Fatalf("verdicts=%d summaries=%d", len(out.Verdicts), len(out.Summaries))
	}
	// Same directions the advisor unit tests assert: big GEMM offloads on
	// the GH200, tiny GEMV stays on the CPU.
	if !out.Verdicts[0].Offload {
		t.Fatalf("large GEMM should offload: %+v", out.Verdicts[0])
	}
	if out.Verdicts[1].Offload {
		t.Fatalf("tiny GEMV should stay on CPU: %+v", out.Verdicts[1])
	}
	if out.Summaries[0].System != "Isambard-AI" {
		t.Fatalf("summary system = %q", out.Summaries[0].System)
	}
}

func TestAdviseDefaultsToAllSystems(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"calls":[{"kernel":"gemm","m":64,"n":64,"k":64,"precision":"f64","count":1,"movement":"usm"}]}`
	resp, body := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out AdviseResponse
	decodeEnvelope(t, body, SchemaAdvise, &out)
	if len(out.Verdicts) != 3 || len(out.Summaries) != 3 {
		t.Fatalf("want one verdict and summary per system, got %d/%d", len(out.Verdicts), len(out.Summaries))
	}
}

func TestAdviseBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"empty body", ``, "invalid JSON"},
		{"not json", `{`, "invalid JSON"},
		{"unknown field", `{"callz":[]}`, "invalid JSON"},
		{"trailing data", `{"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}{}`, "trailing data"},
		{"no calls", `{"calls":[]}`, "calls must not be empty"},
		{"unknown system", `{"systems":["cray-1"],"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}`, "unknown system"},
		{"bad kernel", `{"calls":[{"kernel":"trsm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}`, "unknown kernel"},
		{"bad precision", `{"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f16","count":1,"movement":"once"}]}`, "unknown precision"},
		{"bad movement", `{"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"sometimes"}]}`, "unknown strategy"},
		{"zero count", `{"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":0,"movement":"once"}]}`, "count must be >= 1"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/advise", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, body)
		}
		e := decodeAPIError(t, body)
		if e.Code != "bad_request" {
			t.Fatalf("%s: code = %q, want bad_request", tc.name, e.Code)
		}
		if !strings.Contains(e.Message, tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Message, tc.wantErr)
		}
	}
}

func TestPostOnlyEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/advise", "/v1/threshold", "/v1/dispatch", "/v0/advise"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status = %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("GET %s: Allow = %q", path, allow)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Generate one success and one client error, then scrape.
	postJSON(t, ts.URL+"/v1/advise", `{"calls":[{"kernel":"gemv","m":4,"n":4,"precision":"f32","count":1,"movement":"usm"}]}`)
	postJSON(t, ts.URL+"/v1/advise", `{"calls":[]}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		`blob_requests_total{endpoint="/v1/advise",code="200"} 1`,
		`blob_requests_total{endpoint="/v1/advise",code="400"} 1`,
		`blob_request_seconds_bucket{endpoint="/v1/advise",le="+Inf"} 2`,
		"blob_cache_hits_total 0",
		"blob_cache_misses_total 0",
		"blob_inflight_requests 1", // the /metrics request itself
		"blob_sweep_queue_depth 0",
		`blob_sweeps_total{result="started"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
}
