package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/sim/systems"
)

// dispatchBatch builds a dispatch request body of calls cycling through
// `distinct` GEMM shapes.
func dispatchBatch(system string, calls, distinct int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"system":%q,"calls":[`, system)
	for i := 0; i < calls; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		m := 16 + 4*(i%distinct)
		fmt.Fprintf(&b, `{"kernel":"gemm","m":%d,"n":64,"k":64,"precision":"f64","count":1,"movement":"once"}`, m)
	}
	b.WriteString(`]}`)
	return b.String()
}

func TestDispatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"system":"isambard-ai","calls":[
	  {"kernel":"gemm","m":2048,"n":2048,"k":2048,"precision":"f32","count":32,"movement":"once"},
	  {"kernel":"gemv","m":8,"n":8,"precision":"f64","count":1,"movement":"always"},
	  {"kernel":"gemm","m":256,"n":256,"k":256,"precision":"f64","count":4,"movement":"usm","resident":true}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/dispatch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out DispatchResponse
	decodeEnvelope(t, raw, SchemaDispatch, &out)
	if out.System != "Isambard-AI" || len(out.Decisions) != 3 {
		t.Fatalf("response: %+v", out)
	}
	// Same directions the advise tests pin: the big GEMM offloads, the
	// tiny GEMV stays on the CPU.
	if out.Decisions[0].Device != "gpu" {
		t.Fatalf("large GEMM should route to the GPU: %+v", out.Decisions[0])
	}
	if out.Decisions[1].Device != "cpu" {
		t.Fatalf("tiny GEMV should stay on the CPU: %+v", out.Decisions[1])
	}
	for i, d := range out.Decisions {
		if d.CPUSeconds <= 0 || d.GPUSeconds <= 0 || d.Speedup <= 0 {
			t.Fatalf("decision %d has non-positive timings: %+v", i, d)
		}
	}
}

// TestDispatchBatchDedup is the issue's 5k-shape acceptance: a 5000-call
// batch cycling 250 distinct shapes, sent concurrently by four clients,
// evaluates the timing models exactly 250 times — every other decision
// is answered by the seen-shape cache or joins an in-flight evaluation
// through the dispatcher's singleflight.
func TestDispatchBatchDedup(t *testing.T) {
	const batchCalls, distinct, clients = 5000, 250, 4
	var evals atomic.Int64
	s, ts := newTestServer(t, Options{
		DispatchEvaluate: func(sys systems.System, c advisor.Call) (float64, float64) {
			evals.Add(1)
			return advisor.Times(sys, c)
		},
	})
	body := dispatchBatch("dawn", batchCalls, distinct)

	var wg sync.WaitGroup
	responses := make([]DispatchResponse, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var env wireEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				errs <- err
				return
			}
			errs <- json.Unmarshal(env.Data, &responses[i])
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := evals.Load(); got != distinct {
		t.Fatalf("model evaluations = %d, want exactly %d (the distinct shapes)", got, distinct)
	}
	totalHits := 0
	for i, r := range responses {
		if len(r.Decisions) != batchCalls {
			t.Fatalf("client %d got %d decisions, want %d", i, len(r.Decisions), batchCalls)
		}
		totalHits += r.CacheHits
	}
	// Across the four batches at most `distinct` decisions were computed
	// fresh; everything else must be marked as shared or cached.
	if want := clients*batchCalls - distinct; totalHits < want {
		t.Fatalf("cache_hits = %d across clients, want >= %d", totalHits, want)
	}
	if v := s.Metrics().DispatchDecisions.Value(); v != clients*batchCalls {
		t.Fatalf("dispatch decisions metric = %d, want %d", v, clients*batchCalls)
	}
	if v := s.Metrics().DispatchBatches.Value(); v != clients {
		t.Fatalf("dispatch batches metric = %d, want %d", v, clients)
	}
}

// TestDispatchMidBatchCancellation: a client that hangs up while its
// batch is being decided stops the batch mid-way — the handler observes
// the context between calls, stops evaluating, and records the abandoned
// batch (nginx's 499 convention, same as the threshold path).
func TestDispatchMidBatchCancellation(t *testing.T) {
	const stopAfter = 10
	evaluated := make(chan struct{}, 1<<16)
	release := make(chan struct{})
	var evals atomic.Int64
	s, ts := newTestServer(t, Options{
		DispatchEvaluate: func(sys systems.System, c advisor.Call) (float64, float64) {
			evaluated <- struct{}{}
			n := evals.Add(1)
			if n == stopAfter {
				<-release // hold the batch mid-decision until the client is gone
			}
			if n >= stopAfter {
				// Pace the tail of the batch so the server's detection of the
				// closed connection (asynchronous, via the background read)
				// always lands while the batch is still in progress.
				time.Sleep(time.Millisecond)
			}
			return advisor.Times(sys, c)
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	body := dispatchBatch("dawn", 5000, 5000) // all distinct: every call evaluates
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/dispatch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	for i := 0; i < stopAfter; i++ {
		<-evaluated
	}
	cancel()
	if err := <-clientDone; err == nil {
		t.Fatal("cancelled client should see an error")
	}
	close(release)
	// The handler must notice the dead context between calls and abandon
	// the batch: abandoned is counted, the batch never completes, and the
	// bulk of the 4990 remaining evaluations never runs.
	waitFor(t, func() bool { return s.Metrics().DispatchAbandoned.Value() == 1 })
	if v := s.Metrics().DispatchBatches.Value(); v != 0 {
		t.Fatalf("abandoned batch counted as served: batches = %d", v)
	}
	if got := evals.Load(); got >= 2500 {
		t.Fatalf("evaluations after hangup: %d — the batch should stop mid-way, not run to completion", got)
	}
}

// TestDispatchStatePersistsAcrossRequests: the per-system dispatcher is
// long-lived, so a repeated batch is answered entirely from its cache.
func TestDispatchStatePersistsAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := dispatchBatch("dawn", 100, 100)
	resp, raw := postJSON(t, ts.URL+"/v1/dispatch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var first DispatchResponse
	decodeEnvelope(t, raw, SchemaDispatch, &first)

	_, raw = postJSON(t, ts.URL+"/v1/dispatch", body)
	var second DispatchResponse
	decodeEnvelope(t, raw, SchemaDispatch, &second)
	if second.CacheHits != 100 {
		t.Fatalf("replayed batch: cache_hits = %d, want 100", second.CacheHits)
	}
	for i := range second.Decisions {
		if second.Decisions[i].Device != first.Decisions[i].Device {
			t.Fatalf("decision %d changed across requests", i)
		}
	}
}

func TestDispatchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxDispatchBatch: 8})
	cases := []struct {
		name, body, wantErr string
	}{
		{"no system", `{"calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}`, "system must be set"},
		{"unknown system", `{"system":"cray-1","calls":[{"kernel":"gemm","m":1,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}`, "unknown system"},
		{"no calls", `{"system":"dawn","calls":[]}`, "calls must not be empty"},
		{"bad call", `{"system":"dawn","calls":[{"kernel":"gemm","m":0,"n":1,"k":1,"precision":"f64","count":1,"movement":"once"}]}`, "calls[0]"},
		{"oversized batch", dispatchBatch("dawn", 9, 9), "exceeds the service limit"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/dispatch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, body)
		}
		e := decodeAPIError(t, body)
		if !strings.Contains(e.Message, tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Message, tc.wantErr)
		}
	}
}

// TestAdviseDeprecationAlias pins both generations of the advise
// contract: /v1/advise answers the enveloped form, /v0/advise still
// serves the bare pre-envelope body (with a Deprecation header) so
// un-migrated clients keep working for one release.
func TestAdviseDeprecationAlias(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"systems":["dawn"],"calls":[{"kernel":"gemm","m":512,"n":512,"k":512,"precision":"f64","count":8,"movement":"once"}]}`

	// v1: enveloped.
	resp, raw := postJSON(t, ts.URL+"/v1/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 status = %d, body %s", resp.StatusCode, raw)
	}
	var v1 AdviseResponse
	decodeEnvelope(t, raw, SchemaAdvise, &v1)

	// v0: bare body, no envelope wrapper, Deprecation header set.
	resp, raw = postJSON(t, ts.URL+"/v0/advise", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v0 status = %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("v0 alias must carry a Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/advise") {
		t.Fatalf("v0 Link header %q should point at the successor", link)
	}
	if strings.Contains(raw, `"schema"`) {
		t.Fatalf("v0 body must stay bare, got %s", raw)
	}
	var v0 AdviseResponse
	if err := json.Unmarshal([]byte(raw), &v0); err != nil {
		t.Fatalf("v0 body is not the legacy AdviseResponse: %v", err)
	}
	if len(v0.Verdicts) != 1 || v0.Verdicts[0].Offload != v1.Verdicts[0].Offload ||
		math.Abs(v0.Verdicts[0].Speedup-v1.Verdicts[0].Speedup) > 0 {
		t.Fatalf("v0 and v1 disagree:\n%+v\n%+v", v0.Verdicts, v1.Verdicts)
	}

	// v0 errors keep the legacy {"error": ...} shape too.
	resp, raw = postJSON(t, ts.URL+"/v0/advise", `{"calls":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v0 error status = %d", resp.StatusCode)
	}
	var legacy legacyErrorBody
	if err := json.Unmarshal([]byte(raw), &legacy); err != nil || legacy.Error == "" {
		t.Fatalf("v0 error body is not the legacy shape: %s", raw)
	}
	if strings.Contains(raw, `"schema"`) {
		t.Fatalf("v0 error body must stay bare, got %s", raw)
	}
}
