package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/sim/systems"
)

// TestRecoveredMiddleware: a panicking handler is contained — JSON 500,
// panics_total tick — and the server keeps serving.
func TestRecoveredMiddleware(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	h := s.instrument("/boom", s.recovered(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var env wireEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("500 body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if env.Schema != SchemaError || env.Error == nil || env.Error.Message == "" {
		t.Fatalf("500 body is not the v1 error envelope: %q", rec.Body.String())
	}
	if s.metrics.PanicsTotal.Value() != 1 {
		t.Fatalf("panics_total = %d, want 1", s.metrics.PanicsTotal.Value())
	}
}

// TestSweepPanicContained: a PanicKind fault at the service injection
// point (standing in for any panicking backend) becomes a JSON 500, not
// a dead worker goroutine — and the pool keeps serving afterwards.
func TestSweepPanicContained(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Inject: (&faultinject.Plan{Rules: []faultinject.Rule{
			{Backend: faultinject.BackendService, Probability: 1, Kind: faultinject.PanicKind, MaxHits: 1},
		}}).Arm(),
	})
	resp, body := postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if e := decodeAPIError(t, body); e.Message == "" {
		t.Fatalf("500 body is not the v1 error envelope: %s", body)
	}
	if got := s.metrics.PanicsTotal.Value(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// MaxHits 1: the plan is spent, the pool survived, service recovers.
	resp, body = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request: status = %d (body %s)", resp.StatusCode, body)
	}
}

// TestRequestTimeout504: a sweep that outlives the request budget is
// answered 504 with the JSON error envelope and counted.
func TestRequestTimeout504(t *testing.T) {
	s, ts := newTestServer(t, Options{
		RequestTimeout: 50 * time.Millisecond,
		Sweep: func(ctx context.Context, _ systems.System, _ []core.ProblemType, _ []core.Precision, _ core.Config) ([]*core.Series, error) {
			<-ctx.Done() // the flight context is cancelled once every waiter is gone
			return nil, ctx.Err()
		},
	})
	resp, body := postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if e := decodeAPIError(t, body); e.Code != "deadline_exceeded" || e.Message == "" {
		t.Fatalf("504 body is not the v1 error envelope: %s", body)
	}
	if got := s.metrics.TimeoutsTotal.Value(); got != 1 {
		t.Fatalf("timeouts_total = %d, want 1", got)
	}
}

// TestBreakerStaleDegradationAndRecovery walks the full degradation arc:
// healthy serve -> cache expiry -> backend failures trip the breaker ->
// breaker-open requests serve the stale entry (marked, counted) or 503
// without one -> half-open probe recovers -> fresh serves resume.
func TestBreakerStaleDegradationAndRecovery(t *testing.T) {
	var failing atomic.Bool
	s, ts := newTestServer(t, Options{
		CacheTTL: time.Minute,
		// The healthy request below counts as one breaker success, so with
		// MinRequests 3 the second failure is what trips it (ratio 2/3).
		Breaker: resilience.BreakerConfig{
			MinRequests:  3,
			FailureRatio: 0.5,
			OpenTimeout:  100 * time.Millisecond,
		},
		Sweep: func(ctx context.Context, sys systems.System, problems []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
			if failing.Load() {
				return nil, fmt.Errorf("backend down")
			}
			return core.Run(ctx, sys, problems, precs, cfg)
		},
	})

	// Healthy: compute and cache one result.
	resp, body := postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request: %d (%s)", resp.StatusCode, body)
	}
	var fresh ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &fresh)

	// Age the entry past its TTL so Get misses but GetStale still has it.
	s.cache.clock = func() time.Time { return time.Now().Add(2 * time.Minute) }

	// Two straight failures trip the breaker (2 of 3 requests failed).
	failing.Store(true)
	for i := 0; i < 2; i++ {
		resp, _ = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i, resp.StatusCode)
		}
	}

	// Breaker open + stale entry available: degraded 200, marked stale.
	resp, body = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("breaker-open request: %d (%s)", resp.StatusCode, body)
	}
	var stale ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &stale)
	if !stale.Stale || !stale.Cached {
		t.Fatalf("degraded response not marked stale+cached: %s", body)
	}
	if stale.Thresholds["Once"] != fresh.Thresholds["Once"] {
		t.Fatalf("stale serve returned different verdicts: %v vs %v",
			stale.Thresholds["Once"], fresh.Thresholds["Once"])
	}
	if s.metrics.StaleServes.Value() != 1 || s.metrics.BreakerOpenTotal.Value() != 1 {
		t.Fatalf("stale_serves=%d breaker_open=%d, want 1/1",
			s.metrics.StaleServes.Value(), s.metrics.BreakerOpenTotal.Value())
	}

	// Breaker open + nothing cached for this key: 503 with Retry-After.
	otherKey := `{"system":"isambard-ai","kernel":"gemm","problem":"tall_k_16m","precision":"f32","config":{"max_dim":96,"iterations":8}}`
	resp, body = postJSON(t, ts.URL+"/v1/threshold", otherKey)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open uncached request: %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Half-open recovery: after OpenTimeout a healthy probe closes the
	// breaker and fresh results flow again.
	failing.Store(false)
	time.Sleep(150 * time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: %d (%s)", resp.StatusCode, body)
	}
	var recovered ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &recovered)
	if recovered.Stale || recovered.Cached {
		t.Fatalf("recovered response still degraded: %s", body)
	}
	if s.metrics.BreakerTransitions.Value() < 3 { // closed>open, open>half-open, half-open>closed
		t.Fatalf("breaker_transitions = %d, want >= 3", s.metrics.BreakerTransitions.Value())
	}
}

// TestThresholdUnderChaosPlan is the service half of the issue's chaos
// acceptance: with a seeded 30%-transient GPU fault plan armed on the
// sim backends and retries enabled, blob-served's handler returns no
// 5xx, and the verdicts match a fault-free server bit for bit.
func TestThresholdUnderChaosPlan(t *testing.T) {
	probs := []string{"square", "tall_k_16m", "short_mn32_k"}
	body := func(p string) string {
		return fmt.Sprintf(`{"system":"isambard-ai","kernel":"gemm","problem":%q,"precision":"f32","config":{"max_dim":96,"iterations":8}}`, p)
	}
	clean := map[string]ThresholdResponse{}
	_, cleanTS := newTestServer(t, Options{})
	for _, p := range probs {
		resp, b := postJSON(t, cleanTS.URL+"/v1/threshold", body(p))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("clean %s: %d (%s)", p, resp.StatusCode, b)
		}
		var out ThresholdResponse
		decodeEnvelope(t, b, SchemaThreshold, &out)
		clean[p] = out
	}

	inj := (&faultinject.Plan{Seed: 20260805, Rules: []faultinject.Rule{
		{Backend: faultinject.BackendGPU, Probability: 0.3, Kind: faultinject.Transient},
	}}).Arm()
	_, chaosTS := newTestServer(t, Options{
		Resilience: core.Resilience{MaxAttempts: 25},
		Sweep: func(ctx context.Context, sys systems.System, problems []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
			sys.CPU.Inject = inj
			sys.GPU.Inject = inj
			return core.Run(ctx, sys, problems, precs, cfg)
		},
	})
	for _, p := range probs {
		resp, b := postJSON(t, chaosTS.URL+"/v1/threshold", body(p))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("chaos %s: status %d (%s) — resilient service must not 5xx on transient faults",
				p, resp.StatusCode, b)
		}
		var out ThresholdResponse
		decodeEnvelope(t, b, SchemaThreshold, &out)
		for st, want := range clean[p].Thresholds {
			if out.Thresholds[st] != want {
				t.Fatalf("chaos %s %s: verdict %+v != clean %+v", p, st, out.Thresholds[st], want)
			}
		}
	}
	if n := inj.Stats().Transients; n == 0 {
		t.Fatal("the chaos plan never fired")
	}
}

// TestCacheTTLAndGetStale covers the cache's freshness mechanics in
// isolation from HTTP.
func TestCacheTTLAndGetStale(t *testing.T) {
	c := NewCacheTTL(4, time.Minute)
	base := time.Unix(5000, 0)
	now := base
	c.clock = func() time.Time { return now }

	c.Put("k", 42)
	if v, ok := c.Get("k"); !ok || v.(int) != 42 {
		t.Fatal("fresh entry missing")
	}
	now = base.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry still fresh")
	}
	v, expired, ok := c.GetStale("k")
	if !ok || !expired || v.(int) != 42 {
		t.Fatalf("GetStale = (%v, %v, %v), want (42, true, true)", v, expired, ok)
	}
	// Re-Put refreshes the stored-at time.
	c.Put("k", 43)
	if v, ok := c.Get("k"); !ok || v.(int) != 43 {
		t.Fatal("refreshed entry not fresh")
	}
	// No-TTL cache: nothing ever expires and GetStale mirrors Get.
	nc := NewCache(2)
	nc.Put("x", 1)
	if _, expired, ok := nc.GetStale("x"); !ok || expired {
		t.Fatal("no-TTL entry reported expired")
	}
	if _, _, ok := nc.GetStale("missing"); ok {
		t.Fatal("missing key found")
	}
}
