package service

import (
	"fmt"
	"net/http"

	benchdata "repro/bench_data"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// CallRequest is the wire form of one BLAS call group. The spellings
// match the advisor's CSV trace columns; both are mapped onto the typed
// advisor.Call model at this parse boundary.
type CallRequest struct {
	Kernel    string `json:"kernel"`
	M         int    `json:"m"`
	N         int    `json:"n"`
	K         int    `json:"k,omitempty"`
	Precision string `json:"precision"`
	Count     int    `json:"count"`
	Movement  string `json:"movement"`
}

// toCall maps the wire form onto the typed model, validating as it goes.
func (cr CallRequest) toCall() (advisor.Call, error) {
	var c advisor.Call
	var err error
	if c.Kernel, err = core.ParseKernelKind(cr.Kernel); err != nil {
		return c, err
	}
	if c.Precision, err = core.ParsePrecision(cr.Precision); err != nil {
		return c, err
	}
	if c.Strategy, err = xfer.ParseStrategy(cr.Movement); err != nil {
		return c, err
	}
	c.M, c.N, c.K, c.Count = cr.M, cr.N, cr.K, cr.Count
	return c, c.Validate()
}

// AdviseRequest is the body of POST /v1/advise: a batch of call groups
// evaluated against one or more systems (all three when omitted). Model
// selects the timing model — "roofline" (default when omitted) or
// "blackbox", the committed measured-efficiency tables.
type AdviseRequest struct {
	Systems []string      `json:"systems,omitempty"`
	Calls   []CallRequest `json:"calls"`
	Model   string        `json:"model,omitempty"` // default "roofline"
}

// VerdictBody is one advisor verdict on the wire.
type VerdictBody struct {
	Call       CallRequest `json:"call"`
	System     string      `json:"system"`
	CPUSeconds float64     `json:"cpu_seconds"`
	GPUSeconds float64     `json:"gpu_seconds"`
	Offload    bool        `json:"offload"`
	Speedup    float64     `json:"speedup"`
}

// SummaryBody is one per-system trace summary on the wire.
type SummaryBody struct {
	System         string  `json:"system"`
	AllCPUSeconds  float64 `json:"all_cpu_seconds"`
	AllGPUSeconds  float64 `json:"all_gpu_seconds"`
	MixedSeconds   float64 `json:"mixed_seconds"`
	OffloadedCalls int     `json:"offloaded_calls"`
}

// AdviseResponse is the body of a successful POST /v1/advise. Model
// names the timing model when it is not the default: "blackbox" for
// table-driven verdicts, omitted entirely for roofline so existing
// clients see byte-identical output.
type AdviseResponse struct {
	Verdicts  []VerdictBody `json:"verdicts"`
	Summaries []SummaryBody `json:"summaries"`
	Model     string        `json:"model,omitempty"`
}

// handleAdvise serves POST /v1/advise with the unified envelope.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	resp, status, err := s.advise(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeEnvelope(w, status, SchemaAdvise, resp)
}

// handleAdviseV0 serves the deprecated /v0/advise alias: the same
// computation with the pre-envelope bare bodies, kept readable for one
// release. The Deprecation header points migrating clients at the
// replacement.
func (s *Server) handleAdviseV0(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/advise>; rel="successor-version"`)
	resp, status, err := s.advise(r)
	if err != nil {
		writeJSON(w, status, legacyErrorBody{Error: err.Error()})
		return
	}
	writeJSON(w, status, resp)
}

// advise decodes, validates and evaluates one advise request; the two
// handlers above only differ in how they serialise the outcome.
func (s *Server) advise(r *http.Request) (AdviseResponse, int, error) {
	var req AdviseRequest
	if err := decodeJSON(r, &req); err != nil {
		return AdviseResponse{}, http.StatusBadRequest, err
	}
	if len(req.Calls) == 0 {
		return AdviseResponse{}, http.StatusBadRequest, fmt.Errorf("calls must not be empty")
	}
	syss, err := resolveSystems(req.Systems)
	if err != nil {
		return AdviseResponse{}, http.StatusBadRequest, err
	}
	model, err := core.ParseModelKind(req.Model)
	if err != nil {
		return AdviseResponse{}, http.StatusBadRequest, err
	}
	if model == core.ModelBlackbox {
		set, err := benchdata.Default()
		if err != nil {
			// The embedded tables failed to parse: a build defect, not a
			// client error.
			return AdviseResponse{}, http.StatusInternalServerError, err
		}
		for i := range syss {
			syss[i] = syss[i].WithEffTables(set)
		}
	}
	calls := make([]advisor.Call, 0, len(req.Calls))
	wires := make([]CallRequest, 0, len(req.Calls))
	for i, cr := range req.Calls {
		c, err := cr.toCall()
		if err != nil {
			return AdviseResponse{}, http.StatusBadRequest, fmt.Errorf("calls[%d]: %w", i, err)
		}
		calls = append(calls, c)
		wires = append(wires, cr)
	}
	verdicts, err := advisor.AdviseAll(syss, calls)
	if err != nil {
		// Calls were validated above, so this is a server-side failure.
		return AdviseResponse{}, http.StatusInternalServerError, err
	}
	resp := AdviseResponse{Verdicts: make([]VerdictBody, 0, len(verdicts))}
	if model == core.ModelBlackbox {
		resp.Model = model.String()
	}
	// AdviseAll preserves call-major order: len(syss) verdicts per call.
	for i, v := range verdicts {
		resp.Verdicts = append(resp.Verdicts, VerdictBody{
			Call:       wires[i/len(syss)],
			System:     v.System,
			CPUSeconds: v.CPUSeconds,
			GPUSeconds: v.GPUSeconds,
			Offload:    v.Offload,
			Speedup:    v.Speedup,
		})
	}
	for _, sum := range advisor.Summarize(verdicts) {
		resp.Summaries = append(resp.Summaries, SummaryBody{
			System:         sum.System,
			AllCPUSeconds:  sum.AllCPU,
			AllGPUSeconds:  sum.AllGPU,
			MixedSeconds:   sum.Mixed,
			OffloadedCalls: sum.OffloadedCalls,
		})
	}
	return resp, http.StatusOK, nil
}

// resolveSystems maps system tokens to presets; empty means all three.
func resolveSystems(names []string) ([]systems.System, error) {
	if len(names) == 0 {
		return systems.All(), nil
	}
	out := make([]systems.System, 0, len(names))
	for _, n := range names {
		sys, err := systems.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, sys)
	}
	return out, nil
}
