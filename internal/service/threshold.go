package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// SweepConfigRequest is the wire form of the sweep knobs, mirroring the
// artifact's CLI flags. Omitted fields take the benchmark's defaults
// (min 1, max 4096, step 1, 8 iterations, alpha 1, beta 0); validation is
// off because the service answers from the timing models.
type SweepConfigRequest struct {
	MinDim     int      `json:"min_dim,omitempty"`
	MaxDim     int      `json:"max_dim,omitempty"`
	Step       int      `json:"step,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       float64  `json:"beta,omitempty"`
}

// ThresholdRequest is the body of POST /v1/threshold: one offload-
// threshold sweep for a system x problem x precision.
type ThresholdRequest struct {
	System    string             `json:"system"`
	Kernel    string             `json:"kernel"`
	Problem   string             `json:"problem,omitempty"` // default "square"
	Precision string             `json:"precision"`
	Config    SweepConfigRequest `json:"config"`
}

// ThresholdBody is one per-strategy threshold on the wire.
type ThresholdBody struct {
	Found    bool   `json:"found"`
	M        int    `json:"m,omitempty"`
	N        int    `json:"n,omitempty"`
	K        int    `json:"k,omitempty"`
	Notation string `json:"notation"`
}

// ThresholdResponse is the body of a successful POST /v1/threshold.
type ThresholdResponse struct {
	System     string `json:"system"`
	Kernel     string `json:"kernel"`
	Problem    string `json:"problem"`
	Definition string `json:"definition"`
	Precision  string `json:"precision"`
	// Key is the cache identity of this result: system, problem and
	// precision joined with core.Config.Hash().
	Key        string                   `json:"key"`
	Samples    int                      `json:"samples"`
	Thresholds map[string]ThresholdBody `json:"thresholds"`
	// Cached reports that the result was served from the cache;
	// Deduplicated that it was computed once and shared with concurrent
	// identical requests by singleflight.
	Cached       bool `json:"cached"`
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Stale marks a degraded answer: the sweep backend's circuit breaker
	// was open, so the service returned the last known result even
	// though its freshness window had lapsed.
	Stale bool `json:"stale,omitempty"`
}

// thresholdPlan is a fully resolved, validated threshold request.
type thresholdPlan struct {
	sys  systems.System
	pt   core.ProblemType
	prec core.Precision
	cfg  core.Config
	key  string
}

// resolve maps the wire request onto typed core values and computes the
// canonical cache key.
func (s *Server) resolveThreshold(req ThresholdRequest) (thresholdPlan, error) {
	var p thresholdPlan
	var err error
	if p.sys, err = systems.ByName(req.System); err != nil {
		return p, err
	}
	kernel, err := core.ParseKernelKind(req.Kernel)
	if err != nil {
		return p, err
	}
	if p.prec, err = core.ParsePrecision(req.Precision); err != nil {
		return p, err
	}
	problem := req.Problem
	if problem == "" {
		problem = "square"
	}
	if p.pt, err = core.FindProblem(kernel, problem); err != nil {
		return p, err
	}

	c := req.Config
	p.cfg = core.Config{
		MinDim:     c.MinDim,
		MaxDim:     c.MaxDim,
		Step:       c.Step,
		Iterations: c.Iterations,
		Alpha:      1,
		Beta:       c.Beta,
		Mode:       core.ModeBoth,
	}
	if c.Alpha != nil {
		p.cfg.Alpha = *c.Alpha
	}
	if p.cfg.MaxDim == 0 {
		p.cfg.MaxDim = s.opts.MaxSweepDim
	}
	if p.cfg.MaxDim > s.opts.MaxSweepDim {
		return p, fmt.Errorf("max_dim %d exceeds the service limit %d", p.cfg.MaxDim, s.opts.MaxSweepDim)
	}
	if p.cfg.Iterations == 0 {
		p.cfg.Iterations = 8
	}
	// Sweep-level retries never change the result, only whether a flaky
	// backend produces one; Config.Hash excludes the block, so the cache
	// key below is identical with or without it.
	p.cfg.Resilience = s.opts.Resilience
	hash, err := p.cfg.Hash()
	if err != nil {
		return p, err
	}
	p.key = fmt.Sprintf("%s|%s|%s|%s", p.sys.Name, p.pt.Kernel, p.pt.Name, p.prec) + "|" + hash
	return p, nil
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	var req ThresholdRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.resolveThreshold(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The deadline budget covers everything after request validation:
	// queueing, the sweep itself, and result shaping.
	ctx, cancel := resilience.Deadline(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	if v, ok := s.cache.Get(plan.key); ok {
		s.metrics.CacheHits.Inc()
		resp := v.(ThresholdResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Inc()

	br := s.breaker(plan.sys.Name)
	val, shared, err := s.flights.Do(ctx, plan.key, s.pool.Submit, func(fctx context.Context) (any, error) {
		s.metrics.SweepsStarted.Inc()
		var resp ThresholdResponse
		// The breaker observes exactly one outcome per executed flight:
		// deduplicated waiters share the leader's Allow/Record, so a
		// thundering herd counts as one request against the trip ratio.
		err := br.Do(func() (err error) {
			defer func() {
				if rec := recover(); rec != nil {
					// A panicking backend (or a PanicKind fault) is contained
					// here, before it can kill the pool worker; it counts as
					// a backend failure for the breaker.
					s.metrics.PanicsTotal.Inc()
					s.log.Error("panic recovered in sweep", "key", plan.key, "panic", fmt.Sprint(rec))
					err = fmt.Errorf("sweep panicked: %v", rec)
				}
			}()
			if err := s.consultInject(plan); err != nil {
				return err
			}
			resp, err = s.runSweep(fctx, plan)
			return err
		})
		switch {
		case err == nil:
			s.metrics.SweepsCompleted.Inc()
			s.cache.Put(plan.key, resp)
		case errors.Is(err, context.Canceled):
			s.metrics.SweepsCancelled.Inc()
		}
		return resp, err
	})
	switch {
	case err == nil:
		resp := val.(ThresholdResponse)
		resp.Deduplicated = shared
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, resilience.ErrOpen):
		// Graceful degradation: an open breaker means the backend is
		// known-unhealthy, so prefer the last known answer — clearly
		// marked — over an error the client can do nothing with.
		s.metrics.BreakerOpenTotal.Inc()
		if v, _, ok := s.cache.GetStale(plan.key); ok {
			s.metrics.StaleServes.Inc()
			resp := v.(ThresholdResponse)
			resp.Cached = true
			resp.Stale = true
			writeJSON(w, http.StatusOK, resp)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrPoolClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case resilience.Expired(ctx):
		s.metrics.TimeoutsTotal.Inc()
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("request timed out after %s", s.opts.RequestTimeout))
	case r.Context().Err() != nil:
		// The client hung up; nobody is reading this response, but record
		// the outcome for metrics/logs with nginx's 499 convention. The
		// sweep was cancelled (or adopted by surviving waiters) already.
		w.WriteHeader(499)
		s.log.Info("threshold request abandoned", "key", plan.key)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// consultInject asks the service-layer injection point (when armed)
// whether this sweep execution should fail or stall — the hook the chaos
// gate uses to rehearse panics and backend errors above the sim layer.
func (s *Server) consultInject(plan thresholdPlan) error {
	if s.opts.Inject == nil {
		return nil
	}
	extra, err := s.opts.Inject.At(faultinject.Site{
		Backend: faultinject.BackendService,
		Kernel:  strings.ToLower(plan.pt.Kernel.String()),
		Dim:     plan.cfg.MaxDim,
	})
	if err != nil {
		return err
	}
	if extra > 0 {
		time.Sleep(time.Duration(extra * float64(time.Second)))
	}
	return nil
}

// runSweep executes the sweep via the configured SweepFunc (core.Run in
// production) and shapes the result for the wire.
func (s *Server) runSweep(ctx context.Context, plan thresholdPlan) (ThresholdResponse, error) {
	series, err := s.sweep(ctx, plan.sys, []core.ProblemType{plan.pt}, []core.Precision{plan.prec}, plan.cfg)
	if err != nil {
		return ThresholdResponse{}, err
	}
	if len(series) != 1 {
		return ThresholdResponse{}, fmt.Errorf("sweep returned %d series, want 1", len(series))
	}
	ser := series[0]
	resp := ThresholdResponse{
		System:     plan.sys.Name,
		Kernel:     plan.pt.Kernel.String(),
		Problem:    plan.pt.Name,
		Definition: plan.pt.Desc,
		Precision:  plan.prec.String(),
		Key:        plan.key,
		Samples:    len(ser.Samples),
		Thresholds: map[string]ThresholdBody{},
	}
	for _, st := range xfer.Strategies {
		th := ser.Thresholds[st]
		body := ThresholdBody{Found: th.Found, Notation: th.String()}
		if th.Found {
			body.M, body.N, body.K = th.Dims.M, th.Dims.N, th.Dims.K
		}
		resp.Thresholds[st.String()] = body
	}
	return resp, nil
}
