package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// SweepConfigRequest is the wire form of the sweep knobs, mirroring the
// artifact's CLI flags. Omitted fields take the benchmark's defaults
// (min 1, max 4096, step 1, 8 iterations, alpha 1, beta 0); validation is
// off because the service answers from the timing models.
type SweepConfigRequest struct {
	MinDim     int      `json:"min_dim,omitempty"`
	MaxDim     int      `json:"max_dim,omitempty"`
	Step       int      `json:"step,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       float64  `json:"beta,omitempty"`
}

// ThresholdRequest is the body of POST /v1/threshold: one offload-
// threshold sweep for a system x problem x precision. Model selects the
// timing model — "roofline" (default when omitted) or "blackbox", the
// committed measured-efficiency tables; the choice is part of the cache
// key via core.Config.Hash, so the two models never answer for each
// other.
type ThresholdRequest struct {
	System    string             `json:"system"`
	Kernel    string             `json:"kernel"`
	Problem   string             `json:"problem,omitempty"` // default "square"
	Precision string             `json:"precision"`
	Model     string             `json:"model,omitempty"` // default "roofline"
	Config    SweepConfigRequest `json:"config"`
}

// ThresholdBody is one per-strategy threshold on the wire.
type ThresholdBody struct {
	Found    bool   `json:"found"`
	M        int    `json:"m,omitempty"`
	N        int    `json:"n,omitempty"`
	K        int    `json:"k,omitempty"`
	Notation string `json:"notation"`
}

// ThresholdResponse is the body of a successful POST /v1/threshold.
type ThresholdResponse struct {
	System     string `json:"system"`
	Kernel     string `json:"kernel"`
	Problem    string `json:"problem"`
	Definition string `json:"definition"`
	Precision  string `json:"precision"`
	// Key is the cache identity of this result: system, problem and
	// precision joined with core.Config.Hash().
	Key        string                   `json:"key"`
	Samples    int                      `json:"samples"`
	Thresholds map[string]ThresholdBody `json:"thresholds"`
	// Model names the timing model when it is not the default: "blackbox"
	// for table-driven sweeps, omitted entirely for roofline so existing
	// clients (and pinned response bodies) see byte-identical output.
	Model string `json:"model,omitempty"`
	// Cached reports that the result was served from the cache;
	// Deduplicated that it was computed once and shared with concurrent
	// identical requests by singleflight.
	Cached       bool `json:"cached"`
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Stale marks a degraded answer: the sweep backend's circuit breaker
	// was open, so the service returned the last known result even
	// though its freshness window had lapsed.
	Stale bool `json:"stale,omitempty"`
	// FilledFrom names the cluster peer this result was fetched from over
	// the peer-fill path (empty when the replica computed or cached it
	// locally). Provenance only: the thresholds are byte-identical either
	// way, which the cluster soak profile asserts.
	FilledFrom string `json:"filled_from,omitempty"`
}

// PeerFillHeader marks a threshold request as a peer cache fill. A
// replica that receives it answers from its own cache or computes
// locally, but never consults its own PeerFill hook — the loop guard
// that keeps a fill from fanning out across the ring. Its value is the
// requesting member's name, for logs.
const PeerFillHeader = "X-Blob-Peer-Fill"

// PeerFillFunc asks the cluster for a threshold result this replica
// does not have cached. key is the canonical route/cache key (see
// ThresholdRouteKey). Returns (resp, nil) when a peer served the
// result, (nil, nil) when the path does not apply (this replica owns the
// shard, or no healthy owner exists), and (nil, err) when a fill was
// attempted and failed — the caller falls back to a local sweep.
type PeerFillFunc func(ctx context.Context, req ThresholdRequest, key string) (*ThresholdResponse, error)

// thresholdPlan is a fully resolved, validated threshold request.
type thresholdPlan struct {
	sys  systems.System
	pt   core.ProblemType
	prec core.Precision
	cfg  core.Config
	key  string
}

// resolve maps the wire request onto typed core values and computes the
// canonical cache key.
func (s *Server) resolveThreshold(req ThresholdRequest) (thresholdPlan, error) {
	return resolveThresholdIn(req, s.opts.MaxSweepDim, s.opts.Resilience)
}

// ThresholdRouteKey computes the canonical identity of one threshold
// request — the same string the serving replica caches the result
// under, so a gateway routing by it and the replica answering it agree
// byte for byte. maxSweepDim must match the replicas' MaxSweepDim
// option (<= 0 takes the service default); the Resilience block is
// excluded from core.Config.Hash, so it cannot skew the key.
func ThresholdRouteKey(req ThresholdRequest, maxSweepDim int) (string, error) {
	if maxSweepDim <= 0 {
		maxSweepDim = Options{}.withDefaults().MaxSweepDim
	}
	p, err := resolveThresholdIn(req, maxSweepDim, core.Resilience{})
	return p.key, err
}

// resolveThresholdIn is the shared implementation behind the server's
// resolve and the exported route key.
func resolveThresholdIn(req ThresholdRequest, maxSweepDim int, res core.Resilience) (thresholdPlan, error) {
	var p thresholdPlan
	var err error
	if p.sys, err = systems.ByName(req.System); err != nil {
		return p, err
	}
	kernel, err := core.ParseKernelKind(req.Kernel)
	if err != nil {
		return p, err
	}
	if p.prec, err = core.ParsePrecision(req.Precision); err != nil {
		return p, err
	}
	problem := req.Problem
	if problem == "" {
		problem = "square"
	}
	if p.pt, err = core.FindProblem(kernel, problem); err != nil {
		return p, err
	}

	c := req.Config
	p.cfg = core.Config{
		MinDim:     c.MinDim,
		MaxDim:     c.MaxDim,
		Step:       c.Step,
		Iterations: c.Iterations,
		Alpha:      1,
		Beta:       c.Beta,
		Mode:       core.ModeBoth,
	}
	if c.Alpha != nil {
		p.cfg.Alpha = *c.Alpha
	}
	if p.cfg.Model, err = core.ParseModelKind(req.Model); err != nil {
		return p, err
	}
	if p.cfg.MaxDim == 0 {
		p.cfg.MaxDim = maxSweepDim
	}
	if p.cfg.MaxDim > maxSweepDim {
		return p, fmt.Errorf("max_dim %d exceeds the service limit %d", p.cfg.MaxDim, maxSweepDim)
	}
	if p.cfg.Iterations == 0 {
		p.cfg.Iterations = 8
	}
	// Sweep-level retries never change the result, only whether a flaky
	// backend produces one; Config.Hash excludes the block, so the cache
	// key below is identical with or without it.
	p.cfg.Resilience = res
	hash, err := p.cfg.Hash()
	if err != nil {
		return p, err
	}
	p.key = fmt.Sprintf("%s|%s|%s|%s", p.sys.Name, p.pt.Kernel, p.pt.Name, p.prec) + "|" + hash
	return p, nil
}

// clientKey is the fair-share identity of one request: the X-API-Key
// header when present, else the remote host (without the ephemeral
// port, so one client's connections pool into one bucket).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// requestBudget resolves a request's deadline budget: the server-side
// RequestTimeout tightened by the client's X-Deadline-Ms header when
// present (a client will stop waiting sooner than the server would —
// never later). 0 means unbounded. A malformed header is the client's
// error, not grounds for a silent default.
func requestBudget(r *http.Request, serverTimeout time.Duration) (time.Duration, error) {
	h := r.Header.Get("X-Deadline-Ms")
	if h == "" {
		return serverTimeout, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("invalid X-Deadline-Ms %q: want a positive integer of milliseconds", h)
	}
	d := time.Duration(ms) * time.Millisecond
	if serverTimeout > 0 && serverTimeout < d {
		return serverTimeout, nil
	}
	return d, nil
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	var req ThresholdRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.resolveThreshold(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	budget, err := requestBudget(r, s.opts.RequestTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The deadline budget covers everything after request validation:
	// admission queueing, the sweep itself, and result shaping. The
	// absolute deadline handed to admission reads the controller's clock
	// so budget arithmetic stays in virtual time under test.
	ctx, cancel := resilience.Deadline(r.Context(), budget)
	defer cancel()
	var deadline time.Time
	if budget > 0 {
		deadline = s.opts.AdmissionClock.Now().Add(budget)
	}

	if v, ok := s.cache.Get(plan.key); ok {
		s.metrics.CacheHits.Inc()
		resp := v.(ThresholdResponse)
		resp.Cached = true
		writeEnvelope(w, http.StatusOK, SchemaThreshold, resp)
		return
	}
	s.metrics.CacheMisses.Inc()

	// A cache miss means paying for a sweep. When the remaining deadline
	// budget cannot plausibly cover one, fail fast: a 504 now is the same
	// answer the client would get after we burned an admission slot and a
	// worker on a doomed sweep. The Retry-After hint is the admission
	// controller's live p50 sweep cost, same as a timed-out request.
	if budget > 0 && s.opts.MinSweepBudget > 0 && budget < s.opts.MinSweepBudget {
		s.metrics.TimeoutsTotal.Inc()
		reject(w, http.StatusGatewayTimeout, "deadline_exceeded", s.admission.P50Cost(),
			fmt.Errorf("deadline budget %s is below the minimum sweep budget %s", budget, s.opts.MinSweepBudget))
		return
	}

	// Peer cache fill (DESIGN.md §16): before paying for a local sweep, a
	// clustered replica asks the shard's ring owner for the result. The
	// header check is the loop guard — a request that is itself a fill
	// must answer from local state only. A filled result is cached here
	// with its transport markers cleared, so the next local hit serves it
	// as an ordinary cache entry; FilledFrom survives on the wire for
	// provenance.
	if s.opts.PeerFill != nil && r.Header.Get(PeerFillHeader) == "" {
		switch resp, ferr := s.opts.PeerFill(ctx, req, plan.key); {
		case resp != nil:
			s.metrics.PeerFillServes.Inc()
			stored := *resp
			stored.Cached, stored.Deduplicated, stored.Stale = false, false, false
			s.cache.Put(plan.key, stored)
			writeEnvelope(w, http.StatusOK, SchemaThreshold, *resp)
			return
		case ferr != nil:
			s.metrics.PeerFillFallbacks.Inc()
			s.log.Warn("peer fill failed; sweeping locally", "key", plan.key, "err", ferr)
		}
	}

	br := s.breaker(plan.sys.Name)
	// Degraded tier: while this system's breaker is refusing outright
	// (open, before its half-open probe window), answer from the stale
	// cache inline — no admission slot, no queueing behind cold sweeps.
	// Past the probe window Refusing reports false and the request flows
	// through admission so the breaker can try its half-open probe.
	if br.Refusing() {
		s.metrics.BreakerOpenTotal.Inc()
		if v, _, ok := s.cache.GetStale(plan.key); ok {
			s.metrics.StaleServes.Inc()
			resp := v.(ThresholdResponse)
			resp.Cached = true
			resp.Stale = true
			writeEnvelope(w, http.StatusOK, SchemaThreshold, resp)
			return
		}
		reject(w, http.StatusServiceUnavailable, "breaker_open", time.Second, resilience.ErrOpen)
		return
	}

	// Admission charges only flight leaders: the flight registers before
	// submit runs, so concurrent identical requests join it and share the
	// leader's slot instead of consuming their own.
	client := clientKey(r)
	admit := func(job func()) error {
		began := time.Now()
		permit, aerr := s.admission.Acquire(ctx, overload.Ticket{Client: client, Deadline: deadline})
		s.metrics.AdmissionSeconds.Observe(time.Since(began).Seconds())
		if aerr != nil {
			return aerr
		}
		s.metrics.AdmittedTotal.Inc()
		if err := s.pool.Submit(func() {
			start := time.Now()
			job()
			permit.Release(time.Since(start))
		}); err != nil {
			permit.Cancel()
			return err
		}
		return nil
	}
	val, shared, err := s.flights.Do(ctx, plan.key, admit, func(fctx context.Context) (any, error) {
		s.metrics.SweepsStarted.Inc()
		var resp ThresholdResponse
		// The breaker observes exactly one outcome per executed flight:
		// deduplicated waiters share the leader's Allow/Record, so a
		// thundering herd counts as one request against the trip ratio.
		err := br.Do(func() (err error) {
			defer func() {
				if rec := recover(); rec != nil {
					// A panicking backend (or a PanicKind fault) is contained
					// here, before it can kill the pool worker; it counts as
					// a backend failure for the breaker.
					s.metrics.PanicsTotal.Inc()
					s.log.Error("panic recovered in sweep", "key", plan.key, "panic", fmt.Sprint(rec))
					err = fmt.Errorf("sweep panicked: %v", rec)
				}
			}()
			if err := s.consultInject(plan); err != nil {
				return err
			}
			resp, err = s.runSweep(fctx, plan)
			return err
		})
		switch {
		case err == nil:
			s.metrics.SweepsCompleted.Inc()
			s.cache.Put(plan.key, resp)
		case errors.Is(err, context.Canceled):
			s.metrics.SweepsCancelled.Inc()
		}
		return resp, err
	})
	var shed *overload.ShedError
	switch {
	case err == nil:
		resp := val.(ThresholdResponse)
		resp.Deduplicated = shared
		writeEnvelope(w, http.StatusOK, SchemaThreshold, resp)
	case errors.Is(err, resilience.ErrOpen):
		// Graceful degradation: an open breaker means the backend is
		// known-unhealthy, so prefer the last known answer — clearly
		// marked — over an error the client can do nothing with.
		s.metrics.BreakerOpenTotal.Inc()
		if v, _, ok := s.cache.GetStale(plan.key); ok {
			s.metrics.StaleServes.Inc()
			resp := v.(ThresholdResponse)
			resp.Cached = true
			resp.Stale = true
			writeEnvelope(w, http.StatusOK, SchemaThreshold, resp)
			return
		}
		reject(w, http.StatusServiceUnavailable, "breaker_open", time.Second, err)
	case errors.As(err, &shed):
		// Admission shed the leader before any sweep work ran. Quota
		// refusals are the client's own doing (429); the rest are server
		// capacity (503). Retry-After carries the controller's hint.
		s.metrics.ShedCounter(string(shed.Reason)).Inc()
		s.metrics.ClientShedCounter(client).Inc()
		status := http.StatusServiceUnavailable
		if shed.Reason == overload.ReasonQuota {
			status = http.StatusTooManyRequests
		}
		reject(w, status, string(shed.Reason), shed.RetryAfter, err)
	case errors.Is(err, ErrQueueFull):
		reject(w, http.StatusServiceUnavailable, "queue_full", time.Second, err)
	case errors.Is(err, ErrPoolClosed):
		reject(w, http.StatusServiceUnavailable, "shutting_down", time.Second, err)
	case resilience.Expired(ctx):
		s.metrics.TimeoutsTotal.Inc()
		reject(w, http.StatusGatewayTimeout, "deadline_exceeded", s.admission.P50Cost(),
			fmt.Errorf("request timed out after %s", budget))
	case r.Context().Err() != nil:
		// The client hung up; nobody is reading this response, but record
		// the outcome for metrics/logs with nginx's 499 convention. The
		// sweep was cancelled (or adopted by surviving waiters) already.
		w.WriteHeader(499)
		s.log.Info("threshold request abandoned", "key", plan.key)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Our own context is fine (the cases above ruled it out), so this
		// cancellation is inherited from a flight leader that gave up while
		// queued in admission. The follower's request was never charged; a
		// retry starts a fresh flight.
		reject(w, http.StatusServiceUnavailable, "abandoned", time.Second,
			fmt.Errorf("shared sweep abandoned by its initiator"))
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// consultInject asks the service-layer injection point (when armed)
// whether this sweep execution should fail or stall — the hook the chaos
// gate uses to rehearse panics and backend errors above the sim layer.
func (s *Server) consultInject(plan thresholdPlan) error {
	if s.opts.Inject == nil {
		return nil
	}
	extra, err := s.opts.Inject.At(faultinject.Site{
		Backend: faultinject.BackendService,
		Kernel:  strings.ToLower(plan.pt.Kernel.String()),
		Dim:     plan.cfg.MaxDim,
	})
	if err != nil {
		return err
	}
	if extra > 0 {
		time.Sleep(time.Duration(extra * float64(time.Second)))
	}
	return nil
}

// runSweep executes the sweep via the configured SweepFunc (core.Run in
// production) and shapes the result for the wire.
func (s *Server) runSweep(ctx context.Context, plan thresholdPlan) (ThresholdResponse, error) {
	series, err := s.sweep(ctx, plan.sys, []core.ProblemType{plan.pt}, []core.Precision{plan.prec}, plan.cfg)
	if err != nil {
		return ThresholdResponse{}, err
	}
	if len(series) != 1 {
		return ThresholdResponse{}, fmt.Errorf("sweep returned %d series, want 1", len(series))
	}
	ser := series[0]
	resp := ThresholdResponse{
		System:     plan.sys.Name,
		Kernel:     plan.pt.Kernel.String(),
		Problem:    plan.pt.Name,
		Definition: plan.pt.Desc,
		Precision:  plan.prec.String(),
		Key:        plan.key,
		Samples:    len(ser.Samples),
		Thresholds: map[string]ThresholdBody{},
	}
	if plan.cfg.Model == core.ModelBlackbox {
		resp.Model = plan.cfg.Model.String()
	}
	for _, st := range xfer.Strategies {
		th := ser.Thresholds[st]
		body := ThresholdBody{Found: th.Found, Notation: th.String()}
		if th.Found {
			body.M, body.N, body.K = th.Dims.M, th.Dims.N, th.Dims.K
		}
		resp.Thresholds[st.String()] = body
	}
	return resp, nil
}
