package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// SweepConfigRequest is the wire form of the sweep knobs, mirroring the
// artifact's CLI flags. Omitted fields take the benchmark's defaults
// (min 1, max 4096, step 1, 8 iterations, alpha 1, beta 0); validation is
// off because the service answers from the timing models.
type SweepConfigRequest struct {
	MinDim     int      `json:"min_dim,omitempty"`
	MaxDim     int      `json:"max_dim,omitempty"`
	Step       int      `json:"step,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       float64  `json:"beta,omitempty"`
}

// ThresholdRequest is the body of POST /v1/threshold: one offload-
// threshold sweep for a system x problem x precision.
type ThresholdRequest struct {
	System    string             `json:"system"`
	Kernel    string             `json:"kernel"`
	Problem   string             `json:"problem,omitempty"` // default "square"
	Precision string             `json:"precision"`
	Config    SweepConfigRequest `json:"config"`
}

// ThresholdBody is one per-strategy threshold on the wire.
type ThresholdBody struct {
	Found    bool   `json:"found"`
	M        int    `json:"m,omitempty"`
	N        int    `json:"n,omitempty"`
	K        int    `json:"k,omitempty"`
	Notation string `json:"notation"`
}

// ThresholdResponse is the body of a successful POST /v1/threshold.
type ThresholdResponse struct {
	System     string                   `json:"system"`
	Kernel     string                   `json:"kernel"`
	Problem    string                   `json:"problem"`
	Definition string                   `json:"definition"`
	Precision  string                   `json:"precision"`
	// Key is the cache identity of this result: system, problem and
	// precision joined with core.Config.Hash().
	Key        string                   `json:"key"`
	Samples    int                      `json:"samples"`
	Thresholds map[string]ThresholdBody `json:"thresholds"`
	// Cached reports that the result was served from the cache;
	// Deduplicated that it was computed once and shared with concurrent
	// identical requests by singleflight.
	Cached       bool `json:"cached"`
	Deduplicated bool `json:"deduplicated,omitempty"`
}

// thresholdPlan is a fully resolved, validated threshold request.
type thresholdPlan struct {
	sys  systems.System
	pt   core.ProblemType
	prec core.Precision
	cfg  core.Config
	key  string
}

// resolve maps the wire request onto typed core values and computes the
// canonical cache key.
func (s *Server) resolveThreshold(req ThresholdRequest) (thresholdPlan, error) {
	var p thresholdPlan
	var err error
	if p.sys, err = systems.ByName(req.System); err != nil {
		return p, err
	}
	kernel, err := core.ParseKernelKind(req.Kernel)
	if err != nil {
		return p, err
	}
	if p.prec, err = core.ParsePrecision(req.Precision); err != nil {
		return p, err
	}
	problem := req.Problem
	if problem == "" {
		problem = "square"
	}
	if p.pt, err = core.FindProblem(kernel, problem); err != nil {
		return p, err
	}

	c := req.Config
	p.cfg = core.Config{
		MinDim:     c.MinDim,
		MaxDim:     c.MaxDim,
		Step:       c.Step,
		Iterations: c.Iterations,
		Alpha:      1,
		Beta:       c.Beta,
		Mode:       core.ModeBoth,
	}
	if c.Alpha != nil {
		p.cfg.Alpha = *c.Alpha
	}
	if p.cfg.MaxDim == 0 {
		p.cfg.MaxDim = s.opts.MaxSweepDim
	}
	if p.cfg.MaxDim > s.opts.MaxSweepDim {
		return p, fmt.Errorf("max_dim %d exceeds the service limit %d", p.cfg.MaxDim, s.opts.MaxSweepDim)
	}
	if p.cfg.Iterations == 0 {
		p.cfg.Iterations = 8
	}
	hash, err := p.cfg.Hash()
	if err != nil {
		return p, err
	}
	p.key = fmt.Sprintf("%s|%s|%s|%s", p.sys.Name, p.pt.Kernel, p.pt.Name, p.prec) + "|" + hash
	return p, nil
}

func (s *Server) handleThreshold(w http.ResponseWriter, r *http.Request) {
	var req ThresholdRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.resolveThreshold(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if v, ok := s.cache.Get(plan.key); ok {
		s.metrics.CacheHits.Inc()
		resp := v.(ThresholdResponse)
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.metrics.CacheMisses.Inc()

	val, shared, err := s.flights.Do(r.Context(), plan.key, s.pool.Submit, func(ctx context.Context) (any, error) {
		s.metrics.SweepsStarted.Inc()
		resp, err := s.runSweep(ctx, plan)
		switch {
		case err == nil:
			s.metrics.SweepsCompleted.Inc()
			s.cache.Put(plan.key, resp)
		case errors.Is(err, context.Canceled):
			s.metrics.SweepsCancelled.Inc()
		}
		return resp, err
	})
	switch {
	case err == nil:
		resp := val.(ThresholdResponse)
		resp.Deduplicated = shared
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrPoolClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case r.Context().Err() != nil:
		// The client hung up; nobody is reading this response, but record
		// the outcome for metrics/logs with nginx's 499 convention. The
		// sweep was cancelled (or adopted by surviving waiters) already.
		w.WriteHeader(499)
		s.log.Info("threshold request abandoned", "key", plan.key)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// runSweep executes the sweep via the configured SweepFunc (core.Run in
// production) and shapes the result for the wire.
func (s *Server) runSweep(ctx context.Context, plan thresholdPlan) (ThresholdResponse, error) {
	series, err := s.sweep(ctx, plan.sys, []core.ProblemType{plan.pt}, []core.Precision{plan.prec}, plan.cfg)
	if err != nil {
		return ThresholdResponse{}, err
	}
	if len(series) != 1 {
		return ThresholdResponse{}, fmt.Errorf("sweep returned %d series, want 1", len(series))
	}
	ser := series[0]
	resp := ThresholdResponse{
		System:     plan.sys.Name,
		Kernel:     plan.pt.Kernel.String(),
		Problem:    plan.pt.Name,
		Definition: plan.pt.Desc,
		Precision:  plan.prec.String(),
		Key:        plan.key,
		Samples:    len(ser.Samples),
		Thresholds: map[string]ThresholdBody{},
	}
	for _, st := range xfer.Strategies {
		th := ser.Thresholds[st]
		body := ThresholdBody{Found: th.Found, Notation: th.String()}
		if th.Found {
			body.M, body.N, body.K = th.Dims.M, th.Dims.N, th.Dims.K
		}
		resp.Thresholds[st.String()] = body
	}
	return resp, nil
}
