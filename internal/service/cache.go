package service

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Cache is a bounded LRU result cache. Threshold sweeps are pure
// functions of (system, problem, precision, normalized config) — the key
// is built from core.Config.Hash() — so entries are correct forever; they
// are evicted to bound memory, and an optional TTL bounds how long an
// entry counts as fresh. Expired entries are NOT deleted: they remain
// readable through GetStale so the server can degrade to a known-good
// (if dated) answer when its sweep backend is unhealthy, rather than
// failing the request.
type Cache struct {
	mu  sync.Mutex
	max int
	ttl time.Duration // 0 = entries never expire
	// clock is resilience.Clock, not a bare func field: the named type's
	// non-blocking contract is what lets the lookup read the time under
	// c.mu (locksafety exempts Clock, not arbitrary func values). Tests
	// swap in a fake.
	clock resilience.Clock
	order *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key      string
	val      any
	storedAt time.Time
}

// NewCache returns a cache holding at most max entries (min 1) whose
// entries never expire.
func NewCache(max int) *Cache {
	return NewCacheTTL(max, 0)
}

// NewCacheTTL returns a cache holding at most max entries (min 1). With
// ttl > 0, Get stops returning an entry ttl after it was stored, while
// GetStale keeps serving it until eviction.
func NewCacheTTL(max int, ttl time.Duration) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:   max,
		ttl:   ttl,
		clock: time.Now,
		order: list.New(),
		items: map[string]*list.Element{},
	}
}

// Get returns the cached value for key if it is still fresh, marking it
// most recently used.
//
//blobvet:hotpath
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.clock.Now().Sub(ent.storedAt) > c.ttl {
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.val, true
}

// GetStale returns the cached value for key regardless of age — the
// degraded-mode read used when the sweep backend's circuit breaker is
// open. It reports whether the entry had already expired (always false
// when the cache has no TTL). The entry is intentionally not promoted:
// stale serves should not keep dead entries pinned over fresh ones.
//
//blobvet:hotpath
func (c *Cache) GetStale(key string) (val any, expired, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false, false
	}
	ent := el.Value.(*cacheEntry)
	expired = c.ttl > 0 && c.clock.Now().Sub(ent.storedAt) > c.ttl
	return ent.val, expired, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val = val
		ent.storedAt = c.clock.Now()
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val, storedAt: c.clock.Now()})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
