package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU result cache. Threshold sweeps are pure
// functions of (system, problem, precision, normalized config) — the key
// is built from core.Config.Hash() — so entries never expire; they are
// only evicted to bound memory.
type Cache struct {
	mu    sync.Mutex
	max   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	val any
}

// NewCache returns a cache holding at most max entries (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max, order: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
