package service

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// handlers translate it into 503 Service Unavailable so sweep overload
// never blocks (or starves) advise traffic.
var ErrQueueFull = errors.New("service: sweep queue full")

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("service: pool closed")

// Pool is the bounded worker pool that executes threshold sweeps. A
// fixed worker count caps sweep parallelism (sweeps are CPU-heavy; the
// advise path must stay responsive) and a bounded queue provides limited
// buffering with fail-fast behaviour beyond it.
//
// Like parallel.Pool, this type is the one sanctioned home of go
// statements in its package (enforced by blob-vet's goroutinehygiene
// analyzer, which covers internal/service).
type Pool struct {
	mu      sync.Mutex
	closed  bool
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
	armed   atomic.Int32 // workers that have entered their receive loop
}

// NewPool starts a pool of workers (min 1) with the given queue capacity
// (min 0; a zero queue admits jobs only when a worker is idle).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{workers: workers, jobs: make(chan func(), queue)}
	p.start()
	return p
}

// start launches the workers. Split from NewPool so the go statements
// live in a Pool method, where goroutinehygiene sanctions them.
func (p *Pool) start() {
	for w := 0; w < p.workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.armed.Add(1)
			for job := range p.jobs {
				job()
			}
		}()
	}
}

// Armed reports whether every worker goroutine has started its receive
// loop. Readiness (as opposed to liveness) gates on this: a replica that
// has bound its listener but not yet armed its workers would queue — not
// serve — the first sweeps routed to it.
func (p *Pool) Armed() bool {
	return int(p.armed.Load()) >= p.workers
}

// Submit enqueues job without blocking. It fails with ErrQueueFull when
// every worker is busy and the queue is at capacity, and ErrPoolClosed
// after Close.
func (p *Pool) Submit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth returns the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int {
	return len(p.jobs)
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops admission, drains queued jobs and waits for the workers to
// finish — the pool half of graceful shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
