package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim/systems"
)

// blockingSweep returns a SweepFunc that parks until release is closed
// (or the sweep's context is cancelled), then answers from the timing
// models as usual. Tests use it to hold the admission layer saturated
// at a known point. Sweeps with MaxDim >= 100 skip the gate, so a test
// can warm the cache while others block.
func blockingSweep(release <-chan struct{}) SweepFunc {
	return func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		if cfg.MaxDim < 100 {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return core.Run(context.Background(), sys, pts, precs, cfg)
	}
}

func thresholdBody(maxDim int) string {
	return fmt.Sprintf(`{"system":"dawn","kernel":"gemv","precision":"f64","config":{"max_dim":%d}}`, maxDim)
}

// releasedGate is a pre-closed blocking channel: the sweep runs
// immediately but still travels the full admission path.
func releasedGate() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// saturate occupies every worker slot and fills the admission queue with
// distinct blocked sweeps, returning once the server observably holds
// them all. Callers must release the sweep gate before waiting on the
// returned group.
func saturate(t *testing.T, s *Server, url string, workers, queue int) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < workers+queue; i++ {
		wg.Add(1)
		go func(dim int) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/threshold", "application/json",
				strings.NewReader(thresholdBody(dim)))
			if err == nil {
				resp.Body.Close()
			}
		}(30 + 2*i)
	}
	waitFor(t, func() bool {
		return s.admission.Inflight() == workers && s.admission.QueueDepth() == queue
	})
	return &wg
}

func postJSONHeaders(t *testing.T, url, body string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// assertRejection posts body and requires the full rejection contract:
// the expected status, a positive integer Retry-After header counted in
// whole seconds, and the v1 error envelope whose machine-readable code
// matches and whose retry_after_s repeats the header's value exactly —
// seconds in both places, never milliseconds.
func assertRejection(t *testing.T, url, body string, headers map[string]string, status int, reason string) *APIError {
	t.Helper()
	resp, respBody := postJSONHeaders(t, url+"/v1/threshold", body, headers)
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, status, respBody)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatalf("%d response without Retry-After; body %s", status, respBody)
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
	e := decodeAPIError(t, respBody)
	if e.Code != reason {
		t.Fatalf("error.code = %q, want %q (body %s)", e.Code, reason, respBody)
	}
	if e.Message == "" {
		t.Fatalf("rejection without human-readable error message: %s", respBody)
	}
	if e.RetryAfterS != secs {
		t.Fatalf("error.retry_after_s = %d but the Retry-After header says %d seconds; the two must agree",
			e.RetryAfterS, secs)
	}
	return e
}

// TestRejectionContract pins the uniform rejection envelope: every load-
// shedding status carries a Retry-After header and a machine-readable
// JSON "reason" alongside the human "error" text, so a client can
// branch on (status, reason) without parsing prose.
func TestRejectionContract(t *testing.T) {
	t.Run("queue_full", func(t *testing.T) {
		release := make(chan struct{})
		s, ts := newTestServer(t, Options{Workers: 1, Queue: 1, Sweep: blockingSweep(release)})
		wg := saturate(t, s, ts.URL, 1, 1)
		defer func() { close(release); wg.Wait() }()
		e := assertRejection(t, ts.URL, thresholdBody(90), nil,
			http.StatusServiceUnavailable, "queue_full")
		// The queue_full hint is exactly one second server-side; a
		// milliseconds encoding would read 1000 here. This pins the unit,
		// not just header/body agreement.
		if e.RetryAfterS != 1 {
			t.Fatalf("retry_after_s = %d for a 1s hint, want 1 (whole seconds, not ms)", e.RetryAfterS)
		}
	})

	t.Run("over_quota", func(t *testing.T) {
		_, ts := newTestServer(t, Options{Workers: 2, FairShareRate: 0.001, FairShareBurst: 1,
			Sweep: blockingSweep(releasedGate())})
		resp, body := postJSONHeaders(t, ts.URL+"/v1/threshold", thresholdBody(30),
			map[string]string{"X-API-Key": "tenant-a"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request status = %d, body %s", resp.StatusCode, body)
		}
		assertRejection(t, ts.URL, thresholdBody(32), map[string]string{"X-API-Key": "tenant-a"},
			http.StatusTooManyRequests, "over_quota")
	})

	t.Run("deadline_exceeded", func(t *testing.T) {
		release := make(chan struct{})
		_, ts := newTestServer(t, Options{Workers: 1, RequestTimeout: 30 * time.Millisecond,
			Sweep: blockingSweep(release)})
		defer close(release)
		assertRejection(t, ts.URL, thresholdBody(30), nil,
			http.StatusGatewayTimeout, "deadline_exceeded")
	})

	t.Run("shutting_down", func(t *testing.T) {
		s := New(Options{Workers: 1, Sweep: blockingSweep(releasedGate())})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		s.Close()
		assertRejection(t, ts.URL, thresholdBody(30), nil,
			http.StatusServiceUnavailable, "shutting_down")
	})

	t.Run("bad_deadline_header", func(t *testing.T) {
		_, ts := newTestServer(t, Options{Workers: 1, Sweep: blockingSweep(releasedGate())})
		resp, body := postJSONHeaders(t, ts.URL+"/v1/threshold", thresholdBody(30),
			map[string]string{"X-Deadline-Ms": "soon"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, body)
		}
	})
}

// TestFairShareIsolatesClients: one tenant burning through its burst is
// 429'd while another tenant's identical traffic keeps flowing — fair
// share charges the offender, not the pool.
func TestFairShareIsolatesClients(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, FairShareRate: 0.001, FairShareBurst: 2,
		Sweep: blockingSweep(releasedGate())})

	// Tenant a: 2 admitted (the burst), then quota-shed. Distinct dims
	// defeat the cache so every request reaches admission.
	dim := 30
	for i := 0; i < 2; i++ {
		resp, body := postJSONHeaders(t, ts.URL+"/v1/threshold", thresholdBody(dim),
			map[string]string{"X-API-Key": "tenant-a"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant-a request %d: status %d, body %s", i, resp.StatusCode, body)
		}
		dim += 2
	}
	assertRejection(t, ts.URL, thresholdBody(dim), map[string]string{"X-API-Key": "tenant-a"},
		http.StatusTooManyRequests, "over_quota")
	dim += 2

	// Tenant b is untouched by a's exhaustion.
	resp, body := postJSONHeaders(t, ts.URL+"/v1/threshold", thresholdBody(dim),
		map[string]string{"X-API-Key": "tenant-b"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-b status %d, body %s", resp.StatusCode, body)
	}
}

// TestCachedTierBypassesAdmission: a cached answer is served even while
// the admission layer is fully saturated and shedding cold sweeps — the
// cheap tier can never be queued behind the expensive one.
func TestCachedTierBypassesAdmission(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{Workers: 1, Queue: 1, Sweep: blockingSweep(release)})

	// Warm the cache (dim >= 100 skips the sweep gate).
	resp, body := postJSON(t, ts.URL+"/v1/threshold", thresholdBody(200))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d, body %s", resp.StatusCode, body)
	}

	wg := saturate(t, s, ts.URL, 1, 1)
	defer func() { close(release); wg.Wait() }()

	// Cold sweeps shed...
	assertRejection(t, ts.URL, thresholdBody(90), nil,
		http.StatusServiceUnavailable, "queue_full")
	// ...while the cached tier answers instantly.
	resp, body = postJSON(t, ts.URL+"/v1/threshold", thresholdBody(200))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached request under saturation: status %d, body %s", resp.StatusCode, body)
	}
	var tr ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &tr)
	if !tr.Cached {
		t.Fatalf("response under saturation not served from cache: %s", body)
	}
}

// TestDrainUnderLoad is the graceful-shutdown invariant: with sweeps in
// flight and the admission queue full, Close sheds the queued waiters
// (shutting_down), lets the in-flight work finish, and leaves no
// goroutines behind.
func TestDrainUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	s := New(Options{Workers: 2, Queue: 2, Sweep: blockingSweep(release)})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	statuses := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(dim int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/threshold", "application/json",
				strings.NewReader(thresholdBody(dim)))
			if err != nil {
				statuses <- 0
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(30 + 2*i)
	}
	waitFor(t, func() bool {
		return s.admission.Inflight() == 2 && s.admission.QueueDepth() == 2
	})

	// Drain: queued waiters shed immediately, in-flight sweeps complete
	// once released.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	waitFor(t, func() bool { return s.admission.QueueDepth() == 0 })
	close(release)
	<-done
	wg.Wait()
	close(statuses)
	ts.Close()

	var ok, unavailable int
	for st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			unavailable++
		default:
			t.Fatalf("unexpected status %d during drain", st)
		}
	}
	if ok != 2 || unavailable != 2 {
		t.Fatalf("drain outcome ok=%d 503=%d, want 2 and 2", ok, unavailable)
	}

	// Goroutines return to baseline: nothing in the admission layer or
	// the pool leaked. The tolerance absorbs runtime bookkeeping noise.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 })
}

// TestAdaptiveLimitSheds: with a TargetLatency far below the sweeps'
// actual cost, the AIMD limiter walks the admitted concurrency down from
// Workers toward 1 — visible through the admission-limit gauge.
func TestAdaptiveLimitSheds(t *testing.T) {
	slow := func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		time.Sleep(20 * time.Millisecond)
		return core.Run(context.Background(), sys, pts, precs, cfg)
	}
	s, ts := newTestServer(t, Options{Workers: 4, TargetLatency: time.Millisecond, Sweep: slow})
	if got := s.admission.Limit(); got != 4 {
		t.Fatalf("initial admission limit = %d, want 4", got)
	}
	// Each completion overshoots the 1ms target; the cooldown defaults to
	// the target, so sequential completions keep halving the limit.
	for dim := 30; dim <= 38; dim += 2 {
		resp, body := postJSON(t, ts.URL+"/v1/threshold", thresholdBody(dim))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status %d, body %s", resp.StatusCode, body)
		}
	}
	if got := s.admission.Limit(); got >= 4 {
		t.Fatalf("admission limit = %d after sustained overshoots, want < 4", got)
	}
}
