package service

import (
	"net/http"
	"strings"
	"testing"
)

const blackboxSweep = `{
  "system": "isambard-ai",
  "kernel": "gemm",
  "problem": "square",
  "precision": "f32",
  "model": "blackbox",
  "config": {"max_dim": 96, "iterations": 8}
}`

// TestThresholdModelBlackbox: a blackbox sweep answers from the committed
// tables — distinct cache identity from the roofline sweep of the same
// problem, and the response carries the model tag. The roofline response
// must not gain a model field at all, so pinned pre-model bodies stay
// byte-identical.
func TestThresholdModelBlackbox(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/threshold", blackboxSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var black ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &black)
	if black.Model != "blackbox" {
		t.Fatalf("blackbox response model = %q", black.Model)
	}
	if !strings.Contains(body, `"model": "blackbox"`) {
		t.Fatalf("blackbox body lacks the model tag: %s", body)
	}
	if black.Samples != 96 || len(black.Thresholds) == 0 {
		t.Fatalf("blackbox sweep produced no verdicts: %+v", black)
	}

	resp, body = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("roofline status = %d, body %s", resp.StatusCode, body)
	}
	var roof ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &roof)
	if roof.Cached {
		t.Fatal("roofline request hit the blackbox cache entry — model missing from the key")
	}
	if roof.Key == black.Key {
		t.Fatal("roofline and blackbox sweeps share a cache key")
	}
	if strings.Contains(body, `"model"`) {
		t.Fatalf("roofline body grew a model field: %s", body)
	}
}

func TestThresholdUnknownModel(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := `{"system":"dawn","kernel":"gemm","precision":"f32","model":"psychic"}`
	resp, body := postJSON(t, ts.URL+"/v1/threshold", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "model") {
		t.Fatalf("error body %q does not mention the model", body)
	}
}

// TestAdviseModelBlackbox: advise verdicts under the blackbox model come
// from the tables (timings differ from roofline), the response is tagged,
// and the roofline response stays untagged.
func TestAdviseModelBlackbox(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	call := `{"kernel":"gemm","m":256,"n":256,"k":256,"precision":"f32","count":4,"movement":"once"}`
	roofReq := `{"systems":["isambard-ai"],"calls":[` + call + `]}`
	blackReq := `{"systems":["isambard-ai"],"model":"blackbox","calls":[` + call + `]}`

	resp, body := postJSON(t, ts.URL+"/v1/advise", roofReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("roofline status = %d, body %s", resp.StatusCode, body)
	}
	var roof AdviseResponse
	decodeEnvelope(t, body, SchemaAdvise, &roof)
	if roof.Model != "" || strings.Contains(body, `"model"`) {
		t.Fatalf("roofline advise grew a model field: %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/advise", blackReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blackbox status = %d, body %s", resp.StatusCode, body)
	}
	var black AdviseResponse
	decodeEnvelope(t, body, SchemaAdvise, &black)
	if black.Model != "blackbox" {
		t.Fatalf("blackbox advise model = %q", black.Model)
	}
	if len(roof.Verdicts) != 1 || len(black.Verdicts) != 1 {
		t.Fatalf("verdict counts: roofline %d, blackbox %d", len(roof.Verdicts), len(black.Verdicts))
	}
	if roof.Verdicts[0].CPUSeconds == black.Verdicts[0].CPUSeconds { //blobvet:allow floatcompare -- any bitwise difference proves the table path ran; no tolerance wanted
		t.Fatal("blackbox CPU timing identical to roofline — tables were not consulted")
	}

	resp, body = postJSON(t, ts.URL+"/v1/advise", `{"calls":[`+call+`],"model":"psychic"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model status = %d, body %s", resp.StatusCode, body)
	}
}
