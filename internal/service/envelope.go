package service

import (
	"math"
	"net/http"
	"strconv"
	"time"
)

// This file is the unified v1 response contract. Every v1 endpoint —
// /v1/advise, /v1/threshold, /v1/dispatch, plus /healthz — answers with
// the same envelope:
//
//	{"schema": "blob.v1.advise", "data": {...}}             on success
//	{"schema": "blob.v1.error", "error": {"code": "...",    on failure
//	  "message": "...", "retry_after_s": 2}}
//
// The schema token names the shape of data, so clients can dispatch on
// it without sniffing fields, and the error object carries the
// machine-readable code that used to ride in the ad-hoc "reason" field.
// Retry-After is expressed in whole seconds in exactly two places — the
// HTTP header and error.retry_after_s — and the two always agree (the
// header is authoritative for proxies, the body for clients that only
// read JSON). The legacy bare bodies remain readable for one release at
// /v0/advise.

// Schema tokens for the v1 envelope, one per response shape.
const (
	SchemaAdvise    = "blob.v1.advise"
	SchemaThreshold = "blob.v1.threshold"
	SchemaDispatch  = "blob.v1.dispatch"
	SchemaHealth    = "blob.v1.health"
	SchemaReady     = "blob.v1.ready"
	SchemaError     = "blob.v1.error"
)

// Envelope is the unified v1 response wrapper. Exactly one of Data and
// Error is set.
type Envelope struct {
	// Schema names the shape of Data (or SchemaError for failures).
	Schema string `json:"schema"`
	// Data is the endpoint's payload (AdviseResponse, ThresholdResponse,
	// DispatchResponse, HealthBody) on success.
	Data any `json:"data,omitempty"`
	// Error describes the failure on non-2xx responses.
	Error *APIError `json:"error,omitempty"`
}

// APIError is the unified v1 error object.
type APIError struct {
	// Code is the machine-readable failure class: bad_request,
	// method_not_allowed, internal, plus the rejection codes
	// (queue_full, over_quota, deadline_budget, breaker_open,
	// shutting_down, deadline_exceeded, abandoned).
	Code string `json:"code"`
	// Message is the human-oriented description.
	Message string `json:"message"`
	// RetryAfterS, when set, is the server's retry hint in whole seconds
	// and always equals the Retry-After response header.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// HealthBody is the /healthz payload inside the envelope.
type HealthBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// ReadyBody is the /readyz payload inside the envelope — readiness as
// distinct from liveness. /healthz answers "ok" for as long as the
// process can serve bytes; /readyz answers 200 only while the replica
// should receive new traffic: not draining, worker pool armed. During a
// drain (or before the pool is armed) /readyz is a 503 error envelope
// with code "not_ready", which is what cluster health checks and rolling
// restarts key off.
type ReadyBody struct {
	Status        string  `json:"status"` // always "ready" on a 200
	Draining      bool    `json:"draining"`
	WorkersArmed  bool    `json:"workers_armed"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// writeEnvelope writes a success envelope around data.
func writeEnvelope(w http.ResponseWriter, status int, schema string, data any) {
	writeJSON(w, status, Envelope{Schema: schema, Data: data})
}

// writeAPIError writes an error envelope. code "" derives a generic code
// from the status.
func writeAPIError(w http.ResponseWriter, status int, code string, err error) {
	if code == "" {
		code = codeForStatus(status)
	}
	writeJSON(w, status, Envelope{
		Schema: SchemaError,
		Error:  &APIError{Code: code, Message: err.Error()},
	})
}

// codeForStatus maps a status with no more specific classification onto
// a generic error code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusNotFound:
		return "not_found"
	default:
		return "internal"
	}
}

// retryAfterSeconds converts a retry hint to the wire unit: whole
// seconds, rounded up, floored at 1 so "retry immediately" can never be
// read as "no hint".
func retryAfterSeconds(retryAfter time.Duration) int {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// reject writes the uniform rejection contract for load-shedding and
// refusal responses: the Retry-After header and error.retry_after_s
// carry the same whole-second hint, and error.code carries the
// machine-readable rejection class.
func reject(w http.ResponseWriter, status int, code string, retryAfter time.Duration, err error) {
	secs := retryAfterSeconds(retryAfter)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, Envelope{
		Schema: SchemaError,
		Error:  &APIError{Code: code, Message: err.Error(), RetryAfterS: secs},
	})
}
