package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim/systems"
)

const smallSweep = `{
  "system": "isambard-ai",
  "kernel": "gemm",
  "problem": "square",
  "precision": "f32",
  "config": {"max_dim": 96, "iterations": 8}
}`

func TestThresholdHappyPathAndCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &out)
	if out.Cached || out.System != "Isambard-AI" || out.Kernel != "GEMM" || out.Samples != 96 {
		t.Fatalf("first response: %+v", out)
	}
	if len(out.Thresholds) != core.NumStrategies {
		t.Fatalf("thresholds = %v", out.Thresholds)
	}
	// GH200 square SGEMM thresholds are small (Table III gives 52/82/180
	// at 8 iterations); a 96-wide sweep must find Transfer-Once.
	once := out.Thresholds["Once"]
	if !once.Found || once.M < 2 || once.Notation == "—" {
		t.Fatalf("Once threshold: %+v", once)
	}

	// The identical request is a cache hit: same key, Cached flag set.
	resp, body = postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d", resp.StatusCode)
	}
	var again ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &again)
	if !again.Cached || again.Key != out.Key || again.Samples != out.Samples {
		t.Fatalf("second response not served from cache: %+v", again)
	}
	if hits, misses := s.Metrics().CacheHits.Value(), s.Metrics().CacheMisses.Value(); hits != 1 || misses != 1 {
		t.Fatalf("cache hits=%d misses=%d", hits, misses)
	}
	if started := s.Metrics().SweepsStarted.Value(); started != 1 {
		t.Fatalf("sweeps started = %d", started)
	}
}

// A normalized-equal config (explicit defaults spelled out) must map to
// the same cache key, because the key is built from core.Config.Hash().
func TestThresholdCacheKeyCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	explicit := `{
	  "system": "isambard-ai",
	  "kernel": "gemm",
	  "precision": "f32",
	  "config": {"min_dim": 1, "max_dim": 96, "step": 1, "iterations": 8, "alpha": 1, "beta": 0}
	}`
	resp, body := postJSON(t, ts.URL+"/v1/threshold", smallSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var a ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &a)
	_, body = postJSON(t, ts.URL+"/v1/threshold", explicit)
	var b ThresholdResponse
	decodeEnvelope(t, body, SchemaThreshold, &b)
	if a.Key != b.Key || !b.Cached {
		t.Fatalf("equivalent configs got different identities:\n%+v\n%+v", a, b)
	}
}

func TestThresholdBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown system", `{"system":"cray-1","kernel":"gemm","precision":"f32"}`, "unknown system"},
		{"unknown kernel", `{"system":"dawn","kernel":"trsm","precision":"f32"}`, "unknown kernel"},
		{"unknown problem", `{"system":"dawn","kernel":"gemm","problem":"round","precision":"f32"}`, "unknown GEMM problem"},
		{"unknown precision", `{"system":"dawn","kernel":"gemm","precision":"f16"}`, "unknown precision"},
		{"oversized sweep", `{"system":"dawn","kernel":"gemm","precision":"f32","config":{"max_dim":100000}}`, "exceeds the service limit"},
		{"inverted range", `{"system":"dawn","kernel":"gemm","precision":"f32","config":{"min_dim":50,"max_dim":10}}`, "MaxDim"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/threshold", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(body, tc.wantErr) {
			t.Fatalf("%s: body %q does not mention %q", tc.name, body, tc.wantErr)
		}
	}
}

// TestThresholdSingleflightDedup is the ISSUE's acceptance test: N
// concurrent identical requests execute exactly one core.Run sweep; the
// rest are served by singleflight (or, for stragglers, the cache).
func TestThresholdSingleflightDedup(t *testing.T) {
	const n = 8
	var sweeps atomic.Int64
	release := make(chan struct{})
	counting := func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		sweeps.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return core.Run(ctx, sys, pts, precs, cfg)
	}
	s, ts := newTestServer(t, Options{Sweep: counting})

	results := make(chan ThresholdResponse, n)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/threshold", "application/json", strings.NewReader(smallSweep))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var env wireEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				errs <- err
				return
			}
			var out ThresholdResponse
			if err := json.Unmarshal(env.Data, &out); err != nil {
				errs <- err
				return
			}
			results <- out
		}()
	}

	// Deterministic barrier: wait until every request has joined the one
	// flight, then let the sweep run. (Requests still en route to the
	// flight at release time are served from the cache instead — either
	// way no second sweep can start.)
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.waiterCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests joined the flight", s.flights.waiterCount(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got := 0
	leaders := 0
	for out := range results {
		got++
		if !out.Deduplicated && !out.Cached {
			leaders++
		}
	}
	if got != n {
		t.Fatalf("responses = %d, want %d", got, n)
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if v := sweeps.Load(); v != 1 {
		t.Fatalf("sweeps executed = %d, want exactly 1", v)
	}
	if v := s.Metrics().SweepsStarted.Value(); v != 1 {
		t.Fatalf("SweepsStarted = %d, want 1", v)
	}
}

// TestThresholdCancellation: cancelling the (only) client's request
// cancels the flight context, which core.Run observes between problem
// sizes — the sweep stops before completion.
func TestThresholdCancellation(t *testing.T) {
	started := make(chan struct{})
	sweepErr := make(chan error, 1)
	blocking := func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		close(started)
		// Hold mid-"sweep" until cancellation propagates, then hand the
		// cancelled ctx to the real core.Run: it must refuse to sweep.
		<-ctx.Done()
		out, err := core.Run(ctx, sys, pts, precs, cfg)
		sweepErr <- err
		return out, err
	}
	s, ts := newTestServer(t, Options{Sweep: blocking})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/threshold", strings.NewReader(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	<-started
	cancel()
	if err := <-clientDone; err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}
	select {
	case err := <-sweepErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never observed the cancellation")
	}
	// The cancelled result must not be cached, and the metrics must say
	// the sweep was cancelled, not completed.
	if s.cache.Len() != 0 {
		t.Fatalf("cache has %d entries after a cancelled sweep", s.cache.Len())
	}
	waitFor(t, func() bool { return s.Metrics().SweepsCancelled.Value() == 1 })
	if v := s.Metrics().SweepsCompleted.Value(); v != 0 {
		t.Fatalf("SweepsCompleted = %d", v)
	}
}

// TestThresholdQueueFull: with one worker and a one-deep admission
// queue, a third distinct sweep is refused with 503 instead of blocking
// the handler.
func TestThresholdQueueFull(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, sys systems.System, pts []core.ProblemType, precs []core.Precision, cfg core.Config) ([]*core.Series, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return core.Run(context.Background(), sys, pts, precs, cfg)
	}
	s, ts := newTestServer(t, Options{Workers: 1, Queue: 1, Sweep: blocking})
	body := func(maxDim int) string {
		return fmt.Sprintf(`{"system":"dawn","kernel":"gemv","precision":"f64","config":{"max_dim":%d}}`, maxDim)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	for _, dim := range []int{30, 40} {
		go func(dim int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/threshold", "application/json", strings.NewReader(body(dim)))
			if err == nil {
				resp.Body.Close()
			}
		}(dim)
	}
	// Wait until the first sweep occupies the worker and the second fills
	// the admission queue.
	waitFor(t, func() bool { return s.flights.waiterCount() == 2 && s.admission.QueueDepth() == 1 })

	resp, respBody := postJSON(t, ts.URL+"/v1/threshold", body(50))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, respBody)
	}
	if !strings.Contains(respBody, "queue full") {
		t.Fatalf("body %q does not mention the queue", respBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	wg.Wait()
}

// waitFor polls cond for up to 10s; it exists because some transitions
// (worker picks up a queued job) have no completion signal to block on.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
