package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the service's stdlib-only observability layer: counters,
// gauges and histograms with a Prometheus-text rendering, so a scrape of
// GET /metrics works with standard tooling without importing a client
// library (the repository is deliberately dependency-free).

// Counter is a monotonically increasing count.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (d must be >= 0).
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ n atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// defLatencyBounds are the histogram bucket upper bounds in seconds,
// spanning sub-millisecond advise calls to multi-second threshold sweeps.
var defLatencyBounds = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	total  int64
}

// NewHistogram returns a histogram over the default latency buckets.
func NewHistogram() *Histogram {
	return &Histogram{bounds: defLatencyBounds, counts: make([]int64, len(defLatencyBounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// snapshot returns cumulative bucket counts, the sum and the total.
func (h *Histogram) snapshot() (cum []int64, sum float64, total int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// Metrics aggregates every series the service exports. Request-scoped
// series are labelled by endpoint (and status code for the counter);
// label sets are created lazily and rendered in sorted order so scrapes
// are deterministic.
type Metrics struct {
	mu          sync.Mutex
	requests    map[string]*Counter   // "endpoint|code" -> count
	latency     map[string]*Histogram // endpoint -> seconds histogram
	sheds       map[string]*Counter   // shed reason -> count
	clientSheds map[string]*Counter   // client -> count (bounded; overflow -> "_other")

	// CacheHits / CacheMisses count /v1/threshold cache lookups.
	CacheHits, CacheMisses Counter
	// SweepsStarted / SweepsCompleted / SweepsCancelled count threshold
	// sweeps actually executed by the worker pool (deduplicated requests
	// never increment these — that is what the singleflight test asserts).
	SweepsStarted, SweepsCompleted, SweepsCancelled Counter
	// InFlight is the number of requests currently being served.
	InFlight Gauge
	// QueueDepth reads the worker pool's backlog at scrape time.
	QueueDepth func() int

	// PanicsTotal counts panics recovered by the containment layer (the
	// HTTP middleware and the sweep flight wrapper) instead of crashing
	// the process.
	PanicsTotal Counter
	// StaleServes counts threshold responses served from an expired or
	// breaker-shielded cache entry, marked "stale": true on the wire.
	StaleServes Counter
	// TimeoutsTotal counts requests that exhausted their deadline budget
	// and were answered 504.
	TimeoutsTotal Counter
	// BreakerOpenTotal counts requests refused (or degraded to a stale
	// serve) because a backend's circuit breaker was open.
	BreakerOpenTotal Counter
	// BreakerTransitions counts circuit-breaker state changes across all
	// per-system breakers.
	BreakerTransitions Counter

	// AdmittedTotal counts sweeps admitted by the overload controller
	// (queued-then-granted included; sheds excluded).
	AdmittedTotal Counter
	// AdmissionSeconds is the admission decision latency: how long a
	// request waited for the controller to either grant it a slot or shed
	// it — the p99 of this histogram is the soak harness's SLO.
	AdmissionSeconds *Histogram
	// AdmissionLimit and AdmissionQueued read the overload controller's
	// current AIMD limit and queue depth at scrape time.
	AdmissionLimit, AdmissionQueued func() int

	// PeerFillServes counts threshold responses served by fetching the
	// result from the shard's ring owner over the peer-fill path;
	// PeerFillFallbacks counts fill attempts that failed and fell back to
	// a local sweep. Requests the hook declined (this replica owns the
	// shard) count in neither.
	PeerFillServes, PeerFillFallbacks Counter
	// drainSeconds is the blob_drain_seconds gauge: wall-clock of the
	// last completed graceful drain (BeginDrain → Close), stored as
	// float64 bits so the scrape path stays lock-free.
	drainSeconds atomic.Uint64

	// DispatchBatches / DispatchDecisions count /v1/dispatch batches
	// served and the individual routing decisions inside them;
	// DispatchCacheHits counts the decisions answered from the
	// dispatchers' seen-shape caches, and DispatchAbandoned the batches
	// whose client hung up mid-batch (answered 499).
	DispatchBatches, DispatchDecisions, DispatchCacheHits, DispatchAbandoned Counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:         map[string]*Counter{},
		latency:          map[string]*Histogram{},
		sheds:            map[string]*Counter{},
		clientSheds:      map[string]*Counter{},
		AdmissionSeconds: NewHistogram(),
	}
}

// SetDrainSeconds records the duration of a completed graceful drain;
// DrainSeconds reads it back (0 until a drain has finished).
func (m *Metrics) SetDrainSeconds(s float64) { m.drainSeconds.Store(math.Float64bits(s)) }

// DrainSeconds returns the wall-clock of the last completed drain.
func (m *Metrics) DrainSeconds() float64 { return math.Float64frombits(m.drainSeconds.Load()) }

// maxShedClients bounds the per-client shed series so a client-key
// minting attack cannot grow the scrape without bound; overflow clients
// aggregate under "_other".
const maxShedClients = 256

// ShedCounter returns the shed counter for one reason.
func (m *Metrics) ShedCounter(reason string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.sheds[reason]
	if !ok {
		c = &Counter{}
		m.sheds[reason] = c
	}
	return c
}

// ClientShedCounter returns the shed counter for one client identity.
func (m *Metrics) ClientShedCounter(client string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.clientSheds[client]
	if !ok {
		if len(m.clientSheds) >= maxShedClients {
			client = "_other"
			if c, ok = m.clientSheds[client]; ok {
				return c
			}
		}
		c = &Counter{}
		m.clientSheds[client] = c
	}
	return c
}

// RequestCounter returns the counter for one endpoint and status code.
func (m *Metrics) RequestCounter(endpoint string, code int) *Counter {
	key := endpoint + "|" + strconv.Itoa(code)
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[key]
	if !ok {
		c = &Counter{}
		m.requests[key] = c
	}
	return c
}

// LatencyHistogram returns the latency histogram for one endpoint.
func (m *Metrics) LatencyHistogram(endpoint string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[endpoint]
	if !ok {
		h = NewHistogram()
		m.latency[endpoint] = h
	}
	return h
}

// WriteTo renders the registry in the Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder

	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	shedKeys := make([]string, 0, len(m.sheds))
	for k := range m.sheds {
		shedKeys = append(shedKeys, k)
	}
	clientKeys := make([]string, 0, len(m.clientSheds))
	for k := range m.clientSheds {
		clientKeys = append(clientKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)
	sort.Strings(shedKeys)
	sort.Strings(clientKeys)

	fmt.Fprintf(&b, "# HELP blob_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(&b, "# TYPE blob_requests_total counter\n")
	for _, k := range reqKeys {
		ep, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "blob_requests_total{endpoint=%q,code=%q} %d\n",
			ep, code, m.RequestCounter(ep, atoiOr(code)).Value())
	}

	fmt.Fprintf(&b, "# HELP blob_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(&b, "# TYPE blob_request_seconds histogram\n")
	for _, ep := range latKeys {
		cum, sum, total := m.LatencyHistogram(ep).snapshot()
		for i, bound := range defLatencyBounds {
			fmt.Fprintf(&b, "blob_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(bound, 'g', -1, 64), cum[i])
		}
		fmt.Fprintf(&b, "blob_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum[len(cum)-1])
		fmt.Fprintf(&b, "blob_request_seconds_sum{endpoint=%q} %g\n", ep, sum)
		fmt.Fprintf(&b, "blob_request_seconds_count{endpoint=%q} %d\n", ep, total)
	}

	fmt.Fprintf(&b, "# HELP blob_cache_hits_total Threshold cache hits.\n# TYPE blob_cache_hits_total counter\n")
	fmt.Fprintf(&b, "blob_cache_hits_total %d\n", m.CacheHits.Value())
	fmt.Fprintf(&b, "# HELP blob_cache_misses_total Threshold cache misses.\n# TYPE blob_cache_misses_total counter\n")
	fmt.Fprintf(&b, "blob_cache_misses_total %d\n", m.CacheMisses.Value())

	fmt.Fprintf(&b, "# HELP blob_sweeps_total Threshold sweeps executed by the worker pool.\n# TYPE blob_sweeps_total counter\n")
	fmt.Fprintf(&b, "blob_sweeps_total{result=\"started\"} %d\n", m.SweepsStarted.Value())
	fmt.Fprintf(&b, "blob_sweeps_total{result=\"completed\"} %d\n", m.SweepsCompleted.Value())
	fmt.Fprintf(&b, "blob_sweeps_total{result=\"cancelled\"} %d\n", m.SweepsCancelled.Value())

	fmt.Fprintf(&b, "# HELP blob_inflight_requests Requests currently being served.\n# TYPE blob_inflight_requests gauge\n")
	fmt.Fprintf(&b, "blob_inflight_requests %d\n", m.InFlight.Value())

	fmt.Fprintf(&b, "# HELP blob_panics_total Panics recovered instead of crashing the process.\n# TYPE blob_panics_total counter\n")
	fmt.Fprintf(&b, "blob_panics_total %d\n", m.PanicsTotal.Value())
	fmt.Fprintf(&b, "# HELP blob_stale_serves_total Threshold responses served stale from the cache.\n# TYPE blob_stale_serves_total counter\n")
	fmt.Fprintf(&b, "blob_stale_serves_total %d\n", m.StaleServes.Value())
	fmt.Fprintf(&b, "# HELP blob_timeouts_total Requests that exhausted their deadline budget.\n# TYPE blob_timeouts_total counter\n")
	fmt.Fprintf(&b, "blob_timeouts_total %d\n", m.TimeoutsTotal.Value())
	fmt.Fprintf(&b, "# HELP blob_breaker_open_total Requests refused or degraded by an open circuit breaker.\n# TYPE blob_breaker_open_total counter\n")
	fmt.Fprintf(&b, "blob_breaker_open_total %d\n", m.BreakerOpenTotal.Value())
	fmt.Fprintf(&b, "# HELP blob_breaker_transitions_total Circuit breaker state changes across all backends.\n# TYPE blob_breaker_transitions_total counter\n")
	fmt.Fprintf(&b, "blob_breaker_transitions_total %d\n", m.BreakerTransitions.Value())

	fmt.Fprintf(&b, "# HELP blob_peer_fill_total Threshold cache misses resolved via the cluster peer-fill path, by result.\n# TYPE blob_peer_fill_total counter\n")
	fmt.Fprintf(&b, "blob_peer_fill_total{result=\"served\"} %d\n", m.PeerFillServes.Value())
	fmt.Fprintf(&b, "blob_peer_fill_total{result=\"fallback\"} %d\n", m.PeerFillFallbacks.Value())
	fmt.Fprintf(&b, "# HELP blob_drain_seconds Wall-clock of the last completed graceful drain (ring-leave to flush).\n# TYPE blob_drain_seconds gauge\n")
	fmt.Fprintf(&b, "blob_drain_seconds %g\n", m.DrainSeconds())

	fmt.Fprintf(&b, "# HELP blob_dispatch_batches_total Dispatch batches served.\n# TYPE blob_dispatch_batches_total counter\n")
	fmt.Fprintf(&b, "blob_dispatch_batches_total %d\n", m.DispatchBatches.Value())
	fmt.Fprintf(&b, "# HELP blob_dispatch_decisions_total Per-call routing decisions served, by source.\n# TYPE blob_dispatch_decisions_total counter\n")
	fmt.Fprintf(&b, "blob_dispatch_decisions_total{source=\"all\"} %d\n", m.DispatchDecisions.Value())
	fmt.Fprintf(&b, "blob_dispatch_decisions_total{source=\"cache\"} %d\n", m.DispatchCacheHits.Value())
	fmt.Fprintf(&b, "# HELP blob_dispatch_abandoned_total Dispatch batches abandoned mid-batch by the client.\n# TYPE blob_dispatch_abandoned_total counter\n")
	fmt.Fprintf(&b, "blob_dispatch_abandoned_total %d\n", m.DispatchAbandoned.Value())

	if m.QueueDepth != nil {
		fmt.Fprintf(&b, "# HELP blob_sweep_queue_depth Sweep jobs waiting for a worker.\n# TYPE blob_sweep_queue_depth gauge\n")
		fmt.Fprintf(&b, "blob_sweep_queue_depth %d\n", m.QueueDepth())
	}

	fmt.Fprintf(&b, "# HELP blob_admitted_total Sweeps admitted by the overload controller.\n# TYPE blob_admitted_total counter\n")
	fmt.Fprintf(&b, "blob_admitted_total %d\n", m.AdmittedTotal.Value())
	fmt.Fprintf(&b, "# HELP blob_shed_total Requests shed by admission control, by reason.\n# TYPE blob_shed_total counter\n")
	for _, k := range shedKeys {
		fmt.Fprintf(&b, "blob_shed_total{reason=%q} %d\n", k, m.ShedCounter(k).Value())
	}
	fmt.Fprintf(&b, "# HELP blob_client_shed_total Requests shed by admission control, by client.\n# TYPE blob_client_shed_total counter\n")
	for _, k := range clientKeys {
		fmt.Fprintf(&b, "blob_client_shed_total{client=%q} %d\n", k, m.ClientShedCounter(k).Value())
	}
	fmt.Fprintf(&b, "# HELP blob_admission_seconds Admission decision latency (grant or shed).\n# TYPE blob_admission_seconds histogram\n")
	{
		cum, sum, total := m.AdmissionSeconds.snapshot()
		for i, bound := range defLatencyBounds {
			fmt.Fprintf(&b, "blob_admission_seconds_bucket{le=%q} %d\n",
				strconv.FormatFloat(bound, 'g', -1, 64), cum[i])
		}
		fmt.Fprintf(&b, "blob_admission_seconds_bucket{le=\"+Inf\"} %d\n", cum[len(cum)-1])
		fmt.Fprintf(&b, "blob_admission_seconds_sum %g\n", sum)
		fmt.Fprintf(&b, "blob_admission_seconds_count %d\n", total)
	}
	if m.AdmissionLimit != nil {
		fmt.Fprintf(&b, "# HELP blob_admission_limit Current AIMD concurrency limit.\n# TYPE blob_admission_limit gauge\n")
		fmt.Fprintf(&b, "blob_admission_limit %d\n", m.AdmissionLimit())
	}
	if m.AdmissionQueued != nil {
		fmt.Fprintf(&b, "# HELP blob_admission_queue_depth Requests queued for admission.\n# TYPE blob_admission_queue_depth gauge\n")
		fmt.Fprintf(&b, "blob_admission_queue_depth %d\n", m.AdmissionQueued())
	}

	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func atoiOr(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
