package service

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("a = %v", v)
	}
	// Refreshing also marks recency: a survives the next eviction.
	c.Put("b", 1)
	c.Put("a", 3)
	c.Put("c", 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}
