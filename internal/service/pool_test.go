package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		// Submit can transiently fail while workers drain; retry rather
		// than over-size the queue, as a client with backoff would.
		for {
			err := p.Submit(func() {
				defer wg.Done()
				ran.Add(1)
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	if ran.Load() != 16 {
		t.Fatalf("ran = %d", ran.Load())
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now busy
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("queue slot should admit: %v", err)
	}
	if p.QueueDepth() != 1 {
		t.Fatalf("depth = %d", p.QueueDepth())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestPoolCloseDrainsAndRefuses(t *testing.T) {
	p := NewPool(1, 4)
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Close() // waits for queued jobs
	if ran.Load() != 3 {
		t.Fatalf("ran = %d before Close returned", ran.Load())
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, -1)
	defer p.Close()
	if p.Workers() != 1 || p.QueueDepth() != 0 {
		t.Fatalf("workers=%d depth=%d", p.Workers(), p.QueueDepth())
	}
}
