package service

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sort"
)

// DebugHandler returns the service's profiling and runtime-introspection
// surface:
//
//	/debug/pprof/...  the standard net/http/pprof handlers (profile,
//	                  heap, goroutine, trace, ...)
//	/debug/runtime    a plain-text dump of the Go runtime/metrics
//	                  supported on this toolchain
//
// It is deliberately NOT part of Handler(): profiles reveal memory
// contents and can be made arbitrarily expensive to produce, so
// cmd/blob-served mounts this handler only on the separate -debug-addr
// listener (default disabled, loopback recommended) — guarded by network
// reachability rather than sharing the public port.
//
// Note that importing net/http/pprof also registers handlers on
// http.DefaultServeMux as a side effect; nothing in this repository ever
// serves DefaultServeMux, so the explicit routes below are the only way
// in.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", handleRuntimeMetrics)
	return mux
}

// handleRuntimeMetrics samples every supported runtime/metrics entry and
// writes one line per metric. Histogram-kind metrics are summarized as
// count plus approximate p50/p99 taken from the bucket boundaries, which
// is enough to watch GC pause and scheduling latency drift on a live
// blob-served without attaching a profiler.
func handleRuntimeMetrics(w http.ResponseWriter, r *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			count, p50, p99 := histogramSummary(h)
			fmt.Fprintf(w, "%s count=%d p50=%g p99=%g\n", s.Name, count, p50, p99)
		}
	}
}

// histogramSummary returns the total count and the nearest-bucket p50/p99
// upper bounds of a runtime histogram.
func histogramSummary(h *metrics.Float64Histogram) (count uint64, p50, p99 float64) {
	for _, c := range h.Counts {
		count += c
	}
	if count == 0 {
		return 0, 0, 0
	}
	quantile := func(q float64) float64 {
		target := uint64(q * float64(count))
		var seen uint64
		for i, c := range h.Counts {
			seen += c
			if seen > target {
				// Buckets[i+1] is the bucket's upper bound; the last
				// bucket's bound may be +Inf, in which case report the
				// finite lower bound instead.
				hi := h.Buckets[i+1]
				if math.IsInf(hi, 1) {
					return h.Buckets[i]
				}
				return hi
			}
		}
		return h.Buckets[len(h.Buckets)-1]
	}
	return count, quantile(0.50), quantile(0.99)
}
