package service

import (
	"fmt"
	"net/http"

	"repro/internal/offload"
	"repro/internal/sim/systems"
)

// This file is the HTTP face of internal/offload: POST /v1/dispatch
// takes a batch of BLAS call shapes for one system and answers, per
// call, which device an auto-offload runtime should route it to. The
// server keeps one long-lived offload.Dispatcher per system, so the
// hysteresis state and the seen-shape cache persist across requests —
// repeated production traffic converges to pure cache hits, which is
// the point of the endpoint.

// DispatchCallRequest is one call in a dispatch batch: the advise wire
// shape plus the USM residency flag.
type DispatchCallRequest struct {
	CallRequest
	// Resident marks the call's operands as already resident on the GPU
	// (first-touch migration paid by an earlier call). Only meaningful
	// for movement "usm".
	Resident bool `json:"resident,omitempty"`
}

// DispatchRequest is the body of POST /v1/dispatch: a batch of call
// shapes to route on one system.
type DispatchRequest struct {
	System string                `json:"system"`
	Calls  []DispatchCallRequest `json:"calls"`
}

// DecisionBody is one routing decision on the wire.
type DecisionBody struct {
	// Device is "cpu" or "gpu".
	Device     string  `json:"device"`
	CPUSeconds float64 `json:"cpu_seconds"`
	GPUSeconds float64 `json:"gpu_seconds"`
	Speedup    float64 `json:"speedup"`
	// Cached marks a decision replayed from the seen-shape cache (or
	// shared with a concurrent evaluation of the same shape).
	Cached bool `json:"cached,omitempty"`
	// Held marks a verdict the hysteresis band kept on the incumbent
	// device against a raw preference for the other one.
	Held bool `json:"held,omitempty"`
}

// DispatchResponse is the data payload of a successful POST /v1/dispatch.
type DispatchResponse struct {
	System string `json:"system"`
	// Decisions is index-aligned with the request's calls.
	Decisions []DecisionBody `json:"decisions"`
	// Offloaded counts the batch's GPU verdicts.
	Offloaded int `json:"offloaded"`
	// CacheHits counts the batch's decisions answered from the
	// dispatcher's seen-shape structure.
	CacheHits int `json:"cache_hits"`
}

// dispatcher returns the long-lived dispatcher for one system, creating
// it on first use.
func (s *Server) dispatcher(sys systems.System) *offload.Dispatcher {
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	d, ok := s.dispatchers[sys.Name]
	if !ok {
		d = offload.New(offload.Options{
			System:       sys,
			Margin:       s.opts.DispatchMargin,
			CacheEntries: s.opts.DispatchCacheEntries,
			Evaluate:     s.opts.DispatchEvaluate,
		})
		s.dispatchers[sys.Name] = d
	}
	return d
}

// dispatchBodyLimit is the /v1/dispatch request cap: batches run to
// thousands of calls, so the default 1 MiB decode limit is too tight.
const dispatchBodyLimit = 8 << 20

func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	var req DispatchRequest
	if err := decodeJSONLimit(r, &req, dispatchBodyLimit); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.System == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("system must be set"))
		return
	}
	sys, err := systems.ByName(req.System)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Calls) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("calls must not be empty"))
		return
	}
	if len(req.Calls) > s.opts.MaxDispatchBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d calls exceeds the service limit %d", len(req.Calls), s.opts.MaxDispatchBatch))
		return
	}

	// Map the whole batch before deciding any of it, so a bad call at
	// index 4000 cannot waste 3999 evaluations first.
	calls := make([]offload.Call, 0, len(req.Calls))
	for i, cr := range req.Calls {
		c, err := cr.toCall()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("calls[%d]: %w", i, err))
			return
		}
		calls = append(calls, offload.Call{Call: c, Resident: cr.Resident})
	}

	d := s.dispatcher(sys)
	ctx := r.Context()
	resp := DispatchResponse{
		System:    sys.Name,
		Decisions: make([]DecisionBody, 0, len(calls)),
	}
	for _, c := range calls {
		dec, err := d.Decide(ctx, c)
		if err != nil {
			// Decide checks the context per call, so a client hanging up
			// mid-batch stops the loop here instead of burning the rest of
			// the batch; 499 is the same abandoned-request convention the
			// threshold path uses.
			if ctx.Err() != nil {
				s.metrics.DispatchAbandoned.Inc()
				w.WriteHeader(499)
				s.log.Info("dispatch request abandoned",
					"system", sys.Name, "decided", len(resp.Decisions), "batch", len(calls))
				return
			}
			// Calls were validated above, so this is a server-side failure.
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		body := DecisionBody{
			Device:     dec.Device.String(),
			CPUSeconds: dec.CPUSeconds,
			GPUSeconds: dec.GPUSeconds,
			Speedup:    dec.Speedup,
			Cached:     dec.Cached,
			Held:       dec.Held,
		}
		if dec.Device == offload.GPU {
			resp.Offloaded++
		}
		if dec.Cached {
			resp.CacheHits++
		}
		resp.Decisions = append(resp.Decisions, body)
	}
	s.metrics.DispatchBatches.Inc()
	s.metrics.DispatchDecisions.Add(int64(len(resp.Decisions)))
	s.metrics.DispatchCacheHits.Add(int64(resp.CacheHits))
	writeEnvelope(w, http.StatusOK, SchemaDispatch, resp)
}
