// Package service is the serving layer of the §III-D advisor workflow: a
// long-running HTTP/JSON API that answers offload-advice queries
// (POST /v1/advise), offload-threshold sweeps (POST /v1/threshold) and
// batched per-call routing decisions (POST /v1/dispatch, backed by
// internal/offload's hysteresis dispatcher) from GPU-BLOB's calibrated
// models, the way an automatic-offload runtime would consult them at
// dispatch time. All v1 endpoints answer with the unified envelope
// defined in envelope.go; the pre-envelope advise body remains readable
// at the deprecated /v0/advise alias for one release.
//
// Threshold sweeps are expensive (a full sweep evaluates thousands of
// problem sizes), so the service layers three defences in front of
// core.Run:
//
//   - a bounded LRU result cache keyed by core.Config.Hash() together
//     with the system, problem and precision;
//   - singleflight deduplication, so N concurrent identical requests
//     compute one sweep and share the result;
//   - a bounded worker pool with a fail-fast queue, so sweep load can
//     never starve the cheap advise path.
//
// Cancellation is threaded end to end: a disconnected client abandons
// its flight, and when a flight's last waiter is gone its context is
// cancelled, which core.RunProblem observes between problem sizes.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/offload"
	"repro/internal/overload"
	"repro/internal/resilience"
	"repro/internal/sim/systems"
)

// SweepFunc runs one threshold sweep. It matches core.Run's signature so
// the default is core.Run itself; tests substitute counting or blocking
// implementations.
type SweepFunc func(ctx context.Context, sys systems.System, problems []core.ProblemType, precisions []core.Precision, cfg core.Config) ([]*core.Series, error)

// Options configures a Server. The zero value is serviceable.
type Options struct {
	// Workers bounds concurrent sweeps (default 2).
	Workers int
	// Queue is the sweep backlog beyond the workers (default 8).
	Queue int
	// CacheSize bounds the threshold result cache (default 256 entries).
	CacheSize int
	// MaxSweepDim caps a request's config.MaxDim (default 4096, the
	// paper's d) so one request cannot ask for an unbounded sweep.
	MaxSweepDim int
	// Sweep replaces core.Run (tests only).
	Sweep SweepFunc
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger

	// RequestTimeout bounds how long one /v1/threshold request may take
	// end to end; expiry answers 504 with a JSON body. 0 (the default)
	// disables the budget.
	RequestTimeout time.Duration
	// MinSweepBudget fails a cache-missing /v1/threshold request fast
	// with 504 when its resolved deadline budget is already below this
	// floor: a sweep that cannot finish inside the remaining budget only
	// burns an admission slot to produce an answer nobody reads. 0 (the
	// default) disables the floor. Cache hits are exempt — they cost
	// nothing and always beat a 504.
	MinSweepBudget time.Duration
	// Resilience is applied to every sweep the service runs: retry
	// budget for transient backend faults and (rarely useful in a
	// server) checkpointing. It never changes a sweep's results, so it
	// is invisible to the cache key.
	Resilience core.Resilience
	// Breaker tunes the per-system circuit breakers guarding the sweep
	// backend; the zero value takes resilience.BreakerConfig's defaults.
	// While a system's breaker is open, threshold requests for it serve
	// a stale cache entry (marked "stale": true) when one exists and 503
	// otherwise.
	Breaker resilience.BreakerConfig
	// CacheTTL bounds how long a cached threshold result counts as
	// fresh; expired entries are only served (marked stale) while the
	// breaker is open. 0 (the default) keeps entries fresh forever.
	CacheTTL time.Duration
	// Inject, when non-nil, is consulted once per executed sweep
	// (Backend "service") before the backend runs — the service-layer
	// chaos hook. Nil costs a single comparison.
	Inject faultinject.Point
	// PeerFill, when non-nil, is consulted on a threshold cache miss
	// before the request pays for a local sweep: a clustered replica asks
	// the shard's ring owner for the result (internal/cluster wires this
	// to the peer-fill client pool). The hook is skipped for requests that
	// are themselves peer fills (PeerFillHeader present) so a fill can
	// never fan out into another fill.
	PeerFill PeerFillFunc

	// TargetLatency is the AIMD setpoint of the adaptive concurrency
	// limiter: sweep completions above it shrink the admitted
	// concurrency multiplicatively (toward 1), completions below it grow
	// it back toward Workers. 0 (the default) pins the limit at Workers —
	// the historical fixed-pool behaviour.
	TargetLatency time.Duration
	// FairShareRate enables per-client fair-share token buckets: each
	// client (X-API-Key header, else remote host) refills at this many
	// sweep admissions per second, FairShareBurst deep (default 4).
	// 0 disables the fair-share layer.
	FairShareRate  float64
	FairShareBurst int
	// AdmissionClock replaces time.Now inside the overload controller
	// (tests run admission in virtual time).
	AdmissionClock resilience.Clock

	// MaxDispatchBatch caps the calls in one /v1/dispatch request
	// (default 8192). Dispatch decisions are cheap, but an unbounded
	// batch would still monopolise a connection.
	MaxDispatchBatch int
	// DispatchCacheEntries sizes each per-system dispatcher's seen-shape
	// cache (0 takes offload's default).
	DispatchCacheEntries int
	// DispatchMargin is the dispatchers' hysteresis margin (0 takes
	// offload's default).
	DispatchMargin float64
	// DispatchEvaluate replaces the dispatchers' timing-model evaluation
	// (tests count or script it).
	DispatchEvaluate offload.EvaluateFunc
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.Queue < 1 {
		o.Queue = 8
	}
	if o.CacheSize < 1 {
		o.CacheSize = 256
	}
	if o.MaxSweepDim < 1 {
		o.MaxSweepDim = 4096
	}
	if o.Sweep == nil {
		o.Sweep = core.Run
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	if o.MaxDispatchBatch < 1 {
		o.MaxDispatchBatch = 8192
	}
	return o
}

// Server holds the service's shared state. Create with New, expose with
// Handler, and Close when draining.
type Server struct {
	opts      Options
	sweep     SweepFunc
	pool      *Pool
	admission *overload.Controller
	cache     *Cache
	flights   *flightGroup
	metrics   *Metrics
	log       *slog.Logger
	start     time.Time

	// draining flips on BeginDrain and never clears; drainStart stamps
	// the moment the drain began (UnixNano), consumed exactly once by
	// Close to record blob_drain_seconds.
	draining   atomic.Bool
	drainStart atomic.Int64

	breakerMu sync.Mutex
	breakers  map[string]*resilience.Breaker // system name -> breaker

	dispatchMu  sync.Mutex
	dispatchers map[string]*offload.Dispatcher // system name -> dispatcher
}

// New assembles a Server (and starts its worker pool). Sweep concurrency
// is governed by the overload controller — an AIMD limiter whose ceiling
// is Workers, with Queue as the LIFO admission-queue depth — so the pool
// itself is sized to the ceiling and its channel buffer only absorbs the
// instant between a permit grant and a worker pickup.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		sweep: opts.Sweep,
		pool:  NewPool(opts.Workers, opts.Workers),
		admission: overload.New(overload.Config{
			MaxConcurrent:  opts.Workers,
			TargetLatency:  opts.TargetLatency,
			QueueCap:       opts.Queue,
			FairShareRate:  opts.FairShareRate,
			FairShareBurst: opts.FairShareBurst,
			Clock:          opts.AdmissionClock,
		}),
		cache:       NewCacheTTL(opts.CacheSize, opts.CacheTTL),
		flights:     newFlightGroup(),
		metrics:     NewMetrics(),
		log:         opts.Logger,
		start:       time.Now(),
		breakers:    map[string]*resilience.Breaker{},
		dispatchers: map[string]*offload.Dispatcher{},
	}
	s.metrics.QueueDepth = s.pool.QueueDepth
	s.metrics.AdmissionLimit = s.admission.Limit
	s.metrics.AdmissionQueued = s.admission.QueueDepth
	return s
}

// breaker returns the circuit breaker guarding one system's sweep
// backend, creating it on first use. Separate breakers per system keep
// one unhealthy backend from shedding every system's traffic.
func (s *Server) breaker(system string) *resilience.Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b, ok := s.breakers[system]
	if !ok {
		cfg := s.opts.Breaker
		cfg.OnStateChange = func(from, to resilience.State) {
			s.metrics.BreakerTransitions.Inc()
			s.log.Warn("circuit breaker state change",
				"system", system, "from", from.String(), "to", to.String())
		}
		b = resilience.NewBreaker(cfg)
		s.breakers[system] = b
	}
	return b
}

// Metrics exposes the registry (used by tests and the metrics endpoint).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain flips the replica not-ready — the first step of the drain
// order (ring-leave → stop-accept → flush). From this point /readyz
// answers 503 "not_ready" so peers and load balancers stop routing new
// work here, while /healthz stays green and in-flight (and even newly
// arriving) requests keep being served. The caller stops accepting
// connections next and finally calls Close, which flushes the pool and
// stamps blob_drain_seconds. Idempotent; safe from any goroutine.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainStart.Store(time.Now().UnixNano())
		s.log.Info("drain: replica not-ready (ring-leave)")
	}
}

// Ready reports whether the replica should receive new traffic, with a
// human-readable reason when it should not.
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if !s.pool.Armed() {
		return false, "worker pool not armed"
	}
	return true, ""
}

// Close drains the server: admission closes first (queued waiters shed
// with reason shutting_down, new acquires refused), then the pool waits
// for the sweeps that were already admitted. When a graceful drain was
// announced via BeginDrain, the completed flush stamps the
// blob_drain_seconds gauge with the ring-leave → flush wall-clock.
func (s *Server) Close() {
	s.admission.Close()
	s.pool.Close()
	if t0 := s.drainStart.Swap(0); t0 > 0 {
		s.metrics.SetDrainSeconds(time.Since(time.Unix(0, t0)).Seconds())
	}
}

// Handler returns the service's routed, instrumented HTTP handler. The
// middleware order matters: instrument wraps the ResponseWriter first, so
// the recovery layer inside it can tell whether a response was already
// started when a panic arrives.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/advise", s.instrument("/v1/advise", s.recovered(s.requirePost(s.handleAdvise))))
	mux.Handle("/v1/threshold", s.instrument("/v1/threshold", s.recovered(s.requirePost(s.handleThreshold))))
	mux.Handle("/v1/dispatch", s.instrument("/v1/dispatch", s.recovered(s.requirePost(s.handleDispatch))))
	// Deprecated alias: the pre-envelope advise contract, kept readable
	// for one release so clients can migrate to the v1 envelope.
	mux.Handle("/v0/advise", s.instrument("/v0/advise", s.recovered(s.requirePost(s.handleAdviseV0))))
	mux.Handle("/healthz", s.instrument("/healthz", s.recovered(http.HandlerFunc(s.handleHealthz))))
	mux.Handle("/readyz", s.instrument("/readyz", s.recovered(http.HandlerFunc(s.handleReadyz))))
	mux.Handle("/metrics", s.instrument("/metrics", s.recovered(http.HandlerFunc(s.handleMetrics))))
	return mux
}

// statusWriter captures the status code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// recovered is the panic-containment middleware: a panicking handler is
// logged, counted in blob_panics_total, and answered with a JSON 500 —
// one bad request must never take the process (or the connection pool)
// down with it. http.ErrAbortHandler is re-raised: it is net/http's
// sanctioned way to abort a response and must keep its meaning. If the
// handler already started its response the status cannot be rewritten;
// the panic is still logged and counted.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.metrics.PanicsTotal.Inc()
			s.log.Error("panic recovered",
				"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(rec))
			if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// instrument wraps a handler with the observability middleware:
// in-flight gauge, per-endpoint request counter and latency histogram,
// and one structured log line per request.
func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		s.metrics.InFlight.Inc()
		defer s.metrics.InFlight.Dec()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(began)
		s.metrics.RequestCounter(endpoint, sw.status).Inc()
		s.metrics.LatencyHistogram(endpoint).Observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1e3,
			"remote", r.RemoteAddr,
		)
	})
}

func (s *Server) requirePost(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		h(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, http.StatusOK, SchemaHealth, HealthBody{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the readiness probe, distinct from handleHealthz's
// liveness: 200 only while the replica wants new traffic (not draining,
// worker pool armed), 503 "not_ready" otherwise. The 503 carries the
// uniform rejection contract (Retry-After header mirrored in the body)
// so a probe and a client read the same hint.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready, reason := s.Ready()
	if !ready {
		reject(w, http.StatusServiceUnavailable, "not_ready", time.Second, errors.New(reason))
		return
	}
	writeEnvelope(w, http.StatusOK, SchemaReady, ReadyBody{
		Status:        "ready",
		Draining:      false,
		WorkersArmed:  true,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.metrics.WriteTo(w); err != nil {
		s.log.Warn("metrics write failed", "err", err)
	}
}

// legacyErrorBody is the pre-envelope error shape, still served on the
// deprecated /v0/advise alias for one release.
type legacyErrorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// writeError writes the unified v1 error envelope with a generic code
// derived from the status; paths with a more specific classification use
// writeAPIError or reject directly.
func writeError(w http.ResponseWriter, status int, err error) {
	writeAPIError(w, status, "", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hanging up mid-body is not actionable
}

// decodeJSON decodes one JSON object from r into v, rejecting unknown
// fields and trailing garbage so malformed requests fail loudly.
func decodeJSON(r *http.Request, v any) error {
	return decodeJSONLimit(r, v, 1<<20)
}

// decodeJSONLimit is decodeJSON with a caller-chosen body cap — the
// dispatch endpoint accepts multi-thousand-call batches that outgrow the
// default 1 MiB limit.
func decodeJSONLimit(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data")
	}
	return nil
}
