package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/service"
)

// Example_advise is the README's "Serving advice" curl, compiled: start
// the blob-served handler in-process, POST one call group to /v1/advise,
// and read the verdict. Everything the real daemon does — decoding,
// validation, model evaluation, metrics — runs here too.
func Example_advise() {
	svc := service.New(service.Options{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(`{
	  "systems": ["isambard-ai"],
	  "calls": [{"kernel":"gemm","m":2048,"n":2048,"k":2048,
	             "precision":"f32","count":32,"movement":"once"}]
	}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	// Every v1 endpoint answers with the unified envelope: a schema token
	// naming the payload shape, then the data itself.
	var env struct {
		Schema string                 `json:"schema"`
		Data   service.AdviseResponse `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		panic(err)
	}
	v := env.Data.Verdicts[0]
	fmt.Printf("%s %s: offload=%v speedup=%.1fx\n", env.Schema, v.System, v.Offload, v.Speedup)
	// Output: blob.v1.advise Isambard-AI: offload=true speedup=8.3x
}
