package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/service"
)

// Example_advise is the README's "Serving advice" curl, compiled: start
// the blob-served handler in-process, POST one call group to /v1/advise,
// and read the verdict. Everything the real daemon does — decoding,
// validation, model evaluation, metrics — runs here too.
func Example_advise() {
	svc := service.New(service.Options{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/advise", "application/json", strings.NewReader(`{
	  "systems": ["isambard-ai"],
	  "calls": [{"kernel":"gemm","m":2048,"n":2048,"k":2048,
	             "precision":"f32","count":32,"movement":"once"}]
	}`))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	var body service.AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		panic(err)
	}
	v := body.Verdicts[0]
	fmt.Printf("%s: offload=%v speedup=%.1fx\n", v.System, v.Offload, v.Speedup)
	// Output: Isambard-AI: offload=true speedup=8.3x
}
