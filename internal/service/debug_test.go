package service

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime/metrics"
	"strings"
	"testing"
)

// TestDebugHandlerPprofIndex: the pprof index and the per-profile pages
// must be reachable on the debug mux.
func TestDebugHandlerPprofIndex(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/heap?debug=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, body %.200s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}

// TestDebugHandlerRuntimeMetrics: /debug/runtime must emit one line per
// supported runtime metric, including the GC and scheduler families.
func TestDebugHandlerRuntimeMetrics(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	lines := strings.Count(text, "\n")
	if want := len(metrics.All()); lines != want {
		t.Errorf("got %d metric lines, want %d (one per supported metric)", lines, want)
	}
	for _, name := range []string{"/gc/heap/allocs:bytes", "/sched/latencies:seconds", "/memory/classes/total:bytes"} {
		if !strings.Contains(text, name) {
			t.Errorf("missing metric %s in dump", name)
		}
	}
}

// TestDebugHandlerNotOnPublicMux: the public Handler must not expose the
// profiling surface — that is the whole point of the separate listener.
func TestDebugHandlerNotOnPublicMux(t *testing.T) {
	svc := New(Options{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("public mux served /debug/pprof/ with status %d, want 404", resp.StatusCode)
	}
}

// TestHistogramSummary exercises the quantile fold on a synthetic
// histogram with a +Inf tail bucket.
func TestHistogramSummary(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 9, 1},
		Buckets: []float64{0, 1, 2, 3, inf()},
	}
	count, p50, p99 := histogramSummary(h)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if p50 < 1.5 || p50 > 2.5 {
		t.Errorf("p50 = %g, want the bulk bucket's bound 2", p50)
	}
	// The p99 sample lands in the +Inf bucket, whose reported bound must
	// fall back to the finite lower edge 3.
	if p99 < 2.5 || p99 > 3.5 {
		t.Errorf("p99 = %g, want the finite lower bound 3", p99)
	}

	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if c, a, b := histogramSummary(empty); c != 0 || a > 0 || b > 0 {
		t.Errorf("empty histogram summary = (%d, %g, %g), want zeros", c, a, b)
	}
}

func inf() float64 { return math.Inf(1) }
