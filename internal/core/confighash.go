package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Hash returns a stable, canonical identity for the configuration: two
// Configs that normalize() to the same effective sweep — e.g. Step 0 and
// Step 1, or Iterations 0 and 1 — hash identically, and any field that
// changes the sweep's output changes the hash. The service result cache
// and any future on-disk persistence key results by this value (together
// with system, problem and precision), so the canonical form lives here,
// next to normalize(), rather than being re-derived by each consumer.
//
// The hash is the hex SHA-256 of a versioned key=value rendering; bump
// the leading version tag if the canonical form ever changes meaning.
func (c Config) Hash() (string, error) {
	s, err := c.canonicalString()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// canonicalString renders the normalized configuration as an ordered
// key=value list. normalize() feeds it so defaulting rules stay in one
// place.
func (c Config) canonicalString() (string, error) {
	if err := c.normalize(); err != nil {
		return "", err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fields := []string{
		"cfg-v1",
		"min=" + strconv.Itoa(c.MinDim),
		"max=" + strconv.Itoa(c.MaxDim),
		"step=" + strconv.Itoa(c.Step),
		"iters=" + strconv.Itoa(c.Iterations),
		"alpha=" + f(c.Alpha),
		"beta=" + f(c.Beta),
		"mode=" + c.Mode.String(),
		"validate=" + strconv.FormatBool(c.Validate.Enabled),
		"every=" + strconv.Itoa(c.Validate.Every),
		"maxflops=" + strconv.FormatInt(c.Validate.MaxFlops, 10),
		"livecpu=" + liveCPUIdentity(c.LiveCPU),
		"model=" + c.Model.String(),
		"efftab=" + effTablesIdentity(c),
	}
	return strings.Join(fields, " "), nil
}

// effTablesIdentity folds the blackbox tables into the identity: the
// table set's data fingerprint (host and timestamp excluded), so results
// cached against one table generation never answer for another.
// normalize() has already resolved nil EffTables to the embedded default
// under ModelBlackbox and cleared them under ModelRoofline.
func effTablesIdentity(c Config) string {
	if c.Model != ModelBlackbox || c.EffTables == nil {
		return "none"
	}
	return c.EffTables.Fingerprint()
}

// liveCPUIdentity folds the live-CPU timer into the identity. Live
// measurements depend on the host, so any live config is distinct from
// every modeled one; the timer's knobs (threads, repeats) are part of the
// identity because they change the numbers a sweep reports.
func liveCPUIdentity(l *LiveCPUTimer) string {
	if l == nil {
		return "off"
	}
	return fmt.Sprintf("t%d-r%d", l.Threads, l.repeats())
}
