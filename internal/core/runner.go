package core

import (
	"context"
	"fmt"

	"repro/internal/flops"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Mode selects which devices a run exercises. The paper's default is
// interleaved CPU+GPU; LUMI required separate CPU-only and GPU-only builds
// because AOCL and hipcc are incompatible (§IV).
type Mode int

// Run modes.
const (
	ModeBoth Mode = iota
	ModeCPUOnly
	ModeGPUOnly
)

// String names the mode for CSV/CLI use.
func (m Mode) String() string {
	switch m {
	case ModeCPUOnly:
		return "cpu-only"
	case ModeGPUOnly:
		return "gpu-only"
	default:
		return "interleaved"
	}
}

// Validation controls checksum validation (§III-B): the benchmark actually
// executes the kernel with two independent implementations (the optimized
// multi-threaded kernels standing in for the CPU library, the reference
// kernels for the GPU library) and compares checksums with the 0.1% margin.
type Validation struct {
	// Enabled turns real computation on. Timing always comes from the
	// models regardless.
	Enabled bool
	// Every validates one in Every samples (1 = all). Default 1.
	Every int
	// MaxFlops skips validation for problems above this per-iteration FLOP
	// count, bounding the wall-clock cost of a sweep. Default 64e6.
	MaxFlops int64
}

// DefaultValidation enables sampled validation with bounded cost.
func DefaultValidation() Validation {
	return Validation{Enabled: true, Every: 8, MaxFlops: 64e6}
}

// Config holds one sweep's runtime arguments, mirroring the artifact's CLI:
// -s (MinDim), -d (MaxDim), -i (Iterations).
type Config struct {
	MinDim, MaxDim int
	// Step strides the sweep parameter p; 1 reproduces the artifact's
	// "every possible combination" behaviour.
	Step        int
	Iterations  int
	Alpha, Beta float64
	Mode        Mode
	Validate    Validation
	// LiveCPU, when non-nil, replaces the CPU timing model with real
	// wall-clock measurements of the repository's own BLAS kernels on the
	// host machine. The GPU side stays modeled.
	LiveCPU *LiveCPUTimer
}

// DefaultConfig mirrors the paper's runs: s=1, d=4096, every size, α=1 β=0.
func DefaultConfig(iterations int) Config {
	return Config{
		MinDim:     1,
		MaxDim:     4096,
		Step:       1,
		Iterations: iterations,
		Alpha:      1,
		Beta:       0,
		Validate:   DefaultValidation(),
	}
}

func (c *Config) normalize() error {
	if c.MinDim < 1 {
		c.MinDim = 1
	}
	if c.MaxDim < c.MinDim {
		return fmt.Errorf("core: MaxDim %d < MinDim %d", c.MaxDim, c.MinDim)
	}
	if c.Step < 1 {
		c.Step = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.Validate.Every < 1 {
		c.Validate.Every = 1
	}
	if c.Validate.MaxFlops <= 0 {
		c.Validate.MaxFlops = 64e6
	}
	return nil
}

// NumStrategies is the number of transfer strategies every sample carries.
const NumStrategies = 3

// Sample is the measurement at one problem size.
type Sample struct {
	P            int
	Dims         Dims
	FlopsPerIter int64
	// CPU timing (total for all iterations) and derived rate.
	CPUSeconds float64
	CPUGflops  float64
	// GPU timing per strategy, indexed by xfer.Strategy.
	GPUSeconds [NumStrategies]float64
	GPUGflops  [NumStrategies]float64
	// Checksum validation results (only meaningful when Validated).
	Validated                bool
	ChecksumOK               bool
	CPUChecksum, GPUChecksum float64
}

// Threshold is a detected offload threshold.
type Threshold struct {
	Dims  Dims
	Found bool
}

// String prints the paper's notation, "—" when absent.
func (t Threshold) String() string {
	if !t.Found {
		return "—"
	}
	return t.Dims.String()
}

// Series is the result of sweeping one (system, problem type, precision,
// config) combination.
type Series struct {
	System     string
	CPULibrary string
	GPULibrary string
	Problem    ProblemType
	Precision  Precision
	Config     Config
	Samples    []Sample
	// Thresholds per transfer strategy (valid only for ModeBoth runs).
	Thresholds [NumStrategies]Threshold
}

// KernelName returns e.g. "SGEMM" for the series.
func (s *Series) KernelName() string { return KernelName(s.Precision, s.Problem.Kernel) }

// RunProblem sweeps one problem type on one system. Timing comes from the
// system's calibrated models; numerics are validated by really executing
// sampled problem sizes with two independent kernel implementations.
//
// Cancellation is checked between problem sizes: when ctx is done the
// sweep stops and the context's error is returned (wrapped), so a caller
// that hangs up — a disconnected HTTP client, a Ctrl-C — never pays for
// the rest of the sweep.
func RunProblem(ctx context.Context, sys systems.System, pt ProblemType, prec Precision, cfg Config) (*Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if pt.Dims == nil {
		return nil, fmt.Errorf("core: problem type %q has no Dims function", pt.Name)
	}
	ser := &Series{
		System:     sys.Name,
		CPULibrary: sys.CPU.Lib.Name,
		GPULibrary: sys.GPU.Lib.Name,
		Problem:    pt,
		Precision:  prec,
		Config:     cfg,
	}
	es := prec.ElemSize()
	beta0 := cfg.Beta == 0
	var dets [NumStrategies]ThresholdDetector
	sampleIdx := 0
	for p := cfg.MinDim; ; p += cfg.Step {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: sweep cancelled at p=%d: %w", p, err)
		}
		d := pt.Dims(p)
		if d.MaxDim() > cfg.MaxDim {
			break
		}
		if d.M < 1 || d.N < 1 || (pt.Kernel == GEMM && d.K < 1) {
			continue
		}
		var fl int64
		if pt.Kernel == GEMM {
			fl = flops.Gemm(d.M, d.N, d.K, flops.Beta{IsZero: beta0})
		} else {
			fl = flops.Gemv(d.M, d.N, flops.Beta{IsZero: beta0})
		}
		smp := Sample{P: p, Dims: d, FlopsPerIter: fl}
		totalFlops := int64(cfg.Iterations) * fl

		if cfg.Mode != ModeGPUOnly {
			var sec float64
			switch {
			case cfg.LiveCPU != nil && pt.Kernel == GEMM:
				sec = cfg.LiveCPU.GemmSeconds(es, d.M, d.N, d.K, beta0, cfg.Iterations)
			case cfg.LiveCPU != nil:
				sec = cfg.LiveCPU.GemvSeconds(es, d.M, d.N, beta0, cfg.Iterations)
			case pt.Kernel == GEMM:
				sec = sys.CPU.GemmSeconds(es, d.M, d.N, d.K, beta0, cfg.Iterations)
			default:
				sec = sys.CPU.GemvSeconds(es, d.M, d.N, beta0, cfg.Iterations)
			}
			smp.CPUSeconds = sec
			smp.CPUGflops = flops.GFLOPS(totalFlops, sec)
		}
		if cfg.Mode != ModeCPUOnly {
			for _, st := range xfer.Strategies {
				var sec float64
				if pt.Kernel == GEMM {
					sec = sys.GPU.GemmSeconds(st, es, d.M, d.N, d.K, beta0, cfg.Iterations)
				} else {
					sec = sys.GPU.GemvSeconds(st, es, d.M, d.N, beta0, cfg.Iterations)
				}
				smp.GPUSeconds[st] = sec
				smp.GPUGflops[st] = flops.GFLOPS(totalFlops, sec)
			}
		}
		if cfg.Mode == ModeBoth {
			for _, st := range xfer.Strategies {
				dets[st].ObserveTimes(d, smp.CPUSeconds, smp.GPUSeconds[st])
			}
			if cfg.Validate.Enabled && fl <= cfg.Validate.MaxFlops && sampleIdx%cfg.Validate.Every == 0 {
				validate(&smp, pt.Kernel, prec, cfg.Alpha, cfg.Beta)
			}
		}
		ser.Samples = append(ser.Samples, smp)
		sampleIdx++
	}
	if cfg.Mode == ModeBoth {
		for _, st := range xfer.Strategies {
			dims, found := dets[st].Threshold()
			ser.Thresholds[st] = Threshold{Dims: dims, Found: found}
		}
	}
	return ser, nil
}

// Run sweeps a set of problem types at both precisions, returning one
// Series per (problem, precision) — the artifact's 28-CSV layout when given
// AllProblems(). Cancellation follows RunProblem: the first sweep that
// observes a done ctx aborts the whole run.
func Run(ctx context.Context, sys systems.System, problems []ProblemType, precisions []Precision, cfg Config) ([]*Series, error) {
	var out []*Series
	for _, pt := range problems {
		for _, prec := range precisions {
			ser, err := RunProblem(ctx, sys, pt, prec, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, ser)
		}
	}
	return out, nil
}

// ValidationFailures returns the samples whose checksum comparison failed.
func (s *Series) ValidationFailures() []Sample {
	var bad []Sample
	for _, smp := range s.Samples {
		if smp.Validated && !smp.ChecksumOK {
			bad = append(bad, smp)
		}
	}
	return bad
}

// ValidatedCount returns how many samples were validated.
func (s *Series) ValidatedCount() int {
	n := 0
	for _, smp := range s.Samples {
		if smp.Validated {
			n++
		}
	}
	return n
}
