package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/bench_data"
	"repro/internal/flops"
	"repro/internal/resilience"
	"repro/internal/sim/efftab"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Mode selects which devices a run exercises. The paper's default is
// interleaved CPU+GPU; LUMI required separate CPU-only and GPU-only builds
// because AOCL and hipcc are incompatible (§IV).
type Mode int

// Run modes.
const (
	ModeBoth Mode = iota
	ModeCPUOnly
	ModeGPUOnly
)

// String names the mode for CSV/CLI use.
func (m Mode) String() string {
	switch m {
	case ModeCPUOnly:
		return "cpu-only"
	case ModeGPUOnly:
		return "gpu-only"
	default:
		return "interleaved"
	}
}

// ModelKind selects where the performance models' efficiency curves come
// from: the analytic roofline formulas (the default, byte-identical to
// the pre-blackbox behaviour) or the measured efficiency tables under
// bench_data/.
type ModelKind int

// Model kinds.
const (
	// ModelRoofline uses the analytic occupancy-ramp formulas.
	ModelRoofline ModelKind = iota
	// ModelBlackbox interpolates measured/synthetic efficiency tables
	// (Config.EffTables, defaulting to the embedded bench_data/ set) and
	// skips library quirks; dispatch, transfers and USM stay analytic.
	ModelBlackbox
)

// String names the kind for CLI/CSV/hash use.
func (m ModelKind) String() string {
	if m == ModelBlackbox {
		return "blackbox"
	}
	return "roofline"
}

// ErrUnknownModel is the sentinel wrapped by ParseModelKind for
// unrecognized model tokens, so callers can errors.Is the condition
// instead of string-matching.
var ErrUnknownModel = errors.New("core: unknown model")

// ParseModelKind resolves a -model CLI token.
func ParseModelKind(s string) (ModelKind, error) {
	switch s {
	case "", "roofline":
		return ModelRoofline, nil
	case "blackbox":
		return ModelBlackbox, nil
	}
	return ModelRoofline, fmt.Errorf("%w: %q (try roofline, blackbox)", ErrUnknownModel, s)
}

// Validation controls checksum validation (§III-B): the benchmark actually
// executes the kernel with two independent implementations (the optimized
// multi-threaded kernels standing in for the CPU library, the reference
// kernels for the GPU library) and compares checksums with the 0.1% margin.
type Validation struct {
	// Enabled turns real computation on. Timing always comes from the
	// models regardless.
	Enabled bool
	// Every validates one in Every samples (1 = all). Default 1.
	Every int
	// MaxFlops skips validation for problems above this per-iteration FLOP
	// count, bounding the wall-clock cost of a sweep. Default 64e6.
	MaxFlops int64
}

// DefaultValidation enables sampled validation with bounded cost.
func DefaultValidation() Validation {
	return Validation{Enabled: true, Every: 8, MaxFlops: 64e6}
}

// Resilience tunes how a sweep survives backend failures. The zero value
// preserves the historical behaviour exactly: one attempt per call, no
// checkpointing. None of these knobs changes what a successful sweep
// computes, so the block is deliberately excluded from Config.Hash —
// a retried run and a first-try run share a cache identity.
type Resilience struct {
	// MaxAttempts bounds attempts per modeled backend call (0 and 1 both
	// mean a single try, no retry). Only transient faults — errors whose
	// chain implements resilience.Transienter and answers true — are
	// retried; hard faults abort the sweep immediately.
	MaxAttempts int
	// BaseDelay and MaxDelay shape the full-jitter backoff between
	// retries. 0 retries immediately, the right setting for modeled work.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CheckpointDir, when non-empty, persists sweep progress to a file in
	// that directory so an aborted sweep resumes from the last completed
	// size instead of restarting. The file is removed when the sweep
	// completes.
	CheckpointDir string
	// CheckpointEvery is how many recorded samples pass between
	// checkpoint writes (default 64). A checkpoint is also written when
	// the sweep aborts, whatever the cadence.
	CheckpointEvery int
}

// retryPolicy converts the plain-value knobs into a resilience policy.
func (r Resilience) retryPolicy() resilience.RetryPolicy {
	return resilience.RetryPolicy{
		MaxAttempts: r.MaxAttempts,
		BaseDelay:   r.BaseDelay,
		MaxDelay:    r.MaxDelay,
	}
}

// Config holds one sweep's runtime arguments, mirroring the artifact's CLI:
// -s (MinDim), -d (MaxDim), -i (Iterations).
type Config struct {
	MinDim, MaxDim int
	// Step strides the sweep parameter p; 1 reproduces the artifact's
	// "every possible combination" behaviour.
	Step        int
	Iterations  int
	Alpha, Beta float64
	Mode        Mode
	Validate    Validation
	// Model selects roofline (analytic, the default) or blackbox
	// (measured efficiency tables) mode for the timing models. The choice
	// changes every modeled number, so it is part of Config.Hash.
	Model ModelKind
	// EffTables supplies the tables blackbox mode consults; nil means the
	// committed bench_data/ set embedded in the binary. Ignored under
	// ModelRoofline. The tables' fingerprint is part of Config.Hash.
	EffTables *efftab.Set
	// LiveCPU, when non-nil, replaces the CPU timing model with real
	// wall-clock measurements of the repository's own BLAS kernels on the
	// host machine. The GPU side stays modeled.
	LiveCPU *LiveCPUTimer
	// Resilience governs retries and checkpointing; the zero value means
	// fail-fast with no checkpoint, the historical behaviour.
	Resilience Resilience
}

// DefaultConfig mirrors the paper's runs: s=1, d=4096, every size, α=1 β=0.
func DefaultConfig(iterations int) Config {
	return Config{
		MinDim:     1,
		MaxDim:     4096,
		Step:       1,
		Iterations: iterations,
		Alpha:      1,
		Beta:       0,
		Validate:   DefaultValidation(),
	}
}

func (c *Config) normalize() error {
	if c.MinDim < 1 {
		c.MinDim = 1
	}
	if c.MaxDim < c.MinDim {
		return fmt.Errorf("core: MaxDim %d < MinDim %d", c.MaxDim, c.MinDim)
	}
	if c.Step < 1 {
		c.Step = 1
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.Validate.Every < 1 {
		c.Validate.Every = 1
	}
	if c.Validate.MaxFlops <= 0 {
		c.Validate.MaxFlops = 64e6
	}
	if c.Resilience.CheckpointEvery < 1 {
		c.Resilience.CheckpointEvery = 64
	}
	switch c.Model {
	case ModelRoofline:
		// Roofline never consults tables; drop any that were set so two
		// roofline configs differing only in EffTables stay one identity.
		c.EffTables = nil
	case ModelBlackbox:
		if c.EffTables == nil {
			set, err := benchdata.Default()
			if err != nil {
				return err
			}
			c.EffTables = set
		}
	default:
		return fmt.Errorf("core: unknown ModelKind %d", c.Model)
	}
	return nil
}

// NumStrategies is the number of transfer strategies every sample carries.
const NumStrategies = 3

// Sample is the measurement at one problem size.
type Sample struct {
	P            int
	Dims         Dims
	FlopsPerIter int64
	// CPU timing (total for all iterations) and derived rate.
	CPUSeconds float64
	CPUGflops  float64
	// GPU timing per strategy, indexed by xfer.Strategy.
	GPUSeconds [NumStrategies]float64
	GPUGflops  [NumStrategies]float64
	// Checksum validation results (only meaningful when Validated).
	Validated                bool
	ChecksumOK               bool
	CPUChecksum, GPUChecksum float64
	// Retries counts transient backend faults that were retried away while
	// measuring this size. 0 on a healthy run; never affects the timings,
	// which always come from a successful attempt.
	Retries int
}

// Threshold is a detected offload threshold.
type Threshold struct {
	Dims  Dims
	Found bool
}

// String prints the paper's notation, "—" when absent.
func (t Threshold) String() string {
	if !t.Found {
		return "—"
	}
	return t.Dims.String()
}

// Series is the result of sweeping one (system, problem type, precision,
// config) combination.
type Series struct {
	System     string
	CPULibrary string
	GPULibrary string
	Problem    ProblemType
	Precision  Precision
	Config     Config
	Samples    []Sample
	// Thresholds per transfer strategy (valid only for ModeBoth runs).
	Thresholds [NumStrategies]Threshold
}

// KernelName returns e.g. "SGEMM" for the series.
func (s *Series) KernelName() string { return KernelName(s.Precision, s.Problem.Kernel) }

// RunProblem sweeps one problem type on one system. Timing comes from the
// system's calibrated models; numerics are validated by really executing
// sampled problem sizes with two independent kernel implementations.
//
// Cancellation is checked between problem sizes: when ctx is done the
// sweep stops and the context's error is returned (wrapped), so a caller
// that hangs up — a disconnected HTTP client, a Ctrl-C — never pays for
// the rest of the sweep.
//
// Resilience: with cfg.Resilience.MaxAttempts > 1, transient backend
// faults (an armed faultinject plan; a flaky real backend) are retried
// per call with full-jitter backoff, counted in the sample's Retries.
// With CheckpointDir set, progress is persisted every CheckpointEvery
// samples and on any abort, and a matching checkpoint found at startup
// is resumed instead of recomputed — the detectors are rebuilt by
// replaying the saved samples, so a resumed sweep is indistinguishable
// from an uninterrupted one.
func RunProblem(ctx context.Context, sys systems.System, pt ProblemType, prec Precision, cfg Config) (*Series, error) {
	if ctx == nil {
		//blobvet:allow ctxflow: nil-ctx compatibility guard, not detachment — a caller that passed a real ctx keeps it
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if pt.Dims == nil {
		return nil, fmt.Errorf("core: problem type %q has no Dims function", pt.Name)
	}
	if cfg.Model == ModelBlackbox {
		// sys is a value: arming the models' table pointers here is local
		// to this sweep and leaves the caller's System untouched.
		sys.CPU.Eff = cfg.EffTables.CPU
		sys.GPU.Eff = cfg.EffTables.GPU
	}
	ser := &Series{
		System:     sys.Name,
		CPULibrary: sys.CPU.Lib.Name,
		GPULibrary: sys.GPU.Lib.Name,
		Problem:    pt,
		Precision:  prec,
		Config:     cfg,
	}
	es := prec.ElemSize()
	beta0 := cfg.Beta == 0
	pol := cfg.Resilience.retryPolicy()
	var dets [NumStrategies]ThresholdDetector
	sampleIdx := 0
	startP := cfg.MinDim
	var ckpt *checkpointWriter
	if cfg.Resilience.CheckpointDir != "" {
		var err error
		ckpt, err = newCheckpointWriter(sys, pt, prec, cfg)
		if err != nil {
			return nil, err
		}
		if cp := ckpt.load(); cp != nil {
			ser.Samples = cp.Samples
			if cfg.Mode == ModeBoth {
				for i := range ser.Samples {
					smp := &ser.Samples[i]
					for _, st := range xfer.Strategies {
						dets[st].ObserveTimes(smp.Dims, smp.CPUSeconds, smp.GPUSeconds[st])
					}
				}
			}
			sampleIdx = len(ser.Samples)
			startP = cp.NextP
		}
	}
	for p := startP; ; p += cfg.Step {
		if err := ctx.Err(); err != nil {
			ckpt.save(ser.Samples, p)
			return nil, fmt.Errorf("core: sweep cancelled at p=%d: %w", p, err)
		}
		d := pt.Dims(p)
		if d.MaxDim() > cfg.MaxDim {
			break
		}
		if d.M < 1 || d.N < 1 || (pt.Kernel == GEMM && d.K < 1) {
			continue
		}
		var fl int64
		if pt.Kernel == GEMM {
			fl = flops.Gemm(d.M, d.N, d.K, flops.Beta{IsZero: beta0})
		} else {
			fl = flops.Gemv(d.M, d.N, flops.Beta{IsZero: beta0})
		}
		smp := Sample{P: p, Dims: d, FlopsPerIter: fl}
		totalFlops := int64(cfg.Iterations) * fl
		onRetry := func(int, error) { smp.Retries++ }

		if cfg.Mode != ModeGPUOnly {
			var sec float64
			err := resilience.Do(ctx, pol, func() error {
				var e error
				switch {
				case cfg.LiveCPU != nil && pt.Kernel == GEMM:
					sec = cfg.LiveCPU.GemmSeconds(es, d.M, d.N, d.K, beta0, cfg.Iterations)
				case cfg.LiveCPU != nil:
					sec = cfg.LiveCPU.GemvSeconds(es, d.M, d.N, beta0, cfg.Iterations)
				case pt.Kernel == GEMM:
					sec, e = sys.CPU.TimeGemm(es, d.M, d.N, d.K, beta0, cfg.Iterations)
				default:
					sec, e = sys.CPU.TimeGemv(es, d.M, d.N, beta0, cfg.Iterations)
				}
				return e
			}, onRetry)
			if err != nil {
				ckpt.save(ser.Samples, p)
				return nil, fmt.Errorf("core: cpu backend at p=%d after %d retries: %w", p, smp.Retries, err)
			}
			smp.CPUSeconds = sec
			smp.CPUGflops = flops.GFLOPS(totalFlops, sec)
		}
		if cfg.Mode != ModeCPUOnly {
			for _, st := range xfer.Strategies {
				var sec float64
				err := resilience.Do(ctx, pol, func() error {
					var e error
					if pt.Kernel == GEMM {
						sec, e = sys.GPU.TimeGemm(st, es, d.M, d.N, d.K, beta0, cfg.Iterations)
					} else {
						sec, e = sys.GPU.TimeGemv(st, es, d.M, d.N, beta0, cfg.Iterations)
					}
					return e
				}, onRetry)
				if err != nil {
					ckpt.save(ser.Samples, p)
					return nil, fmt.Errorf("core: gpu backend (%v) at p=%d after %d retries: %w", st, p, smp.Retries, err)
				}
				smp.GPUSeconds[st] = sec
				smp.GPUGflops[st] = flops.GFLOPS(totalFlops, sec)
			}
		}
		if cfg.Mode == ModeBoth {
			for _, st := range xfer.Strategies {
				dets[st].ObserveTimes(d, smp.CPUSeconds, smp.GPUSeconds[st])
			}
			if cfg.Validate.Enabled && fl <= cfg.Validate.MaxFlops && sampleIdx%cfg.Validate.Every == 0 {
				validate(&smp, pt.Kernel, prec, cfg.Alpha, cfg.Beta)
			}
		}
		ser.Samples = append(ser.Samples, smp)
		sampleIdx++
		if ckpt != nil && sampleIdx%cfg.Resilience.CheckpointEvery == 0 {
			ckpt.save(ser.Samples, p+cfg.Step)
		}
	}
	if cfg.Mode == ModeBoth {
		for _, st := range xfer.Strategies {
			dims, found := dets[st].Threshold()
			ser.Thresholds[st] = Threshold{Dims: dims, Found: found}
		}
	}
	ckpt.remove()
	return ser, nil
}

// Run sweeps a set of problem types at both precisions, returning one
// Series per (problem, precision) — the artifact's 28-CSV layout when given
// AllProblems(). Cancellation follows RunProblem: the first sweep that
// observes a done ctx aborts the whole run.
func Run(ctx context.Context, sys systems.System, problems []ProblemType, precisions []Precision, cfg Config) ([]*Series, error) {
	var out []*Series
	for _, pt := range problems {
		for _, prec := range precisions {
			ser, err := RunProblem(ctx, sys, pt, prec, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, ser)
		}
	}
	return out, nil
}

// ValidationFailures returns the samples whose checksum comparison failed.
func (s *Series) ValidationFailures() []Sample {
	var bad []Sample
	for _, smp := range s.Samples {
		if smp.Validated && !smp.ChecksumOK {
			bad = append(bad, smp)
		}
	}
	return bad
}

// ValidatedCount returns how many samples were validated.
func (s *Series) ValidatedCount() int {
	n := 0
	for _, smp := range s.Samples {
		if smp.Validated {
			n++
		}
	}
	return n
}
