package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// Checkpoint is the on-disk progress record of one interrupted sweep
// (DESIGN.md §11). Key identifies the sweep — system, problem, precision
// and the canonical Config hash joined with "|" — so a checkpoint is only
// ever resumed into the exact sweep that wrote it. NextP is the first
// sweep parameter value not yet completed; Samples are the completed
// measurements in ascending size order. Because the timing models are
// deterministic and JSON round-trips float64 exactly, resuming from a
// checkpoint produces byte-identical results to an uninterrupted run.
type Checkpoint struct {
	Key       string   `json:"key"`
	System    string   `json:"system"`
	Problem   string   `json:"problem"`
	Precision string   `json:"precision"`
	NextP     int      `json:"next_p"`
	Samples   []Sample `json:"samples"`
}

// CheckpointKey returns the identity a checkpoint is bound to.
func CheckpointKey(sys systems.System, pt ProblemType, prec Precision, cfg Config) (string, error) {
	h, err := cfg.Hash()
	if err != nil {
		return "", err
	}
	return strings.Join([]string{sys.Name, pt.Name, prec.String(), h}, "|"), nil
}

// CheckpointPath returns the file a sweep with the given key checkpoints
// to inside dir. The name embeds a hash of the key, so concurrent sweeps
// of different problems share a directory without colliding.
func CheckpointPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, "sweep-"+hex.EncodeToString(sum[:8])+".json")
}

// LoadCheckpoint reads and decodes one checkpoint file. It is exported
// for tooling (blob-threshold -checkpoint prints partial thresholds from
// one); RunProblem loads its own checkpoints internally.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
	}
	return &cp, nil
}

// PartialThresholds runs the threshold detectors over the checkpointed
// samples, returning the per-strategy verdicts as of the interruption
// point. They are provisional: a later CPU win would invalidate them.
func (cp *Checkpoint) PartialThresholds() [NumStrategies]Threshold {
	var out [NumStrategies]Threshold
	for _, st := range xfer.Strategies {
		var det ThresholdDetector
		for _, smp := range cp.Samples {
			det.ObserveTimes(smp.Dims, smp.CPUSeconds, smp.GPUSeconds[st])
		}
		dims, found := det.Threshold()
		out[st] = Threshold{Dims: dims, Found: found}
	}
	return out
}

// checkpointWriter manages one sweep's checkpoint file. A nil writer
// (checkpointing disabled) is valid and makes every method a no-op.
type checkpointWriter struct {
	path      string
	key       string
	system    string
	problem   string
	precision string
}

func newCheckpointWriter(sys systems.System, pt ProblemType, prec Precision, cfg Config) (*checkpointWriter, error) {
	key, err := CheckpointKey(sys, pt, prec, cfg)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{
		path:      CheckpointPath(cfg.Resilience.CheckpointDir, key),
		key:       key,
		system:    sys.Name,
		problem:   pt.Name,
		precision: prec.String(),
	}, nil
}

// load returns the checkpoint to resume from, or nil when there is none.
// A file bound to a different key (corruption, a hash collision) is
// ignored rather than trusted.
func (w *checkpointWriter) load() *Checkpoint {
	if w == nil {
		return nil
	}
	cp, err := LoadCheckpoint(w.path)
	if err != nil || cp.Key != w.key {
		return nil
	}
	return cp
}

// save atomically writes progress: completed samples plus the next sweep
// parameter to process. Write failures are swallowed — a checkpoint is an
// optimisation, and failing the sweep over one would invert the feature.
func (w *checkpointWriter) save(samples []Sample, nextP int) {
	if w == nil {
		return
	}
	cp := Checkpoint{
		Key:       w.key,
		System:    w.system,
		Problem:   w.problem,
		Precision: w.precision,
		NextP:     nextP,
		Samples:   samples,
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return
	}
	tmp := w.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, w.path); err != nil {
		_ = os.Remove(tmp)
	}
}

// remove deletes the checkpoint after a completed sweep.
func (w *checkpointWriter) remove() {
	if w == nil {
		return
	}
	if err := os.Remove(w.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Nothing actionable: the stale file is keyed to this exact sweep
		// and will be overwritten or resumed harmlessly next time.
		_ = err
	}
}
