package core

import (
	"repro/internal/blas"
	"repro/internal/matrix"
)

// validate really executes the kernel twice — once with the optimized
// multi-threaded kernels (standing in for the CPU library) and once with
// the reference kernels (standing in for the GPU library) — on identical,
// deterministically seeded inputs, and compares output checksums with the
// paper's 0.1% margin (§III-B). Inputs are seeded per-shape so CPU and GPU
// data of the same dimensions are always identical, exactly as the
// artifact's constant srand seed guarantees; outputs start at zero.
func validate(smp *Sample, kernel KernelKind, prec Precision, alpha, beta float64) {
	smp.Validated = true
	d := smp.Dims
	seed := matrix.DefaultSeed
	switch {
	case kernel == GEMM && prec == F64:
		a := matrix.NewDense64(d.M, d.K)
		b := matrix.NewDense64(d.K, d.N)
		rng := matrix.NewRNG(seed)
		a.Fill(rng)
		b.Fill(rng)
		cOpt := matrix.NewDense64(d.M, d.N)
		cRef := matrix.NewDense64(d.M, d.N)
		blas.OptDgemm(blas.NoTrans, blas.NoTrans, d.M, d.N, d.K, alpha, a.Data, a.Ld, b.Data, b.Ld, beta, cOpt.Data, cOpt.Ld)
		blas.RefDgemm(blas.NoTrans, blas.NoTrans, d.M, d.N, d.K, alpha, a.Data, a.Ld, b.Data, b.Ld, beta, cRef.Data, cRef.Ld)
		smp.CPUChecksum = cOpt.Checksum()
		smp.GPUChecksum = cRef.Checksum()
	case kernel == GEMM && prec == F32:
		a := matrix.NewDense32(d.M, d.K)
		b := matrix.NewDense32(d.K, d.N)
		rng := matrix.NewRNG(seed)
		a.Fill(rng)
		b.Fill(rng)
		cOpt := matrix.NewDense32(d.M, d.N)
		cRef := matrix.NewDense32(d.M, d.N)
		al, be := float32(alpha), float32(beta)
		blas.OptSgemm(blas.NoTrans, blas.NoTrans, d.M, d.N, d.K, al, a.Data, a.Ld, b.Data, b.Ld, be, cOpt.Data, cOpt.Ld)
		blas.RefSgemm(blas.NoTrans, blas.NoTrans, d.M, d.N, d.K, al, a.Data, a.Ld, b.Data, b.Ld, be, cRef.Data, cRef.Ld)
		smp.CPUChecksum = cOpt.Checksum()
		smp.GPUChecksum = cRef.Checksum()
	case kernel == GEMV && prec == F64:
		a := matrix.NewDense64(d.M, d.N)
		x := matrix.NewVector64(d.N)
		rng := matrix.NewRNG(seed)
		a.Fill(rng)
		x.Fill(rng)
		yOpt := matrix.NewVector64(d.M)
		yRef := matrix.NewVector64(d.M)
		blas.OptDgemv(blas.NoTrans, d.M, d.N, alpha, a.Data, a.Ld, x.Data, 1, beta, yOpt.Data, 1)
		blas.RefDgemv(blas.NoTrans, d.M, d.N, alpha, a.Data, a.Ld, x.Data, 1, beta, yRef.Data, 1)
		smp.CPUChecksum = yOpt.Checksum()
		smp.GPUChecksum = yRef.Checksum()
	default: // GEMV F32
		a := matrix.NewDense32(d.M, d.N)
		x := matrix.NewVector32(d.N)
		rng := matrix.NewRNG(seed)
		a.Fill(rng)
		x.Fill(rng)
		yOpt := matrix.NewVector32(d.M)
		yRef := matrix.NewVector32(d.M)
		al, be := float32(alpha), float32(beta)
		blas.OptSgemv(blas.NoTrans, d.M, d.N, al, a.Data, a.Ld, x.Data, 1, be, yOpt.Data, 1)
		blas.RefSgemv(blas.NoTrans, d.M, d.N, al, a.Data, a.Ld, x.Data, 1, be, yRef.Data, 1)
		smp.CPUChecksum = yOpt.Checksum()
		smp.GPUChecksum = yRef.Checksum()
	}
	smp.ChecksumOK = matrix.ChecksumsMatch(smp.CPUChecksum, smp.GPUChecksum)
}
