package core

import (
	"context"
	"testing"

	"repro/internal/sim/systems"
)

func TestLiveCPUTimerMeasuresRealWork(t *testing.T) {
	timer := &LiveCPUTimer{Repeats: 2}
	small := timer.GemmSeconds(8, 32, 32, 32, true, 2)
	big := timer.GemmSeconds(8, 256, 256, 256, true, 2)
	if small <= 0 || big <= 0 {
		t.Fatalf("non-positive live times: %g %g", small, big)
	}
	if big <= small {
		t.Fatalf("256^3 (%g) should take longer than 32^3 (%g)", big, small)
	}
	if Sink() == 0 {
		t.Fatal("live kernel output was not consumed")
	}
}

func TestLiveCPUTimerGemv(t *testing.T) {
	timer := &LiveCPUTimer{}
	for _, es := range []int{4, 8} {
		if sec := timer.GemvSeconds(es, 512, 512, true, 2); sec <= 0 {
			t.Fatalf("elemSize=%d: non-positive gemv time", es)
		}
	}
	if timer.GemvSeconds(8, 0, 10, true, 1) != 0 {
		t.Fatal("degenerate gemv should cost 0")
	}
	if timer.GemmSeconds(4, 10, 10, 10, true, 0) != 0 {
		t.Fatal("0 iterations should cost 0")
	}
}

func TestLiveCPUTimerThreadSetting(t *testing.T) {
	timer := &LiveCPUTimer{Threads: 1, Repeats: 1}
	if sec := timer.GemmSeconds(4, 64, 64, 64, true, 1); sec <= 0 {
		t.Fatal("threaded live timer failed")
	}
}

// A sweep in live-CPU mode must produce real (positive, size-increasing)
// CPU times and still run the modeled GPU side.
func TestRunProblemLiveCPU(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := DefaultConfig(2)
	cfg.MaxDim = 128
	cfg.Step = 32
	cfg.Validate.Enabled = false
	cfg.LiveCPU = &LiveCPUTimer{}
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, smp := range ser.Samples {
		if smp.CPUSeconds <= 0 {
			t.Fatalf("%v: no live CPU time", smp.Dims)
		}
		if smp.GPUSeconds[0] <= 0 {
			t.Fatalf("%v: modeled GPU time missing", smp.Dims)
		}
		prev = smp.CPUSeconds
	}
	_ = prev
}
