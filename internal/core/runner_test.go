package core

import (
	"context"
	"testing"

	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func testConfig(iters int) Config {
	cfg := DefaultConfig(iters)
	cfg.MaxDim = 256
	cfg.Step = 4
	cfg.Validate = Validation{Enabled: true, Every: 4, MaxFlops: 8e6}
	return cfg
}

func TestRunProblemSquareGemm(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	ser, err := RunProblem(context.Background(), systems.IsambardAI(), pt, F32, testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Samples) != 64 {
		t.Fatalf("samples = %d, want 64 (256/4)", len(ser.Samples))
	}
	for _, smp := range ser.Samples {
		if smp.CPUSeconds <= 0 {
			t.Fatalf("%v: non-positive CPU time", smp.Dims)
		}
		for _, st := range xfer.Strategies {
			if smp.GPUSeconds[st] <= 0 {
				t.Fatalf("%v %v: non-positive GPU time", smp.Dims, st)
			}
		}
		if smp.CPUGflops <= 0 {
			t.Fatalf("%v: non-positive CPU GFLOPS", smp.Dims)
		}
	}
	if ser.KernelName() != "SGEMM" {
		t.Fatalf("kernel name %q", ser.KernelName())
	}
	if ser.System != "Isambard-AI" || ser.CPULibrary == "" || ser.GPULibrary == "" {
		t.Fatalf("metadata: %q %q %q", ser.System, ser.CPULibrary, ser.GPULibrary)
	}
}

func TestRunValidatesChecksums(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F64, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ser.ValidatedCount() == 0 {
		t.Fatal("no samples were validated")
	}
	if fails := ser.ValidationFailures(); len(fails) != 0 {
		t.Fatalf("checksum failures: %v", fails)
	}
	// Validated samples must carry both checksums.
	for _, smp := range ser.Samples {
		if smp.Validated && (smp.CPUChecksum == 0 && smp.GPUChecksum == 0) {
			t.Fatalf("%v: validated sample has empty checksums", smp.Dims)
		}
	}
}

func TestRunGemvValidation(t *testing.T) {
	pt, _ := FindProblem(GEMV, "square")
	for _, prec := range []Precision{F32, F64} {
		ser, err := RunProblem(context.Background(), systems.LUMI(), pt, prec, testConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		if ser.ValidatedCount() == 0 {
			t.Fatalf("%v: no validation", prec)
		}
		if len(ser.ValidationFailures()) != 0 {
			t.Fatalf("%v: checksum failures", prec)
		}
	}
}

func TestRunNonDefaultAlphaBeta(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(1)
	cfg.Alpha, cfg.Beta = 2.5, 1.5
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ser.ValidatedCount() == 0 || len(ser.ValidationFailures()) != 0 {
		t.Fatal("validation with alpha/beta != defaults failed")
	}
	// beta != 0 raises the FLOP count: 2MNK + 3MN.
	smp := ser.Samples[len(ser.Samples)-1]
	n := int64(smp.Dims.M)
	if want := 2*n*n*n + 3*n*n; smp.FlopsPerIter != want {
		t.Fatalf("flops = %d, want %d", smp.FlopsPerIter, want)
	}
}

func TestRunCPUOnlyAndGPUOnly(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(1)
	cfg.Mode = ModeCPUOnly
	ser, err := RunProblem(context.Background(), systems.LUMI(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range ser.Samples {
		if smp.CPUSeconds <= 0 {
			t.Fatal("cpu-only run missing CPU times")
		}
		if smp.GPUSeconds[xfer.TransferOnce] != 0 {
			t.Fatal("cpu-only run has GPU times")
		}
		if smp.Validated {
			t.Fatal("cpu-only run must not validate (no GPU result)")
		}
	}
	for _, st := range xfer.Strategies {
		if ser.Thresholds[st].Found {
			t.Fatal("cpu-only run must not produce thresholds")
		}
	}
	cfg.Mode = ModeGPUOnly
	ser, err = RunProblem(context.Background(), systems.LUMI(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range ser.Samples {
		if smp.CPUSeconds != 0 {
			t.Fatal("gpu-only run has CPU times")
		}
		if smp.GPUSeconds[xfer.Unified] <= 0 {
			t.Fatal("gpu-only run missing GPU times")
		}
	}
}

func TestRunSweepBoundsRespected(t *testing.T) {
	// A 16x problem type must stop as soon as any dimension would exceed d.
	pt, _ := FindProblem(GEMM, "tall_k_16m")
	cfg := testConfig(1)
	cfg.MaxDim = 256
	cfg.Step = 1
	cfg.Validate.Enabled = false
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// p runs 1..16 (k = 16p <= 256).
	if len(ser.Samples) != 16 {
		t.Fatalf("samples = %d, want 16", len(ser.Samples))
	}
	last := ser.Samples[len(ser.Samples)-1]
	if last.Dims.K != 256 {
		t.Fatalf("last k = %d, want 256", last.Dims.K)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(1)
	cfg.MinDim, cfg.MaxDim = 100, 10
	if _, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg); err == nil {
		t.Fatal("expected error for MaxDim < MinDim")
	}
	if _, err := RunProblem(context.Background(), systems.DAWN(), ProblemType{Name: "x", Kernel: GEMM}, F32, testConfig(1)); err == nil {
		t.Fatal("expected error for nil Dims")
	}
}

func TestRunAllProblemsProduces28Series(t *testing.T) {
	cfg := testConfig(1)
	cfg.MaxDim = 64
	cfg.Step = 8
	cfg.Validate.Enabled = false
	series, err := Run(context.Background(), systems.IsambardAI(), AllProblems(), []Precision{F32, F64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 28 {
		t.Fatalf("series = %d, want 28", len(series))
	}
}

// The GFLOP/s reported for the GPU must include transfer time (§III-A):
// Transfer-Always can never be faster than Transfer-Once at > 1 iteration.
func TestGpuGflopsIncludeTransfer(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)
	cfg.Validate.Enabled = false
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range ser.Samples {
		if smp.GPUSeconds[xfer.TransferAlways] < smp.GPUSeconds[xfer.TransferOnce] {
			t.Fatalf("%v: Always (%g) faster than Once (%g)", smp.Dims,
				smp.GPUSeconds[xfer.TransferAlways], smp.GPUSeconds[xfer.TransferOnce])
		}
	}
}

// Thresholds reported by the runner must agree with re-deriving them from
// the samples.
func TestRunnerThresholdsConsistent(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := DefaultConfig(8)
	cfg.MaxDim = 512
	cfg.Validate.Enabled = false
	ser, err := RunProblem(context.Background(), systems.IsambardAI(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range xfer.Strategies {
		var det ThresholdDetector
		for _, smp := range ser.Samples {
			det.ObserveTimes(smp.Dims, smp.CPUSeconds, smp.GPUSeconds[st])
		}
		d, ok := det.Threshold()
		if ok != ser.Thresholds[st].Found || (ok && d != ser.Thresholds[st].Dims) {
			t.Fatalf("%v: runner %v vs rederived %v %v", st, ser.Thresholds[st], d, ok)
		}
	}
	// And on the Isambard model, the square SGEMM threshold is the paper's
	// {26, 26, 26}.
	th := ser.Thresholds[xfer.TransferOnce]
	if !th.Found || th.Dims.M != 26 {
		t.Fatalf("Isambard-AI square SGEMM Once threshold = %v, want {26, 26, 26}", th)
	}
}

// Reported GFLOP/s must be exactly total FLOPs / measured seconds for both
// devices and all strategies.
func TestGflopsConsistency(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)
	cfg.Validate.Enabled = false
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range ser.Samples {
		total := float64(smp.FlopsPerIter) * 8
		wantCPU := total / smp.CPUSeconds / 1e9
		if rel := (smp.CPUGflops - wantCPU) / wantCPU; rel > 1e-12 || rel < -1e-12 {
			t.Fatalf("%v: cpu gflops %g, want %g", smp.Dims, smp.CPUGflops, wantCPU)
		}
		for _, st := range xfer.Strategies {
			wantGPU := total / smp.GPUSeconds[st] / 1e9
			if rel := (smp.GPUGflops[st] - wantGPU) / wantGPU; rel > 1e-12 || rel < -1e-12 {
				t.Fatalf("%v %v: gpu gflops %g, want %g", smp.Dims, st, smp.GPUGflops[st], wantGPU)
			}
		}
	}
}

// FlopsPerIter must honour the §III-A beta rule across kernels.
func TestFlopsPerIterBetaRule(t *testing.T) {
	for _, kernel := range []KernelKind{GEMM, GEMV} {
		pt, _ := FindProblem(kernel, "square")
		for _, beta := range []float64{0, 2} {
			cfg := testConfig(1)
			cfg.Beta = beta
			cfg.MaxDim = 16
			cfg.Validate.Enabled = false
			ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			smp := ser.Samples[len(ser.Samples)-1]
			n := int64(smp.Dims.M)
			var want int64
			if kernel == GEMM {
				want = 2*n*n*n + n*n
				if beta != 0 {
					want += 2 * n * n
				}
			} else {
				want = 2*n*n + n
				if beta != 0 {
					want += 2 * n
				}
			}
			if smp.FlopsPerIter != want {
				t.Fatalf("%v beta=%v: flops %d, want %d", kernel, beta, smp.FlopsPerIter, want)
			}
		}
	}
}
