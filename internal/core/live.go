package core

import (
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// LiveCPUTimer measures real wall-clock time of the repository's own
// pure-Go BLAS kernels on the host machine, playing the role the vendor
// CPU library plays in the original artifact. With it, gpu-blob is a true
// CPU benchmark of wherever it runs (the GPU side stays modeled — there is
// no GPU to run on).
//
// Buffers are allocated once per problem size and initialised with the
// § III-B seeded fill; the timed region covers exactly the i kernel
// invocations, matching how GPU-BLOB times the vendor libraries.
type LiveCPUTimer struct {
	// Threads configures blas.SetThreads for the measurement (0 = leave
	// the current setting).
	Threads int
	// Repeats re-measures and keeps the fastest run to suppress scheduler
	// noise. Default 1.
	Repeats int
}

func (l *LiveCPUTimer) repeats() int {
	if l.Repeats < 1 {
		return 1
	}
	return l.Repeats
}

func (l *LiveCPUTimer) setup() func() {
	if l.Threads <= 0 {
		return func() {}
	}
	old := blas.Threads()
	blas.SetThreads(l.Threads)
	return func() { blas.SetThreads(old) }
}

// GemmSeconds runs i iterations of the optimized GEMM for real and returns
// the elapsed wall-clock seconds (fastest of Repeats runs).
func (l *LiveCPUTimer) GemmSeconds(elemSize, m, n, k int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	defer l.setup()()
	beta := 1.0
	if beta0 {
		beta = 0
	}
	best := 0.0
	if elemSize == 4 {
		rng := matrix.NewRNG(matrix.DefaultSeed)
		a := matrix.NewDense32(m, k)
		b := matrix.NewDense32(k, n)
		c := matrix.NewDense32(m, n)
		a.Fill(rng)
		b.Fill(rng)
		for r := 0; r < l.repeats(); r++ {
			c.Zero()
			start := time.Now()
			for it := 0; it < iters; it++ {
				blas.OptSgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Ld, b.Data, b.Ld, float32(beta), c.Data, c.Ld)
			}
			if el := time.Since(start).Seconds(); r == 0 || el < best {
				best = el
			}
		}
		sinkChecksum = c.Checksum()
		return best
	}
	rng := matrix.NewRNG(matrix.DefaultSeed)
	a := matrix.NewDense64(m, k)
	b := matrix.NewDense64(k, n)
	c := matrix.NewDense64(m, n)
	a.Fill(rng)
	b.Fill(rng)
	for r := 0; r < l.repeats(); r++ {
		c.Zero()
		start := time.Now()
		for it := 0; it < iters; it++ {
			blas.OptDgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Ld, b.Data, b.Ld, beta, c.Data, c.Ld)
		}
		if el := time.Since(start).Seconds(); r == 0 || el < best {
			best = el
		}
	}
	sinkChecksum = c.Checksum()
	return best
}

// GemvSeconds runs i iterations of the optimized GEMV for real.
func (l *LiveCPUTimer) GemvSeconds(elemSize, m, n int, beta0 bool, iters int) float64 {
	if iters < 1 || m <= 0 || n <= 0 {
		return 0
	}
	defer l.setup()()
	beta := 1.0
	if beta0 {
		beta = 0
	}
	best := 0.0
	if elemSize == 4 {
		rng := matrix.NewRNG(matrix.DefaultSeed)
		a := matrix.NewDense32(m, n)
		x := matrix.NewVector32(n)
		y := matrix.NewVector32(m)
		a.Fill(rng)
		x.Fill(rng)
		for r := 0; r < l.repeats(); r++ {
			y.Zero()
			start := time.Now()
			for it := 0; it < iters; it++ {
				blas.OptSgemv(blas.NoTrans, m, n, 1, a.Data, a.Ld, x.Data, 1, float32(beta), y.Data, 1)
			}
			if el := time.Since(start).Seconds(); r == 0 || el < best {
				best = el
			}
		}
		sinkChecksum = y.Checksum()
		return best
	}
	rng := matrix.NewRNG(matrix.DefaultSeed)
	a := matrix.NewDense64(m, n)
	x := matrix.NewVector64(n)
	y := matrix.NewVector64(m)
	a.Fill(rng)
	x.Fill(rng)
	for r := 0; r < l.repeats(); r++ {
		y.Zero()
		start := time.Now()
		for it := 0; it < iters; it++ {
			blas.OptDgemv(blas.NoTrans, m, n, 1, a.Data, a.Ld, x.Data, 1, beta, y.Data, 1)
		}
		if el := time.Since(start).Seconds(); r == 0 || el < best {
			best = el
		}
	}
	sinkChecksum = y.Checksum()
	return best
}

// sinkChecksum is the live timer's consume(): writing the output checksum
// to a package-level sink keeps the compiler from eliminating the timed
// kernels, the same trick the artifact plays with its external consume()
// shared object (§III-B1).
var sinkChecksum float64

// Sink exposes the last checksum so tests (and curious users) can observe
// that the live kernels really ran.
func Sink() float64 { return sinkChecksum }
