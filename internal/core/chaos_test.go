package core

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/sim/systems"
)

// normalizedSamples strips the resilience bookkeeping (Retries) so a
// chaos run can be compared byte-for-byte against a fault-free one.
func normalizedSamples(t *testing.T, samples []Sample) []byte {
	t.Helper()
	clean := make([]Sample, len(samples))
	copy(clean, samples)
	for i := range clean {
		clean[i].Retries = 0
	}
	data, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosSweepConvergesToFaultFreeVerdicts is the issue's seeded chaos
// test: a sweep whose GPU backend fails transiently 30% of the time must,
// with retries enabled, converge to byte-identical samples and identical
// threshold verdicts as the fault-free run.
func TestChaosSweepConvergesToFaultFreeVerdicts(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)

	clean, err := RunProblem(context.Background(), systems.IsambardAI(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sys := systems.IsambardAI()
	plan := &faultinject.Plan{Seed: 20260805, Rules: []faultinject.Rule{
		{Backend: faultinject.BackendGPU, Probability: 0.3, Kind: faultinject.Transient},
	}}
	sys.GPU.Inject = plan.Arm()
	cfg.Resilience.MaxAttempts = 25 // P(25 straight 30% failures) ~ 8e-14
	chaos, err := RunProblem(context.Background(), sys, pt, F32, cfg)
	if err != nil {
		t.Fatalf("chaos sweep did not converge: %v", err)
	}

	if chaos.Thresholds != clean.Thresholds {
		t.Fatalf("verdicts diverged under chaos:\n  clean: %v\n  chaos: %v",
			clean.Thresholds, chaos.Thresholds)
	}
	cb, xb := normalizedSamples(t, clean.Samples), normalizedSamples(t, chaos.Samples)
	if string(cb) != string(xb) {
		t.Fatal("samples diverged under chaos (beyond Retries bookkeeping)")
	}
	total := 0
	for _, smp := range chaos.Samples {
		total += smp.Retries
	}
	if total == 0 {
		t.Fatal("a 30% fault plan caused zero retries — the plan never fired")
	}
	t.Logf("chaos sweep: %d samples, %d transient faults retried away", len(chaos.Samples), total)
}

// TestChaosHardFaultAborts: hard faults are not retried; the sweep fails
// with the fault in the error chain.
func TestChaosHardFaultAborts(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(4)
	cfg.Resilience.MaxAttempts = 25
	sys := systems.IsambardAI()
	sys.GPU.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendGPU, MinDim: 100, Probability: 1, Kind: faultinject.Hard},
	}}).Arm()
	_, err := RunProblem(context.Background(), sys, pt, F32, cfg)
	var fe *faultinject.Error
	if !errors.As(err, &fe) || fe.Transient() {
		t.Fatalf("got %v, want a hard *faultinject.Error", err)
	}
}

// TestChaosRetryBudgetExhaustion: when a site always fails transiently
// and the budget runs out, the last fault surfaces.
func TestChaosRetryBudgetExhaustion(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(4)
	cfg.Resilience.MaxAttempts = 3
	sys := systems.IsambardAI()
	sys.CPU.Inject = (&faultinject.Plan{Rules: []faultinject.Rule{
		{Backend: faultinject.BackendCPU, Probability: 1, Kind: faultinject.Transient},
	}}).Arm()
	_, err := RunProblem(context.Background(), sys, pt, F32, cfg)
	var fe *faultinject.Error
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *faultinject.Error after budget exhaustion", err)
	}
}

// cancelAfter is an injection point that cancels a context after a fixed
// number of consultations — a deterministic way to kill a sweep mid-run.
type cancelAfter struct {
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) At(faultinject.Site) (float64, error) {
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
	return 0, nil
}

// TestCheckpointResume kills a sweep mid-run, then resumes it from the
// checkpoint and verifies the final series is byte-identical to an
// uninterrupted run — the issue's kill-and-resume acceptance criterion.
func TestCheckpointResume(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)
	dir := t.TempDir()
	cfg.Resilience.CheckpointDir = dir
	cfg.Resilience.CheckpointEvery = 8

	clean, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The completed sweep must have cleaned up its checkpoint.
	left, _ := filepath.Glob(filepath.Join(dir, "sweep-*.json"))
	if len(left) != 0 {
		t.Fatalf("completed sweep left checkpoints behind: %v", left)
	}

	// Kill a fresh sweep roughly half way through: each sample consults
	// the gpu point 3x (strategies) + movement sites via the same Point,
	// so ~40 samples in.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sys := systems.DAWN()
	sys.GPU.Inject = &cancelAfter{n: 240, cancel: cancel}
	_, err = RunProblem(ctx, sys, pt, F32, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep returned %v, want context.Canceled", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "sweep-*.json"))
	if len(files) != 1 {
		t.Fatalf("aborted sweep left %d checkpoints, want 1", len(files))
	}
	cp, err := LoadCheckpoint(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Samples) == 0 || len(cp.Samples) >= len(clean.Samples) {
		t.Fatalf("checkpoint has %d samples, want a strict mid-run prefix of %d",
			len(cp.Samples), len(clean.Samples))
	}
	if cp.System != "DAWN" || cp.Problem != pt.Name || cp.Precision != "S" {
		t.Fatalf("checkpoint identity wrong: %+v", cp)
	}

	// Resume with a healthy system and compare against the clean run.
	resumed, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if resumed.Thresholds != clean.Thresholds {
		t.Fatalf("resumed thresholds %v != clean %v", resumed.Thresholds, clean.Thresholds)
	}
	cb, rb := normalizedSamples(t, clean.Samples), normalizedSamples(t, resumed.Samples)
	if string(cb) != string(rb) {
		t.Fatal("resumed samples differ from uninterrupted run")
	}
	left, _ = filepath.Glob(filepath.Join(dir, "sweep-*.json"))
	if len(left) != 0 {
		t.Fatalf("resumed sweep left checkpoints behind: %v", left)
	}
}

// TestCheckpointKeyMismatchIgnored: a checkpoint bound to a different
// sweep identity is ignored, not resumed into the wrong results.
func TestCheckpointKeyMismatchIgnored(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)
	dir := t.TempDir()
	cfg.Resilience.CheckpointDir = dir

	key, err := CheckpointKey(systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bogus := Checkpoint{Key: "someone|else|S|deadbeef", NextP: 9999}
	data, _ := json.Marshal(&bogus)
	if err := os.WriteFile(CheckpointPath(dir, key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	ser, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Samples) != 64 {
		t.Fatalf("mismatched checkpoint corrupted the sweep: %d samples", len(ser.Samples))
	}
}

// TestPartialThresholds: a checkpoint reports provisional verdicts from
// its prefix of samples.
func TestPartialThresholds(t *testing.T) {
	pt, _ := FindProblem(GEMM, "square")
	cfg := testConfig(8)
	clean, err := RunProblem(context.Background(), systems.IsambardAI(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := Checkpoint{Samples: clean.Samples}
	if got := cp.PartialThresholds(); got != clean.Thresholds {
		t.Fatalf("full-prefix partial thresholds %v != final %v", got, clean.Thresholds)
	}
}

// TestResilienceExcludedFromHash: retry and checkpoint knobs never change
// what a sweep computes, so they must not change the cache identity.
func TestResilienceExcludedFromHash(t *testing.T) {
	base := testConfig(8)
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	tuned := base
	tuned.Resilience = Resilience{MaxAttempts: 25, CheckpointDir: "/tmp/x", CheckpointEvery: 5}
	h2, err := tuned.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("Resilience knobs changed Config.Hash: %s != %s", h1, h2)
	}
}
