package core

import (
	"testing"
	"testing/quick"
)

func dims(n int) Dims { return Dims{M: n, N: n, K: n} }

func TestThresholdSimpleCrossover(t *testing.T) {
	var det ThresholdDetector
	// CPU wins below 5, GPU from 5 on.
	for n := 1; n <= 10; n++ {
		det.Observe(dims(n), n >= 5)
	}
	d, ok := det.Threshold()
	if !ok || d.M != 5 {
		t.Fatalf("threshold = %v %v, want {5,5,5}", d, ok)
	}
}

func TestThresholdNeverWins(t *testing.T) {
	var det ThresholdDetector
	for n := 1; n <= 10; n++ {
		det.Observe(dims(n), false)
	}
	if _, ok := det.Threshold(); ok {
		t.Fatal("no GPU win should mean no threshold")
	}
}

func TestThresholdAlwaysWins(t *testing.T) {
	var det ThresholdDetector
	for n := 1; n <= 10; n++ {
		det.Observe(dims(n), true)
	}
	d, ok := det.Threshold()
	if !ok || d.M != 1 {
		t.Fatalf("threshold = %v %v, want {1,1,1}", d, ok)
	}
}

// A single momentary GPU win must not arm a threshold (two-sample
// smoothing, §III-D).
func TestThresholdIgnoresMomentaryWin(t *testing.T) {
	var det ThresholdDetector
	wins := []bool{false, false, true, false, false, false, false}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	if _, ok := det.Threshold(); ok {
		t.Fatal("a 1-sample win streak must not produce a threshold")
	}
}

// A later CPU win invalidates the candidate and the detector re-arms
// ("monitors ... all subsequent problem sizes").
func TestThresholdInvalidatedAndRearmed(t *testing.T) {
	var det ThresholdDetector
	wins := []bool{false, true, true, true, false, true, true, true}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	d, ok := det.Threshold()
	if !ok || d.M != 6 {
		t.Fatalf("threshold = %v %v, want re-armed {6,6,6}", d, ok)
	}
}

func TestThresholdInvalidatedAtEnd(t *testing.T) {
	var det ThresholdDetector
	wins := []bool{true, true, true, true, false}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	if _, ok := det.Threshold(); ok {
		t.Fatal("CPU winning the final sample must invalidate the threshold")
	}
}

// A winning streak of exactly one at the very end does not qualify.
func TestThresholdTrailingSingleWin(t *testing.T) {
	var det ThresholdDetector
	wins := []bool{false, false, false, true}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	if _, ok := det.Threshold(); ok {
		t.Fatal("single trailing win must not produce a threshold")
	}
	// But two trailing wins do.
	det = ThresholdDetector{}
	wins = []bool{false, false, true, true}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	d, ok := det.Threshold()
	if !ok || d.M != 3 {
		t.Fatalf("threshold = %v %v, want {3,3,3}", d, ok)
	}
}

func TestThresholdStreakStartReported(t *testing.T) {
	// The threshold is the FIRST size of the final winning streak, even
	// though confirmation only arrives at the second.
	var det ThresholdDetector
	wins := []bool{false, true, true, true}
	for i, w := range wins {
		det.Observe(dims(i+1), w)
	}
	d, ok := det.Threshold()
	if !ok || d.M != 2 {
		t.Fatalf("threshold = %v %v, want streak start {2,2,2}", d, ok)
	}
}

func TestObserveTimesComparison(t *testing.T) {
	var det ThresholdDetector
	det.ObserveTimes(dims(1), 1.0, 2.0) // CPU faster
	det.ObserveTimes(dims(2), 2.0, 1.0) // GPU faster
	det.ObserveTimes(dims(3), 2.0, 1.0)
	d, ok := det.Threshold()
	if !ok || d.M != 2 {
		t.Fatalf("threshold = %v %v", d, ok)
	}
	if det.Samples() != 3 {
		t.Fatalf("samples = %d", det.Samples())
	}
}

func TestDetectThresholdHelper(t *testing.T) {
	ds := []Dims{dims(1), dims(2), dims(3), dims(4)}
	cpu := []float64{1, 1, 3, 3}
	gpu := []float64{2, 2, 1, 1}
	d, ok := DetectThreshold(ds, cpu, gpu)
	if !ok || d.M != 3 {
		t.Fatalf("DetectThreshold = %v %v", d, ok)
	}
}

// Property: monotone outcomes (CPU wins up to some c, GPU wins after)
// always detect exactly c+1, for any crossover point that leaves at least
// two winning samples.
func TestThresholdMonotoneProperty(t *testing.T) {
	f := func(cross uint8) bool {
		c := int(cross%20) + 1 // CPU wins sizes 1..c
		total := c + 2         // at least two GPU wins after
		var det ThresholdDetector
		for n := 1; n <= total; n++ {
			det.Observe(dims(n), n > c)
		}
		d, ok := det.Threshold()
		return ok && d.M == c+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDimsString(t *testing.T) {
	if got := (Dims{M: 1, N: 2, K: 3}).String(); got != "{1, 2, 3}" {
		t.Fatalf("gemm dims: %q", got)
	}
	if got := (Dims{M: 4, N: 5}).String(); got != "{4, 5}" {
		t.Fatalf("gemv dims: %q", got)
	}
}

func TestThresholdString(t *testing.T) {
	if got := (Threshold{}).String(); got != "—" {
		t.Fatalf("absent threshold: %q", got)
	}
	th := Threshold{Dims: Dims{M: 7, N: 7, K: 7}, Found: true}
	if got := th.String(); got != "{7, 7, 7}" {
		t.Fatalf("present threshold: %q", got)
	}
}
