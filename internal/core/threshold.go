package core

// ThresholdDetector implements the GPU offload threshold of §III-D: the
// minimum dimensions, for a given problem type / transfer strategy /
// iteration count, from which the GPU performs better than the CPU for ALL
// larger problem sizes.
//
// Detection rules, made precise (DESIGN.md §4):
//
//   - Samples arrive in ascending size order.
//   - A candidate threshold is armed at the first sample where the GPU wins
//     AND the GPU also won at the immediately preceding sample ("to account
//     for any momentary drops in GPU performance ... the previous and
//     current problem size's performance is taken into consideration").
//     The candidate records the first sample of that winning streak.
//   - Any later sample where the CPU wins invalidates the candidate; the
//     detector re-arms ("GPU-BLOB then monitors the performance for all
//     subsequent problem sizes to ensure that the correct threshold has
//     been identified").
//   - At the end of the sweep the surviving candidate, if any, is the
//     offload threshold; otherwise there is none (printed "—").
type ThresholdDetector struct {
	candidate    Dims
	hasCandidate bool
	streakStart  Dims
	streak       int
	samples      int
}

// Observe feeds one sample in ascending size order. gpuWins is true when
// the GPU time (including data movement) beats the CPU time.
func (t *ThresholdDetector) Observe(d Dims, gpuWins bool) {
	t.samples++
	if !gpuWins {
		t.hasCandidate = false
		t.streak = 0
		return
	}
	if t.streak == 0 {
		t.streakStart = d
	}
	t.streak++
	if t.streak >= 2 && !t.hasCandidate {
		t.candidate = t.streakStart
		t.hasCandidate = true
	}
}

// ObserveTimes is a convenience wrapper comparing raw times.
func (t *ThresholdDetector) ObserveTimes(d Dims, cpuSeconds, gpuSeconds float64) {
	t.Observe(d, gpuSeconds < cpuSeconds)
}

// Threshold returns the detected offload threshold, and whether one exists.
// A single winning sample at the very end of the sweep does not qualify
// (no confirmation sample follows it).
func (t *ThresholdDetector) Threshold() (Dims, bool) {
	if !t.hasCandidate {
		return Dims{}, false
	}
	return t.candidate, true
}

// Samples returns how many samples were observed.
func (t *ThresholdDetector) Samples() int { return t.samples }

// DetectThreshold runs a detector over parallel slices of sizes and times.
func DetectThreshold(dims []Dims, cpuSeconds, gpuSeconds []float64) (Dims, bool) {
	var det ThresholdDetector
	for i := range dims {
		det.ObserveTimes(dims[i], cpuSeconds[i], gpuSeconds[i])
	}
	return det.Threshold()
}
