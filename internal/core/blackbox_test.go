package core

import (
	"context"
	"testing"

	benchdata "repro/bench_data"
	"repro/internal/sim/efftab"
	"repro/internal/sim/systems"
)

func blackboxConfig(iters int) Config {
	cfg := DefaultConfig(iters)
	cfg.MaxDim = 256
	cfg.Step = 16
	cfg.Validate.Enabled = false
	cfg.Model = ModelBlackbox
	return cfg
}

func TestParseModelKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ModelKind
	}{{"", ModelRoofline}, {"roofline", ModelRoofline}, {"blackbox", ModelBlackbox}} {
		got, err := ParseModelKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseModelKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseModelKind("psychic"); err == nil {
		t.Fatal("ParseModelKind accepted an unknown token")
	}
}

func TestBlackboxSweepDiffersFromRoofline(t *testing.T) {
	sys := systems.IsambardAI()
	pt, err := FindProblem(GEMM, "square")
	if err != nil {
		t.Fatal(err)
	}
	roof := blackboxConfig(8)
	roof.Model = ModelRoofline
	rSer, err := RunProblem(context.Background(), sys, pt, F32, roof)
	if err != nil {
		t.Fatal(err)
	}
	bSer, err := RunProblem(context.Background(), sys, pt, F32, blackboxConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rSer.Samples) != len(bSer.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(rSer.Samples), len(bSer.Samples))
	}
	differs := false
	for i := range rSer.Samples {
		if rSer.Samples[i].CPUSeconds != bSer.Samples[i].CPUSeconds { //blobvet:allow floatcompare -- any bitwise difference proves the table path ran; no tolerance wanted
			differs = true
		}
		if bSer.Samples[i].CPUSeconds <= 0 || bSer.Samples[i].GPUSeconds[0] <= 0 {
			t.Fatalf("blackbox sample %d has non-positive time", i)
		}
	}
	if !differs {
		t.Fatal("blackbox CPU timings identical to roofline — tables were not consulted")
	}
}

func TestBlackboxMissingPrecisionFallsBackToRoofline(t *testing.T) {
	// A table set that only records f64 must leave f32 timings exactly on
	// the roofline: the models fall back per (kernel, precision).
	full, err := benchdata.Default()
	if err != nil {
		t.Fatal(err)
	}
	f64only := &efftab.Table{Schema: efftab.Schema, Source: full.CPU.Source}
	for _, s := range full.CPU.Series {
		if s.Precision == "f64" {
			f64only.Series = append(f64only.Series, s)
		}
	}
	gpu64 := &efftab.Table{Schema: efftab.Schema, Source: full.GPU.Source}
	for _, s := range full.GPU.Series {
		if s.Precision == "f64" {
			gpu64.Series = append(gpu64.Series, s)
		}
	}
	sys := systems.DAWN()
	pt, err := FindProblem(GEMM, "square")
	if err != nil {
		t.Fatal(err)
	}
	cfg := blackboxConfig(8)
	cfg.EffTables = &efftab.Set{CPU: f64only, GPU: gpu64}
	got, err := RunProblem(context.Background(), sys, pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	roof := blackboxConfig(8)
	roof.Model = ModelRoofline
	want, err := RunProblem(context.Background(), sys, pt, F32, roof)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Samples {
		if got.Samples[i].CPUSeconds != want.Samples[i].CPUSeconds || //blobvet:allow floatcompare -- the fallback contract is byte-identical roofline output; equality is the property under test
			got.Samples[i].GPUSeconds != want.Samples[i].GPUSeconds {
			t.Fatalf("sample %d: f32 under an f64-only table diverged from roofline", i)
		}
	}
}

func TestHashDistinguishesModelAndTables(t *testing.T) {
	roof := blackboxConfig(8)
	roof.Model = ModelRoofline
	hRoof, err := roof.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hBlack, err := blackboxConfig(8).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hRoof == hBlack {
		t.Fatal("roofline and blackbox configs hash identically")
	}
	// Explicitly passing the default set is the same identity as nil.
	set, err := benchdata.Default()
	if err != nil {
		t.Fatal(err)
	}
	explicit := blackboxConfig(8)
	explicit.EffTables = set
	hExplicit, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hExplicit != hBlack {
		t.Fatal("explicit default tables hash differently from nil default")
	}
	// A roofline config that carries stray tables hashes like plain
	// roofline: normalize() drops what the mode never reads.
	stray := roof
	stray.EffTables = set
	hStray, err := stray.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hStray != hRoof {
		t.Fatal("unused EffTables leaked into a roofline hash")
	}
}
