// Package core implements the GPU BLAS Offload Benchmark itself: the
// problem-type registry (§III-C), the size sweep and interleaved CPU/GPU
// execution (§III), checksum validation (§III-B), and the GPU offload
// threshold detector (§III-D).
//
// The paper's primary contributions map onto this package:
//
//	C1 (the benchmark)         -> Run / RunProblem
//	C2 (the offload threshold) -> ThresholdDetector
//	C3 (per-system data)       -> driven by internal/sim/systems presets
//	C4 (transfer strategies)   -> every sample carries all three strategies
package core

import (
	"fmt"
	"strings"
)

// Precision selects the element type of a run.
type Precision int

// Supported precisions.
const (
	F32 Precision = iota
	F64
)

// ElemSize returns the element size in bytes.
func (p Precision) ElemSize() int {
	if p == F32 {
		return 4
	}
	return 8
}

// String returns the BLAS-style prefix name.
func (p Precision) String() string {
	if p == F32 {
		return "S"
	}
	return "D"
}

// ParsePrecision converts a CLI/CSV/JSON token into a Precision. It is
// the single parse boundary shared by the advisor's trace reader and the
// service's request decoding, so every surface accepts the same spellings.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "f32", "s", "single", "fp32", "float32":
		return F32, nil
	case "f64", "d", "double", "fp64", "float64":
		return F64, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q", s)
}

// KernelKind identifies a BLAS kernel family.
type KernelKind int

// Kernels covered by the study.
const (
	GEMM KernelKind = iota
	GEMV
)

// String returns the kernel name.
func (k KernelKind) String() string {
	if k == GEMM {
		return "GEMM"
	}
	return "GEMV"
}

// Valid reports whether k is a known kernel kind. KernelKind values
// arrive from typed call sites but also from decoded wire requests, so
// consumers validate before switching on the value.
func (k KernelKind) Valid() bool { return k == GEMM || k == GEMV }

// ParseKernelKind converts a CLI/CSV/JSON token into a KernelKind — the
// counterpart of ParsePrecision at the same parse boundary.
func ParseKernelKind(s string) (KernelKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gemm":
		return GEMM, nil
	case "gemv":
		return GEMV, nil
	}
	return 0, fmt.Errorf("core: unknown kernel %q", s)
}

// KernelName returns e.g. "SGEMM" for (F32, GEMM).
func KernelName(p Precision, k KernelKind) string { return p.String() + k.String() }

// Dims is one concrete problem size. K is zero for GEMV.
type Dims struct {
	M, N, K int
}

// String formats the dims the way the paper presents thresholds: {m, n, k}
// for GEMM and {m, n} for GEMV.
func (d Dims) String() string {
	if d.K > 0 {
		return fmt.Sprintf("{%d, %d, %d}", d.M, d.N, d.K)
	}
	return fmt.Sprintf("{%d, %d}", d.M, d.N)
}

// MaxDim returns the largest dimension, the quantity bounded by the sweep's
// upper limit d.
func (d Dims) MaxDim() int {
	m := d.M
	if d.N > m {
		m = d.N
	}
	if d.K > m {
		m = d.K
	}
	return m
}

// ProblemType is a fixed relationship between a kernel's dimensions
// (§III-C). Dims maps the sweep parameter p (the "size step") to concrete
// dimensions; the sweep runs p = s, s+step, ... while every dimension stays
// within the upper limit d.
type ProblemType struct {
	// Name is a short stable identifier used in CSV file names.
	Name string
	// Desc is the paper's notation, e.g. "M=N, K=16M".
	Desc   string
	Kernel KernelKind
	// Dims produces the concrete dimensions at sweep parameter p >= 1.
	Dims func(p int) Dims
}

// GemmProblems lists the nine GEMM problem types: square plus the eight
// non-square types of Fig 1 / Table V.
var GemmProblems = []ProblemType{
	{
		Name: "square", Desc: "M=N=K", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{p, p, p} },
	},
	{
		Name: "tall_k_16m", Desc: "M=N, K=16M", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{p, p, 16 * p} },
	},
	{
		Name: "short_mn32_k", Desc: "M=N=32, K>=1", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{32, 32, p} },
	},
	{
		Name: "tall_m_16k", Desc: "K=N, M=16K", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{16 * p, p, p} },
	},
	{
		Name: "short_kn32_m", Desc: "K=N=32, M>=1", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{p, 32, 32} },
	},
	{
		Name: "tall_n_16k", Desc: "M=K, N=16K", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{p, 16 * p, p} },
	},
	{
		Name: "short_mk32_n", Desc: "M=K=32, N>=1", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{32, p, 32} },
	},
	{
		Name: "thin_k32", Desc: "M=N, K=32", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{p, p, 32} },
	},
	{
		Name: "square_m_16k", Desc: "M=N, M=16K", Kernel: GEMM,
		Dims: func(p int) Dims { return Dims{16 * p, 16 * p, p} },
	},
}

// GemvProblems lists the five GEMV problem types: square plus the four
// non-square types of Fig 1 / Table VI.
var GemvProblems = []ProblemType{
	{
		Name: "square", Desc: "M=N", Kernel: GEMV,
		Dims: func(p int) Dims { return Dims{p, p, 0} },
	},
	{
		Name: "tall_m_16n", Desc: "M=16N", Kernel: GEMV,
		Dims: func(p int) Dims { return Dims{16 * p, p, 0} },
	},
	{
		Name: "thin_n32", Desc: "N=32, M>=1", Kernel: GEMV,
		Dims: func(p int) Dims { return Dims{p, 32, 0} },
	},
	{
		Name: "wide_n_16m", Desc: "N=16M", Kernel: GEMV,
		Dims: func(p int) Dims { return Dims{p, 16 * p, 0} },
	},
	{
		Name: "thin_m32", Desc: "M=32, N>=1", Kernel: GEMV,
		Dims: func(p int) Dims { return Dims{32, p, 0} },
	},
}

// FindProblem resolves a problem type by kernel and name.
func FindProblem(kernel KernelKind, name string) (ProblemType, error) {
	list := GemmProblems
	if kernel == GEMV {
		list = GemvProblems
	}
	for _, pt := range list {
		if pt.Name == name {
			return pt, nil
		}
	}
	return ProblemType{}, fmt.Errorf("core: unknown %v problem type %q", kernel, name)
}

// AllProblems returns the full registry: 9 GEMM + 5 GEMV types, which with
// two precisions each yields the artifact's 28 CSV files per run.
func AllProblems() []ProblemType {
	out := make([]ProblemType, 0, len(GemmProblems)+len(GemvProblems))
	out = append(out, GemmProblems...)
	out = append(out, GemvProblems...)
	return out
}
