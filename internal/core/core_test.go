package core

import (
	"testing"
)

func TestPrecision(t *testing.T) {
	if F32.ElemSize() != 4 || F64.ElemSize() != 8 {
		t.Fatal("elem sizes")
	}
	if F32.String() != "S" || F64.String() != "D" {
		t.Fatal("prefixes")
	}
	if KernelName(F32, GEMM) != "SGEMM" || KernelName(F64, GEMV) != "DGEMV" {
		t.Fatal("kernel names")
	}
}

func TestProblemRegistryCounts(t *testing.T) {
	// 9 GEMM + 5 GEMV types; with two precisions that is the artifact's
	// 28 CSV files per run.
	if len(GemmProblems) != 9 {
		t.Fatalf("GEMM problem types = %d, want 9", len(GemmProblems))
	}
	if len(GemvProblems) != 5 {
		t.Fatalf("GEMV problem types = %d, want 5", len(GemvProblems))
	}
	if got := len(AllProblems()) * 2; got != 28 {
		t.Fatalf("CSV files per run = %d, want 28", got)
	}
}

func TestProblemNamesUnique(t *testing.T) {
	for _, list := range [][]ProblemType{GemmProblems, GemvProblems} {
		seen := map[string]bool{}
		for _, pt := range list {
			if seen[pt.Name] {
				t.Fatalf("duplicate problem name %q", pt.Name)
			}
			seen[pt.Name] = true
			if pt.Dims == nil {
				t.Fatalf("problem %q has no Dims", pt.Name)
			}
		}
	}
}

func TestProblemDimsDefinitions(t *testing.T) {
	// Spot-check that each problem type's Dims matches its paper
	// definition at a few sweep parameters.
	check := func(kernel KernelKind, name string, p int, want Dims) {
		t.Helper()
		pt, err := FindProblem(kernel, name)
		if err != nil {
			t.Fatal(err)
		}
		if got := pt.Dims(p); got != want {
			t.Fatalf("%s(%d) = %v, want %v", name, p, got, want)
		}
	}
	check(GEMM, "square", 7, Dims{7, 7, 7})
	check(GEMM, "tall_k_16m", 3, Dims{3, 3, 48})
	check(GEMM, "short_mn32_k", 100, Dims{32, 32, 100})
	check(GEMM, "tall_m_16k", 4, Dims{64, 4, 4})
	check(GEMM, "short_kn32_m", 9, Dims{9, 32, 32})
	check(GEMM, "tall_n_16k", 5, Dims{5, 80, 5})
	check(GEMM, "short_mk32_n", 11, Dims{32, 11, 32})
	check(GEMM, "thin_k32", 6, Dims{6, 6, 32})
	check(GEMM, "square_m_16k", 2, Dims{32, 32, 2})
	check(GEMV, "square", 12, Dims{12, 12, 0})
	check(GEMV, "tall_m_16n", 2, Dims{32, 2, 0})
	check(GEMV, "thin_n32", 50, Dims{50, 32, 0})
	check(GEMV, "wide_n_16m", 3, Dims{3, 48, 0})
	check(GEMV, "thin_m32", 77, Dims{32, 77, 0})
}

func TestFindProblemUnknown(t *testing.T) {
	if _, err := FindProblem(GEMM, "nope"); err == nil {
		t.Fatal("expected error for unknown problem")
	}
	// GEMV list must not contain GEMM names.
	if _, err := FindProblem(GEMV, "tall_k_16m"); err == nil {
		t.Fatal("GEMM problem resolved under GEMV")
	}
}

func TestDimsMaxDim(t *testing.T) {
	if (Dims{M: 3, N: 9, K: 5}).MaxDim() != 9 {
		t.Fatal("MaxDim n")
	}
	if (Dims{M: 3, N: 2, K: 50}).MaxDim() != 50 {
		t.Fatal("MaxDim k")
	}
	if (Dims{M: 30, N: 2}).MaxDim() != 30 {
		t.Fatal("MaxDim m")
	}
}

func TestModeString(t *testing.T) {
	if ModeBoth.String() != "interleaved" || ModeCPUOnly.String() != "cpu-only" || ModeGPUOnly.String() != "gpu-only" {
		t.Fatal("mode names")
	}
}
