package core

import (
	"strings"
	"testing"
)

func TestConfigHashNormalizedEquivalence(t *testing.T) {
	// Fields below their floors normalize to the defaults, so a zeroed
	// Step/Iterations config must hash like its explicit-default twin.
	a := Config{MinDim: 0, MaxDim: 128, Step: 0, Iterations: 0, Validate: Validation{Every: 0, MaxFlops: 0}}
	b := Config{MinDim: 1, MaxDim: 128, Step: 1, Iterations: 1, Validate: Validation{Every: 1, MaxFlops: 64e6}}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("normalized-equal configs hash differently:\n%s\n%s", ha, hb)
	}
	if len(ha) != 64 || strings.ToLower(ha) != ha {
		t.Fatalf("hash is not lowercase hex sha256: %q", ha)
	}
}

func TestConfigHashDistinguishesFields(t *testing.T) {
	base := DefaultConfig(8)
	baseHash, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := []Config{}
	v := base
	v.MaxDim = 2048
	variants = append(variants, v)
	v = base
	v.Iterations = 16
	variants = append(variants, v)
	v = base
	v.Beta = 1
	variants = append(variants, v)
	v = base
	v.Mode = ModeCPUOnly
	variants = append(variants, v)
	v = base
	v.Validate.Enabled = false
	variants = append(variants, v)
	v = base
	v.LiveCPU = &LiveCPUTimer{Threads: 4}
	variants = append(variants, v)
	seen := map[string]bool{baseHash: true}
	for i, vc := range variants {
		h, err := vc.Hash()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if seen[h] {
			t.Fatalf("variant %d collides with an earlier hash", i)
		}
		seen[h] = true
	}
}

func TestConfigHashInvalid(t *testing.T) {
	bad := Config{MinDim: 10, MaxDim: 5}
	if _, err := bad.Hash(); err == nil {
		t.Fatal("MaxDim < MinDim should not hash")
	}
}

// Hash must not mutate the receiver: normalization happens on a copy.
func TestConfigHashLeavesConfigUntouched(t *testing.T) {
	c := Config{MaxDim: 64}
	if _, err := c.Hash(); err != nil {
		t.Fatal(err)
	}
	if c.Step != 0 || c.Iterations != 0 || c.MinDim != 0 {
		t.Fatalf("Hash normalized the caller's config: %+v", c)
	}
}

func TestParseKernelKindAndPrecision(t *testing.T) {
	for tok, want := range map[string]KernelKind{"gemm": GEMM, "GEMV": GEMV, " Gemm ": GEMM} {
		got, err := ParseKernelKind(tok)
		if err != nil || got != want {
			t.Fatalf("ParseKernelKind(%q) = %v, %v", tok, got, err)
		}
	}
	if _, err := ParseKernelKind("trsm"); err == nil {
		t.Fatal("trsm should not parse")
	}
	for tok, want := range map[string]Precision{"f32": F32, "D": F64, "single": F32, "fp64": F64} {
		got, err := ParsePrecision(tok)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", tok, got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("f16 should not parse")
	}
	if KernelKind(3).Valid() || !GEMV.Valid() {
		t.Fatal("KernelKind.Valid misclassifies")
	}
}
