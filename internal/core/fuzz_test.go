package core

import "testing"

// FuzzConfigHash hammers the canonical config identity that keys the
// service result cache. Invariants: Hash never panics on any field
// combination, it is deterministic, equal configs hash equal, and the
// documented normalization equivalences hold (Step 0 ≡ Step 1,
// Iterations 0 ≡ Iterations 1) — a cache key that drifted between
// equivalent configs would silently halve the hit rate.
func FuzzConfigHash(f *testing.F) {
	f.Add(1, 64, 1, 8, 1.0, 0.0, uint8(0), false, 4, int64(0))
	f.Add(0, 0, 0, 0, 0.0, 0.0, uint8(1), true, 0, int64(-1))
	f.Add(100, 50, -3, -1, -2.5, 1e300, uint8(200), true, -7, int64(1<<40))
	f.Fuzz(func(t *testing.T, minDim, maxDim, step, iters int, alpha, beta float64, mode uint8, validate bool, every int, maxFlops int64) {
		cfg := Config{
			MinDim:     minDim,
			MaxDim:     maxDim,
			Step:       step,
			Iterations: iters,
			Alpha:      alpha,
			Beta:       beta,
			Mode:       Mode(mode),
			Validate:   Validation{Enabled: validate, Every: every, MaxFlops: maxFlops},
		}
		h1, err := cfg.Hash()
		if err != nil {
			return // invalid sweeps (max < min) are rejected, not hashed
		}
		if len(h1) != 64 {
			t.Fatalf("hash %q is not hex SHA-256", h1)
		}
		h2, err := cfg.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("Hash not deterministic: %q then %q (err %v)", h1, h2, err)
		}
		clone := cfg
		if h3, _ := clone.Hash(); h3 != h1 {
			t.Fatalf("equal configs hash differently: %q vs %q", h1, h3)
		}

		// Normalization equivalences: the defaulted spelling and the
		// explicit spelling are one identity.
		if step == 0 {
			one := cfg
			one.Step = 1
			if h, err := one.Hash(); err != nil || h != h1 {
				t.Fatalf("Step 0 and Step 1 diverge: %q vs %q (err %v)", h1, h, err)
			}
		}
		if iters == 0 {
			one := cfg
			one.Iterations = 1
			if h, err := one.Hash(); err != nil || h != h1 {
				t.Fatalf("Iterations 0 and 1 diverge: %q vs %q (err %v)", h1, h, err)
			}
		}
	})
}
