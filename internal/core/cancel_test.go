package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sim/systems"
)

// countdownCtx reports cancellation after its Err method has been asked n
// times, letting a test cancel deterministically in the middle of a sweep
// without goroutines or timing.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

func TestRunProblemCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pt := GemmProblems[0]
	cfg := testConfig(1)
	_, err := RunProblem(ctx, systems.DAWN(), pt, F32, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunProblemCancelledMidSweep(t *testing.T) {
	pt := GemmProblems[0]
	cfg := testConfig(1)
	cfg.MaxDim = 64
	cfg.Step = 1
	cfg.Validate.Enabled = false

	// Sanity: the uncancelled sweep yields all 64 sizes.
	full, err := RunProblem(context.Background(), systems.DAWN(), pt, F32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Samples) != 64 {
		t.Fatalf("full sweep samples = %d", len(full.Samples))
	}

	ctx := &countdownCtx{Context: context.Background(), remaining: 10}
	ser, err := RunProblem(ctx, systems.DAWN(), pt, F32, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ser != nil {
		t.Fatalf("cancelled sweep must not return a partial series, got %d samples", len(ser.Samples))
	}
}

func TestRunCancelledPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig(1)
	out, err := Run(ctx, systems.LUMI(), GemmProblems[:2], []Precision{F32}, cfg)
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("Run with cancelled ctx: out=%v err=%v", out, err)
	}
}

// A nil context is tolerated (treated as Background) so library callers
// predating the context plumbing cannot panic the sweep.
func TestRunProblemNilContext(t *testing.T) {
	pt := GemvProblems[0]
	cfg := testConfig(1)
	cfg.MaxDim = 16
	//nolint:staticcheck // deliberately exercising the nil-ctx guard
	ser, err := RunProblem(nil, systems.IsambardAI(), pt, F64, cfg)
	if err != nil || len(ser.Samples) == 0 {
		t.Fatalf("nil ctx: %v", err)
	}
}
