package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

// ExampleRunProblem is the README's "Using the library" walkthrough as a
// compiled, output-checked test: sweep square DGEMM on the DAWN model and
// read off the Transfer-Once offload threshold. (The README quotes the
// paper-scale d = 4096 run; this example sweeps to d = 1024 so `go test`
// stays fast — the detector finds the same kind of answer either way.)
func ExampleRunProblem() {
	sys := systems.DAWN()
	pt, _ := core.FindProblem(core.GEMM, "square")
	cfg := core.DefaultConfig(8) // -i 8 -s 1
	cfg.MaxDim = 1024            // -d 1024
	series, _ := core.RunProblem(context.Background(), sys, pt, core.F64, cfg)
	fmt.Println(series.Thresholds[xfer.TransferOnce])
	// Output: {404, 404, 404}
}
