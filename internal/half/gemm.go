package half

import "repro/internal/blas"

// Mixed-precision GEMM: half-precision storage, float32 accumulation —
// the contract of GPU matrix engines (NVIDIA Tensor Cores, AMD Matrix
// Cores, Intel XMX; §I of the paper) and of the HGEMM interfaces whose
// absence from oneMKL's C API the paper laments (§V).
//
// The kernels convert the half-precision operands to float32 panels and
// run the optimized float32 GEMM, then round C back to storage precision.
// This matches the numeric behaviour of hardware matrix engines (inputs
// quantised to 16 bits, products and sums in float32) at the cost of the
// conversion bandwidth.

// Hgemm computes C = alpha*op(A)*op(B) + beta*C with Float16 storage and
// float32 accumulation. Leading dimensions follow the usual column-major
// convention.
func Hgemm(transA, transB blas.Transpose, m, n, k int, alpha float32, a []Float16, lda int, b []Float16, ldb int, beta float32, c []Float16, ldc int) {
	if m <= 0 || n <= 0 {
		return
	}
	a32 := convertPanel16(transA, m, k, a, lda)
	b32 := convertPanel16(transB, k, n, b, ldb)
	c32 := make([]float32, m*n)
	if beta != 0 {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				c32[i+j*m] = c[i+j*ldc].Float32()
			}
		}
	}
	ta, tb := effTrans(transA), effTrans(transB)
	lda32, ldb32 := m, k
	if ta == blas.Trans {
		lda32 = k
	}
	if tb == blas.Trans {
		ldb32 = n
	}
	blas.OptSgemm(ta, tb, m, n, k, alpha, a32, lda32, b32, ldb32, beta, c32, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] = FromFloat32(c32[i+j*m])
		}
	}
}

// Bgemm is Hgemm for BFloat16 storage.
func Bgemm(transA, transB blas.Transpose, m, n, k int, alpha float32, a []BFloat16, lda int, b []BFloat16, ldb int, beta float32, c []BFloat16, ldc int) {
	if m <= 0 || n <= 0 {
		return
	}
	a32 := convertPanelB16(transA, m, k, a, lda)
	b32 := convertPanelB16(transB, k, n, b, ldb)
	c32 := make([]float32, m*n)
	if beta != 0 {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				c32[i+j*m] = c[i+j*ldc].Float32()
			}
		}
	}
	ta, tb := effTrans(transA), effTrans(transB)
	lda32, ldb32 := m, k
	if ta == blas.Trans {
		lda32 = k
	}
	if tb == blas.Trans {
		ldb32 = n
	}
	blas.OptSgemm(ta, tb, m, n, k, alpha, a32, lda32, b32, ldb32, beta, c32, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] = BFromFloat32(c32[i+j*m])
		}
	}
}

// effTrans collapses ConjTrans to Trans for these real types.
func effTrans(t blas.Transpose) blas.Transpose {
	if t == blas.ConjTrans {
		return blas.Trans
	}
	return t
}

// convertPanel16 converts the op-relevant region of a Float16 matrix into
// a compact float32 buffer. rows/cols describe op(X): for NoTrans the
// stored matrix is rows x cols, for Trans it is cols x rows.
func convertPanel16(trans blas.Transpose, rows, cols int, x []Float16, ldx int) []float32 {
	storedRows, storedCols := rows, cols
	if effTrans(trans) == blas.Trans {
		storedRows, storedCols = cols, rows
	}
	out := make([]float32, storedRows*storedCols)
	for j := 0; j < storedCols; j++ {
		for i := 0; i < storedRows; i++ {
			out[i+j*storedRows] = x[i+j*ldx].Float32()
		}
	}
	return out
}

// convertPanelB16 is convertPanel16 for BFloat16.
func convertPanelB16(trans blas.Transpose, rows, cols int, x []BFloat16, ldx int) []float32 {
	storedRows, storedCols := rows, cols
	if effTrans(trans) == blas.Trans {
		storedRows, storedCols = cols, rows
	}
	out := make([]float32, storedRows*storedCols)
	for j := 0; j < storedCols; j++ {
		for i := 0; i < storedRows; i++ {
			out[i+j*storedRows] = x[i+j*ldx].Float32()
		}
	}
	return out
}

// Hgemv computes y = alpha*op(A)*x + beta*y with Float16 storage and
// float32 accumulation, unit increments.
func Hgemv(trans blas.Transpose, m, n int, alpha float32, a []Float16, lda int, x []Float16, beta float32, y []Float16) {
	if m <= 0 || n <= 0 {
		return
	}
	a32 := convertPanel16(blas.NoTrans, m, n, a, lda)
	xLen, yLen := n, m
	if effTrans(trans) == blas.Trans {
		xLen, yLen = m, n
	}
	x32 := make([]float32, xLen)
	for i := range x32 {
		x32[i] = x[i].Float32()
	}
	y32 := make([]float32, yLen)
	if beta != 0 {
		for i := range y32 {
			y32[i] = y[i].Float32()
		}
	}
	blas.OptSgemv(effTrans(trans), m, n, alpha, a32, m, x32, 1, beta, y32, 1)
	for i := range y32 {
		y[i] = FromFloat32(y32[i])
	}
}
