package half

//blobvet:file-allow floatcompare -- fp16 conversion tests assert exact round-trip bit patterns; tolerance would hide rounding-mode bugs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Gold test: converting every one of the 65536 Float16 bit patterns to
// float32 and back must be the identity (NaNs map to NaNs).
func TestFloat16RoundTripExhaustive(t *testing.T) {
	for bits := 0; bits < 1<<16; bits++ {
		h := Float16(bits)
		f := h.Float32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %04x: NaN lost through round trip", bits)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %04x: round trip gave %04x (f32=%g)", bits, uint16(back), f)
		}
	}
}

// Same for BFloat16 — trivial by construction, but the rounding carry in
// BFromFloat32 must not break identity.
func TestBFloat16RoundTripExhaustive(t *testing.T) {
	for bits := 0; bits < 1<<16; bits++ {
		h := BFloat16(bits)
		f := h.Float32()
		back := BFromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %04x: NaN lost", bits)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %04x: round trip gave %04x (f32=%g)", bits, uint16(back), f)
		}
	}
}

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h Float16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},          // max finite
		{65536, 0x7c00},          // overflow -> +Inf
		{-70000, 0xfc00},         // overflow -> -Inf
		{5.9604645e-08, 0x0001},  // smallest subnormal
		{6.1035156e-05, 0x0400},  // smallest normal (2^-14)
		{0.333251953125, 0x3555}, // 1/3 rounded
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Fatalf("FromFloat32(%g) = %04x, want %04x", c.f, uint16(got), uint16(c.h))
		}
	}
	if FromFloat32(float32(math.NaN())).IsNaN() != true {
		t.Fatal("NaN conversion")
	}
	if got := FromFloat32(float32(math.Inf(1))); !got.IsInf(1) {
		t.Fatal("+Inf conversion")
	}
	if got := FromFloat32(float32(math.Inf(-1))); !got.IsInf(-1) {
		t.Fatal("-Inf conversion")
	}
}

func TestFloat16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (even mantissa) and
	// 1+2^-10; ties-to-even keeps 1.0.
	f := float32(1) + float32(math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3c00 {
		t.Fatalf("tie should round to even: %04x", uint16(got))
	}
	// Just above the tie rounds up.
	f = float32(1) + float32(math.Ldexp(1, -11)) + float32(math.Ldexp(1, -20))
	if got := FromFloat32(f); got != 0x3c01 {
		t.Fatalf("above tie should round up: %04x", uint16(got))
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 (odd) and 1+2^-9 (even): up.
	f = float32(1) + 3*float32(math.Ldexp(1, -11))
	if got := FromFloat32(f); got != 0x3c02 {
		t.Fatalf("tie at odd mantissa should round up: %04x", uint16(got))
	}
}

func TestFloat16ConversionErrorBound(t *testing.T) {
	// Relative error of a single conversion is at most 2^-11 for normal
	// values.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		f := (r.Float32()*2 - 1) * 1000
		if f == 0 {
			continue
		}
		g := FromFloat32(f).Float32()
		rel := math.Abs(float64(g-f)) / math.Abs(float64(f))
		if rel > 1.0/2048 {
			t.Fatalf("conversion error %g for %g", rel, f)
		}
	}
}

func TestBFloat16KnownValues(t *testing.T) {
	if got := BFromFloat32(1); got != 0x3f80 {
		t.Fatalf("BFromFloat32(1) = %04x", uint16(got))
	}
	if got := BFromFloat32(-2); got != 0xc000 {
		t.Fatalf("BFromFloat32(-2) = %04x", uint16(got))
	}
	if !BFromFloat32(float32(math.NaN())).IsNaN() {
		t.Fatal("bfloat NaN")
	}
	// bfloat16 has f32's range: no overflow at 1e38.
	if BFromFloat32(1e38).IsNaN() {
		t.Fatal("1e38 should be finite in bfloat16")
	}
}

func TestSliceConversions(t *testing.T) {
	src := []float32{0, 1, -2, 0.5, 65504}
	h := FromFloat32s(nil, src)
	back := ToFloat32s(nil, h)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("slice round trip at %d: %g != %g", i, back[i], src[i])
		}
	}
	// 65504 needs 11 mantissa bits — fine for f16, not for bfloat16 — so
	// the bfloat check uses values exactly representable in 8 bits.
	bsrc := []float32{0, 1, -2, 0.5, 65536}
	bh := BFromFloat32s(nil, bsrc)
	bback := BToFloat32s(nil, bh)
	for i := range bsrc {
		if bback[i] != bsrc[i] {
			t.Fatalf("bfloat slice round trip at %d", i)
		}
	}
	// Reuse provided buffers.
	buf := make([]float32, len(h))
	if got := ToFloat32s(buf, h); &got[0] != &buf[0] {
		t.Fatal("provided buffer not reused")
	}
}

// Property: conversion is monotone for finite positive values.
func TestFloat16Monotone(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		ha, hb := FromFloat32(a), FromFloat32(b)
		return ha.Float32() <= hb.Float32()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
