// Package half implements IEEE 754 binary16 (Float16) and bfloat16
// (BFloat16) storage types with float32 conversion, plus mixed-precision
// GEMM kernels that store in half precision and accumulate in float32 —
// the layout used by GPU matrix engines.
//
// This is the paper's first future-work item made concrete (§V): "we are
// also looking to support half-precision kernels; FP16 and Bfloat16". The
// paper notes oneMKL's MKL_F16 is an opaque unsigned short with no
// conversion functions; this package supplies exactly the conversions that
// were missing, so GPU-BLOB-Go can sweep HGEMM like any other kernel.
package half

import "math"

// Float16 is an IEEE 754 binary16 value stored in 16 bits:
// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// BFloat16 is a bfloat16 value: the top 16 bits of an IEEE 754 binary32 —
// 1 sign bit, 8 exponent bits (bias 127), 7 mantissa bits.
type BFloat16 uint16

// Float16 special values.
const (
	PosInf16 Float16 = 0x7c00
	NegInf16 Float16 = 0xfc00
	NaN16    Float16 = 0x7e00
	// MaxFloat16 is the largest finite Float16 (65504).
	MaxFloat16 Float16 = 0x7bff
	// SmallestNormal16 is the smallest positive normal Float16 (2^-14).
	SmallestNormal16 Float16 = 0x0400
)

// FromFloat32 converts a float32 to Float16 with round-to-nearest-even,
// handling subnormals, overflow to infinity, and NaN propagation.
func FromFloat32(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			// Preserve a quiet NaN; keep the top mantissa bits.
			return Float16(sign | 0x7e00 | uint16(man>>13))
		}
		return Float16(sign | 0x7c00)
	case exp == 0 && man == 0: // signed zero
		return Float16(sign)
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow -> infinity
		return Float16(sign | 0x7c00)
	case e >= -14: // normal range
		// 10-bit mantissa with round-to-nearest-even on the dropped 13 bits.
		m := man >> 13
		rem := man & 0x1fff
		half16 := uint32(0x1000)
		if rem > half16 || (rem == half16 && m&1 == 1) {
			m++
		}
		out := uint32(sign) | uint32(e+15)<<10 + m // mantissa carry may bump the exponent, which is correct (rounds up to the next binade or to infinity)
		return Float16(out)
	case e >= -24: // subnormal range
		// Implicit leading 1 becomes explicit; shift into 10 bits.
		man |= 0x800000
		shift := uint32(-e - 14 + 13)
		m := man >> shift
		remMask := uint32(1)<<shift - 1
		rem := man & remMask
		halfRem := uint32(1) << (shift - 1)
		if rem > halfRem || (rem == halfRem && m&1 == 1) {
			m++
		}
		return Float16(uint32(sign) + m)
	case e == -25:
		// Halfway to the smallest subnormal: round-to-nearest-even sends
		// exactly 2^-25 to zero, anything above it to the smallest
		// subnormal.
		if man != 0 {
			return Float16(sign | 1)
		}
		return Float16(sign)
	default: // underflow -> signed zero
		return Float16(sign)
	}
}

// Float32 converts a Float16 to float32 exactly (every binary16 value is
// representable in binary32).
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h) & 0x3ff

	switch {
	case exp == 0x1f: // Inf or NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7f800000 | man<<13 | 0x400000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 { // signed zero
			return math.Float32frombits(sign)
		}
		// Subnormal: value = man * 2^-24; normalize into binary32. The
		// exponent starts at that of 1.0*2^-14 (the largest value a
		// one-shift normalization can produce) and descends per shift.
		e := uint32(127 - 14)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// IsNaN reports whether h is a NaN.
func (h Float16) IsNaN() bool {
	return h&0x7c00 == 0x7c00 && h&0x3ff != 0
}

// IsInf reports whether h is an infinity with the given sign (+1, -1, or 0
// for either).
func (h Float16) IsInf(sign int) bool {
	if h&0x7fff != 0x7c00 {
		return false
	}
	switch {
	case sign > 0:
		return h&0x8000 == 0
	case sign < 0:
		return h&0x8000 != 0
	default:
		return true
	}
}

// BFromFloat32 converts a float32 to BFloat16 with round-to-nearest-even.
func BFromFloat32(f float32) BFloat16 {
	b := math.Float32bits(f)
	if b&0x7f800000 == 0x7f800000 && b&0x7fffff != 0 {
		// NaN: keep it quiet, keep the sign, keep top mantissa bits.
		return BFloat16(b>>16 | 0x40)
	}
	rem := b & 0xffff
	out := b >> 16
	if rem > 0x8000 || (rem == 0x8000 && out&1 == 1) {
		out++ // may carry into the exponent: rounds to next binade / Inf
	}
	return BFloat16(out)
}

// Float32 converts a BFloat16 to float32 exactly.
func (h BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// IsNaN reports whether h is a NaN.
func (h BFloat16) IsNaN() bool {
	return h&0x7f80 == 0x7f80 && h&0x7f != 0
}

// --- slice conversions -------------------------------------------------

// ToFloat32s converts a Float16 slice into dst (allocated when nil).
func ToFloat32s(dst []float32, src []Float16) []float32 {
	if dst == nil {
		dst = make([]float32, len(src))
	}
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}

// FromFloat32s converts a float32 slice into dst (allocated when nil).
func FromFloat32s(dst []Float16, src []float32) []Float16 {
	if dst == nil {
		dst = make([]Float16, len(src))
	}
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// BToFloat32s converts a BFloat16 slice into dst (allocated when nil).
func BToFloat32s(dst []float32, src []BFloat16) []float32 {
	if dst == nil {
		dst = make([]float32, len(src))
	}
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}

// BFromFloat32s converts a float32 slice into dst (allocated when nil).
func BFromFloat32s(dst []BFloat16, src []float32) []BFloat16 {
	if dst == nil {
		dst = make([]BFloat16, len(src))
	}
	for i, v := range src {
		dst[i] = BFromFloat32(v)
	}
	return dst
}
