package half

//blobvet:file-allow floatcompare -- fp16 GEMM tests use small exactly-representable inputs so results are exact in half precision by construction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
)

// hgemm result must match a float32 GEMM on the quantised inputs to within
// one final rounding (storage precision), since accumulation is float32.
func TestHgemmMatchesQuantisedSgemm(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, sh := range [][3]int{{1, 1, 1}, {5, 7, 3}, {16, 16, 16}, {33, 17, 25}, {64, 64, 64}} {
		m, n, k := sh[0], sh[1], sh[2]
		a32 := make([]float32, m*k)
		b32 := make([]float32, k*n)
		for i := range a32 {
			a32[i] = FromFloat32(r.Float32()*2 - 1).Float32() // pre-quantised
		}
		for i := range b32 {
			b32[i] = FromFloat32(r.Float32()*2 - 1).Float32()
		}
		a := FromFloat32s(nil, a32)
		b := FromFloat32s(nil, b32)
		c := make([]Float16, m*n)
		Hgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
		want := make([]float32, m*n)
		blas.OptSgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a32, m, b32, k, 0, want, m)
		for i := range c {
			exp := FromFloat32(want[i]).Float32()
			got := c[i].Float32()
			// One storage rounding of difference at most.
			tol := math.Abs(float64(exp))/1024 + 1e-4
			if d := math.Abs(float64(got - exp)); d > tol {
				t.Fatalf("%dx%dx%d: c[%d] = %g, want %g (tol %g)", m, n, k, i, got, exp, tol)
			}
		}
	}
}

func TestHgemmTransposeAndBeta(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, n, k := 20, 12, 8
	// A stored k x m (Trans), B stored n x k (Trans).
	a32 := make([]float32, k*m)
	b32 := make([]float32, n*k)
	for i := range a32 {
		a32[i] = FromFloat32(r.Float32()).Float32()
	}
	for i := range b32 {
		b32[i] = FromFloat32(r.Float32()).Float32()
	}
	c32 := make([]float32, m*n)
	for i := range c32 {
		c32[i] = FromFloat32(r.Float32()).Float32()
	}
	a := FromFloat32s(nil, a32)
	b := FromFloat32s(nil, b32)
	c := FromFloat32s(nil, c32)
	Hgemm(blas.Trans, blas.Trans, m, n, k, 1.5, a, k, b, n, 0.5, c, m)
	want := append([]float32(nil), c32...)
	blas.RefSgemm(blas.Trans, blas.Trans, m, n, k, 1.5, a32, k, b32, n, 0.5, want, m)
	for i := range c {
		exp := want[i]
		got := c[i].Float32()
		tol := math.Abs(float64(exp))/512 + 1e-3
		if d := math.Abs(float64(got - exp)); d > tol {
			t.Fatalf("c[%d] = %g, want %g", i, got, exp)
		}
	}
}

func TestBgemmBasic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, n, k := 24, 24, 24
	a32 := make([]float32, m*k)
	b32 := make([]float32, k*n)
	for i := range a32 {
		a32[i] = BFromFloat32(r.Float32()*2 - 1).Float32()
	}
	for i := range b32 {
		b32[i] = BFromFloat32(r.Float32()*2 - 1).Float32()
	}
	a := BFromFloat32s(nil, a32)
	b := BFromFloat32s(nil, b32)
	c := make([]BFloat16, m*n)
	Bgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a, m, b, k, 0, c, m)
	want := make([]float32, m*n)
	blas.RefSgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, a32, m, b32, k, 0, want, m)
	for i := range c {
		exp := want[i]
		got := c[i].Float32()
		// bfloat16 keeps only 8 significant bits.
		tol := math.Abs(float64(exp))/128 + 1e-2
		if d := math.Abs(float64(got - exp)); d > tol {
			t.Fatalf("c[%d] = %g, want %g", i, got, exp)
		}
	}
}

func TestHgemvBasic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m, n := 30, 20
	a32 := make([]float32, m*n)
	x32 := make([]float32, n)
	for i := range a32 {
		a32[i] = FromFloat32(r.Float32()).Float32()
	}
	for i := range x32 {
		x32[i] = FromFloat32(r.Float32()).Float32()
	}
	a := FromFloat32s(nil, a32)
	x := FromFloat32s(nil, x32)
	y := make([]Float16, m)
	Hgemv(blas.NoTrans, m, n, 1, a, m, x, 0, y)
	want := make([]float32, m)
	blas.RefSgemv(blas.NoTrans, m, n, 1, a32, m, x32, 1, 0, want, 1)
	for i := range y {
		exp := want[i]
		got := y[i].Float32()
		tol := math.Abs(float64(exp))/512 + 1e-3
		if d := math.Abs(float64(got - exp)); d > tol {
			t.Fatalf("y[%d] = %g, want %g", i, got, exp)
		}
	}
}

// Float32 accumulation must avoid the catastrophic error a pure-f16
// accumulation would make: summing k copies of 1 stays exact well past
// f16's 2048 integer limit.
func TestHgemmFloat32Accumulation(t *testing.T) {
	const k = 8192
	a := make([]Float16, k) // 1 x k row of ones
	b := make([]Float16, k) // k x 1 column of ones
	one := FromFloat32(1)
	for i := range a {
		a[i] = one
		b[i] = one
	}
	c := make([]Float16, 1)
	Hgemm(blas.NoTrans, blas.NoTrans, 1, 1, k, 1, a, 1, b, k, 0, c, 1)
	// The true sum 8192 is exactly representable in f16 (power of two);
	// a naive f16 accumulator would have saturated at 2048.
	if got := c[0].Float32(); got != k {
		t.Fatalf("sum = %g, want %d (f16 accumulation would stall at 2048)", got, k)
	}
}

func TestHgemmDegenerate(t *testing.T) {
	Hgemm(blas.NoTrans, blas.NoTrans, 0, 5, 5, 1, nil, 1, nil, 1, 0, nil, 1)
	Bgemm(blas.NoTrans, blas.NoTrans, 5, 0, 5, 1, nil, 1, nil, 1, 0, nil, 1)
	Hgemv(blas.NoTrans, 0, 5, 1, nil, 1, nil, 0, nil)
}

func TestHgemvTrans(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m, n := 18, 26
	a32 := make([]float32, m*n)
	x32 := make([]float32, m)
	for i := range a32 {
		a32[i] = FromFloat32(r.Float32()).Float32()
	}
	for i := range x32 {
		x32[i] = FromFloat32(r.Float32()).Float32()
	}
	a := FromFloat32s(nil, a32)
	x := FromFloat32s(nil, x32)
	y := make([]Float16, n)
	Hgemv(blas.Trans, m, n, 1, a, m, x, 0, y)
	want := make([]float32, n)
	blas.RefSgemv(blas.Trans, m, n, 1, a32, m, x32, 1, 0, want, 1)
	for i := range y {
		exp := want[i]
		got := y[i].Float32()
		tol := math.Abs(float64(exp))/512 + 1e-3
		if d := math.Abs(float64(got - exp)); d > tol {
			t.Fatalf("y[%d] = %g, want %g", i, got, exp)
		}
	}
}

func TestHgemvBetaAccumulates(t *testing.T) {
	m, n := 4, 4
	one := FromFloat32(1)
	a := make([]Float16, m*n)
	x := make([]Float16, n)
	y := make([]Float16, m)
	two := FromFloat32(2)
	for i := range a {
		a[i] = one
	}
	for i := range x {
		x[i] = one
	}
	for i := range y {
		y[i] = two
	}
	// y = 1*A*x + 3*y = 4 + 6 = 10 per element.
	Hgemv(blas.NoTrans, m, n, 1, a, m, x, 3, y)
	for i := range y {
		if got := y[i].Float32(); got != 10 {
			t.Fatalf("y[%d] = %g, want 10", i, got)
		}
	}
}
