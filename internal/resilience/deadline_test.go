package resilience

import (
	"context"
	"testing"
	"time"
)

// TestDeadlineOff: d <= 0 means no budget — the context comes back
// untouched with a harmless cancel.
func TestDeadlineOff(t *testing.T) {
	parent := context.Background()
	ctx, cancel := Deadline(parent, 0)
	defer cancel()
	if ctx != parent {
		t.Fatal("Deadline(0) wrapped the context")
	}
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("Deadline(0) attached a deadline")
	}
	cancel() // must be safe to call
	if ctx.Err() != nil {
		t.Fatal("no-op cancel cancelled the parent")
	}
}

// TestDeadlineOn: a positive budget attaches a real deadline.
func TestDeadlineOn(t *testing.T) {
	ctx, cancel := Deadline(context.Background(), time.Hour)
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatal("Deadline(1h) attached no deadline")
	}
	if until := time.Until(d); until <= 0 || until > time.Hour {
		t.Fatalf("deadline %v away, want within (0, 1h]", until)
	}
	if Expired(ctx) {
		t.Fatal("fresh budget reported expired")
	}
	cancel()
	if Expired(ctx) {
		t.Fatal("cancellation misreported as budget expiry")
	}
}

// TestExpired distinguishes a spent budget (504) from a hung-up caller
// (499).
func TestExpired(t *testing.T) {
	ctx, cancel := Deadline(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if !Expired(ctx) {
		t.Fatal("elapsed budget not reported expired")
	}
	if Expired(context.Background()) {
		t.Fatal("live context reported expired")
	}
}
