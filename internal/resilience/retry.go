// Package resilience is the repository's failure-handling toolkit: retry
// with exponential backoff and full jitter, a closed/open/half-open
// circuit breaker in the spirit of baseplate.go's breakerbp, and deadline
// budgets. internal/core uses it to survive transient backend faults
// mid-sweep; internal/service uses it to keep the advisor up (and
// degrading gracefully) when its sweep backend misbehaves.
//
// The package is deliberately free of policy: what counts as retryable is
// decided by the error itself through the Transienter interface (which
// faultinject.Error implements), clocks and sleeps are injectable so
// tests run in virtual time, and the zero value of every config means
// "off" or "sane default" rather than surprise behaviour.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Transienter is implemented by errors that may succeed when retried.
// faultinject.Error implements it; real backends would classify their
// driver error codes the same way.
type Transienter interface {
	Transient() bool
}

// IsTransient reports whether err is retryable: some error in its chain
// implements Transienter and answers true. Context errors are never
// transient — a cancelled caller must not be retried against.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t Transienter
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy configures Do. The zero value runs the operation exactly
// once (no retries), so callers that never set a policy lose nothing.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included). 0 and 1
	// both mean "one attempt, no retry".
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the cap for attempt n is
	// BaseDelay * 2^(n-1), and the actual delay is drawn uniformly from
	// [0, cap] ("full jitter"). 0 retries immediately — the right setting
	// for modeled work, where a retry costs microseconds and the only
	// reason to wait is a real shared resource.
	BaseDelay time.Duration
	// MaxDelay caps the per-attempt backoff (0 = uncapped).
	MaxDelay time.Duration
	// Rand replaces the jitter source (tests); nil uses math/rand's
	// global source.
	Rand func() float64
	// Sleep replaces the delay function (tests); nil sleeps on a timer,
	// returning early with ctx's error when the context is done first.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Delay returns the full-jitter backoff before attempt n (1-based: Delay(1)
// precedes the first retry). Exposed for tests and for callers that manage
// their own loop.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	limit := p.BaseDelay << uint(attempt-1)
	if limit < p.BaseDelay {
		limit = 1<<63 - 1 // shift overflow: saturate, MaxDelay clamps below
	}
	if p.MaxDelay > 0 && limit > p.MaxDelay {
		limit = p.MaxDelay
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(r() * float64(limit))
}

func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn, retrying transient failures (per IsTransient) up to the
// policy's attempt budget with full-jitter backoff between attempts. It
// returns nil on the first success, the last error when attempts are
// exhausted or the error is not retryable, and ctx's error when the
// context ends first. onRetry, when non-nil, observes each failed attempt
// that will be retried (attempt is 1-based) — core uses it to record
// per-size failure counts.
func Do(ctx context.Context, p RetryPolicy, fn func() error, onRetry func(attempt int, err error)) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn()
		if err == nil {
			return nil
		}
		if attempt >= attempts || !IsTransient(err) {
			return err
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		if serr := p.sleep(ctx, p.Delay(attempt)); serr != nil {
			return serr
		}
	}
}
