package resilience

import "time"

// Clock is the time source shared by the failure-handling layers: the
// circuit breaker's windows, the overload controller's AIMD cooldowns and
// fair-share refills all read time through one injectable function so
// tests drive them in deterministic virtual time. A nil Clock means the
// real clock; Now centralizes that defaulting so callers never branch.
type Clock func() time.Time

// Now returns the clock's current time, falling back to time.Now when the
// clock is nil (the zero value of every config that embeds one).
func (c Clock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}
