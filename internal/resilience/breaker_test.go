package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for driving the breaker's
// window and open-timeout logic in virtual time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

var errBoom = errors.New("boom")

// newTestBreaker returns a breaker with a tight config and its clock:
// trips at 2 failures out of >=4 outcomes, reopens probes after 10s.
func newTestBreaker(t *testing.T) (*Breaker, *fakeClock, *[]string) {
	t.Helper()
	clock := newFakeClock()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		MinRequests:  4,
		FailureRatio: 0.5,
		Window:       time.Minute,
		OpenTimeout:  10 * time.Second,
		HalfOpenMax:  2,
		Clock:        clock.Now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	return b, clock, &transitions
}

func record(t *testing.T, b *Breaker, err error) {
	t.Helper()
	if aerr := b.Allow(); aerr != nil {
		t.Fatalf("Allow refused in state %v: %v", b.State(), aerr)
	}
	b.Record(err)
}

// TestBreakerTripsAtRatio: the breaker stays closed below the low-water
// mark, then opens once MinRequests outcomes meet the failure ratio.
func TestBreakerTripsAtRatio(t *testing.T) {
	b, _, _ := newTestBreaker(t)
	// Three straight failures: below MinRequests, must stay closed.
	for i := 0; i < 3; i++ {
		record(t, b, errBoom)
	}
	if b.State() != Closed {
		t.Fatalf("tripped below MinRequests: %v", b.State())
	}
	// Fourth outcome is a success: 3/4 >= 0.5 — trips on Record.
	record(t, b, nil)
	if b.State() != Open {
		t.Fatalf("state %v after 3/4 failures, want open", b.State())
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

// TestBreakerHealthyStaysClosed: a mostly-healthy stream below the ratio
// never trips.
func TestBreakerHealthyStaysClosed(t *testing.T) {
	b, _, _ := newTestBreaker(t)
	for i := 0; i < 100; i++ {
		var err error
		if i%4 == 0 { // 25% failures < 50% threshold
			err = errBoom
		}
		record(t, b, err)
	}
	if b.State() != Closed {
		t.Fatalf("healthy stream tripped the breaker: %v", b.State())
	}
}

// TestBreakerWindowReset: failures older than Window do not combine with
// fresh ones to trip the breaker.
func TestBreakerWindowReset(t *testing.T) {
	b, clock, _ := newTestBreaker(t)
	record(t, b, errBoom)
	record(t, b, errBoom)
	clock.Advance(2 * time.Minute) // the old failures age out
	record(t, b, errBoom)
	record(t, b, errBoom)
	// Four lifetime failures, but only two in the current window: closed.
	if b.State() != Closed {
		t.Fatalf("stale window counts tripped the breaker")
	}
	record(t, b, errBoom)
	record(t, b, errBoom)
	if b.State() != Open {
		t.Fatalf("four fresh failures did not trip")
	}
}

// TestBreakerRecoveryCycle: open -> (timeout) -> half-open probes ->
// closed, with the transition observer seeing every hop.
func TestBreakerRecoveryCycle(t *testing.T) {
	b, clock, transitions := newTestBreaker(t)
	for i := 0; i < 4; i++ {
		record(t, b, errBoom)
	}
	if b.State() != Open {
		t.Fatalf("setup: breaker not open")
	}
	// Still open before the timeout.
	clock.Advance(9 * time.Second)
	if err := b.Allow(); err != ErrOpen {
		t.Fatalf("breaker reopened %v early", time.Second)
	}
	// After the timeout: HalfOpenMax=2 probes admitted, no more.
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v after probe admitted, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	if err := b.Allow(); err != ErrOpen {
		t.Fatalf("probe budget exceeded: third probe allowed")
	}
	// Both probes succeed: closed, counts reset.
	b.Record(nil)
	if b.State() != HalfOpen {
		t.Fatalf("closed after only one probe success")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state %v after probe successes, want closed", b.State())
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transitions %v, want %v", *transitions, want)
		}
	}
	// Fresh window after recovery: a single failure must not re-trip.
	record(t, b, errBoom)
	if b.State() != Closed {
		t.Fatalf("counts not reset on close")
	}
}

// TestBreakerHalfOpenFailureReopens: one failed probe sends the breaker
// straight back to open with a fresh timeout.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clock, _ := newTestBreaker(t)
	for i := 0; i < 4; i++ {
		record(t, b, errBoom)
	}
	clock.Advance(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(errBoom)
	if b.State() != Open {
		t.Fatalf("failed probe left state %v, want open", b.State())
	}
	// The open timeout restarted at the failed probe.
	clock.Advance(9 * time.Second)
	if err := b.Allow(); err != ErrOpen {
		t.Fatal("re-opened breaker admitted a call before its fresh timeout")
	}
	clock.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe round refused: %v", err)
	}
}

// TestBreakerDo: Do refuses when open, records outcomes, and does not
// hold context cancellations against the backend.
func TestBreakerDo(t *testing.T) {
	b, clock, _ := newTestBreaker(t)
	// Cancellations all day must not trip the breaker.
	for i := 0; i < 20; i++ {
		if err := b.Do(func() error { return context.Canceled }); err == nil {
			t.Fatal("Do swallowed the error")
		}
	}
	if b.State() != Closed {
		t.Fatalf("cancellations tripped the breaker")
	}
	clock.Advance(2 * time.Minute) // age out the cancellation successes
	for i := 0; i < 4; i++ {
		_ = b.Do(func() error { return errBoom })
	}
	if b.State() != Open {
		t.Fatalf("Do failures did not trip")
	}
	called := false
	if err := b.Do(func() error { called = true; return nil }); err != ErrOpen {
		t.Fatalf("open Do returned %v, want ErrOpen", err)
	}
	if called {
		t.Fatal("open Do still invoked fn")
	}
}

// TestBreakerConcurrent exercises Allow/Record/State from many goroutines
// so the race detector can vet the locking.
func TestBreakerConcurrent(t *testing.T) {
	b, clock, _ := newTestBreaker(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err == nil {
					var res error
					if (g+i)%3 == 0 {
						res = errBoom
					}
					b.Record(res)
				}
				_ = b.State()
				if i%50 == 0 {
					clock.Advance(time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
}
