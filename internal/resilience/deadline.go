package resilience

import (
	"context"
	"time"
)

// Deadline applies a time budget to ctx: with d > 0 it returns a derived
// context that expires after d, and with d <= 0 it returns ctx unchanged
// with a no-op cancel — so "-request-timeout 0 means off" costs callers
// no branching. The returned cancel must always be called.
func Deadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// Expired reports whether ctx's budget (from Deadline or any deadline-
// carrying parent) has run out, as opposed to the caller having cancelled:
// handlers use it to pick 504 over 499.
func Expired(ctx context.Context) bool {
	return ctx.Err() == context.DeadlineExceeded
}
