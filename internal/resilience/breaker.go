package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOpen is returned by Allow when the breaker refuses the call. Callers
// degrade (serve stale data, shed load) instead of hammering a backend
// that is already failing.
var ErrOpen = errors.New("resilience: circuit breaker open")

// State is the breaker's position in the classic three-state machine.
type State int

// Breaker states.
const (
	// Closed: traffic flows; failures are counted against the ratio.
	Closed State = iota
	// Open: traffic is refused until OpenTimeout elapses.
	Open
	// HalfOpen: up to HalfOpenMax probes flow; one failure re-opens,
	// HalfOpenMax successes close.
	HalfOpen
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// BreakerConfig tunes a Breaker, modeled on baseplate.go's breakerbp: a
// low-water mark of requests plus a failure-ratio threshold decide the
// closed->open trip, a timeout schedules the open->half-open transition,
// and a bounded probe budget guards half-open->closed recovery.
type BreakerConfig struct {
	// MinRequests is how many outcomes a closed-state window needs before
	// the breaker is eligible to trip (default 5) — one early failure
	// must not open an idle breaker.
	MinRequests int
	// FailureRatio in (0,1] trips the breaker when failures/total meets
	// or exceeds it with MinRequests observed (default 0.5).
	FailureRatio float64
	// Window resets the closed-state counts periodically so ancient
	// history cannot mask a fresh failure burst (default 1m; <=0 keeps
	// counts forever).
	Window time.Duration
	// OpenTimeout is how long the breaker stays open before allowing
	// half-open probes (default 5s).
	OpenTimeout time.Duration
	// HalfOpenMax is how many concurrent/successive probes half-open
	// admits, and how many successes close the breaker (default 1).
	HalfOpenMax int
	// Clock replaces time.Now (tests); nil uses the real clock.
	Clock Clock
	// OnStateChange, when non-nil, observes transitions (metrics, logs).
	// It is called after the breaker's lock is released, so it may block
	// or call back into the breaker without deadlocking; under concurrent
	// transitions, notifications are delivered in the order the
	// transitions happened but may interleave with later breaker calls.
	OnStateChange func(from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.MinRequests < 1 {
		c.MinRequests = 5
	}
	if c.FailureRatio <= 0 || c.FailureRatio > 1 {
		c.FailureRatio = 0.5
	}
	if c.Window == 0 {
		c.Window = time.Minute
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.HalfOpenMax < 1 {
		c.HalfOpenMax = 1
	}
	// Clock needs no defaulting: the nil Clock's Now method falls back to
	// time.Now.
	return c
}

// Breaker is a per-backend circuit breaker. Use Allow before the guarded
// call and Record after it; Do wraps both for the common case. The zero
// value is not usable — construct with NewBreaker.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	total       int       // closed: outcomes observed this window
	failures    int       // closed: failures observed this window
	windowStart time.Time // closed: when this window began
	openedAt    time.Time // open: when the breaker tripped
	probes      int       // half-open: probes admitted
	successes   int       // half-open: probe successes
}

// NewBreaker builds a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, windowStart: cfg.Clock.Now()}
}

// A stateChange is one pending OnStateChange notification, collected
// under the lock and delivered after it is released (locksafety: a
// caller-supplied callback must not run while b.mu is held — it may
// block, or legitimately call back into the breaker).
type stateChange struct{ from, to State }

// notify delivers pending transitions to the observer. Must be called
// WITHOUT b.mu held.
func (b *Breaker) notify(changes []stateChange) {
	if b.cfg.OnStateChange == nil {
		return
	}
	for _, c := range changes {
		b.cfg.OnStateChange(c.from, c.to)
	}
}

// Allow reports whether a call may proceed. In the Open state it returns
// ErrOpen until OpenTimeout has elapsed, then admits HalfOpenMax probes.
// Every admitted call should be followed by exactly one Record.
func (b *Breaker) Allow() error {
	err, changes := b.allow()
	b.notify(changes)
	return err
}

func (b *Breaker) allow() (error, []stateChange) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock.Now()
	switch b.state {
	case Closed:
		if b.cfg.Window > 0 && now.Sub(b.windowStart) >= b.cfg.Window {
			b.total, b.failures, b.windowStart = 0, 0, now
		}
		return nil, nil
	case Open:
		if now.Sub(b.openedAt) < b.cfg.OpenTimeout {
			return ErrOpen, nil
		}
		changes := b.transition(nil, HalfOpen)
		b.probes, b.successes = 1, 0
		return nil, changes
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenMax {
			return ErrOpen, nil
		}
		b.probes++
		return nil, nil
	}
}

// Record feeds one outcome back. Failures in Closed count toward the trip
// ratio; any failure in HalfOpen re-opens; HalfOpenMax successes in
// HalfOpen close the breaker and reset its counts.
func (b *Breaker) Record(err error) {
	b.notify(b.record(err))
}

func (b *Breaker) record(err error) []stateChange {
	failed := err != nil
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Clock.Now()
	switch b.state {
	case Closed:
		if b.cfg.Window > 0 && now.Sub(b.windowStart) >= b.cfg.Window {
			b.total, b.failures, b.windowStart = 0, 0, now
		}
		b.total++
		if failed {
			b.failures++
		}
		if b.total >= b.cfg.MinRequests &&
			float64(b.failures)/float64(b.total) >= b.cfg.FailureRatio {
			changes := b.transition(nil, Open)
			b.openedAt = now
			return changes
		}
	case HalfOpen:
		if failed {
			changes := b.transition(nil, Open)
			b.openedAt = now
			return changes
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenMax {
			changes := b.transition(nil, Closed)
			b.total, b.failures, b.windowStart = 0, 0, now
			return changes
		}
	default: // Open: a late Record from a call admitted earlier; ignore.
	}
	return nil
}

// Do wraps fn with Allow/Record. Context-cancellation errors pass through
// without counting as backend failures: the caller hanging up says
// nothing about the backend's health.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		b.Record(nil) // the call didn't prove the backend unhealthy
		return err
	}
	b.Record(err)
	return err
}

// State returns the breaker's current state, advancing Open to HalfOpen
// eligibility lazily exactly as Allow would (without admitting a probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Refusing reports whether an Allow issued now would return ErrOpen: the
// breaker is Open and its OpenTimeout has not yet elapsed. Callers that
// can degrade without attempting the call at all (the service's stale
// serves, which bypass admission control entirely) consult it before
// spending a queue slot; once the timeout lapses it answers false so
// half-open probes still flow through the normal Allow path.
func (b *Breaker) Refusing() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == Open && b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.OpenTimeout
}

// transition moves the state machine and appends the pending notification
// to changes, which the caller delivers via notify after releasing b.mu.
// Caller holds b.mu.
func (b *Breaker) transition(changes []stateChange, to State) []stateChange {
	if b.state == to {
		return changes
	}
	from := b.state
	b.state = to
	return append(changes, stateChange{from, to})
}
