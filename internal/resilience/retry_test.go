package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// transientErr is a retryable failure for tests.
type transientErr struct{ n int }

func (e *transientErr) Error() string   { return fmt.Sprintf("transient %d", e.n) }
func (e *transientErr) Transient() bool { return true }

// hardErr is a permanent failure for tests.
type hardErr struct{}

func (e *hardErr) Error() string   { return "hard" }
func (e *hardErr) Transient() bool { return false }

func TestIsTransient(t *testing.T) {
	if !IsTransient(&transientErr{}) {
		t.Error("transientErr not classified transient")
	}
	if IsTransient(&hardErr{}) {
		t.Error("hardErr classified transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Error("context errors classified transient")
	}
	// A transient error wrapped in context cancellation must not retry:
	// the caller is gone.
	wrapped := fmt.Errorf("site died: %w after %w", &transientErr{}, context.Canceled)
	if IsTransient(wrapped) {
		t.Error("cancellation-wrapped error classified transient")
	}
}

// TestDoRetriesTransient: a flaky operation that succeeds on attempt 3
// retries twice, reports each retry, then succeeds.
func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	var retried []int
	err := Do(context.Background(), RetryPolicy{MaxAttempts: 5},
		func() error {
			calls++
			if calls < 3 {
				return &transientErr{n: calls}
			}
			return nil
		},
		func(attempt int, err error) { retried = append(retried, attempt) })
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Fatalf("calls=%d retried=%v, want 3 calls, retries [1 2]", calls, retried)
	}
}

// TestDoExhaustsBudget: a persistently transient failure surfaces after
// MaxAttempts tries.
func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryPolicy{MaxAttempts: 4},
		func() error { calls++; return &transientErr{n: calls} }, nil)
	var te *transientErr
	if !errors.As(err, &te) || te.n != 4 {
		t.Fatalf("want the 4th transient error, got %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls=%d, want 4", calls)
	}
}

// TestDoHardFailsFast: non-transient errors are never retried.
func TestDoHardFailsFast(t *testing.T) {
	calls := 0
	err := Do(context.Background(), RetryPolicy{MaxAttempts: 10},
		func() error { calls++; return &hardErr{} }, nil)
	if calls != 1 {
		t.Fatalf("hard error retried: %d calls", calls)
	}
	var he *hardErr
	if !errors.As(err, &he) {
		t.Fatalf("got %v", err)
	}
}

// TestDoZeroPolicy: the zero value runs exactly once.
func TestDoZeroPolicy(t *testing.T) {
	calls := 0
	_ = Do(context.Background(), RetryPolicy{},
		func() error { calls++; return &transientErr{} }, nil)
	if calls != 1 {
		t.Fatalf("zero policy ran %d times", calls)
	}
}

// TestDoRespectsContext: cancellation between attempts stops the loop
// with the context's error.
func TestDoRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the world ends while we back off
			return ctx.Err()
		}},
		func() error { calls++; return &transientErr{} }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls=%d, want 1", calls)
	}
}

// TestDelayFullJitter: the backoff cap doubles per attempt, honours
// MaxDelay, and the jitter draw spans [0, cap).
func TestDelayFullJitter(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Rand:        func() float64 { return 1 }, // draw the cap itself
	}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1: base
		20 * time.Millisecond, // attempt 2: doubled
		40 * time.Millisecond, // attempt 3: doubled again
		40 * time.Millisecond, // attempt 4: clamped by MaxDelay
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	p.Rand = func() float64 { return 0 }
	if got := p.Delay(3); got != 0 {
		t.Errorf("full jitter must reach 0, got %v", got)
	}
	if got := (RetryPolicy{}).Delay(1); got != 0 {
		t.Errorf("zero BaseDelay must not wait, got %v", got)
	}
	// A huge attempt number must saturate, not overflow into a negative
	// delay.
	if got := p.Delay(500); got < 0 || got > p.MaxDelay {
		t.Errorf("Delay(500) = %v, want within [0, MaxDelay]", got)
	}
}
