package offload

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sim/systems"
	"repro/internal/sim/xfer"
)

func mustSystem(t *testing.T, name string) systems.System {
	t.Helper()
	sys, err := systems.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func gemmCall(m, n, k int) Call {
	return Call{Call: advisor.Call{
		Kernel: core.GEMM, M: m, N: n, K: k,
		Precision: core.F64, Count: 1, Strategy: xfer.TransferOnce,
	}}
}

// scriptedEvaluate builds an EvaluateFunc from pure shape functions, so
// hysteresis tests control the exact crossing behaviour.
func scriptedEvaluate(cpu, gpu func(c advisor.Call) float64) EvaluateFunc {
	return func(_ systems.System, c advisor.Call) (float64, float64) {
		return cpu(c), gpu(c)
	}
}

// TestHysteresisRampSwitchesOncePerDirection is the issue's table test:
// shape ramps that cross the offload threshold — including ramps whose
// raw comparison flaps near the crossing — must switch device at most
// once on the way up and at most once on the way down.
func TestHysteresisRampSwitchesOncePerDirection(t *testing.T) {
	wobble := func(m int) float64 {
		if m%2 == 0 {
			return 6
		}
		return -6
	}
	cases := []struct {
		name     string
		margin   float64
		cpu, gpu func(c advisor.Call) float64
		from, to int
		step     int
	}{
		{
			// Clean monotone crossing at m=100.
			name:   "clean-crossing",
			margin: 0.10,
			cpu:    func(c advisor.Call) float64 { return float64(c.M) },
			gpu:    func(c advisor.Call) float64 { return 100 },
			from:   10, to: 400, step: 2,
		},
		{
			// The raw argmin flaps every step between m=94 and m=106;
			// a 15% margin must ride straight through the noise.
			name:   "noisy-crossing",
			margin: 0.15,
			cpu:    func(c advisor.Call) float64 { return float64(c.M) },
			gpu:    func(c advisor.Call) float64 { return 100 + wobble(c.M) },
			from:   40, to: 260, step: 1,
		},
		{
			// GPU favoured from the start: no crossing, no switches.
			name:   "no-crossing",
			margin: 0.10,
			cpu:    func(c advisor.Call) float64 { return float64(c.M) * 2 },
			gpu:    func(c advisor.Call) float64 { return 1 },
			from:   10, to: 200, step: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(Options{
				System:   mustSystem(t, "dawn"),
				Margin:   tc.margin,
				Evaluate: scriptedEvaluate(tc.cpu, tc.gpu),
			})
			ctx := context.Background()
			countSwitches := func(ms []int) int {
				var prev Device
				switches := 0
				for _, m := range ms {
					dec, err := d.Decide(ctx, gemmCall(m, 64, 64))
					if err != nil {
						t.Fatal(err)
					}
					if prev != 0 && dec.Device != prev {
						switches++
					}
					prev = dec.Device
				}
				return switches
			}
			var up, down []int
			for m := tc.from; m <= tc.to; m += tc.step {
				up = append(up, m)
			}
			for m := tc.to; m >= tc.from; m -= tc.step {
				down = append(down, m)
			}
			if got := countSwitches(up); got > 1 {
				t.Errorf("upward ramp switched %d times, want at most 1", got)
			}
			// The downward ramp revisits memoized shapes; their verdicts
			// replay from the cache in reverse order, which is exactly one
			// switch back if the upward ramp switched once.
			if got := countSwitches(down); got > 1 {
				t.Errorf("downward ramp switched %d times, want at most 1", got)
			}
		})
	}
}

// TestHysteresisHoldsNearThreshold pins the hold mechanics: with the GPU
// incumbent and a raw CPU preference inside the margin, the verdict is
// held (and marked Held); outside the margin it switches.
func TestHysteresisHoldsNearThreshold(t *testing.T) {
	gpuT := 100.0
	d := New(Options{
		System: mustSystem(t, "dawn"),
		Margin: 0.10,
		Evaluate: scriptedEvaluate(
			func(c advisor.Call) float64 { return float64(c.M) },
			func(c advisor.Call) float64 { return gpuT },
		),
	})
	ctx := context.Background()

	dec, err := d.Decide(ctx, gemmCall(200, 8, 8)) // cpu=200 vs gpu=100: GPU
	if err != nil || dec.Device != GPU || dec.Held {
		t.Fatalf("want a clean GPU verdict, got %+v err %v", dec, err)
	}
	// cpu=95 beats gpu=100 raw, but not by the 10% margin: held on GPU.
	dec, err = d.Decide(ctx, gemmCall(95, 8, 8))
	if err != nil || dec.Device != GPU || !dec.Held {
		t.Fatalf("want a held GPU verdict, got %+v err %v", dec, err)
	}
	// cpu=50 wins by far more than the margin: switches to CPU.
	dec, err = d.Decide(ctx, gemmCall(50, 8, 8))
	if err != nil || dec.Device != CPU || dec.Held {
		t.Fatalf("want a switch to CPU, got %+v err %v", dec, err)
	}
	st := d.Stats()
	if st.Holds != 1 || st.Switches != 1 {
		t.Fatalf("stats holds=%d switches=%d, want 1 and 1", st.Holds, st.Switches)
	}
}

// TestMemoization: replaying the same shapes must evaluate the models
// once per distinct shape, answer the replays from the cache, and agree
// with the first verdicts.
func TestMemoization(t *testing.T) {
	var evals atomic.Int64
	d := New(Options{
		System: mustSystem(t, "dawn"),
		Evaluate: func(sys systems.System, c advisor.Call) (float64, float64) {
			evals.Add(1)
			return advisor.Times(sys, c)
		},
	})
	ctx := context.Background()
	shapes := make([]Call, 0, 100)
	for i := 0; i < 100; i++ {
		shapes = append(shapes, gemmCall(16+8*i, 64, 64))
	}
	first := make([]Decision, len(shapes))
	for i, c := range shapes {
		dec, err := d.Decide(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Cached {
			t.Fatalf("shape %d cached on first sight", i)
		}
		first[i] = dec
	}
	for round := 0; round < 5; round++ {
		for i, c := range shapes {
			dec, err := d.Decide(ctx, c)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Cached {
				t.Fatalf("round %d shape %d missed the cache", round, i)
			}
			if dec.Device != first[i].Device {
				t.Fatalf("round %d shape %d verdict changed: %v -> %v", round, i, first[i].Device, dec.Device)
			}
		}
	}
	if got := evals.Load(); got != int64(len(shapes)) {
		t.Fatalf("evaluations = %d, want %d (one per distinct shape)", got, len(shapes))
	}
	st := d.Stats()
	if st.CacheHits != uint64(5*len(shapes)) {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, 5*len(shapes))
	}
	if st.BloomNegatives == 0 {
		t.Fatal("cold shapes should register bloom negatives")
	}
}

// TestConcurrentSingleflight: N goroutines dispatching the same small
// shape set concurrently must evaluate each distinct shape exactly once —
// either via the cache or by joining an in-flight evaluation.
func TestConcurrentSingleflight(t *testing.T) {
	var evals atomic.Int64
	d := New(Options{
		System: mustSystem(t, "dawn"),
		Evaluate: func(sys systems.System, c advisor.Call) (float64, float64) {
			evals.Add(1)
			time.Sleep(time.Millisecond) // widen the in-flight window
			return advisor.Times(sys, c)
		},
	})
	const workers, distinct = 16, 12
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < distinct; i++ {
				if _, err := d.Decide(context.Background(), gemmCall(32+16*i, 32, 32)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := evals.Load(); got != distinct {
		t.Fatalf("evaluations = %d, want %d (concurrent callers must share)", got, distinct)
	}
}

// TestResidencyLowersUSMThreshold: under Unified transfer, a resident
// working set skips the first-touch migration, so the GPU time drops and
// a shape that a cold placement keeps on the CPU can become offloadable.
func TestResidencyLowersUSMThreshold(t *testing.T) {
	sys := mustSystem(t, "isambard-ai")
	d := New(Options{System: sys, Margin: 1e-9})
	ctx := context.Background()

	usmCall := func(n int, resident bool) Call {
		return Call{
			Call: advisor.Call{Kernel: core.GEMM, M: n, N: n, K: n,
				Precision: core.F64, Count: 1, Strategy: xfer.Unified},
			Resident: resident,
		}
	}
	for _, n := range []int{64, 256, 1024} {
		cold, err := d.Decide(ctx, usmCall(n, false))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := d.Decide(ctx, usmCall(n, true))
		if err != nil {
			t.Fatal(err)
		}
		if warm.GPUSeconds >= cold.GPUSeconds {
			t.Errorf("n=%d: resident GPU time %g should undercut cold %g", n, warm.GPUSeconds, cold.GPUSeconds)
		}
		if math.Abs(cold.CPUSeconds-warm.CPUSeconds) > 0 {
			t.Errorf("n=%d: residency must not touch the CPU time", n)
		}
	}

	// Residency is a USM concept: explicit-copy strategies ignore it.
	onceCold, err := d.Decide(ctx, gemmCall(128, 128, 128))
	if err != nil {
		t.Fatal(err)
	}
	resident := gemmCall(128, 128, 128)
	resident.Resident = true
	onceWarm, err := d.Decide(ctx, resident)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(onceCold.GPUSeconds-onceWarm.GPUSeconds) > 0 {
		t.Fatal("Resident must be a no-op for TransferOnce")
	}
}

// TestDecideAgreesWithAdvisor: away from the hysteresis band, the
// dispatcher's verdict must be the advisor's verdict — the façade adds
// stability and caching, not a different policy.
func TestDecideAgreesWithAdvisor(t *testing.T) {
	sys := mustSystem(t, "dawn")
	d := New(Options{System: sys, Margin: 1e-9})
	ctx := context.Background()
	for _, n := range []int{8, 32, 128, 512, 2048} {
		c := advisor.Call{Kernel: core.GEMM, M: n, N: n, K: n,
			Precision: core.F64, Count: 8, Strategy: xfer.TransferOnce}
		want, err := advisor.Advise(sys, c)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := d.Decide(ctx, Call{Call: c})
		if err != nil {
			t.Fatal(err)
		}
		wantDev := CPU
		if want.Offload {
			wantDev = GPU
		}
		if dec.Device != wantDev {
			t.Errorf("n=%d: dispatcher says %v, advisor says offload=%v", n, dec.Device, want.Offload)
		}
	}
}

// TestDecideContextCancelled: a cancelled context returns immediately
// with its error and records no decision.
func TestDecideContextCancelled(t *testing.T) {
	d := New(Options{System: mustSystem(t, "dawn")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.Decide(ctx, gemmCall(64, 64, 64)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := d.Stats(); st.Decisions != 0 {
		t.Fatalf("cancelled call recorded a decision: %+v", st)
	}
}

// TestDecideValidates: malformed calls fail loudly instead of poisoning
// the cache.
func TestDecideValidates(t *testing.T) {
	d := New(Options{System: mustSystem(t, "dawn")})
	bad := gemmCall(0, 64, 64)
	if _, err := d.Decide(context.Background(), bad); err == nil {
		t.Fatal("m=0 should be rejected")
	}
}

// TestCachedDecisionLatency is the acceptance bound: across a 1k-shape
// batch of previously seen shapes, the p99 per-decision latency must
// stay under 50µs.
func TestCachedDecisionLatency(t *testing.T) {
	d := New(Options{System: mustSystem(t, "dawn")})
	ctx := context.Background()
	calls := make([]Call, 0, 1000)
	for i := 0; i < 1000; i++ {
		c := gemmCall(8+2*(i%500), 64, 64)
		if i%2 == 1 {
			c.Call.Kernel, c.Call.K = core.GEMV, 0
		}
		calls = append(calls, c)
	}
	for _, c := range calls { // warm every shape
		if _, err := d.Decide(ctx, c); err != nil {
			t.Fatal(err)
		}
	}
	lat := make([]time.Duration, 0, len(calls))
	for _, c := range calls {
		began := time.Now()
		dec, err := d.Decide(ctx, c)
		lat = append(lat, time.Since(began))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Cached {
			t.Fatal("warmed shape missed the cache")
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if p99 > 50*time.Microsecond {
		t.Fatalf("cached decision p99 = %s, want < 50µs", p99)
	}
}

// TestShapeKeyDistinguishes: every field of the call identity must feed
// the key.
func TestShapeKeyDistinguishes(t *testing.T) {
	base := gemmCall(64, 32, 16)
	variants := []Call{
		gemmCall(65, 32, 16),
		gemmCall(64, 33, 16),
		gemmCall(64, 32, 17),
	}
	c := base
	c.Count = 2
	variants = append(variants, c)
	c = base
	c.Precision = core.F32
	variants = append(variants, c)
	c = base
	c.Strategy = xfer.Unified
	variants = append(variants, c)
	c = base
	c.Resident = true
	variants = append(variants, c)
	c = base
	c.Call.Kernel, c.Call.K = core.GEMV, 0
	variants = append(variants, c)

	seen := map[uint64]bool{shapeKey(base): true}
	for i, v := range variants {
		k := shapeKey(v)
		if seen[k] {
			t.Errorf("variant %d collides", i)
		}
		seen[k] = true
	}
}

// TestCacheEviction: overflowing a tiny cache evicts rather than grows,
// and evicted shapes simply re-evaluate.
func TestCacheEviction(t *testing.T) {
	var evals atomic.Int64
	d := New(Options{
		System:       mustSystem(t, "dawn"),
		CacheEntries: 256, // the minimum
		Evaluate: func(sys systems.System, c advisor.Call) (float64, float64) {
			evals.Add(1)
			return advisor.Times(sys, c)
		},
	})
	ctx := context.Background()
	for i := 0; i < 4096; i++ {
		if _, err := d.Decide(ctx, gemmCall(8+i, 32, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if evals.Load() != 4096 {
		t.Fatalf("distinct shapes must each evaluate once, got %d", evals.Load())
	}
	// Replay: most are evicted (256-entry cache, 4096 shapes) and
	// re-evaluate without error; some tail shapes may still hit.
	for i := 4000; i < 4096; i++ {
		if _, err := d.Decide(ctx, gemmCall(8+i, 32, 32)); err != nil {
			t.Fatal(err)
		}
	}
}
